"""Trace (de)serialization: a compact dumpi-like text format.

One JSON object per line; the first line is a header record.  The format
round-trips everything the analyses consume, so traces can be generated
once and replayed many times (or produced by an external tool -- e.g. an
actual dumpi converter -- and fed to this package's analyzers).

Event records::

    {"k": "h", "app": ..., "ranks": N, "meta": {...}}     header
    {"k": "s", "t": time, "r": rank, "d": dst, "g": tag,
     "c": comm, "b": nbytes}                              send
    {"k": "p", "t": time, "r": rank, "s": src, "g": tag,
     "c": comm}                                           recv post
    {"k": "b", "t": time, "r": rank}                      barrier
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Iterator

from .events import BarrierEvent, RecvPostEvent, SendEvent, Trace

__all__ = ["save_trace", "load_trace", "dumps", "loads"]

_FORMAT_VERSION = 1


def _records(trace: Trace) -> Iterator[dict]:
    yield {"k": "h", "v": _FORMAT_VERSION, "app": trace.app,
           "ranks": trace.n_ranks, "meta": trace.meta}
    for ev in trace.events:
        if ev.kind == "send":
            yield {"k": "s", "t": ev.time, "r": ev.rank, "d": ev.dst,
                   "g": ev.tag, "c": ev.comm, "b": ev.nbytes}
        elif ev.kind == "post_recv":
            yield {"k": "p", "t": ev.time, "r": ev.rank, "s": ev.src,
                   "g": ev.tag, "c": ev.comm}
        elif ev.kind == "barrier":
            yield {"k": "b", "t": ev.time, "r": ev.rank}
        else:  # pragma: no cover - schema guard
            raise ValueError(f"unknown event kind {ev.kind!r}")


def _parse(lines: Iterable[str]) -> Trace:
    header: dict | None = None
    events: list = []
    for lineno, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            rec = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"line {lineno}: invalid JSON: {exc}") from None
        kind = rec.get("k")
        if kind == "h":
            if header is not None:
                raise ValueError(f"line {lineno}: duplicate header")
            if rec.get("v") != _FORMAT_VERSION:
                raise ValueError(
                    f"unsupported trace format version {rec.get('v')!r}")
            header = rec
        elif header is None:
            raise ValueError(f"line {lineno}: event before header")
        elif kind == "s":
            events.append(SendEvent(time=rec["t"], rank=rec["r"],
                                    dst=rec["d"], tag=rec["g"],
                                    comm=rec.get("c", 0),
                                    nbytes=rec.get("b", 8)))
        elif kind == "p":
            events.append(RecvPostEvent(time=rec["t"], rank=rec["r"],
                                        src=rec["s"], tag=rec["g"],
                                        comm=rec.get("c", 0)))
        elif kind == "b":
            events.append(BarrierEvent(time=rec["t"], rank=rec["r"]))
        else:
            raise ValueError(f"line {lineno}: unknown record kind {kind!r}")
    if header is None:
        raise ValueError("empty trace file (no header)")
    return Trace(app=header["app"], n_ranks=header["ranks"], events=events,
                 meta=header.get("meta"))


def dumps(trace: Trace) -> str:
    """Serialize a trace to a JSONL string."""
    return "\n".join(json.dumps(rec, separators=(",", ":"))
                     for rec in _records(trace)) + "\n"


def loads(text: str) -> Trace:
    """Parse a trace from a JSONL string."""
    return _parse(text.splitlines())


def save_trace(trace: Trace, path: str | Path) -> Path:
    """Write a trace to ``path`` (JSONL); returns the path."""
    path = Path(path)
    with path.open("w") as fh:
        for rec in _records(trace):
            fh.write(json.dumps(rec, separators=(",", ":")))
            fh.write("\n")
    return path


def load_trace(path: str | Path) -> Trace:
    """Read a trace written by :func:`save_trace`."""
    with Path(path).open() as fh:
        return _parse(fh)
