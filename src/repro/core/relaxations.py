"""Relaxation sets: which MPI matching guarantees are kept (Section VI).

The paper starts from full MPI semantics and relaxes three guarantees:

1. **source wildcard** (``MPI_ANY_SOURCE``) -- dropping it enables static
   rank partitioning into parallel queues;
2. **unexpected messages** -- requiring receives to be pre-posted removes
   fruitless PRQ traversals and the compaction pass;
3. **ordering** (non-overtaking) -- dropping it (together with wildcards)
   enables hash tables with O(1) insert/lookup.

:class:`RelaxationSet` names a point in that lattice;
:data:`TABLE_II_CONFIGS` enumerates the six rows of the paper's Table II.

**Demotion lattice.**  A workload that uses a prohibited feature at
runtime can either be rejected (:class:`WorkloadViolation`, the default)
or *demoted*: moved to the weakest relaxation point that still permits
the observed feature, which selects the strongest matcher that remains
correct -- hash -> partitioned -> matrix, with the unexpected-message
axis orthogonal:

* a **wildcard** under a no-wildcard config forces ``wildcards=True``,
  which (wildcards imply ordering) lands on the matrix matcher;
* an **unexpected message** under a pre-posted config flips
  ``unexpected=True`` and keeps the matcher family (it only re-enables
  compaction);
* requiring **ordering** on an unordered config flips ``ordering=True``
  and lands on the partitioned matcher (wildcards stay prohibited).

The ``demoted_for_*`` methods compute those minimal moves; the engine
applies them (see
:attr:`repro.core.engine.MatchingEngine.demote_on_violation`).
"""

from __future__ import annotations

from dataclasses import dataclass

from .envelope import EnvelopeBatch

__all__ = ["RelaxationSet", "TABLE_II_CONFIGS", "WorkloadViolation"]


class WorkloadViolation(ValueError):
    """A workload uses a feature the active relaxation set prohibits."""


@dataclass(frozen=True)
class RelaxationSet:
    """Which guarantees the matching engine must honour.

    Attributes
    ----------
    wildcards:
        ``MPI_ANY_SOURCE`` / ``MPI_ANY_TAG`` permitted.  (The paper
        relaxes both together; Table II has a single "Wildcards" column.)
    ordering:
        MPI non-overtaking order guaranteed.
    unexpected:
        Messages may arrive before their receive is posted.
    """

    wildcards: bool = True
    ordering: bool = True
    unexpected: bool = True

    def __post_init__(self) -> None:
        if not self.ordering and self.wildcards:
            raise ValueError(
                "the unordered (hash) design point prohibits wildcards; "
                "RelaxationSet(wildcards=True, ordering=False) is not a "
                "Table II configuration")

    # -- classification ------------------------------------------------------------

    @property
    def partitionable(self) -> bool:
        """Can the rank space be split into parallel queues?

        True exactly when the source wildcard is prohibited (the "Part."
        column of Table II).
        """
        return not self.wildcards

    @property
    def data_structure(self) -> str:
        """Table II's "Data structure" column: matrix or hash table."""
        return "matrix" if self.ordering else "hash"

    @property
    def needs_compaction(self) -> bool:
        """Compaction is only needed when unexpected messages leave holes."""
        return self.unexpected

    @property
    def mpi_compliant(self) -> bool:
        """The fully-guaranteed starting point (Table II row 1)."""
        return self.wildcards and self.ordering and self.unexpected

    @property
    def user_implication(self) -> str:
        """Table II's qualitative "User implication" column."""
        if not self.ordering:
            return "high"
        if not self.unexpected:
            return "medium"
        if not self.wildcards:
            return "low"
        return "none"

    def label(self) -> str:
        """Compact identifier, e.g. ``wc+ord+unexp`` or ``noword``."""
        parts = [
            "wc" if self.wildcards else "nowc",
            "ord" if self.ordering else "noord",
            "unexp" if self.unexpected else "pre",
        ]
        return "+".join(parts)

    @classmethod
    def from_label(cls, label: str) -> "RelaxationSet":
        """Inverse of :meth:`label` (the snapshot format stores labels).

        >>> RelaxationSet.from_label("nowc+noord+unexp")
        RelaxationSet(wildcards=False, ordering=False, unexpected=True)
        """
        parts = label.split("+")
        if len(parts) != 3:
            raise ValueError(f"malformed relaxation label {label!r}")
        wc, order, unexp = parts
        if wc not in ("wc", "nowc") or order not in ("ord", "noord") \
                or unexp not in ("unexp", "pre"):
            raise ValueError(f"malformed relaxation label {label!r}")
        return cls(wildcards=wc == "wc", ordering=order == "ord",
                   unexpected=unexp == "unexp")

    # -- demotion lattice -------------------------------------------------------------

    def demoted_for_wildcards(self) -> "RelaxationSet":
        """Minimal demotion admitting a wildcard request.

        Wildcards force the single-queue matrix design point (partitioning
        and hashing both require knowing the source), so ordering comes
        back with them.
        """
        return RelaxationSet(wildcards=True, ordering=True,
                             unexpected=self.unexpected)

    def demoted_for_unexpected(self) -> "RelaxationSet":
        """Minimal demotion admitting unexpected messages (re-enables
        compaction; the matcher family is unchanged)."""
        return RelaxationSet(wildcards=self.wildcards,
                             ordering=self.ordering, unexpected=True)

    def demoted_for_ordering(self) -> "RelaxationSet":
        """Minimal demotion restoring the non-overtaking guarantee
        (hash -> partitioned: wildcards stay prohibited)."""
        return RelaxationSet(wildcards=self.wildcards, ordering=True,
                             unexpected=self.unexpected)

    # -- workload validation ----------------------------------------------------------

    def validate_requests(self, requests: EnvelopeBatch) -> None:
        """Reject request batches that use prohibited features."""
        if not self.wildcards and requests.has_wildcards:
            raise WorkloadViolation(
                f"relaxation {self.label()} prohibits wildcards but the "
                "request batch contains MPI_ANY_SOURCE/MPI_ANY_TAG")

    def validate_unexpected(self, n_unexpected: int) -> None:
        """Reject unexpected messages when the relaxation prohibits them."""
        if not self.unexpected and n_unexpected > 0:
            raise WorkloadViolation(
                f"relaxation {self.label()} requires pre-posted receives "
                f"but {n_unexpected} messages arrived unexpected")


#: The six configurations of Table II, top to bottom.
TABLE_II_CONFIGS: tuple[RelaxationSet, ...] = (
    RelaxationSet(wildcards=True, ordering=True, unexpected=True),
    RelaxationSet(wildcards=True, ordering=True, unexpected=False),
    RelaxationSet(wildcards=False, ordering=True, unexpected=True),
    RelaxationSet(wildcards=False, ordering=True, unexpected=False),
    RelaxationSet(wildcards=False, ordering=False, unexpected=True),
    RelaxationSet(wildcards=False, ordering=False, unexpected=False),
)
