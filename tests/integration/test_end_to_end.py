"""Cross-module integration: traces -> matchers, clusters under every
relaxation set, and the runnable examples themselves."""

from __future__ import annotations

import runpy
import sys
from pathlib import Path

import numpy as np
import pytest

from repro import (EnvelopeBatch, GPU, MatchingEngine, RelaxationSet,
                   TABLE_II_CONFIGS)
from repro.core.verify import check_mpi_ordering, check_relaxed
from repro.mpi import Cluster, Communicator, alltoall, barrier
from repro.traces import generate_trace

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


class TestTraceToMatcher:
    """Feed real (synthetic-app) traffic through the matching engines."""

    def _batches_for_rank(self, trace, rank: int):
        """Messages arriving at `rank` and the receives it posts, in
        trace order, as envelope batches."""
        msgs = [(e.rank, e.tag, e.comm) for e in trace.sends()
                if e.dst == rank]
        posts = [(e.src, e.tag, e.comm) for e in trace.recv_posts()
                 if e.rank == rank]
        mb = EnvelopeBatch(src=[m[0] for m in msgs],
                           tag=[m[1] for m in msgs],
                           comm=[m[2] for m in msgs])
        rb = EnvelopeBatch(src=[p[0] for p in posts],
                           tag=[p[1] for p in posts],
                           comm=[p[2] for p in posts])
        return mb, rb

    @pytest.mark.parametrize("app", ["exmatex_lulesh", "df_partisn",
                                     "cesar_crystalrouter"])
    def test_app_traffic_matches_under_mpi_semantics(self, app):
        trace = generate_trace(app, n_ranks=8, steps=2)
        eng = MatchingEngine(verify=True)
        for rank in range(4):
            msgs, reqs = self._batches_for_rank(trace, rank)
            if len(msgs) == 0:
                continue
            out = eng.match(msgs, reqs)
            # balanced traces: every message for this rank is consumed
            assert out.matched_count == min(len(msgs), len(reqs))

    def test_wildcard_app_rejected_by_restricted_engine(self):
        trace = generate_trace("df_minife", n_ranks=8, steps=4)
        eng = MatchingEngine(
            relaxations=RelaxationSet(wildcards=False))
        msgs, reqs = self._batches_for_rank(trace, 0)
        from repro.core.relaxations import WorkloadViolation
        with pytest.raises(WorkloadViolation):
            eng.match(msgs, reqs)

    @pytest.mark.parametrize("app", ["exmatex_lulesh", "df_snap"])
    def test_app_traffic_under_hash_engine(self, app):
        trace = generate_trace(app, n_ranks=8, steps=2)
        eng = MatchingEngine(relaxations=RelaxationSet(
            wildcards=False, ordering=False))
        msgs, reqs = self._batches_for_rank(trace, 1)
        out = eng.match(msgs, reqs)
        check_relaxed(msgs, reqs, out, require_complete=True)


class TestClusterUnderRelaxations:
    @pytest.mark.parametrize("rel", TABLE_II_CONFIGS,
                             ids=[r.label() for r in TABLE_II_CONFIGS])
    def test_alltoall_under_every_config(self, rel):
        """The same collective communication pattern completes and is
        correct under every Table II configuration.

        For the no-unexpected configurations the collective pre-posts
        receives before sending, which alltoall does.
        """
        comm = Communicator(Cluster(4, relaxations=rel))
        send = [[f"{i}->{j}" for j in range(4)] for i in range(4)]
        out = alltoall(comm, send)
        for j in range(4):
            for i in range(4):
                assert out[j][i] == f"{i}->{j}"

    def test_matching_time_ranking_across_relaxations(self):
        """More relaxed clusters spend less simulated device time
        matching the same traffic."""
        times = {}
        for rel in (RelaxationSet(),
                    RelaxationSet(wildcards=False, ordering=False,
                                  unexpected=False)):
            cluster = Cluster(2, relaxations=rel)
            reqs = [cluster.rank(1).irecv(src=0, tag=t) for t in range(200)]
            for t in range(200):
                cluster.rank(0).isend(1, t, tag=t)
            for r in reqs:
                r.wait()
            times[rel.label()] = cluster.match_seconds
        assert times["nowc+noord+pre"] < times["wc+ord+unexp"]

    def test_nekbone_flood_hits_ring_backpressure(self):
        """The deep-queue outlier's gather flood through statically sized
        ingress rings: high watermarks pin at capacity, traffic holds,
        and everything still completes once receives are posted."""
        from repro.traces import generate_trace
        cluster = Cluster(8, ring_capacity=64)
        trace = generate_trace("cesar_nekbone", n_ranks=8, steps=1)
        posted = []
        for ev in trace.events:
            if ev.kind == "send":
                cluster.rank(ev.rank).isend(ev.dst, None, tag=ev.tag,
                                            comm=ev.comm)
            elif ev.kind == "post_recv":
                posted.append(cluster.rank(ev.rank).irecv(
                    ev.src, ev.tag, ev.comm))
        assert cluster.network.held_messages > 0  # flood exceeded credits
        cluster.drain()
        assert all(r.test() for r in posted)
        stats = cluster.stats()
        assert max(s["rings"]["high_watermark"] for s in stats) == 64
        assert sum(s["rings"]["rejected"] for s in stats) > 0

    def test_gpu_generation_affects_cluster_time(self):
        def run(spec):
            c = Cluster(2, gpu=spec)
            rs = [c.rank(1).irecv(src=0, tag=t) for t in range(100)]
            for t in range(100):
                c.rank(0).isend(1, t, tag=t)
            for r in rs:
                r.wait()
            return c.match_seconds

        assert run(GPU.pascal_gtx1080()) < run(GPU.kepler_k80())


class TestExamplesRun:
    """Every example must execute cleanly as a script."""

    @pytest.mark.parametrize("script", ["quickstart.py", "halo_exchange.py",
                                        "trace_analysis.py",
                                        "bsp_pipeline.py",
                                        "inside_the_kernel.py"])
    def test_example(self, script, capsys):
        path = EXAMPLES / script
        assert path.exists(), f"missing example {script}"
        runpy.run_path(str(path), run_name="__main__")
        out = capsys.readouterr().out
        assert len(out) > 100  # produced a real report
