"""Per-stage wall-clock accounting for the serve pipeline.

The serve bench's headline number -- sustained host matches/s -- says
*that* the pipeline is fast or slow, not *where* the time goes.  A
:class:`StageClock` splits a serve run's wall time across the pipeline's
stages so overhead is measured, not inferred:

* ``loadgen``   -- building the workload's column stream from a trace;
* ``transport`` -- wire-frame encode/decode and queue hand-off between
  the cluster router and its worker processes (zero for in-process
  runs, where no process boundary exists);
* ``admission`` -- admission decisions and ticket construction;
* ``fabric``    -- cross-shard combining: outbox drains, per-pair block
  packing, and fabric deliveries into destination accumulators;
* ``batching``  -- accumulator admits and flush concatenation;
* ``match``     -- the tenant engines' matching passes;
* ``result``    -- flush-result assembly, profiling, and autotuning.

In multi-process mode the worker-side stages are merged into the
router's clock at stats collection, so the per-stage totals are summed
CPU-seconds across processes -- they can legitimately exceed the run's
wall time when workers overlap.  ``transport`` charges only the encode,
enqueue, and decode work the router actually performs, never the time
spent *waiting* on workers, so the "match %" column in the serve bench
stays a share of work done rather than of wall idle.

Timing is **measurement-only**: the clock reads ``time.perf_counter``
but nothing in the serve layer ever branches on it, so attaching a clock
cannot perturb outcomes, shedding, or retunes (the same contract as the
observability handle, and the only sanctioned use of wall time in the
serve layer).
"""

from __future__ import annotations

import time

__all__ = ["SERVE_STAGES", "StageClock"]

#: The serve pipeline's stages, pipeline order.
SERVE_STAGES = ("loadgen", "transport", "admission", "fabric", "batching",
                "match", "result")


class StageClock:
    """Accumulated wall seconds per serve pipeline stage.

    Instrumentation sites bracket their stage explicitly::

        t0 = clock.start()
        ...stage work...
        clock.stop("match", t0)

    which keeps the hot path free of context-manager overhead and keeps
    every site greppable.  ``None`` is the default everywhere a clock is
    accepted, behind a single ``is not None`` branch per site.
    """

    __slots__ = ("seconds", "counts")

    def __init__(self) -> None:
        self.seconds: dict[str, float] = {s: 0.0 for s in SERVE_STAGES}
        self.counts: dict[str, int] = {s: 0 for s in SERVE_STAGES}

    @staticmethod
    def start() -> float:
        """A wall-clock stamp to later :meth:`stop` against."""
        return time.perf_counter()

    def stop(self, stage: str, t0: float) -> None:
        """Charge the elapsed time since ``t0`` to ``stage``."""
        self.seconds[stage] += time.perf_counter() - t0
        self.counts[stage] += 1

    def add(self, stage: str, seconds: float) -> None:
        """Charge an externally measured duration to ``stage``."""
        self.seconds[stage] += seconds
        self.counts[stage] += 1

    def snapshot(self) -> dict[str, float]:
        """``{stage: seconds}``, pipeline order, JSON-friendly."""
        return {s: self.seconds[s] for s in SERVE_STAGES}
