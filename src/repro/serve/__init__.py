"""repro.serve -- a sharded, workload-aware matching service.

Every entry point below this package is a one-shot library call; this
package is the layer that owns *lifecycles*: many isolated tenants,
concurrent request streams, bounded queues, overload behaviour, and
online engine selection.  It composes every prior subsystem into one
system:

* **batching** (:mod:`.batching`) -- requests accumulate into
  :class:`~repro.core.envelope.EnvelopeBatch`\\ es and flush on size /
  virtual-time watermarks, so the array-native fast paths are always fed
  batches;
* **admission control** (:mod:`.admission`) -- bounded per-shard inboxes
  with graduated shedding (``retryable`` above a soft watermark,
  ``overloaded`` at capacity) instead of unbounded growth;
* **workload profiling + autotuning** (:mod:`.profiler`,
  :mod:`.autotuner`) -- Table I statistics computed live per tenant
  drive promotions and demotions along the Table II lattice
  (matrix <-> partitioned <-> hash), with promotion hysteresis and every
  rebuild charged as a kernel relaunch;
* **deterministic scheduling** (:mod:`.scheduler`) -- a seeded
  virtual-time event loop; no wall clock on any decision path, so every
  serve run is replayable bit-for-bit;
* **open-loop load generation** (:mod:`.loadgen`) -- tenant streams
  derived from the proxy-application traces, driving
  ``benchmarks/bench_serve.py`` and ``python -m repro serve-demo``;
* **stateful sessions + fault tolerance** (:mod:`.state`,
  :mod:`.supervisor`) -- persistent-UMQ carry-over for ``session``
  tenants, a versioned CRC-guarded snapshot codec with bit-identical
  checkpoint/restore, and a shard supervisor providing crash recovery
  (checkpoint + journal replay, zero admitted requests lost) and live
  tenant migration (drain -> snapshot -> catchup -> cutover) with
  hot-spot rebalancing;
* **multi-process clusters** (:mod:`.wire`, :mod:`.cluster`) -- each
  shard in its own worker process behind pickle-free CRC-guarded wire
  frames, with a router owning placement, the global sequence space,
  and response collection; a same-seed cluster run is bit-identical to
  the in-process service, and worker death recovers by checkpoint +
  verbatim journal re-execution across the process boundary;
* **cross-shard tenants + the combining fabric** (:mod:`.fabric`) --
  ``TenantSpec(span=N)`` tenants spread sub-shards across the service,
  with inter-shard traffic coalesced into one combined column block per
  shard pair per superstep (Träff-style sparse-collective message
  combining) and a :class:`~repro.serve.fabric.CollectiveBridge` that
  runs every :mod:`repro.mpi.collectives` algorithm over the serve
  plane, bit-identically in-process and across worker processes.

See ``docs/SERVING.md`` for the architecture walk-through and
``docs/FAULT_MODEL.md`` for the failure semantics.
"""

from .admission import AdmissionController, AdmissionPolicy
from .autotuner import LATTICE, Autotuner, RetuneEvent, lattice_rank
from .batching import BatchAccumulator, BatchPolicy, concat_batches
from .cluster import (ClusterError, ClusterMigration, ClusterRecovery,
                      ClusterService, run_cluster_workload)
from .fabric import (BridgePrecv, BridgePsend, BridgeRequest,
                     CollectiveBridge, Fabric, FabricError, FabricFlush,
                     FabricLink)
from .loadgen import (BENCHPARK_BENCH_APPS, DEFAULT_BENCH_APPS,
                      ServeArrival, ServeWorkload, busiest_rank, demo,
                      merge_workloads, run_workload,
                      tenant_stream_from_trace, workload_from_app)
from .messages import (ACCEPTED, MIGRATING, OVERLOADED, RETRYABLE,
                       FlushResult, ServeRequest, ShardCrash, TenantSpec,
                       Ticket)
from .profiler import StreamProfiler, WorkloadProfile
from .scheduler import EventLoop, TimerEvent, VirtualClock
from .service import MatchingService, stable_shard
from .shard import Shard, TenantState
from .stages import SERVE_STAGES, StageClock
from .state import (SessionState, SnapshotError, restore_service,
                    snapshot_service)
from .supervisor import (MigrationPlan, RebalancePolicy, RecoveryReport,
                         ShardSupervisor, SupervisedRun,
                         bump_epoch_past_stale, run_supervised)
from .wire import (FRAME_KINDS, WIRE_MAGIC, WIRE_VERSION, WireError,
                   decode_frame, encode_frame)

__all__ = [
    "ACCEPTED", "RETRYABLE", "OVERLOADED", "MIGRATING",
    "TenantSpec", "ServeRequest", "Ticket", "FlushResult", "ShardCrash",
    "BatchPolicy", "BatchAccumulator", "concat_batches",
    "AdmissionPolicy", "AdmissionController",
    "WorkloadProfile", "StreamProfiler",
    "LATTICE", "lattice_rank", "Autotuner", "RetuneEvent",
    "VirtualClock", "TimerEvent", "EventLoop",
    "Shard", "TenantState", "MatchingService",
    "ServeArrival", "ServeWorkload", "busiest_rank",
    "tenant_stream_from_trace", "workload_from_app", "merge_workloads",
    "DEFAULT_BENCH_APPS", "BENCHPARK_BENCH_APPS", "run_workload", "demo",
    "SERVE_STAGES", "StageClock",
    "SessionState", "SnapshotError", "snapshot_service", "restore_service",
    "ShardSupervisor", "RecoveryReport", "MigrationPlan",
    "RebalancePolicy", "SupervisedRun", "run_supervised",
    "bump_epoch_past_stale", "stable_shard",
    "WIRE_MAGIC", "WIRE_VERSION", "FRAME_KINDS", "WireError",
    "encode_frame", "decode_frame",
    "ClusterError", "ClusterRecovery", "ClusterMigration",
    "ClusterService", "run_cluster_workload",
    "FabricError", "FabricLink", "FabricFlush", "Fabric",
    "BridgeRequest", "CollectiveBridge", "BridgePsend", "BridgePrecv",
]
