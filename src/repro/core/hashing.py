"""Hash functions for the relaxed (unordered) matcher.

The paper's hash-table matcher keys on the packed {src, tag} word and uses
*"Robert Jenkin's 32-bit (6-shifts) hash function, which we found to be in
wide use"* (Section VI-C).  It also flags hash-function choice as future
work, so alternates (FNV-1a, multiplicative/Fibonacci, and an identity
baseline that exposes collision pathologies) are provided for the
ablation bench.

All functions are vectorized over int64 NumPy arrays and return unsigned
32-bit results as int64 (so downstream modular arithmetic stays exact).
The per-call ALU instruction count is exported for the cost model.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

__all__ = [
    "jenkins32",
    "fnv1a32",
    "fibonacci32",
    "identity32",
    "HASH_FUNCTIONS",
    "alu_cost",
    "fold64",
]

_U32 = np.int64(0xFFFFFFFF)


def _u32(x: np.ndarray) -> np.ndarray:
    return x & _U32


def jenkins32(keys: np.ndarray) -> np.ndarray:
    """Robert Jenkins' 32-bit integer hash (the 6-shift version).

    This is the function the paper selects.  Vectorized translation of::

        a = (a+0x7ed55d16) + (a<<12)
        a = (a^0xc761c23c) ^ (a>>19)
        a = (a+0x165667b1) + (a<<5)
        a = (a+0xd3a2646c) ^ (a<<9)
        a = (a+0xfd7046c5) + (a<<3)
        a = (a^0xb55a4f09) ^ (a>>16)
    """
    # uint32 arithmetic wraps mod 2^32 natively, so no masking between
    # steps -- half the array ops of the masked-int64 formulation, with
    # bit-identical results (pinned by the hashing unit tests).
    a = np.asarray(keys, dtype=np.int64).astype(np.uint32)
    a = (a + np.uint32(0x7ED55D16)) + (a << np.uint32(12))
    a = (a ^ np.uint32(0xC761C23C)) ^ (a >> np.uint32(19))
    a = (a + np.uint32(0x165667B1)) + (a << np.uint32(5))
    a = (a + np.uint32(0xD3A2646C)) ^ (a << np.uint32(9))
    a = (a + np.uint32(0xFD7046C5)) + (a << np.uint32(3))
    a = (a ^ np.uint32(0xB55A4F09)) ^ (a >> np.uint32(16))
    return a.astype(np.int64)


def fnv1a32(keys: np.ndarray) -> np.ndarray:
    """FNV-1a over the four bytes of the 32-bit key (vectorized)."""
    k = _u32(np.asarray(keys, dtype=np.int64))
    h = np.full_like(k, 0x811C9DC5)
    for shift in (0, 8, 16, 24):
        byte = (k >> shift) & 0xFF
        h = _u32(h ^ byte)
        h = _u32(h * 0x01000193)
    return h


def fibonacci32(keys: np.ndarray) -> np.ndarray:
    """Multiplicative (Fibonacci) hashing: one multiply by 2^32/phi."""
    k = _u32(np.asarray(keys, dtype=np.int64))
    return _u32(k * 0x9E3779B9)


def identity32(keys: np.ndarray) -> np.ndarray:
    """No mixing at all -- the collision-pathology baseline for ablations."""
    return _u32(np.asarray(keys, dtype=np.int64))


#: Registry used by the hash matcher and the hash-function ablation bench.
HASH_FUNCTIONS: dict[str, Callable[[np.ndarray], np.ndarray]] = {
    "jenkins": jenkins32,
    "fnv1a": fnv1a32,
    "fibonacci": fibonacci32,
    "identity": identity32,
}

#: Integer ALU instructions each function costs per key on the GPU.
_ALU_COST = {"jenkins": 17, "fnv1a": 12, "fibonacci": 2, "identity": 0}


def alu_cost(name: str) -> int:
    """ALU instructions per hashed key for the named function."""
    try:
        return _ALU_COST[name]
    except KeyError:
        raise KeyError(f"unknown hash function {name!r}; "
                       f"choices: {sorted(HASH_FUNCTIONS)}") from None


def fold64(words: np.ndarray) -> np.ndarray:
    """Fold packed 64-bit envelopes to 32 bits before hashing.

    XOR-folding keeps both the src (upper) and tag (lower) halves
    influential, so distinct tuples rarely pre-collide before the hash.
    """
    w = np.asarray(words, dtype=np.int64)
    return _u32(w ^ (w >> 32))
