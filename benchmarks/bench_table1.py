"""Table I: proxy-application communication characteristics.

Regenerates the paper's application-characteristics table from the
synthetic traces: wildcard usage (only MiniDFT and MiniFE use the source
wildcard, nobody uses the tag wildcard), communicator counts (NEKBONE 2,
MiniDFT 7, all others 1), peer counts (most 10-30; CNS ~72, AMG ~79),
and tag-space sizes (MiniDFT/MOCFE/PARTISN thousands; AMG/LULESH/MiniFE
fewer than four).
"""

from __future__ import annotations

import pytest

from repro.bench import Table, write_result
from repro.traces import analyze, app_names, generate_trace

PAPER_NOTES = {
    "df_amg": "peers ~79, tags <4",
    "df_minidft": "src wildcard, 7 comms, tags in the thousands",
    "df_minife": "src wildcard, tags <4",
    "df_partisn": "tags in the thousands",
    "cesar_nekbone": "2 comms, irregular rank usage",
    "cesar_mocfe": "tags in the thousands",
    "exact_cns": "peers ~72",
    "exact_multigrid": "long queues (see Fig. 2)",
    "exmatex_lulesh": "tags <4, receives pre-posted",
    "amr_boxlib": "irregular rank usage",
}


def table1_rows():
    """Analyzer rows for every modelled application at default scale."""
    return {name: analyze(generate_trace(name)) for name in app_names()}


def test_report_table1():
    rows = table1_rows()
    table = Table(
        title="Table I -- application communication characteristics",
        columns=["application", "ranks", "src-wc", "tag-wc", "comms",
                 "peers(mean/max)", "tags", "tag-entropy", "rank-CoV",
                 "paper notes"])
    for name, row in rows.items():
        table.add(name, row.n_ranks,
                  "yes" if row.uses_src_wildcard else "no",
                  "yes" if row.uses_tag_wildcard else "no",
                  row.n_communicators,
                  f"{row.peers_mean:.0f}/{row.peers_max}",
                  row.n_tags,
                  f"{row.tag_entropy:.2f}",
                  f"{row.rank_usage_cov:.2f}",
                  PAPER_NOTES.get(name, ""))
    table.note("src wildcard users must be exactly {MiniDFT, MiniFE}; "
               "no app may use the tag wildcard; all tags fit in 16 bits")
    write_result("table1", table.show())

    wc_users = {n for n, r in rows.items() if r.uses_src_wildcard}
    assert wc_users == {"df_minidft", "df_minife"}
    assert not any(r.uses_tag_wildcard for r in rows.values())
    assert rows["cesar_nekbone"].n_communicators == 2
    assert rows["df_minidft"].n_communicators == 7
    assert rows["df_amg"].peers_mean == pytest.approx(79, rel=0.15)
    assert rows["exact_cns"].peers_mean == pytest.approx(72, rel=0.15)
    assert all(r.header_fits_64bit for r in rows.values())
    for app in ("df_minidft", "df_partisn", "cesar_mocfe"):
        assert rows[app].n_tags >= 256
    for app in ("df_amg", "exmatex_lulesh", "df_minife"):
        assert rows[app].n_tags < 4


@pytest.mark.parametrize("app", ["exmatex_lulesh", "df_amg",
                                 "cesar_nekbone"])
def test_perf_trace_generation(benchmark, app):
    trace = benchmark(generate_trace, app, 16, 2)
    assert len(trace) > 0


def test_perf_analyzer(benchmark):
    trace = generate_trace("exmatex_lulesh", n_ranks=27, steps=4)
    row = benchmark(analyze, trace)
    assert row.sends > 0


if __name__ == "__main__":
    test_report_table1()
