"""Shard supervision: checkpoints, crash recovery, live migration.

The serve layer's fault model so far ended at structured shedding: a
shard never fell over, so nothing admitted could be lost.  This module
adds the failure half of the story, in the same deterministic virtual
time as everything else:

* **Checkpoints.**  The supervisor snapshots the whole service
  (:func:`~repro.serve.state.snapshot_service`) every
  ``checkpoint_every`` flushes and keeps an **admission journal** -- a
  write-ahead record of every request accepted since the checkpoint,
  with its original seq and arrival time.

* **Crash recovery.**  A :class:`~repro.serve.messages.ShardCrash`
  (chaos-injected mid-flush, *after* the accumulator drained -- the
  worst case) is caught here.  Recovery is shard-granular: only the
  crashed shard rolls back to the checkpoint
  (:func:`~repro.serve.state.restore_shard`); the clock, event loop,
  other shards, and the flush ledger keep their live state.  The
  restored accumulators are then **reconciled** against the surviving
  ledger (requests a post-checkpoint flush already answered are
  discarded -- exactly-once), the journal is replayed to re-admit
  everything accepted since the checkpoint, and deadline timers are
  re-armed past any stale epochs.  Net effect: **zero admitted requests
  lost**, every admitted seq covered by exactly one flush (pinned by
  ``tests/serve/test_supervisor.py`` and the chaos suite).

* **Live migration.**  ``drain -> snapshot -> catchup -> cutover``: the
  source shard first gates the tenant (submissions get a deterministic
  ``migrating`` ticket whose retry hint *is* the cutover time -- never
  an ``overloaded`` drop), flushes its pending batch, and serializes
  the tenant through the snapshot codec; at the cutover virtual time
  the tenant is installed on the destination shard, any requests that
  reappeared at the source meanwhile (crash recovery can refill the
  accumulator) are moved across as catch-up, and placement flips.  A
  :class:`RebalancePolicy` drives migrations automatically off the
  per-tenant :class:`~repro.serve.profiler.StreamProfiler` windows --
  the hot-spot detector.

Wall-clock timing appears exactly once, in
:attr:`RecoveryReport.wall_seconds` -- a *measurement* of how long
recovery took, never an input to any decision.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass, field

import numpy as np

from ..core.envelope import EnvelopeBatch
from .loadgen import ServeWorkload
from .messages import ServeRequest, ShardCrash, Ticket
from .service import MatchingService
from .state import (dumps, export_tenant, install_tenant, loads,
                    restore_shard, snapshot_service)

__all__ = ["JournalEntry", "RecoveryReport", "MigrationPlan",
           "RebalancePolicy", "ShardSupervisor", "bump_epoch_past_stale",
           "run_supervised"]


def bump_epoch_past_stale(loop, tenant: str, acc) -> None:
    """Advance an accumulator's epoch past every ``flush`` timer armed
    for ``tenant`` in ``loop``, so stale deadline timers are skipped
    exactly (the epoch check in ``MatchingService.advance_to``).

    Shared by the in-process supervisor and the cluster worker: both
    re-install tenants into a loop that may still hold timers armed for
    the tenant's previous life (pre-crash epochs, pre-migration source
    shard), and both must neutralize them the same way.
    """
    stale = [ev.payload[1] for ev in loop._heap
             if ev.kind == "flush" and ev.payload[0] == tenant]
    if stale:
        acc.epoch = max(acc.epoch, max(stale) + 1)


@dataclass(frozen=True)
class JournalEntry:
    """One admitted request, as written ahead to the journal."""

    tenant: str
    seq: int
    arrival_vt: float
    messages: EnvelopeBatch
    requests: EnvelopeBatch


@dataclass(frozen=True)
class RecoveryReport:
    """What one crash recovery did."""

    shard_id: int
    tenant: str                    # tenant whose flush the crash hit
    crash_vt: float
    checkpoint_vt: float           # snapshot the shard rolled back to
    tenants: tuple[str, ...]       # everything restored on the shard
    replayed_requests: int         # journal entries re-admitted
    reconciled_envelopes: int      # checkpoint envelopes already answered
    wall_seconds: float            # measurement-only recovery cost


@dataclass
class MigrationPlan:
    """One live tenant migration, begin to cutover."""

    tenant: str
    from_shard: int
    to_shard: int
    started_vt: float
    cutover_vt: float
    state_bytes: bytes = b""
    catchup_requests: int = 0
    completed_vt: float | None = None


@dataclass(frozen=True)
class RebalancePolicy:
    """When the supervisor migrates a tenant off a hot shard.

    A shard is *hot* when its tenants carry more than ``hot_fraction``
    of the windowed message volume (summed per-tenant profiler
    windows).  The hottest tenant of the hot shard moves to the
    least-loaded shard -- unless it is the shard's only tenant, which
    would just relocate the hotspot.
    """

    hot_fraction: float = 0.6
    min_flushes: int = 8           # observations before judging
    cooldown_flushes: int = 16     # flushes between migrations

    def __post_init__(self) -> None:
        if not 0.0 < self.hot_fraction < 1.0:
            raise ValueError("hot_fraction must be in (0, 1)")


class ShardSupervisor:
    """Checkpointing, crash recovery, and migration for one service.

    Wrap a :class:`~repro.serve.service.MatchingService` and drive it
    through :meth:`submit` / :meth:`advance_to` / :meth:`drain` instead
    of the service's own entry points; the supervisor journals
    admissions, takes periodic checkpoints, catches
    :class:`~repro.serve.messages.ShardCrash`, and fires migration
    cutovers at their scheduled virtual times.

    Parameters
    ----------
    svc:
        The service to supervise.  An initial checkpoint is taken
        immediately (recovery is always possible).
    checkpoint_every:
        Snapshot cadence, in completed flushes.
    rebalance:
        Optional hot-spot policy; when set, :meth:`advance_to` checks
        for imbalance after firing timers and begins migrations.
    cutover_delay_vt:
        Virtual seconds between a migration's begin and its cutover
        (default: twice the batch delay -- one full drain window).
    obs:
        Optional observability handle (checkpoint/recovery/migration
        counters and instants).
    """

    def __init__(self, svc: MatchingService, checkpoint_every: int = 4,
                 rebalance: RebalancePolicy | None = None,
                 cutover_delay_vt: float | None = None, obs=None) -> None:
        if checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        self.svc = svc
        self.checkpoint_every = checkpoint_every
        self.rebalance = rebalance
        self.cutover_delay_vt = (
            cutover_delay_vt if cutover_delay_vt is not None
            else 2.0 * svc.shards[0].batching.max_delay_vt)
        self._obs = obs
        self.journal: list[JournalEntry] = []
        self.recoveries: list[RecoveryReport] = []
        self.migrations: list[MigrationPlan] = []
        self._pending_migrations: list[MigrationPlan] = []
        self.checkpoints = 0
        self.checkpoint_bytes: bytes = b""
        self.checkpoint_vt = svc.now
        self._flushes_at_checkpoint = 0
        self._last_migration_flush = -(10 ** 9)
        self.checkpoint()

    # -- checkpointing ------------------------------------------------------------

    def checkpoint(self) -> int:
        """Snapshot the service now; returns the snapshot size in bytes.

        The journal is truncated: everything it recorded is inside the
        new snapshot."""
        self.checkpoint_bytes = snapshot_service(self.svc)
        self.checkpoint_vt = self.svc.now
        self._flushes_at_checkpoint = len(self.svc.results)
        self.journal.clear()
        self.checkpoints += 1
        if self._obs is not None:
            self._obs.count("serve.checkpoints")
            self._obs.gauge("serve.checkpoint_bytes",
                            len(self.checkpoint_bytes))
        return len(self.checkpoint_bytes)

    def maybe_checkpoint(self) -> bool:
        """Checkpoint if the cadence is due (deferred mid-migration --
        a snapshot must not capture a half-moved tenant)."""
        if self._pending_migrations:
            return False
        if (len(self.svc.results) - self._flushes_at_checkpoint
                < self.checkpoint_every):
            return False
        self.checkpoint()
        return True

    # -- chaos arming -------------------------------------------------------------

    def arm_kill(self, shard_id: int, after_flushes: int = 1) -> None:
        """Arm a chaos kill: the shard raises
        :class:`~repro.serve.messages.ShardCrash` on its
        ``after_flushes``-th non-empty flush from now."""
        if after_flushes < 1:
            raise ValueError("after_flushes must be >= 1")
        shard = self.svc.shards[shard_id]
        shard.fail_at_flush = shard.flushes_done + after_flushes

    # -- driving ------------------------------------------------------------------

    def submit(self, tenant: str, messages, requests,
               at_vt: float | None = None) -> Ticket:
        """Supervised submission: journal accepted work, recover crashes."""
        svc = self.svc
        try:
            ticket = svc.submit(tenant, messages, requests, at_vt=at_vt)
        except ShardCrash as crash:
            self._recover(crash)
            # The in-flight request never got a durable ticket; if it
            # was admitted pre-crash its envelopes died with the drained
            # batch (it is not in the journal), so re-driving it now is
            # the exactly-once outcome either way.
            ticket = svc.submit(tenant, messages, requests)
        if ticket.accepted:
            self.journal.append(JournalEntry(
                tenant=tenant, seq=ticket.seq, arrival_vt=svc.now,
                messages=messages, requests=requests))
        self._fire_cutovers(svc.now)
        self.maybe_checkpoint()
        return ticket

    def advance_to(self, vt: float) -> list:
        """Supervised timer firing: recover crashes, fire due cutovers in
        virtual-time order, then rebalance and maybe checkpoint."""
        svc = self.svc
        fired: list = []
        while True:
            self._fire_cutovers(svc.now)
            due = [p for p in self._pending_migrations
                   if p.cutover_vt <= vt]
            target = max(svc.now,
                         min((p.cutover_vt for p in due), default=vt))
            try:
                fired.extend(svc.advance_to(target))
            except ShardCrash as crash:
                self._recover(crash)
                continue
            if not self._fire_cutovers(target):
                break
        if self.rebalance is not None:
            self.maybe_rebalance()
        self.maybe_checkpoint()
        return fired

    def drain(self) -> list:
        """Supervised final drain (crash-safe)."""
        try:
            return self.svc.drain()
        except ShardCrash as crash:
            self._recover(crash)
            return self.svc.drain()

    # -- crash recovery -----------------------------------------------------------

    def _recover(self, crash: ShardCrash) -> RecoveryReport:
        t_wall = time.perf_counter()
        svc = self.svc
        state = loads(self.checkpoint_bytes)
        tenants = restore_shard(svc, crash.shard_id, state)
        shard = svc.shards[crash.shard_id]
        # Reconcile: the flush ledger survived the crash, so anything a
        # post-checkpoint flush already answered must not re-match.
        covered = {seq for r in svc.results for seq in r.covered_seqs}
        reconciled = 0
        for ts in shard.tenants.values():
            reconciled += ts.accumulator.discard_covered(covered)
        # Journal catch-up: re-admit everything accepted since the
        # checkpoint (original seq and arrival time; admission already
        # passed once, so the bounded inbox is not re-consulted).
        replayed = 0
        for entry in self.journal:
            if svc._placement.get(entry.tenant) != crash.shard_id:
                continue
            if entry.seq in covered:
                continue
            shard.tenants[entry.tenant].accumulator.admit(ServeRequest(
                tenant=entry.tenant, seq=entry.seq,
                arrival_vt=entry.arrival_vt,
                messages=entry.messages, requests=entry.requests))
            replayed += 1
        # Re-arm deadline timers past any stale epochs still in the loop.
        now = svc.loop.now
        for name, ts in shard.tenants.items():
            acc = ts.accumulator
            self._bump_epoch(name, acc)
            if len(acc):
                svc.loop.schedule(max(acc.deadline_vt, now), "flush",
                                  (name, acc.epoch))
        report = RecoveryReport(
            shard_id=crash.shard_id, tenant=crash.tenant,
            crash_vt=crash.vt, checkpoint_vt=self.checkpoint_vt,
            tenants=tuple(tenants), replayed_requests=replayed,
            reconciled_envelopes=reconciled,
            wall_seconds=time.perf_counter() - t_wall)
        self.recoveries.append(report)
        if self._obs is not None:
            self._obs.count("serve.recoveries")
            self._obs.instant("serve.recovery", shard=crash.shard_id,
                              tenant=crash.tenant,
                              replayed=replayed,
                              reconciled=reconciled)
        return report

    def _bump_epoch(self, tenant: str, acc) -> None:
        """Advance an accumulator's epoch past every loop timer armed for
        ``tenant`` so stale deadline timers are skipped exactly."""
        bump_epoch_past_stale(self.svc.loop, tenant, acc)

    # -- live migration -----------------------------------------------------------

    def begin_migration(self, tenant: str, to_shard: int,
                        cutover_delay_vt: float | None = None,
                        ) -> MigrationPlan:
        """Start migrating ``tenant`` to ``to_shard``: gate, drain,
        snapshot.  The cutover fires at its scheduled virtual time from
        :meth:`advance_to` / :meth:`submit`."""
        svc = self.svc
        from_shard = svc._placement[tenant]
        if to_shard == from_shard:
            raise ValueError(f"tenant {tenant!r} is already on shard "
                             f"{to_shard}")
        if not 0 <= to_shard < len(svc.shards):
            raise ValueError(f"no shard {to_shard}")
        shard = svc.shards[from_shard]
        if tenant in shard.migrating:
            raise ValueError(f"tenant {tenant!r} is already migrating")
        now = svc.now
        delay = (cutover_delay_vt if cutover_delay_vt is not None
                 else self.cutover_delay_vt)
        cutover_vt = now + delay
        # 1. gate: from here submissions answer `migrating` with the
        #    cutover time as the retry hint.
        shard.migrating[tenant] = cutover_vt
        # 2. drain: flush the pending batch so nothing is in flight.
        try:
            result = shard.flush_tenant(tenant, now)
        except ShardCrash as crash:
            self._recover(crash)
            result = svc.shards[from_shard].flush_tenant(tenant, now)
        if result is not None:
            svc.results.append(result)
        # 3. snapshot: serialize the drained tenant through the codec --
        #    the bytes ARE the cross-shard transfer.
        blob = dumps(export_tenant(svc.shards[from_shard].tenants[tenant]))
        plan = MigrationPlan(tenant=tenant, from_shard=from_shard,
                             to_shard=to_shard, started_vt=now,
                             cutover_vt=cutover_vt, state_bytes=blob)
        self._pending_migrations.append(plan)
        self._last_migration_flush = len(svc.results)
        if self._obs is not None:
            self._obs.instant("serve.migration.begin", tenant=tenant,
                              from_shard=from_shard, to_shard=to_shard,
                              cutover_vt=cutover_vt)
        return plan

    def _fire_cutovers(self, now_vt: float) -> int:
        """Complete every pending migration whose cutover is due."""
        fired = 0
        for plan in sorted(self._pending_migrations,
                           key=lambda p: p.cutover_vt):
            if plan.cutover_vt > now_vt:
                continue
            self._cutover(plan)
            fired += 1
        return fired

    def _cutover(self, plan: MigrationPlan) -> None:
        svc = self.svc
        src = svc.shards[plan.from_shard]
        dst = svc.shards[plan.to_shard]
        ts = install_tenant(dst, loads(plan.state_bytes))
        # 4. catch-up: anything that reappeared in the source
        #    accumulator since the drain snapshot (crash recovery can
        #    refill it from the journal) moves across now.
        src_ts = src.tenants[plan.tenant]
        moved = 0
        for request in list(src_ts.accumulator.export_state()["pending"]):
            ts.accumulator.admit(request)
            moved += 1
        plan.catchup_requests = moved
        del src.tenants[plan.tenant]
        del src.migrating[plan.tenant]
        svc._placement[plan.tenant] = plan.to_shard
        # deadline timers armed on the source are stale; re-arm on the
        # destination past them.
        self._bump_epoch(plan.tenant, ts.accumulator)
        now = svc.loop.now
        if len(ts.accumulator):
            svc.loop.schedule(max(ts.accumulator.deadline_vt, now),
                              "flush", (plan.tenant, ts.accumulator.epoch))
        plan.completed_vt = now
        self._pending_migrations.remove(plan)
        self.migrations.append(plan)
        if self._obs is not None:
            self._obs.count("serve.migrations")
            self._obs.instant("serve.migration.cutover",
                              tenant=plan.tenant,
                              to_shard=plan.to_shard, catchup=moved)

    # -- hot-spot rebalancing -----------------------------------------------------

    def shard_loads(self) -> list[int]:
        """Windowed message volume per shard (profiler-derived)."""
        return [shard.windowed_volume() for shard in self.svc.shards]

    def maybe_rebalance(self) -> MigrationPlan | None:
        """Begin one migration if the rebalance policy sees a hot spot."""
        pol = self.rebalance
        svc = self.svc
        if pol is None or self._pending_migrations:
            return None
        if len(svc.shards) < 2:
            return None
        if len(svc.results) < pol.min_flushes:
            return None
        if (len(svc.results) - self._last_migration_flush
                < pol.cooldown_flushes):
            return None
        loads_ = self.shard_loads()
        total = sum(loads_)
        if total == 0:
            return None
        hot = int(np.argmax(loads_))
        if loads_[hot] <= pol.hot_fraction * total:
            return None
        hot_shard = svc.shards[hot]
        if len(hot_shard.tenants) < 2:
            return None   # moving the only tenant just moves the hotspot
        cold = int(np.argmin(loads_))
        if cold == hot:
            return None
        mover = max(hot_shard.tenants,
                    key=lambda n: (hot_shard.tenants[n]
                                   .profiler.profile().n_messages, n))
        return self.begin_migration(mover, cold)


# ---------------------------------------------------------------------------
# Supervised open-loop harness
# ---------------------------------------------------------------------------

@dataclass
class SupervisedRun:
    """Outcome of :func:`run_supervised`."""

    supervisor: ShardSupervisor
    wall_seconds: float
    transport_dropped: int = 0
    retries: int = 0
    gave_up: int = 0
    tickets: list[Ticket] = field(default_factory=list)


def run_supervised(workload: ServeWorkload, *,
                   supervisor: ShardSupervisor | None = None,
                   svc: MatchingService | None = None,
                   n_shards: int = 2, seed: int = 0,
                   checkpoint_every: int = 4,
                   rebalance: RebalancePolicy | None = None,
                   kill_shard: int | None = None,
                   kill_after_flushes: int = 2,
                   drop_fraction: float = 0.0, drop_seed: int = 1,
                   max_retries: int = 16, obs=None) -> SupervisedRun:
    """Drive a workload through a supervisor with chaos knobs.

    ``drop_fraction`` simulates lossy transport: each arrival is dropped
    before submission with that probability, from a **separate** seeded
    generator (``drop_seed``) so transport chaos never perturbs the
    service's own random stream.  ``retryable``/``migrating`` tickets
    are honoured client-side: the request re-enters the arrival queue at
    its hinted virtual time, up to ``max_retries`` times.
    ``kill_shard`` arms one chaos kill after ``kill_after_flushes``
    non-empty flushes.
    """
    if not 0.0 <= drop_fraction < 1.0:
        raise ValueError("drop_fraction must be in [0, 1)")
    if svc is None and supervisor is not None:
        svc = supervisor.svc
    if svc is None:
        svc = MatchingService(n_shards=n_shards, seed=seed, obs=obs)
    if supervisor is None:
        for spec in workload.tenants:
            svc.register(spec)
        supervisor = ShardSupervisor(svc, checkpoint_every=checkpoint_every,
                                     rebalance=rebalance, obs=obs)
    if kill_shard is not None:
        supervisor.arm_kill(kill_shard, after_flushes=kill_after_flushes)
    drop_rng = np.random.default_rng(drop_seed)
    # (vt, order, attempt, arrival) -- a client-side retry re-enters at
    # its hinted time with a fresh order key (deterministic tie-break).
    queue: list[tuple[float, int, int, object]] = []
    order = 0
    for arrival in workload.arrivals:
        queue.append((arrival.vt, order, 0, arrival))
        order += 1
    heapq.heapify(queue)
    run = SupervisedRun(supervisor=supervisor, wall_seconds=0.0)
    t0 = time.perf_counter()
    while queue:
        vt, _, attempt, arrival = heapq.heappop(queue)
        if drop_fraction and attempt == 0 \
                and drop_rng.random() < drop_fraction:
            run.transport_dropped += 1
            continue
        ticket = supervisor.submit(arrival.tenant, arrival.messages,
                                   arrival.requests, at_vt=vt)
        run.tickets.append(ticket)
        if ticket.retry_hinted:
            if attempt + 1 > max_retries:
                run.gave_up += 1
                continue
            run.retries += 1
            retry_vt = (ticket.retry_after_vt
                        if ticket.retry_after_vt is not None
                        else svc.now + svc.shards[0].batching.max_delay_vt)
            retry_vt = max(retry_vt, svc.now)
            heapq.heappush(queue, (retry_vt, order, attempt + 1, arrival))
            order += 1
    if workload.arrivals:
        supervisor.advance_to(svc.now
                              + 2.0 * svc.shards[0].batching.max_delay_vt)
    supervisor.drain()
    run.wall_seconds = time.perf_counter() - t0
    return run
