#!/usr/bin/env python
"""LULESH-style halo exchange on a cluster of simulated GPUs.

The workload class the paper's intro motivates: a bulk-synchronous
stencil code whose ranks exchange ghost zones with their 3-D Moore
neighborhood every timestep.  Each rank is a simulated GPU whose
communication kernel matches envelopes with the configured relaxation
set; the example runs the same computation under full MPI semantics and
under the relaxed (pre-posted, no-wildcard) configuration and compares
the simulated matching time.

The "computation" is a 3-D Jacobi relaxation on a small per-rank block,
so the numerics are verifiable: after every exchange the halos must
equal the neighbor's boundary planes.

Run:  python examples/halo_exchange.py
"""

from __future__ import annotations

import numpy as np

from repro import GPU, RelaxationSet
from repro.mpi import Cluster, barrier, Communicator
from repro.traces.apps.base import grid_dims

BLOCK = 8          # interior cells per rank per dimension
STEPS = 4          # timesteps
FACE_TAGS = {"x-": 0, "x+": 1, "y-": 2, "y+": 3, "z-": 4, "z+": 5}
_OPPOSITE = {"x-": "x+", "x+": "x-", "y-": "y+", "y+": "y-",
             "z-": "z+", "z+": "z-"}


class RankDomain:
    """One rank's block of the global domain, with ghost layers."""

    def __init__(self, rank: int, coords: tuple, dims: tuple,
                 rng: np.random.Generator) -> None:
        self.rank = rank
        self.coords = coords
        self.dims = dims
        self.grid = np.zeros((BLOCK + 2,) * 3)
        self.grid[1:-1, 1:-1, 1:-1] = rng.random((BLOCK,) * 3)

    def neighbor(self, face: str) -> int | None:
        """Cluster rank owning the adjacent block, or None at the edge."""
        axis = "xyz".index(face[0])
        step = -1 if face[1] == "-" else 1
        c = list(self.coords)
        c[axis] += step
        if not 0 <= c[axis] < self.dims[axis]:
            return None
        return int(np.ravel_multi_index(c, self.dims))

    def boundary_plane(self, face: str) -> np.ndarray:
        """Interior plane to ship to the neighbor at ``face``."""
        axis = "xyz".index(face[0])
        idx = [slice(1, -1)] * 3
        idx[axis] = 1 if face[1] == "-" else BLOCK
        return self.grid[tuple(idx)].copy()

    def set_ghost(self, face: str, plane: np.ndarray) -> None:
        """Install a received plane into the ghost layer at ``face``."""
        axis = "xyz".index(face[0])
        idx = [slice(1, -1)] * 3
        idx[axis] = 0 if face[1] == "-" else BLOCK + 1
        self.grid[tuple(idx)] = plane

    def jacobi_step(self) -> None:
        """One 7-point Jacobi sweep over the interior."""
        g = self.grid
        interior = (g[:-2, 1:-1, 1:-1] + g[2:, 1:-1, 1:-1]
                    + g[1:-1, :-2, 1:-1] + g[1:-1, 2:, 1:-1]
                    + g[1:-1, 1:-1, :-2] + g[1:-1, 1:-1, 2:]) / 6.0
        g[1:-1, 1:-1, 1:-1] = interior


def run(relaxations: RelaxationSet, n_ranks: int = 27,
        label: str = "") -> float:
    """Run STEPS supersteps; returns total simulated matching seconds."""
    dims = grid_dims(n_ranks, 3)
    cluster = Cluster(n_ranks, gpu=GPU.pascal_gtx1080(),
                      relaxations=relaxations, n_queues=8)
    comm = Communicator(cluster)
    rng = np.random.default_rng(11)
    domains = [RankDomain(r, tuple(np.unravel_index(r, dims)), dims, rng)
               for r in range(n_ranks)]

    for _step in range(STEPS):
        # BSP superstep: post all receives first (the pre-posting the
        # relaxed configuration requires), then send all faces.
        pending = []
        for dom in domains:
            for face, tag in FACE_TAGS.items():
                nbr = dom.neighbor(face)
                if nbr is not None:
                    req = cluster.rank(dom.rank).irecv(src=nbr, tag=tag)
                    pending.append((dom, face, req))
        for dom in domains:
            for face, tag in FACE_TAGS.items():
                nbr = dom.neighbor(face)
                if nbr is not None:
                    # the neighbor receives this plane on its mirror face
                    mirror_tag = FACE_TAGS[_OPPOSITE[face]]
                    cluster.rank(dom.rank).isend(
                        nbr, dom.boundary_plane(face), tag=mirror_tag)
        for dom, face, req in pending:
            plane = req.wait()
            expected = domains[dom.neighbor(face)].boundary_plane(
                _OPPOSITE[face])
            assert np.allclose(plane, expected), "halo corruption"
            dom.set_ghost(face, plane)
        barrier(comm)
        for dom in domains:
            dom.jacobi_step()

    stats = cluster.stats()
    total_msgs = sum(s["matches"] for s in stats)
    print(f"{label:28s} matched {total_msgs:5d} messages, simulated "
          f"matching time {cluster.match_seconds * 1e6:8.1f} us, "
          f"max UMQ depth {max(s['umq_max'] for s in stats)}")
    return cluster.match_seconds


def main() -> None:
    print(f"3-D Jacobi halo exchange, {STEPS} supersteps, 27 ranks "
          f"(3x3x3 blocks of {BLOCK}^3 cells)\n")
    t_mpi = run(RelaxationSet(), label="full MPI semantics")
    t_part = run(RelaxationSet(wildcards=False, unexpected=False),
                 label="pre-posted, partitioned")
    t_hash = run(RelaxationSet(wildcards=False, ordering=False,
                               unexpected=False),
                 label="unordered (hash)")
    print(f"\nmatching-time speedup from relaxations: "
          f"partitioned {t_mpi / t_part:.1f}x, hash {t_mpi / t_hash:.1f}x")
    print("(a halo code needs no wildcards and pre-posts its receives, so "
          "the relaxations cost it nothing semantically -- the paper's "
          "Section VII-B argument.  Note the partitioned configuration "
          "only pays off on deep queues, cf. Figure 5: this exchange's "
          "queues are a handful of entries, so its coordination overhead "
          "can even lose to the single queue, while the hash path wins "
          "outright.)")


if __name__ == "__main__":
    main()
