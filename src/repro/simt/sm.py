"""Cycle-level SM warp scheduler: the timing model's validator.

The analytic :class:`~repro.simt.timing.TimingModel` prices phases with a
closed-form throughput argument (issue-bound vs latency-bound, stalls
hidden proportionally to active warps).  This module provides the
corresponding *discrete-event* model: warps hold instruction streams, a
configurable number of schedulers issue one instruction per cycle each,
memory instructions stall their warp for the device latency, and barriers
block until every warp arrives.

It exists to keep the closed form honest: the validation tests and the
EXT6 bench run the same instruction mixes through both models and check
that the analytic prediction tracks the scheduled cycle count across the
issue-bound, latency-bound, and transition regimes.

Two scheduling policies are provided:

* ``"gto"`` -- greedy-then-oldest: stick with the same warp until it
  stalls (NVIDIA's documented behaviour since Fermi-class parts);
* ``"rr"`` -- round-robin across ready warps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from .gpu import GPUSpec, PASCAL_GTX1080
from .timing import SYNC_OVERHEAD_CYCLES

__all__ = ["WarpStream", "ScheduleResult", "SMScheduler", "streams_from_mix"]

#: Instruction kinds that stall the issuing warp for a device latency.
_LATENCY_OF = {
    "smem_load": lambda s: s.smem_latency,
    "smem_store": lambda s: s.smem_latency * 0.5,
    "gmem_load": lambda s: s.gmem_latency,
    "gmem_store": lambda s: s.gmem_latency * 0.4,
    "atomic": lambda s: s.gmem_latency * 1.5,
}

#: Barrier marker kind inside a stream.
BARRIER = "sync"


@dataclass
class WarpStream:
    """One warp's instruction stream (a list of ledger-style kinds)."""

    warp_id: int
    instructions: list[str]
    pos: int = 0

    @property
    def done(self) -> bool:
        return self.pos >= len(self.instructions)

    @property
    def next_kind(self) -> str:
        return self.instructions[self.pos]


@dataclass
class ScheduleResult:
    """Outcome of a scheduled execution."""

    cycles: int
    issued: int
    stall_cycles: int
    idle_issue_slots: int
    per_warp_finish: dict

    @property
    def ipc(self) -> float:
        """Issued warp-instructions per cycle."""
        return self.issued / self.cycles if self.cycles else 0.0


class SMScheduler:
    """Discrete-event execution of warp streams on one SM.

    Parameters
    ----------
    spec:
        Device parameters (scheduler count, latencies, issue costs).
    policy:
        ``"gto"`` (greedy-then-oldest) or ``"rr"`` (round-robin).
    sanitize:
        Optional :class:`~repro.simt.sanitize.Sanitizer`; ``None`` falls
        back to ``spec.sanitize``.  When attached, a stream that finishes
        while its siblings wait at a barrier (a barrier-count mismatch the
        scheduler tolerates but real hardware would hang on) is reported
        to synccheck.
    """

    def __init__(self, spec: GPUSpec = PASCAL_GTX1080,
                 policy: str = "gto", obs=None, sanitize=None) -> None:
        if policy not in ("gto", "rr"):
            raise ValueError("policy must be 'gto' or 'rr'")
        self.spec = spec
        self.policy = policy
        self._obs = obs
        self._san = sanitize if sanitize is not None else spec.sanitize

    def run(self, streams: Sequence[WarpStream],
            max_cycles: int = 50_000_000) -> ScheduleResult:
        """Execute the streams to completion; returns cycle statistics."""
        streams = list(streams)
        if not streams:
            return ScheduleResult(cycles=0, issued=0, stall_cycles=0,
                                  idle_issue_slots=0, per_warp_finish={})
        n = len(streams)
        ready_at = [0.0] * n          # cycle at which the warp may issue
        at_barrier = [False] * n
        finish = {}
        issued = 0
        stall_cycles = 0
        idle_slots = 0
        last_issued: int | None = None
        cycle = 0
        barriers_released = 0
        spec = self.spec

        def runnable(i: int, now: float) -> bool:
            return (not streams[i].done and not at_barrier[i]
                    and ready_at[i] <= now)

        while any(not s.done for s in streams):
            if cycle > max_cycles:
                raise RuntimeError("scheduled execution exceeded max_cycles")
            # barrier release: everyone not-done is waiting (or done)
            waiting = [i for i in range(n) if at_barrier[i]]
            if waiting and all(streams[i].done or at_barrier[i]
                               for i in range(n)):
                barriers_released += 1
                if self._san is not None:
                    # Real hardware hangs when a warp retires without
                    # arriving; the scheduler releases the barrier anyway
                    # (a relaxation) and reports the mismatch.
                    done_now = [streams[i].warp_id for i in range(n)
                                if streams[i].done]
                    if done_now:
                        self._san.scheduler_barrier_mismatch(
                            done_now, barriers_released)
                release_at = cycle + SYNC_OVERHEAD_CYCLES
                for i in waiting:
                    at_barrier[i] = False
                    streams[i].pos += 1
                    ready_at[i] = release_at
            slots = spec.schedulers_per_sm
            candidates = [i for i in range(n) if runnable(i, cycle)]
            if not candidates:
                # jump to the next interesting cycle instead of ticking
                future = [ready_at[i] for i in range(n)
                          if not streams[i].done and not at_barrier[i]]
                if future:
                    nxt = max(cycle + 1, int(min(future)))
                    stall_cycles += nxt - cycle
                    cycle = nxt
                    continue
                cycle += 1
                continue
            if self.policy == "gto" and last_issued in candidates:
                # greedy: put the last-issued warp first
                candidates.remove(last_issued)
                candidates.insert(0, last_issued)
            for i in candidates[:slots]:
                stream = streams[i]
                kind = stream.next_kind
                if kind == BARRIER:
                    at_barrier[i] = True
                    continue
                issue_cost = spec.issue_cost(kind)
                latency_fn = _LATENCY_OF.get(kind)
                stall = latency_fn(spec) if latency_fn else 0.0
                ready_at[i] = cycle + max(issue_cost, 1.0) + stall
                stream.pos += 1
                issued += 1
                last_issued = i
                if stream.done:
                    finish[i] = cycle
            idle_slots += max(0, slots - min(slots, len(candidates)))
            cycle += 1
        result = ScheduleResult(cycles=cycle, issued=issued,
                                stall_cycles=stall_cycles,
                                idle_issue_slots=idle_slots,
                                per_warp_finish=finish)
        if self._obs is not None:
            self._obs.count("sm.scheduled_instructions", float(issued))
            self._obs.count("sm.stall_cycles", float(stall_cycles))
            self._obs.span("sm.schedule", cycle / spec.clock_hz,
                           cycles=cycle, issued=issued, policy=self.policy,
                           n_warps=n)
        return result


def streams_from_mix(n_warps: int, mix: Iterable[tuple[str, int]],
                     ) -> list[WarpStream]:
    """Build identical per-warp streams from a (kind, count) mix.

    Counts are per warp; kinds are interleaved round-robin so memory
    operations spread through the stream (the favourable layout both
    models assume).
    """
    kinds = []
    remaining = {k: c for k, c in mix}
    while any(v > 0 for v in remaining.values()):
        for k in list(remaining):
            if remaining[k] > 0:
                kinds.append(k)
                remaining[k] -= 1
    return [WarpStream(warp_id=w, instructions=list(kinds))
            for w in range(n_warps)]
