"""Serve-layer chaos: kill/recover/migrate under lossy transport.

Runs outside the tier-1 gate (marked ``chaos``; deselected by default
via ``addopts``).  CI runs it with three fixed seeds; locally:

    PYTHONPATH=src python -m pytest tests/chaos -m chaos -q

Seeds come from ``CHAOS_SEEDS`` (comma-separated), matching the MPI
chaos suite's matrix.

The invariants are the acceptance criteria of the serve fault-tolerance
subsystem: under 10% transport drop, a chaos-killed shard recovers from
checkpoint + journal with **zero admitted requests lost and none matched
twice**; a live migration under the same conditions sheds only
deterministic ``migrating``-hinted retries (never ``overloaded``
drops); and the whole supervised run -- kills, recoveries, migrations,
retries -- replays bit-identically for a fixed seed.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.serve import (MIGRATING, BatchPolicy, MatchingService,
                         RebalancePolicy, ShardSupervisor, merge_workloads,
                         run_supervised, workload_from_app)

pytestmark = pytest.mark.chaos

SEEDS = [int(s) for s in os.environ.get("CHAOS_SEEDS", "11,23,47").split(",")]

DROP_FRACTION = 0.1


def chaos_workload(seed: int):
    parts = [workload_from_app("df_minife", rate_rps=4000.0, n_ranks=8,
                               steps=3, chunk_envelopes=64, seed=seed,
                               session=True),
             workload_from_app("df_amg", rate_rps=4000.0, n_ranks=8,
                               steps=3, chunk_envelopes=64, seed=seed + 1,
                               ordering_required=False, session=True)]
    return merge_workloads("chaos", parts)


def chaos_service(workload, seed: int):
    svc = MatchingService(n_shards=2, seed=seed,
                          batching=BatchPolicy(max_envelopes=64,
                                               max_delay_vt=0.001))
    for spec in workload.tenants:
        svc.register(spec)
    return svc


def busiest_shard(svc, workload) -> int:
    counts: dict[str, int] = {}
    for arrival in workload.arrivals:
        counts[arrival.tenant] = counts.get(arrival.tenant, 0) + 1
    return svc._placement[max(counts, key=lambda n: (counts[n], n))]


def assert_exactly_once(svc) -> None:
    accepted = {t.seq for t in svc.tickets if t.accepted}
    covered = [s for r in svc.results for s in r.covered_seqs]
    assert len(covered) == len(set(covered)), "a request matched twice"
    assert set(covered) == accepted, "admitted requests lost"


@pytest.mark.parametrize("seed", SEEDS)
def test_kill_recover_under_transport_drop(seed):
    """A chaos-killed shard under 10% drop recovers with zero loss."""
    workload = chaos_workload(seed)
    svc = chaos_service(workload, seed)
    sup = ShardSupervisor(svc, checkpoint_every=2)
    run = run_supervised(workload, supervisor=sup,
                         kill_shard=busiest_shard(svc, workload),
                         kill_after_flushes=2,
                         drop_fraction=DROP_FRACTION, drop_seed=seed + 100)
    assert sup.recoveries, "the armed kill never fired"
    assert run.transport_dropped >= 0    # drops are seed-dependent
    assert_exactly_once(svc)
    for report in sup.recoveries:
        assert report.wall_seconds > 0.0
        assert report.crash_vt >= report.checkpoint_vt


@pytest.mark.parametrize("seed", SEEDS)
def test_migrate_under_transport_drop(seed):
    """A live migration under drop sheds only ``migrating``-hinted
    retries; carried session state survives the move."""
    workload = chaos_workload(seed)
    svc = chaos_service(workload, seed)
    sup = ShardSupervisor(svc, checkpoint_every=4)
    drop_rng = np.random.default_rng(seed + 200)
    mover = max(workload.tenants,
                key=lambda s: sum(a.tenant == s.name
                                  for a in workload.arrivals)).name
    src = svc._placement[mover]
    dst = (src + 1) % 2
    trigger = len(workload.arrivals) // 3
    plan = None
    deferred = []
    for i, arrival in enumerate(workload.arrivals):
        if i == trigger:
            plan = sup.begin_migration(mover, dst)
        if drop_rng.random() < DROP_FRACTION:
            continue                                  # lossy transport
        ticket = sup.submit(arrival.tenant, arrival.messages,
                            arrival.requests, at_vt=arrival.vt)
        if ticket.status == MIGRATING:
            assert arrival.tenant == mover
            assert ticket.retry_after_vt == plan.cutover_vt
            deferred.append(arrival)
        else:
            assert ticket.status != "overloaded"
    assert plan is not None
    sup.advance_to(plan.cutover_vt + 0.01)
    assert svc._placement[mover] == dst
    for arrival in deferred:                          # hinted retries land
        assert sup.submit(arrival.tenant, arrival.messages,
                          arrival.requests).accepted
    sup.drain()
    assert_exactly_once(svc)
    assert svc.shed_counts["overloaded"] == 0
    assert sup.migrations == [plan]


@pytest.mark.parametrize("seed", SEEDS)
def test_chaos_run_replays_bit_identically(seed):
    """Kill + rebalance + drop, run twice with the same seed: every
    ticket, flush, and recovery must be identical -- chaos is inside
    the deterministic replay envelope."""
    def fingerprint():
        workload = chaos_workload(seed)
        svc = chaos_service(workload, seed)
        sup = ShardSupervisor(
            svc, checkpoint_every=2,
            rebalance=RebalancePolicy(hot_fraction=0.5, min_flushes=2,
                                      cooldown_flushes=2))
        run = run_supervised(workload, supervisor=sup,
                             kill_shard=busiest_shard(svc, workload),
                             kill_after_flushes=2,
                             drop_fraction=DROP_FRACTION,
                             drop_seed=seed + 300)
        assert_exactly_once(svc)
        return {
            "tickets": [(t.status, t.seq, t.retry_after_vt)
                        for t in svc.tickets],
            "results": [(r.tenant, r.flush_seq, r.flush_vt, r.covered_seqs,
                         r.outcome.request_to_message.tolist())
                        for r in svc.results],
            "recoveries": [(r.shard_id, r.tenant, r.crash_vt,
                            r.replayed_requests, r.reconciled_envelopes)
                           for r in sup.recoveries],
            "migrations": [(p.tenant, p.from_shard, p.to_shard,
                            p.cutover_vt) for p in sup.migrations],
            "dropped": run.transport_dropped,
            "retries": run.retries,
        }
    first, second = fingerprint(), fingerprint()
    assert first == second
    assert first["recoveries"], "the armed kill never fired"
