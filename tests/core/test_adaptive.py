"""Adaptive (dynamic-parallelism) matcher tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.adaptive import (AdaptiveMatcher, MatchPlan,
                                 RELAUNCH_OVERHEAD_CYCLES)
from repro.core.envelope import ANY_SOURCE, EnvelopeBatch
from repro.core.matrix_matching import MatrixMatcher
from repro.core.partitioned import PartitionedMatcher
from repro.core.verify import check_mpi_ordering
from tests.conftest import permuted_pair, with_wildcards


class TestPlanning:
    def test_wildcards_force_single_matrix(self, rng):
        msgs, reqs = permuted_pair(rng, 2048, n_ranks=64)
        reqs = with_wildcards(rng, reqs, p_src=0.2, p_tag=0.0)
        plan = AdaptiveMatcher().plan(msgs, reqs)
        assert plan.structure == "matrix"
        assert plan.n_queues == 1

    def test_small_queue_stays_single(self, rng):
        msgs, reqs = permuted_pair(rng, 48, n_ranks=64)
        plan = AdaptiveMatcher().plan(msgs, reqs)
        assert plan.structure == "matrix"

    def test_deep_queue_partitions(self, rng):
        msgs, reqs = permuted_pair(rng, 4096, n_ranks=64)
        plan = AdaptiveMatcher().plan(msgs, reqs)
        assert plan.structure == "partitioned"
        assert plan.n_queues == 32  # min(max_queues=32, 64 srcs, 4096/32)

    def test_queue_count_bounded_by_sources(self):
        # 4096 messages but only 3 distinct sources
        msgs = EnvelopeBatch(src=np.arange(4096) % 3,
                             tag=np.arange(4096) % 7)
        reqs = msgs
        plan = AdaptiveMatcher().plan(msgs, reqs)
        assert plan.n_queues <= 3

    def test_queue_count_bounded_by_max(self, rng):
        msgs, reqs = permuted_pair(rng, 40960, n_ranks=256, n_tags=4)
        plan = AdaptiveMatcher(max_queues=16).plan(msgs, reqs)
        assert plan.n_queues == 16

    def test_narrow_warps_for_shallow_queues(self):
        assert AdaptiveMatcher._pick_warp_size(8) < 32
        assert AdaptiveMatcher._pick_warp_size(512) == 32
        assert AdaptiveMatcher._pick_warp_size(1) >= 4

    def test_plan_describe(self):
        assert MatchPlan("matrix", 1, 32).describe() == "matrix/w32"
        assert "q8" in MatchPlan("partitioned", 8, 16).describe()


class TestMatching:
    def test_correct_under_mpi_semantics(self, rng):
        for n in (64, 600, 3000):
            msgs, reqs = permuted_pair(rng, n, n_ranks=32, n_tags=8)
            out = AdaptiveMatcher().match(msgs, reqs)
            check_mpi_ordering(msgs, reqs, out)

    def test_wildcard_workload_correct(self, rng):
        msgs, reqs = permuted_pair(rng, 500, n_ranks=16, n_tags=4)
        reqs = with_wildcards(rng, reqs)
        out = AdaptiveMatcher().match(msgs, reqs)
        check_mpi_ordering(msgs, reqs, out)
        assert out.meta["plan"].startswith("matrix")

    def test_beats_fixed_matrix_on_deep_queues(self, rng):
        msgs, reqs = permuted_pair(rng, 8192, n_ranks=64, n_tags=8)
        adaptive = AdaptiveMatcher().match(msgs, reqs)
        fixed = MatrixMatcher().match(msgs, reqs)
        assert adaptive.matches_per_second() > 3 * fixed.matches_per_second()

    def test_beats_fixed_partitioning_on_tiny_workloads(self, rng):
        """A fixed 32-queue launch wastes coordination on a 48-entry
        workload; the planner stays single-queue."""
        msgs, reqs = permuted_pair(rng, 48, n_ranks=64, n_tags=8)
        adaptive = AdaptiveMatcher().match(msgs, reqs)
        fixed = PartitionedMatcher(n_queues=32).match(msgs, reqs)
        assert adaptive.matches_per_second() > fixed.matches_per_second()

    def test_relaunch_overhead_charged_on_config_change(self, rng):
        m = AdaptiveMatcher()
        small = permuted_pair(rng, 50, n_ranks=16)
        big = permuted_pair(rng, 4000, n_ranks=64)
        m.match(*small)
        assert m.relaunches == 0
        out = m.match(*big)          # config changed -> relaunch
        assert m.relaunches == 1
        assert out.cycles > RELAUNCH_OVERHEAD_CYCLES
        m.match(*big)                # same shape -> no new relaunch
        assert m.relaunches == 1

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            AdaptiveMatcher(max_queues=0)


class TestRetuneHysteresis:
    """The planner must not churn configurations on a stable workload,
    and each genuine configuration change costs exactly one relaunch."""

    def test_no_replan_churn_on_stable_workload(self, rng):
        m = AdaptiveMatcher()
        msgs, reqs = permuted_pair(rng, 4000, n_ranks=64)
        plans = set()
        for _ in range(10):
            out = m.match(msgs, reqs)
            plans.add(out.meta["plan"])
        assert len(plans) == 1
        assert m.relaunches == 0

    def test_statistically_stable_workload_does_not_relaunch(self, rng):
        """Fresh same-shaped batches (not the identical arrays) land on
        the same plan: the policy keys on queue statistics, not object
        identity."""
        m = AdaptiveMatcher()
        for _ in range(6):
            msgs, reqs = permuted_pair(rng, 4000, n_ranks=64)
            m.match(msgs, reqs)
        assert m.relaunches == 0

    def test_relaunch_charged_exactly_once_per_change(self, rng):
        m = AdaptiveMatcher()
        small = permuted_pair(rng, 50, n_ranks=16)
        big = permuted_pair(rng, 4000, n_ranks=64)
        m.match(*small)
        changed = m.match(*big)                    # one config change
        baseline = AdaptiveMatcher().match(*big)   # same plan, no change
        assert changed.meta["plan"] == baseline.meta["plan"]
        assert changed.cycles == pytest.approx(
            baseline.cycles + RELAUNCH_OVERHEAD_CYCLES)
        assert changed.meta["relaunches"] == 1
        # flapping charges once per flip, never more
        m.match(*small)
        m.match(*small)
        assert m.relaunches == 2

    def test_relaunch_adds_device_seconds_too(self, rng):
        from repro.core.adaptive import relaunch_seconds
        m = AdaptiveMatcher()
        small = permuted_pair(rng, 50, n_ranks=16)
        big = permuted_pair(rng, 4000, n_ranks=64)
        m.match(*small)
        changed = m.match(*big)
        baseline = AdaptiveMatcher().match(*big)
        assert changed.seconds == pytest.approx(
            baseline.seconds + relaunch_seconds(m.spec))
