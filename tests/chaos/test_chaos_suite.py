"""Chaos suite: randomized traffic over a maximally hostile link.

Runs outside the tier-1 gate (marked ``chaos``; deselected by default
via ``addopts``).  CI runs it with three fixed seeds; locally:

    PYTHONPATH=src python -m pytest tests/chaos -m chaos -q

Seeds come from ``CHAOS_SEEDS`` (comma-separated) so the CI matrix can
pin one seed per job; the default covers all three.

The invariants checked here are the acceptance criteria of the
fault-tolerance subsystem: under drop rates up to 10% plus duplication,
reordering, delay, and corruption, every eager and rendezvous message is
delivered exactly once, the per-pair order observed by the matcher is
MPI's non-overtaking order, and the full match result equals the
fault-free run's result.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.mpi import Cluster, chaos_plan

pytestmark = pytest.mark.chaos

SEEDS = [int(s) for s in os.environ.get("CHAOS_SEEDS", "11,23,47").split(",")]

N_RANKS = 4
N_MSGS = 200  # per directed pair that carries traffic


def random_workload(seed: int, n_ranks: int = N_RANKS, n_msgs: int = N_MSGS):
    """Random (src, dst, tag, payload) traffic; the receive multiset
    matches the send multiset so every message finds a request.

    A quarter of the payloads exceed the eager limit, exercising the
    rendezvous protocol (match first, fetch after) under faults.
    """
    rng = np.random.default_rng(seed)
    sends = []
    for i in range(n_msgs):
        src, dst = rng.choice(n_ranks, size=2, replace=False)
        tag = int(rng.integers(0, 4))
        if i % 4 == 0:
            payload = np.full(2048, i, dtype=np.int64)  # 16 KiB: rendezvous
        else:
            payload = (int(src), i)
        sends.append((int(src), int(dst), tag, payload))
    return sends


def run_cluster(sends, fault_seed=None, **cluster_kwargs):
    """Drive one cluster through the workload; returns, per
    (src, dst, tag) channel, the payload sequence the receives observed
    (MPI non-overtaking order per channel)."""
    plan = None
    if fault_seed is not None:
        plan = chaos_plan(seed=fault_seed, drop=0.10, duplicate=0.04,
                          delay=0.04, reorder=0.04, corrupt=0.02)
    c = Cluster(N_RANKS, fault_plan=plan, **cluster_kwargs)
    reqs = []
    for src, dst, tag, _payload in sends:
        reqs.append(((src, dst, tag), c.rank(dst).irecv(src=src, tag=tag)))
    for src, dst, tag, payload in sends:
        c.rank(src).isend(dst, payload, tag=tag)
    c.drain(max_rounds=100_000)
    observed: dict[tuple, list] = {}
    for key, req in reqs:
        assert req.test(), f"receive on channel {key} never completed"
        observed.setdefault(key, []).append(req.wait())
    return c, plan, observed


def canonical(observed):
    """Comparable form (numpy payloads -> tuples), channel-ordered."""
    out = {}
    for key, payloads in observed.items():
        out[key] = [tuple(p.tolist()) if isinstance(p, np.ndarray) else p
                    for p in payloads]
    return out


@pytest.mark.parametrize("seed", SEEDS)
class TestChaos:
    def test_exactly_once_in_order_and_equal_to_fault_free(self, seed):
        sends = random_workload(seed)
        _, plan, faulty = run_cluster(sends, fault_seed=seed)
        _, _, clean = run_cluster(sends)
        # the hostile link actually was hostile
        assert plan.ledger.count("drop") > 0
        assert plan.ledger.count("retransmit") > 0
        # exactly once: each channel saw exactly its sent payloads,
        # in-order: per-channel sequences equal the fault-free run's
        assert canonical(faulty) == canonical(clean)

    def test_replay_is_deterministic(self, seed):
        sends = random_workload(seed)
        c1, plan1, obs1 = run_cluster(sends, fault_seed=seed)
        c2, plan2, obs2 = run_cluster(sends, fault_seed=seed)
        assert plan1.ledger.signature() == plan2.ledger.signature()
        assert canonical(obs1) == canonical(obs2)
        assert c1.network.transfer_seconds_total == pytest.approx(
            c2.network.transfer_seconds_total)

    def test_chaos_through_flow_control(self, seed):
        """Faults + capacity-4 ingress rings + spill policy together."""
        sends = random_workload(seed, n_msgs=80)
        _, _, faulty = run_cluster(sends, fault_seed=seed, ring_capacity=4,
                                   ring_policy="spill")
        _, _, clean = run_cluster(sends)
        assert canonical(faulty) == canonical(clean)

    def test_recovery_cost_is_accounted(self, seed):
        sends = random_workload(seed, n_msgs=60)
        c_faulty, _, _ = run_cluster(sends, fault_seed=seed)
        c_clean, _, _ = run_cluster(sends)
        # retransmissions and acks make the faulty run strictly more
        # expensive in modeled wire time -- recovery is never free
        assert (c_faulty.network.transfer_seconds_total
                > c_clean.network.transfer_seconds_total)
