"""Human-readable summaries of an observed run.

``repro.obs.report`` turns an :class:`~repro.obs.Observability` handle
into the "where did the cycles go" answer: a tracer digest (event counts,
simulated span time by event name) plus the metrics table.  Used by
``benchmarks/bench_host_perf.py --trace-out`` after a traced sweep.
"""

from __future__ import annotations

from . import Observability
from .tracer import Tracer

__all__ = ["span_time_by_name", "render_tracer_summary", "summary"]


def span_time_by_name(tracer: Tracer) -> dict[str, tuple[int, float]]:
    """``{span name: (count, total simulated seconds)}``, instants excluded."""
    acc: dict[str, tuple[int, float]] = {}
    for ev in tracer.events:
        if ev.get("ph") != "X":
            continue
        count, total = acc.get(ev["name"], (0, 0.0))
        acc[ev["name"]] = (count + 1, total + ev.get("dur", 0.0) * 1e-6)
    return acc

def render_tracer_summary(tracer: Tracer) -> str:
    """Span-time digest, heaviest names first."""
    lines = [f"trace: {tracer.n_events} events "
             f"({tracer.dropped} dropped), simulated span clock "
             f"{tracer.now * 1e6:.1f} us"]
    spans = sorted(span_time_by_name(tracer).items(),
                   key=lambda kv: kv[1][1], reverse=True)
    if spans:
        lines.append("span                                      count  sim time")
        lines.append("-" * 60)
        for name, (count, seconds) in spans:
            lines.append(f"{name:<40}  {count:>5}  {seconds * 1e6:10.1f} us")
    return "\n".join(lines)


def summary(obs: Observability) -> str:
    """Full report: tracer digest + metrics table (whatever is attached)."""
    parts = []
    if obs.tracer is not None:
        parts.append(render_tracer_summary(obs.tracer))
    if obs.metrics is not None:
        parts.append(obs.metrics.render_table())
    if not parts:
        return "(observability disabled: no tracer or registry attached)"
    return "\n\n".join(parts)
