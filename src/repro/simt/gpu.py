"""GPU device descriptors for the three generations the paper evaluates.

The paper (Section II-C, footnotes 1-3) runs on:

* **Kepler**  -- Tesla K80 (single GK210 GPU of the dual-GPU board),
  CUDA 7.0.27, driver 346.46
* **Maxwell** -- Tesla M40 (GM200), CUDA 8.0.27, driver 361.72
* **Pascal**  -- GeForce GTX 1080 (GP104), CUDA 8.0.23, driver 367.35

:class:`GPUSpec` captures the architectural parameters the matching
algorithms and the timing model need: SM count, warp scheduler count,
clock, occupancy limits, and memory latencies.  Published microbenchmark
latencies are used where available; the remaining free parameters are the
per-generation, per-algorithm-family ``calibration`` multipliers that
anchor the simulated matching rates to the paper's measured rates
(matrix: ~3 / ~3.5 / ~6 Mmatches/s at one CTA, Figure 4; hash: 110 / ~190
(est.) / ~368 (est., so that the 32-CTA aggregate lands on the stated
500) Mmatches/s, Figure 6(b)).  Everything else -- scaling across queue
lengths, queue counts, CTA counts, match fractions -- follows from the
instruction/transaction counts of the simulated algorithms.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

__all__ = ["GPUSpec", "GPU", "KEPLER_K80", "MAXWELL_M40", "PASCAL_GTX1080"]


@dataclass(frozen=True)
class GPUSpec:
    """Architectural description of one GPU.

    Attributes
    ----------
    name, generation:
        Marketing name and architecture family (``"kepler"`` etc.).
    sm_count:
        Streaming multiprocessors on the device.  The paper pins the
        communication kernel to a *single* SM (Section II-C); benchmarks
        honour that unless told otherwise.
    cores_per_sm:
        CUDA cores per SM (192 Kepler SMX, 128 Maxwell/Pascal).
    clock_mhz:
        Sustained boost clock used for rate conversion.
    schedulers_per_sm:
        Warp schedulers per SM; bounds warp-instruction issue per cycle.
    max_warps_per_sm, max_ctas_per_sm, max_threads_per_cta:
        Occupancy limits.
    shared_mem_per_sm, shared_mem_per_cta:
        Shared memory capacities in bytes.
    registers_per_sm:
        32-bit registers per SM.
    smem_latency, gmem_latency:
        Load-to-use latencies in cycles (microbenchmark values from the
        literature for each generation).
    issue_cycles:
        Cycles a scheduler is occupied per issued warp instruction, by
        instruction class.
    calibration:
        Per-algorithm-family multiplicative fudge on predicted cycles
        (keys: ``"default"``, ``"hash"``); anchors absolute rates to the
        paper's hardware measurements.  See ``repro.bench.calibration``
        for the anchor table and derivation.
    cta_contention:
        Slowdown each additional co-resident CTA inflicts on its
        neighbours (shared memory pipeline / atomic unit pressure); drives
        the 32-CTA vs 1-CTA hash-throughput ratio of Figure 6(b).
    sanitize:
        Optional :class:`~repro.simt.sanitize.Sanitizer` default for
        launches and schedulers targeting this spec (``spec.with_(
        sanitize=Sanitizer())`` instruments every kernel that does not
        pass its own handle).  Excluded from equality and repr; the
        shipped singletons carry ``None``.
    """

    name: str
    generation: str
    sm_count: int
    cores_per_sm: int
    clock_mhz: float
    schedulers_per_sm: int
    max_warps_per_sm: int
    max_ctas_per_sm: int
    max_threads_per_cta: int
    shared_mem_per_sm: int
    shared_mem_per_cta: int
    registers_per_sm: int
    mem_bandwidth_gbs: float
    smem_latency: float
    gmem_latency: float
    issue_cycles: dict = field(default_factory=dict)
    calibration: dict = field(default_factory=dict)
    cta_contention: float = 0.47
    sanitize: "object | None" = field(default=None, compare=False,
                                      repr=False)

    @property
    def clock_hz(self) -> float:
        """Clock in Hz."""
        return self.clock_mhz * 1e6

    @property
    def warp_size(self) -> int:
        """Threads per warp (32 on every simulated generation)."""
        return 32

    @property
    def max_threads_per_sm(self) -> int:
        """Thread residency limit per SM."""
        return self.max_warps_per_sm * self.warp_size

    def issue_cost(self, kind: str) -> float:
        """Scheduler occupancy in cycles for one warp instruction of ``kind``."""
        return self.issue_cycles.get(kind, 1.0)

    def calibration_for(self, family: str) -> float:
        """Cycle multiplier anchoring the named algorithm family."""
        return self.calibration.get(family,
                                    self.calibration.get("default", 1.0))

    def with_(self, **kwargs) -> "GPUSpec":
        """Return a copy with selected fields replaced (for ablations)."""
        return replace(self, **kwargs)

    def trace_metadata(self) -> dict:
        """Device descriptors for a trace export's ``otherData`` block."""
        return {
            "device": self.name,
            "generation": self.generation,
            "sm_count": self.sm_count,
            "clock_mhz": self.clock_mhz,
            "mem_bandwidth_gbs": self.mem_bandwidth_gbs,
        }


#: Default per-class issue costs (cycles of scheduler occupancy).  Special
#: function / sync-heavy operations occupy the scheduler longer than plain
#: integer ALU instructions.
_DEFAULT_ISSUE = {
    "alu": 1.0,
    "branch": 1.0,
    "ballot": 2.0,
    "vote": 2.0,
    "shfl": 2.0,
    "smem_load": 1.0,
    "smem_store": 1.0,
    "gmem_load": 1.0,
    "gmem_store": 1.0,
    "atomic": 4.0,
    "sync": 8.0,
}


KEPLER_K80 = GPUSpec(
    name="Tesla K80",
    generation="kepler",
    sm_count=13,
    cores_per_sm=192,
    clock_mhz=875.0,  # GK210 autoboost clock
    schedulers_per_sm=4,
    max_warps_per_sm=64,
    max_ctas_per_sm=16,
    max_threads_per_cta=1024,
    shared_mem_per_sm=112 * 1024,  # GK210 doubled shared/L1
    shared_mem_per_cta=48 * 1024,
    registers_per_sm=128 * 1024,
    mem_bandwidth_gbs=240.0,
    smem_latency=48.0,
    gmem_latency=230.0,
    issue_cycles=dict(_DEFAULT_ISSUE),
    # Anchors: 3.0 Mmatches/s matrix steady region (Fig. 4, <=512
    # entries), 110 Mmatches/s hash @1 CTA
    # (Section VI-C).
    calibration={"default": 3.8954, "hash": 0.8291, "compaction": 1.0},
)

MAXWELL_M40 = GPUSpec(
    name="Tesla M40",
    generation="maxwell",
    sm_count=24,
    cores_per_sm=128,
    clock_mhz=1114.0,
    schedulers_per_sm=4,
    max_warps_per_sm=64,
    max_ctas_per_sm=32,
    max_threads_per_cta=1024,
    shared_mem_per_sm=96 * 1024,
    shared_mem_per_cta=48 * 1024,
    registers_per_sm=64 * 1024,
    mem_bandwidth_gbs=288.0,
    smem_latency=24.0,
    gmem_latency=368.0,  # Maxwell's global latency regressed vs Kepler
    issue_cycles=dict(_DEFAULT_ISSUE),
    # Anchors: 3.5 Mmatches/s matrix (Fig. 4); the paper gives no Maxwell
    # hash number in the text -- 190 Mmatches/s @1 CTA interpolates
    # between the stated Kepler and Pascal rates (estimated).
    calibration={"default": 7.8395, "hash": 0.4896, "compaction": 1.0},
)

PASCAL_GTX1080 = GPUSpec(
    name="GeForce GTX 1080",
    generation="pascal",
    sm_count=20,
    cores_per_sm=128,
    clock_mhz=1733.0,
    schedulers_per_sm=4,
    max_warps_per_sm=64,
    max_ctas_per_sm=32,
    max_threads_per_cta=1024,
    shared_mem_per_sm=96 * 1024,
    shared_mem_per_cta=48 * 1024,
    registers_per_sm=64 * 1024,
    mem_bandwidth_gbs=320.0,
    smem_latency=24.0,
    gmem_latency=280.0,
    issue_cycles=dict(_DEFAULT_ISSUE),
    # Anchors: 6.0 Mmatches/s matrix (Fig. 4); 368 Mmatches/s hash @1 CTA
    # so the 32-CTA aggregate hits the stated ~500 Mmatches/s.
    calibration={"default": 7.3122, "hash": 0.4503, "compaction": 1.0},
)


class GPU:
    """Convenience factory namespace mirroring the paper's three testbeds.

    >>> GPU.pascal_gtx1080().generation
    'pascal'
    """

    @staticmethod
    def kepler_k80() -> GPUSpec:
        """The paper's Kepler testbed (single GPU of a Tesla K80)."""
        return KEPLER_K80

    @staticmethod
    def maxwell_m40() -> GPUSpec:
        """The paper's Maxwell testbed (Tesla M40)."""
        return MAXWELL_M40

    @staticmethod
    def pascal_gtx1080() -> GPUSpec:
        """The paper's Pascal testbed (GeForce GTX 1080)."""
        return PASCAL_GTX1080

    @staticmethod
    def all_generations() -> list[GPUSpec]:
        """The three generations of Figure 4 / Figure 6(b), oldest first."""
        return [KEPLER_K80, MAXWELL_M40, PASCAL_GTX1080]

    @staticmethod
    def by_name(name: str) -> GPUSpec:
        """Look a spec up by generation or (partial) product name."""
        needle = name.strip().lower()
        for spec in GPU.all_generations():
            if needle in (spec.generation, spec.name.lower()):
                return spec
        for spec in GPU.all_generations():
            if needle in spec.name.lower():
                return spec
        raise KeyError(f"unknown GPU {name!r}")
