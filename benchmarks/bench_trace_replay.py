"""EXT5: trace-driven relaxation study -- the paper's two threads joined.

The paper analyzes application traces (Section IV) and measures matching
engines on synthetic queues (Sections V-VI), but never runs one against
the other ("it is not possible to run the applications on GPUs without
supporting a full MPI stack on the GPU itself" -- which is exactly what
the :mod:`repro.mpi` substrate provides here in simulation).

This bench drives each proxy application's *actual per-rank traffic*
(messages arriving at a rank and the receives it posts, in superstep
batches) through the matching engines under each legal relaxation set
and reports total simulated matching time per configuration -- i.e. the
relaxation speedup an application would really see, which depends on its
queue depths and tuple structure, not just on the microbenchmark.
"""

from __future__ import annotations

import pytest

from repro.bench import Table, write_result
from repro.core.engine import MatchingEngine
from repro.core.envelope import EnvelopeBatch
from repro.core.relaxations import RelaxationSet
from repro.traces import generate_trace

#: Apps swept (a runtime-friendly subset covering every suite; the two
#: deep-queue outliers run at reduced scale).
APPS = {
    "exmatex_lulesh": dict(n_ranks=27, steps=4),
    "df_snap": dict(n_ranks=16, steps=3),
    "df_partisn": dict(n_ranks=16, steps=1),
    "cesar_crystalrouter": dict(n_ranks=16, steps=4),
    "exmatex_cmc": dict(n_ranks=16, steps=6),
    "amr_boxlib": dict(n_ranks=16, steps=4),
    "df_minife": dict(n_ranks=27, steps=6),          # uses ANY_SOURCE
    "exact_multigrid": dict(n_ranks=8, steps=1),     # deep queues
}

CONFIGS = {
    "full MPI": RelaxationSet(),
    "no wildcards": RelaxationSet(wildcards=False),
    "unordered": RelaxationSet(wildcards=False, ordering=False),
}


def superstep_batches(trace, rank: int):
    """(messages, requests) batches for one rank, split at barriers.

    Each batch is what the rank's communication kernel faces during one
    BSP superstep: the messages that arrived and the receives it posted.
    """
    msgs: list[tuple] = []
    reqs: list[tuple] = []
    batches = []

    def flush():
        if msgs or reqs:
            batches.append((
                EnvelopeBatch(src=[m[0] for m in msgs],
                              tag=[m[1] for m in msgs],
                              comm=[m[2] for m in msgs]),
                EnvelopeBatch(src=[r[0] for r in reqs],
                              tag=[r[1] for r in reqs],
                              comm=[r[2] for r in reqs])))
            msgs.clear()
            reqs.clear()

    for ev in trace.events:
        if ev.kind == "send" and ev.dst == rank:
            msgs.append((ev.rank, ev.tag, ev.comm))
        elif ev.kind == "post_recv" and ev.rank == rank:
            reqs.append((ev.src, ev.tag, ev.comm))
        elif ev.kind == "barrier" and ev.rank == rank:
            flush()
    flush()
    return batches


def replay_app(app: str, scale: dict) -> dict[str, float]:
    """Total simulated matching seconds per relaxation config."""
    trace = generate_trace(app, **scale)
    uses_wildcards = any(e.src == -1 or e.tag == -1
                         for e in trace.recv_posts())
    batches = superstep_batches(trace, rank=1)
    out: dict[str, float] = {}
    for label, rel in CONFIGS.items():
        if not rel.wildcards and uses_wildcards:
            out[label] = float("nan")  # config illegal for this app
            continue
        eng = MatchingEngine(relaxations=rel, n_queues=16, n_ctas=8)
        seconds = 0.0
        for msgs, reqs in batches:
            if len(msgs) == 0 or len(reqs) == 0:
                continue
            seconds += eng.match(msgs, reqs).seconds
        out[label] = seconds
    return out


def test_report_ext5_trace_replay():
    table = Table(
        title="EXT5 -- per-application simulated matching time under each "
              "relaxation (rank 1 traffic)",
        columns=["application", "full MPI", "no wildcards", "unordered",
                 "unordered speedup"])
    speedups = {}
    for app, scale in APPS.items():
        times = replay_app(app, scale)
        full = times["full MPI"]
        fast = times["unordered"]

        def fmt(t):
            return "n/a (wildcards)" if t != t else f"{t * 1e6:9.1f} us"

        speedup = full / fast if fast == fast and fast > 0 else float("nan")
        speedups[app] = speedup
        table.add(app, fmt(full), fmt(times["no wildcards"]), fmt(fast),
                  f"{speedup:5.1f}x" if speedup == speedup else "n/a")
    table.note("unordered gains track tuple uniqueness, not just queue "
               "depth: PARTISN's thousands of tags hash cleanly (largest "
               "speedup) while MultiGrid's four tags collide massively -- "
               "for it the *partitioned* engine is the better relaxation, "
               "exactly the Figure 6(a) caveat in action")
    write_result("ext5_trace_replay", table.show())

    # wildcard users cannot run the restricted configs
    times_minife = replay_app("df_minife", APPS["df_minife"])
    assert times_minife["no wildcards"] != times_minife["no wildcards"]
    # every app that can relax gains from dropping ordering
    for app, sp in speedups.items():
        if sp == sp:  # not NaN
            assert sp > 1.0, app
    # the fine-grained-tag sweep gains the most from hashing
    comparable = {a: s for a, s in speedups.items() if s == s}
    assert max(comparable, key=comparable.get) == "df_partisn"
    # the duplicate-heavy deep-queue app prefers partitioning to hashing
    times_mg = replay_app("exact_multigrid", APPS["exact_multigrid"])
    assert times_mg["no wildcards"] < times_mg["unordered"]


def test_perf_superstep_extraction(benchmark):
    trace = generate_trace("exmatex_lulesh", n_ranks=27, steps=4)
    batches = benchmark(superstep_batches, trace, 1)
    assert len(batches) >= 4


if __name__ == "__main__":
    test_report_ext5_trace_replay()
