"""Multi-process serving: worker shards behind a process boundary.

:class:`ClusterService` runs each shard in its **own worker process**
and keeps the router in the calling process.  The router owns placement
(the same CRC32 hash the in-process service uses), the global request
sequence space, and response collection; each worker hosts a
single-shard :class:`~repro.serve.service.MatchingService` and is driven
exclusively by wire frames (:mod:`repro.serve.wire`) over bounded
multiprocessing queues -- one command queue and one response queue per
worker, single writer each, so frame order is FIFO per direction.

**Determinism contract.**  A same-seed cluster run is bit-identical to
the in-process service on the same stream: tickets (status, seq, retry
hints), flush results (match pairs, covered seqs, virtual timestamps,
engine labels), shed counts, and latency percentiles all agree (pinned
by ``tests/serve/test_cluster_identity.py``).  This is not luck but
construction:

* tenants are shard-isolated, and placement mod ``n`` partitions them
  identically whether ``n`` counts shards or worker processes;
* every serve decision reads only the tenant's shard state and the
  virtual clock -- the event loop's RNG is never consulted -- so a
  worker's clock may *lag* the router's without changing any outcome:
  timers still fire at their scheduled virtual times, in the same
  ``(vt, seq)`` order per shard;
* the router stamps each submission with its global seq and arrival vt,
  and per-worker FIFO channels preserve each shard's submission order.

**Failure model.**  A worker is a deterministic state machine over its
input frame stream.  The router journals every state-mutating frame it
sends and periodically asks the worker for a checkpoint (the snapshot
plane's CRC-guarded blob); FIFO ordering means a checkpoint covers
exactly the frames sent before the request, so the journal truncates at
the blob.  When a worker dies (SIGKILL mid-flush is the chaos suite's
favourite), the router respawns it from the last checkpoint and
**re-executes the journal verbatim** -- the worker deterministically
regenerates every post-checkpoint ticket and flush result, and the
router deduplicates by seq and ``(tenant, flush_seq)``.  Zero admitted
envelopes lost, none matched twice, no reconciliation pass needed: the
replay *is* the reconciliation.

**Live migration** crosses the process boundary with the PR 7 legs:
gate (the source answers ``migrating`` tickets carrying the cutover
time), drain, export through the snapshot codec; at the cutover virtual
time the router installs the blob on the destination worker and releases
the source.  Because a crashed source replays its export deterministically,
migration needs no catch-up leg here -- the journal replay regenerates
the drained state exactly.

Wall-clock time appears only in measurements (the ``transport`` stage,
worker busy seconds, recovery cost) -- never on a decision path.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import queue as queue_mod
import signal
import time
from dataclasses import dataclass

import numpy as np

from ..core.envelope import EnvelopeBatch
from ..obs.metrics import percentile
from .admission import AdmissionPolicy
from .batching import BatchPolicy
from .loadgen import ServeWorkload
from .messages import FlushResult, ShardCrash, TenantSpec, Ticket
from .service import MatchingService, stable_shard
from .stages import SERVE_STAGES, StageClock
from .state import (dumps, export_tenant, install_tenant, loads,
                    restore_service, snapshot_service)
from .supervisor import bump_epoch_past_stale
from .wire import (WireError, decode_frame, encode_frame, flush_from_wire,
                   flush_wire, spec_from_wire, spec_wire, ticket_from_wire,
                   ticket_wire)

__all__ = ["ClusterError", "ClusterRecovery", "ClusterMigration",
           "ClusterService", "run_cluster_workload"]


class ClusterError(RuntimeError):
    """A cluster-plane protocol failure (stalled worker, barrier
    timeout, misuse of the router API)."""


@dataclass(frozen=True)
class ClusterRecovery:
    """One worker-process recovery (respawn + journal re-execution)."""

    worker_id: int
    respawn: int                 # 1 for the worker's first recovery
    replayed_frames: int         # journal frames re-executed
    had_checkpoint: bool         # False = cold restart from specs
    wall_seconds: float          # measurement-only recovery cost


@dataclass
class ClusterMigration:
    """One cross-process tenant migration, begin to cutover."""

    tenant: str
    from_worker: int
    to_worker: int
    started_vt: float
    cutover_vt: float
    state_bytes: bytes = b""
    completed_vt: float | None = None


# ---------------------------------------------------------------------------
# Worker process
# ---------------------------------------------------------------------------

def _worker_main(init_blob: bytes, cmd_q, resp_q) -> None:
    """One worker process: a single-shard service driven by wire frames.

    Top-level by design -- the spawn start method imports this module in
    the child and calls the function by qualified name; nothing here may
    capture router state except through ``init_blob`` (a snapshot-codec
    blob) and the two queues.
    """
    cfg = loads(init_blob)
    worker_id = int(cfg["worker_id"])
    stages = StageClock()
    if cfg["checkpoint"] is not None:
        svc = restore_service(bytes(cfg["checkpoint"]), stages=stages)
    else:
        pol = cfg["policies"]
        adm = pol["admission"]
        bat = pol["batching"]
        svc = MatchingService(
            n_shards=1,
            admission=AdmissionPolicy(
                capacity=int(adm["capacity"]),
                soft_fraction=float(adm["soft_fraction"]),
                retry_after_vt=(None if adm["retry_after_vt"] is None
                                else float(adm["retry_after_vt"]))),
            batching=BatchPolicy(max_envelopes=int(bat["max_envelopes"]),
                                 max_delay_vt=float(bat["max_delay_vt"])),
            seed=int(cfg["seed"]),
            promote_after=int(pol["promote_after"]),
            profile_window=int(pol["profile_window"]),
            verify=bool(pol["verify"]),
            stages=stages)
        for spec_payload in cfg["specs"]:
            svc.register(spec_from_wire(spec_payload))
    shard = svc.shards[0]
    n_sent = len(svc.results)   # checkpointed results were already routed
    # Busy accounting uses *CPU* time, not wall time: on a host with
    # fewer cores than workers, wall time inside a handler includes the
    # periods this process was descheduled while siblings ran, which
    # would make per-worker "busy" grow with contention instead of
    # shrinking with partitioning.  CPU seconds are what the span-rate
    # metric (matched / max worker busy) needs to stay honest.
    busy = 0.0

    def post(kind: str, payload) -> None:
        resp_q.put(encode_frame(kind, payload))

    def post_new_results() -> None:
        nonlocal n_sent
        while n_sent < len(svc.results):
            post("flush", flush_wire(svc.results[n_sent]))
            n_sent += 1

    while True:
        data = cmd_q.get()
        kind, payload = decode_frame(data)
        t0 = time.process_time()
        try:
            if kind == "submit":
                ticket = svc.submit(
                    str(payload["tenant"]),
                    EnvelopeBatch.from_state_dict(payload["messages"]),
                    EnvelopeBatch.from_state_dict(payload["requests"]),
                    at_vt=float(payload["at_vt"]),
                    seq=int(payload["seq"]))
                post_new_results()
                post("ticket", ticket_wire(ticket))
            elif kind == "advance":
                svc.advance_to(float(payload["vt"]))
                post_new_results()
            elif kind == "drain":
                svc.drain()
                post_new_results()
            elif kind == "checkpoint":
                post("checkpointed", {"blob": snapshot_service(svc),
                                      "vt": svc.now})
            elif kind == "stats":
                post("stats_reply", {
                    "token": int(payload["token"]),
                    "worker_id": worker_id,
                    "counts": shard.admission.counts(),
                    "windowed_volume": shard.windowed_volume(),
                    "busy_seconds": busy,
                    "stage_seconds": stages.snapshot(),
                    "report": svc.report()})
            elif kind == "arm_exit":
                shard.fail_at_flush = (shard.flushes_done
                                       + int(payload["after_flushes"]))
            elif kind == "export_tenant":
                tenant = str(payload["tenant"])
                shard.migrating[tenant] = float(payload["cutover_vt"])
                result = shard.flush_tenant(tenant, svc.now)
                if result is not None:
                    svc.results.append(result)
                post_new_results()
                post("tenant_state", {
                    "tenant": tenant,
                    "blob": dumps(export_tenant(shard.tenants[tenant]))})
            elif kind == "install_tenant":
                ts = install_tenant(shard, loads(bytes(payload["blob"])))
                name = ts.spec.name
                svc._placement[name] = 0
                bump_epoch_past_stale(svc.loop, name, ts.accumulator)
                if len(ts.accumulator):
                    svc.loop.schedule(
                        max(ts.accumulator.deadline_vt, svc.now),
                        "flush", (name, ts.accumulator.epoch))
            elif kind == "fabric_xfer":
                # Rebuild the transfer with live batches and reuse the
                # in-process delivery path; the combined block's packed64
                # cache survives the state-dict round trip, so segment
                # slices still share one packing.
                block = payload["block"]
                xfer = {
                    "at_vt": float(payload["at_vt"]),
                    "block": (None if block is None
                              else EnvelopeBatch.from_state_dict(block)),
                    "segments": [
                        {"tenant": str(seg["tenant"]),
                         "seq": int(seg["seq"]),
                         "start": int(seg["start"]),
                         "stop": int(seg["stop"]),
                         "requests": (
                             None if seg["requests"] is None
                             else EnvelopeBatch.from_state_dict(
                                 seg["requests"]))}
                        for seg in payload["segments"]],
                }
                svc.fabric_deliver(0, xfer)
            elif kind == "release_tenant":
                tenant = str(payload["tenant"])
                shard.migrating.pop(tenant, None)
                shard.tenants.pop(tenant, None)
                svc._placement.pop(tenant, None)
            elif kind == "stop":
                post("bye", {"worker_id": worker_id})
                return
            else:
                raise WireError(f"worker cannot handle frame {kind!r}")
        except ShardCrash:
            # Armed chaos kill: die for real, mid-flush, between queue
            # operations (the accumulator has drained; the in-flight
            # batch exists only on this stack).  Recovery must come from
            # the router's checkpoint + journal.
            os.kill(os.getpid(), signal.SIGKILL)
        busy += time.process_time() - t0


# ---------------------------------------------------------------------------
# Router
# ---------------------------------------------------------------------------

class _WorkerHandle:
    """Router-side bookkeeping for one worker process."""

    def __init__(self, worker_id: int) -> None:
        self.worker_id = worker_id
        self.proc = None
        self.cmd_q = None
        self.resp_q = None
        #: state-mutating frames sent since the last durable checkpoint
        #: (the verbatim re-execution script for recovery).
        self.journal: list[bytes] = []
        self.checkpoint: bytes | None = None
        #: journal position when a checkpoint request went out (``None``
        #: when no request is in flight); truncation point at the blob.
        self.ckpt_mark: int | None = None
        self.flushes_since_ckpt = 0
        self.respawns = 0
        self.stats: dict | None = None
        self.stats_token = -1
        self.specs: list[TenantSpec] = []
        self.stopped = False

    def alive(self) -> bool:
        return self.proc is not None and self.proc.is_alive()


class ClusterService:
    """A sharded matching service spanning worker processes.

    Mirrors the :class:`~repro.serve.service.MatchingService` surface --
    ``register`` / ``submit`` / ``advance_to`` / ``drain`` / ``report``
    -- with one asynchronous difference: ``submit`` returns the routed
    request's **seq** immediately (the pipeline is what buys the
    multi-core speedup); the ticket arrives on the response queue and is
    available from :attr:`tickets` after the next :meth:`sync`.

    Parameters
    ----------
    n_workers:
        Worker-process count (= shard count; one shard per process).
    admission, batching, seed, promote_after, profile_window, verify:
        Forwarded to every worker's single-shard service -- the same
        knobs, so a cluster and an in-process service configured alike
        are bit-identical.
    start_method:
        ``"spawn"`` (default; the spawn-safety contract) or ``"fork"``
        (cheaper startup; the test suites use it for speed).
    checkpoint_every:
        Checkpoint cadence per worker, in newly routed flush results.
    queue_depth:
        Bound on each direction of every worker's duplex queue pair.
    op_timeout:
        Wall-clock bound on any single router operation against a
        worker (put retries, barriers, migration exports) before
        :class:`ClusterError` -- a hung worker fails fast, it does not
        wedge the router.
    stages:
        Optional :class:`~repro.serve.stages.StageClock`; the router
        charges frame encode/decode and enqueue work to ``transport``
        (never time spent waiting on workers).
    """

    def __init__(self, n_workers: int = 2, *,
                 admission: AdmissionPolicy | None = None,
                 batching: BatchPolicy | None = None,
                 seed: int = 0, promote_after: int = 3,
                 profile_window: int = 8, verify: bool = False,
                 start_method: str = "spawn", checkpoint_every: int = 8,
                 queue_depth: int = 256, op_timeout: float = 60.0,
                 max_respawns: int = 16,
                 stages: StageClock | None = None) -> None:
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        if checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        if queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        self.n_workers = n_workers
        self.admission = admission if admission is not None \
            else AdmissionPolicy()
        self.batching = batching if batching is not None else BatchPolicy()
        self.seed = seed
        self.promote_after = promote_after
        self.profile_window = profile_window
        self.verify = verify
        self.checkpoint_every = checkpoint_every
        self.queue_depth = queue_depth
        self.op_timeout = op_timeout
        self.max_respawns = max_respawns
        self.stages = stages
        self._ctx = mp.get_context(start_method)
        self._workers = [_WorkerHandle(i) for i in range(n_workers)]
        self._placement: dict[str, int] = {}   # registration order
        self._spans: dict[str, list[str]] = {}
        self._specs: dict[str, TenantSpec] = {}
        self._next_seq = 0
        self._now = 0.0
        self.tickets: dict[int, Ticket] = {}
        self.results: list[FlushResult] = []
        self._seen_flush: set[tuple[str, int]] = set()
        self._tenant_blobs: dict[str, bytes] = {}
        self._stats_token = 0
        self._started = False
        self._stopped = False
        self.recoveries: list[ClusterRecovery] = []
        self.migrations: list[ClusterMigration] = []
        self._pending_migrations: list[ClusterMigration] = []
        self._awaiting_blob: set[str] = set()
        self._in_maybe_ckpt = False
        self._in_recover = False
        self._in_send = False
        self._stopping = False

    # -- lifecycle ----------------------------------------------------------------

    def register(self, spec: TenantSpec) -> None:
        """Register a tenant; placement is the stable CRC32 hash, with
        worker processes standing where shards stand in-process.

        Spanning tenants (``spec.span > 1``) expand router-side into
        span-1 sub-tenants exactly as the in-process service does;
        workers only ever see ordinary specs.
        """
        if self._started:
            raise ClusterError("register tenants before start()")
        if spec.name in self._placement or spec.name in self._spans:
            raise ValueError(f"tenant {spec.name!r} already registered")
        if spec.span > 1:
            subs = spec.sub_specs()
            for sub in subs:
                self.register(sub)
            self._spans[spec.name] = [s.name for s in subs]
            return
        worker_id = stable_shard(spec.name, self.n_workers)
        self._placement[spec.name] = worker_id
        self._specs[spec.name] = spec
        self._workers[worker_id].specs.append(spec)

    def sub_tenants(self, name: str) -> list[str]:
        """The sub-tenant names a registered tenant expands to."""
        if name in self._spans:
            return list(self._spans[name])
        if name in self._placement:
            return [name]
        raise KeyError(f"tenant {name!r} not registered")

    def start(self) -> "ClusterService":
        """Spawn every worker process (idempotent misuse is an error)."""
        if self._started:
            raise ClusterError("cluster already started")
        for w in self._workers:
            self._spawn(w)
        self._started = True
        return self

    def stop(self) -> None:
        """Clean shutdown: stop frames, join, terminate stragglers.

        ``_stopping`` suppresses checkpoint requests (nothing may follow
        a stop frame) and recovery (a worker found dead now would be
        respawned, replayed, never stopped, and then eat the join
        timeout -- terminate it instead).
        """
        if not self._started or self._stopped:
            self._stopped = True
            return
        self._stopping = True
        stop_frame = encode_frame("stop", None)
        for w in self._workers:
            if w.alive():
                try:
                    self._post(w, stop_frame)
                except ClusterError:
                    pass
        self._pump()
        for w in self._workers:
            if w.proc is not None:
                w.proc.join(timeout=5.0)
                if w.proc.is_alive():
                    w.proc.terminate()
                    w.proc.join(timeout=1.0)
            self._close_queues(w)
        self._stopped = True

    def __enter__(self) -> "ClusterService":
        if not self._started:
            self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- virtual time -------------------------------------------------------------

    @property
    def now(self) -> float:
        """The router's virtual clock (max over everything routed)."""
        return self._now

    # -- submission ---------------------------------------------------------------

    def submit(self, tenant: str, messages: EnvelopeBatch,
               requests: EnvelopeBatch,
               at_vt: float | None = None) -> int:
        """Route one request to its tenant's worker; returns its seq.

        Pipelined: the ticket arrives asynchronously (``tickets[seq]``
        after the next :meth:`sync`).  Virtual time never runs backward
        across submissions -- the same monotonicity the in-process event
        loop enforces.
        """
        self._require_live()
        if tenant not in self._placement:
            raise KeyError(f"unknown tenant {tenant!r}")
        at = self._now if at_vt is None else float(at_vt)
        if at < self._now:
            raise ClusterError(f"virtual time cannot run backward "
                               f"({at} < {self._now})")
        self._now = at
        self._fire_cutovers()
        w = self._workers[self._placement[tenant]]
        seq = self._next_seq
        self._next_seq += 1
        stages = self.stages
        t0 = StageClock.start() if stages is not None else 0.0
        frame = encode_frame("submit", {
            "tenant": tenant, "seq": seq, "at_vt": at,
            "messages": messages.state_dict(),
            "requests": requests.state_dict()})
        if stages is not None:
            stages.stop("transport", t0)
        self._send(w, frame)
        self._pump()
        return seq

    def advance_to(self, vt: float) -> None:
        """Broadcast a virtual-time advance (fires due batch deadlines
        on every worker, each in its own ``(vt, seq)`` order)."""
        self._require_live()
        vt = float(vt)
        if vt < self._now:
            raise ClusterError(f"virtual time cannot run backward "
                               f"({vt} < {self._now})")
        self._now = vt
        self._fire_cutovers()
        frame = self._encode_transport("advance", {"vt": vt})
        for w in self._workers:
            self._send(w, frame)
        self._pump()

    def drain(self) -> None:
        """Broadcast a drain: every worker flushes every accumulator."""
        self._require_live()
        self._fire_cutovers()
        frame = self._encode_transport("drain", None)
        for w in self._workers:
            self._send(w, frame)
        self._pump()

    # -- fabric plane -------------------------------------------------------------
    #
    # Same duck-typed surface as MatchingService: the fabric never knows
    # which plane it is driving.  Transfers travel as journaled
    # ``fabric_xfer`` frames, so a worker SIGKILLed mid-superstep replays
    # them verbatim at recovery -- zero envelopes lost -- and the
    # ``(tenant, flush_seq)`` dedupe absorbs any re-derived flushes.

    def fabric_shard(self, tenant: str) -> int:
        """Placement of one (sub-)tenant -- the fabric's routing key."""
        return self._placement[tenant]

    def fabric_alloc_seq(self) -> int:
        """Allocate one seq from the router-owned global sequence space."""
        seq = self._next_seq
        self._next_seq += 1
        return seq

    def fabric_deliver(self, dst_shard: int, xfer: dict) -> None:
        """Route one fabric transfer to the destination worker."""
        self._require_live()
        block = xfer["block"]
        payload = {
            "at_vt": float(xfer["at_vt"]),
            "block": None if block is None else block.state_dict(),
            "segments": [
                {"tenant": seg["tenant"], "seq": seg["seq"],
                 "start": seg["start"], "stop": seg["stop"],
                 "requests": (None if seg["requests"] is None
                              else seg["requests"].state_dict())}
                for seg in xfer["segments"]],
        }
        frame = self._encode_transport("fabric_xfer", payload)
        self._send(self._workers[dst_shard], frame)
        self._pump()

    def sync(self) -> None:
        """FIFO barrier + stats collection.

        Sends a tokened stats request to every worker and pumps until
        each replies; a worker's reply proves it processed every frame
        sent before the request, so on return every routed submission
        has its ticket and every produced flush result is collected.
        Dead workers found at the barrier are recovered and re-asked.
        """
        self._require_live()
        self._stats_token += 1
        token = self._stats_token
        frame = self._encode_transport("stats", {"token": token})
        for w in self._workers:
            self._post_until_sent(w, frame)
        deadline = time.monotonic() + self.op_timeout
        while True:
            self._pump()
            waiting = [w for w in self._workers if w.stats_token < token]
            if not waiting:
                return
            recovered = False
            for w in waiting:
                if not w.alive():
                    self._recover(w)
                    self._post_until_sent(w, frame)
                    recovered = True
            if recovered:
                deadline = time.monotonic() + self.op_timeout
            if time.monotonic() > deadline:
                stalled = [w.worker_id for w in waiting]
                raise ClusterError(f"workers {stalled} missed the stats "
                                   f"barrier after {self.op_timeout}s")
            time.sleep(0.001)

    # -- chaos --------------------------------------------------------------------

    def arm_worker_exit(self, worker_id: int,
                        after_flushes: int = 1) -> bool:
        """Arm a chaos kill: the worker SIGKILLs itself mid-flush on its
        ``after_flushes``-th non-empty flush from now.  Deliberately
        **not** journaled -- a recovered worker must not re-die -- so if
        the worker dies before the frame is enqueued, the arm is simply
        dropped (returns ``False``) rather than re-sent at the respawn.
        """
        if after_flushes < 1:
            raise ValueError("after_flushes must be >= 1")
        self._require_live()
        w = self._workers[worker_id]
        return self._post(w, encode_frame(
            "arm_exit", {"after_flushes": after_flushes}))

    # -- live migration -----------------------------------------------------------

    def begin_migration(self, tenant: str, to_worker: int,
                        cutover_delay_vt: float | None = None,
                        ) -> ClusterMigration:
        """Start migrating ``tenant`` to ``to_worker``: gate + drain +
        export on the source now; install/release fire at the cutover
        virtual time from :meth:`submit` / :meth:`advance_to`."""
        self._require_live()
        from_worker = self._placement[tenant]
        if to_worker == from_worker:
            raise ValueError(f"tenant {tenant!r} is already on worker "
                             f"{to_worker}")
        if not 0 <= to_worker < self.n_workers:
            raise ValueError(f"no worker {to_worker}")
        if any(p.tenant == tenant for p in self._pending_migrations):
            raise ValueError(f"tenant {tenant!r} is already migrating")
        delay = (cutover_delay_vt if cutover_delay_vt is not None
                 else 2.0 * self.batching.max_delay_vt)
        cutover_vt = self._now + delay
        src = self._workers[from_worker]
        self._tenant_blobs.pop(tenant, None)
        self._awaiting_blob.add(tenant)
        self._send(src, self._encode_transport(
            "export_tenant", {"tenant": tenant, "cutover_vt": cutover_vt}))
        blob = self._await_tenant_blob(tenant, src)
        plan = ClusterMigration(tenant=tenant, from_worker=from_worker,
                                to_worker=to_worker, started_vt=self._now,
                                cutover_vt=cutover_vt, state_bytes=blob)
        self._pending_migrations.append(plan)
        return plan

    def _await_tenant_blob(self, tenant: str, src: _WorkerHandle) -> bytes:
        deadline = time.monotonic() + self.op_timeout
        try:
            while tenant not in self._tenant_blobs:
                self._pump()
                if tenant in self._tenant_blobs:
                    break
                if not src.alive():
                    # the journal holds the export frame; replay re-exports
                    self._recover(src)
                    deadline = time.monotonic() + self.op_timeout
                if time.monotonic() > deadline:
                    raise ClusterError(f"worker {src.worker_id} never "
                                       f"exported tenant {tenant!r}")
                time.sleep(0.001)
        finally:
            self._awaiting_blob.discard(tenant)
        return self._tenant_blobs.pop(tenant)

    def _fire_cutovers(self) -> None:
        for plan in sorted(self._pending_migrations,
                           key=lambda p: p.cutover_vt):
            if plan.cutover_vt > self._now:
                continue
            dst = self._workers[plan.to_worker]
            src = self._workers[plan.from_worker]
            self._send(dst, self._encode_transport(
                "install_tenant", {"blob": plan.state_bytes}))
            self._send(src, self._encode_transport(
                "release_tenant", {"tenant": plan.tenant}))
            self._placement[plan.tenant] = plan.to_worker
            plan.completed_vt = self._now
            self._pending_migrations.remove(plan)
            self.migrations.append(plan)

    # -- plumbing -----------------------------------------------------------------

    def _require_live(self) -> None:
        if not self._started:
            raise ClusterError("cluster not started")
        if self._stopped:
            raise ClusterError("cluster already stopped")

    def _encode_transport(self, kind: str, payload) -> bytes:
        stages = self.stages
        t0 = StageClock.start() if stages is not None else 0.0
        frame = encode_frame(kind, payload)
        if stages is not None:
            stages.stop("transport", t0)
        return frame

    def _init_blob(self, w: _WorkerHandle) -> bytes:
        pol = self.admission
        bat = self.batching
        return dumps({
            "worker_id": w.worker_id,
            "seed": self.seed,
            "checkpoint": w.checkpoint,
            "specs": [spec_wire(s) for s in w.specs],
            "policies": {
                "admission": {"capacity": pol.capacity,
                              "soft_fraction": pol.soft_fraction,
                              "retry_after_vt": pol.retry_after_vt},
                "batching": {"max_envelopes": bat.max_envelopes,
                             "max_delay_vt": bat.max_delay_vt},
                "promote_after": self.promote_after,
                "profile_window": self.profile_window,
                "verify": self.verify,
            }})

    def _spawn(self, w: _WorkerHandle) -> None:
        w.cmd_q = self._ctx.Queue(self.queue_depth)
        w.resp_q = self._ctx.Queue(self.queue_depth)
        w.proc = self._ctx.Process(
            target=_worker_main,
            args=(self._init_blob(w), w.cmd_q, w.resp_q),
            daemon=True, name=f"repro-serve-worker-{w.worker_id}")
        w.proc.start()

    @staticmethod
    def _close_queues(w: _WorkerHandle) -> None:
        for q in (w.cmd_q, w.resp_q):
            if q is not None:
                q.cancel_join_thread()
                q.close()
        w.cmd_q = None
        w.resp_q = None

    def _send(self, w: _WorkerHandle, data: bytes) -> None:
        """Journal a state-mutating frame, then deliver it.  If the
        worker died, recovery's journal replay already delivered it.

        ``_in_send`` suppresses checkpoint requests while the frame is
        journaled but not yet enqueued: a mark taken now would cover the
        frame's journal slot, yet the checkpoint request could overtake
        it into the command queue -- the blob would exclude the frame's
        effects while the truncation drops it from the journal, losing
        it from any later replay.
        """
        w.journal.append(data)
        self._in_send = True
        try:
            self._post(w, data)
        finally:
            self._in_send = False

    def _post(self, w: _WorkerHandle, data: bytes) -> bool:
        """Deliver one raw frame, pumping responses while the command
        queue is full.  Returns ``False`` when the worker was found dead
        and recovered instead (journaled frames need no re-send; callers
        of non-journaled frames re-send on ``False``)."""
        stages = self.stages
        deadline = time.monotonic() + self.op_timeout
        while True:
            try:
                t0 = StageClock.start() if stages is not None else 0.0
                w.cmd_q.put(data, timeout=0.05)
                if stages is not None:
                    stages.stop("transport", t0)
                return True
            except queue_mod.Full:
                self._pump()
                if not w.alive():
                    if self._stopping:
                        return False   # stop() terminates it at the join
                    self._recover(w)
                    return False
                if time.monotonic() > deadline:
                    raise ClusterError(
                        f"worker {w.worker_id} stalled (command queue "
                        f"full for {self.op_timeout}s)")

    def _post_until_sent(self, w: _WorkerHandle, data: bytes) -> None:
        """Deliver a non-journaled frame even across a recovery."""
        while not self._post(w, data):
            pass

    def _post_strict(self, w: _WorkerHandle, data: bytes) -> None:
        """Journal-replay delivery: a worker dying *during* its own
        recovery replay is a hard protocol failure, not a retry."""
        deadline = time.monotonic() + self.op_timeout
        while True:
            try:
                w.cmd_q.put(data, timeout=0.05)
                return
            except queue_mod.Full:
                self._pump()
                if not w.alive():
                    raise ClusterError(f"worker {w.worker_id} died during "
                                       f"journal replay")
                if time.monotonic() > deadline:
                    raise ClusterError(f"worker {w.worker_id} stalled "
                                       f"during journal replay")

    def _pump(self) -> None:
        """Drain every worker's response queue without blocking."""
        stages = self.stages
        for w in self._workers:
            if w.resp_q is None:
                continue
            while True:
                try:
                    data = w.resp_q.get_nowait()
                except queue_mod.Empty:
                    break
                except Exception:
                    # A SIGKILLed worker can leave a torn write in the
                    # pipe; drop it -- the journal replay regenerates
                    # whatever the torn frame carried.
                    break
                t0 = StageClock.start() if stages is not None else 0.0
                try:
                    kind, payload = decode_frame(data)
                except WireError:
                    break   # torn frame from a killed worker
                finally:
                    if stages is not None:
                        stages.stop("transport", t0)
                self._handle(w, kind, payload)
        self._maybe_checkpoint()

    def _handle(self, w: _WorkerHandle, kind: str, payload) -> None:
        if kind == "ticket":
            ticket = ticket_from_wire(payload)
            self.tickets.setdefault(ticket.seq, ticket)
        elif kind == "flush":
            result = flush_from_wire(payload)
            key = (result.tenant, result.flush_seq)
            if key in self._seen_flush:
                return   # journal replay re-delivered a known flush
            self._seen_flush.add(key)
            result.shard_id = w.worker_id
            self.results.append(result)
            w.flushes_since_ckpt += 1
        elif kind == "checkpointed":
            if w.ckpt_mark is None:
                # A reply whose truncation mark was invalidated (the
                # worker was recovered while the request was in flight).
                # Storing it without truncating would make the next
                # recovery double-execute the journal -- drop it.
                return
            w.checkpoint = bytes(payload["blob"])
            del w.journal[:w.ckpt_mark]
            w.ckpt_mark = None
            w.flushes_since_ckpt = 0
        elif kind == "stats_reply":
            w.stats = payload
            w.stats_token = int(payload["token"])
        elif kind == "tenant_state":
            tenant = str(payload["tenant"])
            if tenant in self._awaiting_blob:
                self._tenant_blobs[tenant] = bytes(payload["blob"])
            # else: a recovery replayed a journaled export_tenant frame
            # for a migration that already cut over -- the blob has no
            # consumer, so storing it would only accumulate stale state
        elif kind == "bye":
            w.stopped = True
        else:
            raise ClusterError(f"router cannot handle frame {kind!r}")

    def _maybe_checkpoint(self) -> None:
        """Request checkpoints from workers past the flush cadence.

        Runs at the tail of every :meth:`_pump` (where flush frames are
        counted); the reentrancy guard keeps the posts inside from
        recursing back into here through their own pumps.  Suppressed
        during a recovery replay or a mid-delivery :meth:`_send` (a
        request marked then would truncate journal frames its blob does
        not cover) and during shutdown (nothing follows a stop frame).
        """
        if (self._in_maybe_ckpt or self._in_recover or self._in_send
                or self._stopping):
            return
        self._in_maybe_ckpt = True
        try:
            for w in self._workers:
                if (w.flushes_since_ckpt >= self.checkpoint_every
                        and w.ckpt_mark is None):
                    self._request_checkpoint(w)
        finally:
            self._in_maybe_ckpt = False

    def _request_checkpoint(self, w: _WorkerHandle) -> None:
        """Mark the truncation point and post the checkpoint request;
        the mark and the request travel together across recoveries."""
        frame = self._encode_transport("checkpoint", None)
        while True:
            w.ckpt_mark = len(w.journal)
            if self._post(w, frame):
                return
            # recovered mid-post: _recover cleared the mark; re-mark
            # against the (unchanged) journal and re-send

    def checkpoint_now(self, worker_id: int | None = None) -> None:
        """Synchronously checkpoint one worker (or all): request, then
        pump until the blob lands and the journal truncates.  The chaos
        suite uses this to pin ``had_checkpoint`` recoveries
        deterministically instead of racing the flush cadence."""
        self._require_live()
        targets = (self._workers if worker_id is None
                   else [self._workers[worker_id]])
        for w in targets:
            if w.ckpt_mark is None:
                self._request_checkpoint(w)
        deadline = time.monotonic() + self.op_timeout
        while True:
            self._pump()
            waiting = [w for w in targets if w.ckpt_mark is not None]
            if not waiting:
                return
            recovered = False
            for w in waiting:
                if not w.alive():
                    self._recover(w)
                    self._request_checkpoint(w)
                    recovered = True
            if recovered:
                deadline = time.monotonic() + self.op_timeout
            if time.monotonic() > deadline:
                stalled = [w.worker_id for w in waiting]
                raise ClusterError(f"workers {stalled} never answered a "
                                   f"checkpoint request")
            time.sleep(0.001)

    def _recover(self, w: _WorkerHandle) -> ClusterRecovery:
        """Respawn a dead worker and re-execute its journal verbatim.

        The worker restores the last checkpoint (or cold-starts from its
        tenant specs) and deterministically re-runs every journaled
        frame; duplicate tickets and flush results are absorbed by the
        router's seq / ``(tenant, flush_seq)`` dedupe.  Exactly-once
        with no reconciliation pass -- the replay is the reconciliation.
        """
        t0 = time.perf_counter()
        w.respawns += 1
        if w.respawns > self.max_respawns:
            raise ClusterError(f"worker {w.worker_id} exceeded "
                               f"{self.max_respawns} respawns")
        if w.proc is not None:
            if w.proc.is_alive():
                w.proc.terminate()
            w.proc.join(timeout=5.0)
        self._close_queues(w)
        w.ckpt_mark = None
        w.flushes_since_ckpt = 0
        self._spawn(w)
        self._in_recover = True
        try:
            for data in list(w.journal):
                self._post_strict(w, data)
        finally:
            self._in_recover = False
        record = ClusterRecovery(
            worker_id=w.worker_id, respawn=w.respawns,
            replayed_frames=len(w.journal),
            had_checkpoint=w.checkpoint is not None,
            wall_seconds=time.perf_counter() - t0)
        self.recoveries.append(record)
        return record

    # -- accounting ---------------------------------------------------------------

    @property
    def tenant_names(self) -> list[str]:
        """Registered tenants, registration order."""
        return list(self._placement)

    def ticket_list(self) -> list[Ticket]:
        """Collected tickets in seq order (complete after :meth:`sync`)."""
        return [self.tickets[seq] for seq in sorted(self.tickets)]

    @property
    def latencies_vt(self) -> np.ndarray:
        """Per-request virtual latencies across every flush."""
        lats: list[float] = []
        for r in self.results:
            lats.extend(r.latencies_vt)
        return np.asarray(lats, dtype=float)

    @property
    def shed_counts(self) -> dict[str, int]:
        """Aggregate shed accounting across workers (post-:meth:`sync`)."""
        totals = {"retryable": 0, "overloaded": 0, "migrating": 0}
        for w in self._workers:
            if w.stats is None:
                continue
            for key in totals:
                totals[key] += int(w.stats["counts"][key])
        return totals

    def worker_stats(self) -> list[dict]:
        """Each worker's last stats frame (requires a :meth:`sync`)."""
        missing = [w.worker_id for w in self._workers if w.stats is None]
        if missing:
            raise ClusterError(f"no stats collected from workers "
                               f"{missing}; call sync() first")
        return [w.stats for w in self._workers]

    def shard_volumes(self) -> list[int]:
        """Windowed message volume per worker (the imbalance signal)."""
        return [int(s["windowed_volume"]) for s in self.worker_stats()]

    def imbalance(self) -> float:
        """Max/mean windowed volume across workers (1.0 = perfectly
        balanced; the Caliper/Benchpark-style load-imbalance statistic)."""
        vols = self.shard_volumes()
        mean = sum(vols) / len(vols)
        return max(vols) / mean if mean > 0 else 1.0

    def busy_seconds(self) -> list[float]:
        """Per-worker CPU seconds spent processing frames.

        CPU time, not wall time: on hosts with fewer cores than workers
        a handler's wall time includes descheduled periods, which would
        inflate "busy" with contention.  The max of this list is the
        worker span -- the critical path an adequately-cored host would
        ride down to.
        """
        return [float(s["busy_seconds"]) for s in self.worker_stats()]

    def merged_stage_seconds(self) -> dict[str, float]:
        """Router transport time + summed worker stage clocks.

        CPU-seconds across processes: totals can exceed wall time when
        workers overlap -- exactly the point of the cluster.
        """
        totals = {s: 0.0 for s in SERVE_STAGES}
        if self.stages is not None:
            for stage, seconds in self.stages.snapshot().items():
                totals[stage] += seconds
        for w in self._workers:
            if w.stats is None:
                continue
            for stage, seconds in w.stats["stage_seconds"].items():
                totals[stage] += float(seconds)
        return totals

    def report(self) -> dict:
        """The in-process service's report, assembled across processes.

        Same keys, same estimator (the bucketed percentile), same
        values for a same-seed run -- the identity suite diffs this dict
        against ``MatchingService.report()`` directly.  Requires a
        completed :meth:`sync`.
        """
        stats = self.worker_stats()
        lat = self.latencies_vt
        p50_us = percentile(lat * 1e6, 50)
        p99_us = percentile(lat * 1e6, 99)
        shed = self.shed_counts
        tenants: dict[str, dict] = {}
        for name, worker_id in self._placement.items():
            wstats = stats[worker_id]
            tinfo = dict(wstats["report"]["tenants"][name])
            tinfo["shard"] = worker_id
            tenants[name] = tinfo
        return {
            "virtual_seconds": self._now,
            "submitted": self._next_seq,
            "accepted": sum(int(s["counts"]["admitted"]) for s in stats),
            "shed_retryable": shed["retryable"],
            "shed_overloaded": shed["overloaded"],
            "shed_migrating": shed["migrating"],
            "flushes": len(self.results),
            "matched": int(sum(r.outcome.matched_count
                               for r in self.results)),
            "retunes": sum(int(s["report"]["retunes"]) for s in stats),
            "latency_p50_vt": p50_us / 1e6 if p50_us is not None else None,
            "latency_p99_vt": p99_us / 1e6 if p99_us is not None else None,
            "tenants": tenants,
        }


# ---------------------------------------------------------------------------
# Open-loop harness
# ---------------------------------------------------------------------------

def run_cluster_workload(workload: ServeWorkload, *, n_workers: int = 2,
                         admission: AdmissionPolicy | None = None,
                         batching: BatchPolicy | None = None,
                         seed: int = 0, promote_after: int = 3,
                         profile_window: int = 8, verify: bool = False,
                         start_method: str = "spawn",
                         checkpoint_every: int = 8,
                         queue_depth: int = 256, op_timeout: float = 60.0,
                         max_respawns: int = 16,
                         stages: StageClock | None = None,
                         arm_exit: tuple[int, int] | None = None,
                         ) -> tuple[ClusterService, float]:
    """Drive a cluster through a workload; returns (cluster, wall seconds).

    The multi-process mirror of :func:`~repro.serve.loadgen.run_workload`:
    same submission loop, same final timer run-out and drain, plus the
    stats barrier that completes ticket/result collection.  Wall time
    covers submission through barrier (worker startup and teardown are
    excluded, like service construction is in-process).  ``arm_exit``
    optionally arms a chaos kill as ``(worker_id, after_flushes)``.
    The worker processes are stopped even when the drive loop raises
    (e.g. :class:`ClusterError` from a stalled worker).
    """
    cluster = ClusterService(
        n_workers=n_workers, admission=admission, batching=batching,
        seed=seed, promote_after=promote_after,
        profile_window=profile_window, verify=verify,
        start_method=start_method, checkpoint_every=checkpoint_every,
        queue_depth=queue_depth, op_timeout=op_timeout,
        max_respawns=max_respawns, stages=stages)
    for spec in workload.tenants:
        cluster.register(spec)
    cluster.start()
    try:
        if arm_exit is not None:
            cluster.arm_worker_exit(*arm_exit)
        t0 = time.perf_counter()
        for arrival in workload.arrivals:
            cluster.submit(arrival.tenant, arrival.messages,
                           arrival.requests, at_vt=arrival.vt)
        if workload.arrivals:
            cluster.advance_to(cluster.now
                               + 2.0 * cluster.batching.max_delay_vt)
        cluster.drain()
        cluster.sync()
        wall = time.perf_counter() - t0
    finally:
        cluster.stop()
    return cluster, wall
