"""Unified message / receive-request queues (Section V, first paragraph).

CPUs keep messages and receive requests in four structures (UMQ, PRQ, and
the transient incoming message / new request); the paper's GPU design
*unifies* them: "The UMQ is placed at the head of the message queue and
the PRQ at the head of the receive request queue."  New arrivals append at
the tail; matching consumes from the head region; compaction advances the
head pointer.

:class:`UnifiedQueue` implements that structure for envelopes plus an
opaque per-entry payload handle, and records the depth statistics
(max/mean occupancy per match attempt) that the trace analysis compares
against Figure 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from .compaction import compact_batch
from .envelope import Envelope, EnvelopeBatch

__all__ = ["UnifiedQueue", "QueueStats"]


@dataclass
class QueueStats:
    """Occupancy statistics of one queue."""

    max_depth: int = 0
    total_depth: int = 0
    observations: int = 0
    appended: int = 0
    consumed: int = 0

    def observe(self, depth: int) -> None:
        """Record the depth seen by one match attempt."""
        self.max_depth = max(self.max_depth, depth)
        self.total_depth += depth
        self.observations += 1

    @property
    def mean_depth(self) -> float:
        """Mean depth across observations (0 when never observed)."""
        return (self.total_depth / self.observations
                if self.observations else 0.0)


class UnifiedQueue:
    """Append-at-tail, match-at-head queue of envelopes with payloads.

    The queue is backed by growable Python-side lists that are snapshot
    into an :class:`~repro.core.envelope.EnvelopeBatch` for each matching
    pass -- mirroring how the GPU kernels read a contiguous global-memory
    window.

    Parameters
    ----------
    name:
        Label used in diagnostics ("UMQ", "PRQ", "queue3", ...).
    capacity:
        Optional hard bound; exceeding it raises (GPU queues are
        statically sized -- there is no in-kernel malloc, as the paper
        laments in Section VII-C).
    obs:
        Optional :class:`~repro.obs.Observability` handle: depth
        observations additionally feed a per-queue gauge and the shared
        ``queue.depth`` histogram.
    """

    def __init__(self, name: str = "queue", capacity: int | None = None,
                 obs=None) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError("capacity must be positive when given")
        self.name = name
        self.capacity = capacity
        self._obs = obs
        self._src: list[int] = []
        self._tag: list[int] = []
        self._comm: list[int] = []
        self._payload: list[Any] = []
        self._seq: list[int] = []
        self._next_seq = 0
        self.stats = QueueStats()

    # -- container protocol ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._src)

    def __bool__(self) -> bool:
        return len(self) > 0

    def __repr__(self) -> str:
        return f"UnifiedQueue({self.name!r}, depth={len(self)})"

    # -- mutation ---------------------------------------------------------------------

    def append(self, envelope: Envelope, payload: Any = None) -> int:
        """Append at the tail; returns the entry's sequence number."""
        if self.capacity is not None and len(self) >= self.capacity:
            raise OverflowError(
                f"{self.name} full ({self.capacity} entries); GPU queues "
                "are statically sized")
        self._src.append(envelope.src)
        self._tag.append(envelope.tag)
        self._comm.append(envelope.comm)
        self._payload.append(payload)
        seq = self._next_seq
        self._seq.append(seq)
        self._next_seq += 1
        self.stats.appended += 1
        return seq

    def extend(self, batch: EnvelopeBatch,
               payloads: list[Any] | None = None) -> None:
        """Append a whole batch (payloads optional, same length)."""
        if payloads is not None and len(payloads) != len(batch):
            raise ValueError("payloads must match batch length")
        for i, env in enumerate(batch):
            self.append(env, payloads[i] if payloads is not None else None)

    def consume(self, indices: np.ndarray) -> list[Any]:
        """Remove the given positions (post-match compaction).

        Returns the payloads of the removed entries, in the order given.
        The remaining entries keep their relative order, exactly like the
        prefix-scan compaction on the device.
        """
        idx = np.asarray(indices, dtype=np.int64)
        if idx.size == 0:
            return []
        if (idx < 0).any() or (idx >= len(self)).any():
            raise IndexError(f"consume index out of range for {self.name}")
        if np.unique(idx).size != idx.size:
            raise ValueError("duplicate consume indices")
        payloads = [self._payload[int(i)] for i in idx]
        keep = np.ones(len(self), dtype=bool)
        keep[idx] = False
        batch, _ = compact_batch(self.snapshot(), keep)
        kept = np.nonzero(keep)[0]
        self._src = list(batch.src)
        self._tag = list(batch.tag)
        self._comm = list(batch.comm)
        self._payload = [self._payload[int(i)] for i in kept]
        self._seq = [self._seq[int(i)] for i in kept]
        self.stats.consumed += idx.size
        return payloads

    # -- inspection ---------------------------------------------------------------------

    def snapshot(self) -> EnvelopeBatch:
        """Contiguous envelope view of the queue, head first."""
        return EnvelopeBatch(src=self._src, tag=self._tag, comm=self._comm)

    def payload_at(self, index: int) -> Any:
        """Payload of the entry at ``index`` (head = 0)."""
        return self._payload[index]

    def seq_at(self, index: int) -> int:
        """Global arrival sequence number of the entry at ``index``."""
        return self._seq[index]

    @property
    def last_seq(self) -> int:
        """Highest sequence number ever appended (-1 when none)."""
        return self._next_seq - 1

    def indices_newer_than(self, seq: int) -> np.ndarray:
        """Positions of entries appended after sequence ``seq``."""
        return np.array([i for i, s in enumerate(self._seq) if s > seq],
                        dtype=np.int64)

    def indices_not_newer_than(self, seq: int) -> np.ndarray:
        """Positions of entries appended at or before sequence ``seq``."""
        return np.array([i for i, s in enumerate(self._seq) if s <= seq],
                        dtype=np.int64)

    def observe_depth(self) -> None:
        """Record the current depth into the statistics (one match attempt)."""
        depth = len(self)
        self.stats.observe(depth)
        if self._obs is not None:
            self._obs.gauge(f"queue.{self.name}.depth", float(depth))
            self._obs.observe("queue.depth", float(depth))
