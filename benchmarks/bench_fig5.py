"""Figure 5: rank-partitioned matching rate vs total queue length.

Paper shape (Pascal GTX 1080): performance scales almost linearly up to
four queues and just below linear beyond; queue lengths beyond the
capacity of the two resident CTAs force additional CTAs whose waves
serialize; the annotated CTA counts are ceil(total/1024).  The GTX 1080
averages 2.12x over the Kepler K80 and 1.56x over the Maxwell M40.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench import Table, anchor, format_rate, matching_workload, \
    write_result
from repro.core.partitioned import PartitionedMatcher
from repro.simt.gpu import GPU

TOTAL_LENGTHS = (512, 1024, 2048, 4096, 8192)
QUEUE_COUNTS = (1, 2, 4, 8, 16, 32)


def figure5_rates(spec=None) -> dict[int, dict[int, tuple[float, int, int]]]:
    """{total_length: {n_queues: (rate, ctas, waves)}} on one device."""
    spec = spec if spec is not None else GPU.pascal_gtx1080()
    out: dict[int, dict[int, tuple[float, int, int]]] = {}
    for total in TOTAL_LENGTHS:
        msgs, reqs = matching_workload(total, n_ranks=64, n_tags=8)
        row = {}
        for q in QUEUE_COUNTS:
            o = PartitionedMatcher(spec=spec, n_queues=q).match(msgs, reqs)
            row[q] = (o.matches_per_second(), o.meta["ctas"],
                      o.meta["waves"])
        out[total] = row
    return out


def test_report_figure5():
    rates = figure5_rates()
    table = Table(
        title="Figure 5 -- partitioned matching rate vs total queue length "
              "(Pascal GTX1080)",
        columns=["total"] + [f"Q={q}" for q in QUEUE_COUNTS] + ["CTAs(waves)"])
    for total in TOTAL_LENGTHS:
        row = rates[total]
        ctas, waves = row[QUEUE_COUNTS[-1]][1], row[QUEUE_COUNTS[-1]][2]
        table.add(total, *(format_rate(row[q][0]) for q in QUEUE_COUNTS),
                  f"{ctas}({waves})")
    table.note("paper: ~linear scaling to 4 queues, just below linear after")
    table.note(f"paper partitioned ceiling: "
               f"{format_rate(anchor('partitioned/pascal_peak'))} "
               f"(measured at 1024/Q=32: "
               f"{format_rate(rates[1024][32][0])})")
    write_result("fig5", table.show())

    # shape: monotone in Q everywhere; ~60M ceiling; serialization at 8192
    for total in TOTAL_LENGTHS:
        seq = [rates[total][q][0] for q in QUEUE_COUNTS]
        assert all(a < b for a, b in zip(seq, seq[1:])), total
    assert rates[1024][32][0] == pytest.approx(
        anchor("partitioned/pascal_peak"), rel=0.2)
    assert rates[8192][8][2] > 1  # waves > 1: CTA serialization engaged


def test_report_figure5_speedups():
    msgs, reqs = matching_workload(2048, n_ranks=64, n_tags=8, seed=77)
    table = Table(
        title="Figure 5 (cross-generation) -- Pascal speedup by queue count",
        columns=["Q", "vs Kepler K80", "vs Maxwell M40"])
    ratios_k, ratios_m = [], []
    for q in QUEUE_COUNTS:
        rp = PartitionedMatcher(spec=GPU.pascal_gtx1080(),
                                n_queues=q).match(msgs, reqs)
        rk = PartitionedMatcher(spec=GPU.kepler_k80(),
                                n_queues=q).match(msgs, reqs)
        rm = PartitionedMatcher(spec=GPU.maxwell_m40(),
                                n_queues=q).match(msgs, reqs)
        k = rp.matches_per_second() / rk.matches_per_second()
        m = rp.matches_per_second() / rm.matches_per_second()
        ratios_k.append(k)
        ratios_m.append(m)
        table.add(q, f"{k:.2f}x", f"{m:.2f}x")
    table.add("mean", f"{np.mean(ratios_k):.2f}x", f"{np.mean(ratios_m):.2f}x")
    table.note("paper: average speedups 2.12x (vs K80) and 1.56x (vs M40)")
    write_result("fig5_speedups", table.show())
    assert np.mean(ratios_k) == pytest.approx(2.12, rel=0.15)
    assert np.mean(ratios_m) == pytest.approx(1.56, rel=0.15)


@pytest.mark.parametrize("q", [1, 8, 32])
def test_perf_partitioned_match(benchmark, q):
    msgs, reqs = matching_workload(1024, n_ranks=64, n_tags=8)
    matcher = PartitionedMatcher(n_queues=q)
    outcome = benchmark(matcher.match, msgs, reqs)
    assert outcome.matched_count == 1024


if __name__ == "__main__":
    test_report_figure5()
    test_report_figure5_speedups()
