"""Partitioned channels over the combining fabric.

Differential contract: a same-seed partitioned superstep sequence is
bit-identical between the in-process :class:`MatchingService` and the
multi-process :class:`ClusterService`, and each channel epoch costs
exactly one matched envelope regardless of partition count.
"""

from __future__ import annotations

import pytest

from repro.serve import (ClusterService, CollectiveBridge, FabricError,
                         FabricLink, MatchingService, TenantSpec)

SPAN = 4


def make_service(n_shards: int, seed: int = 7) -> MatchingService:
    svc = MatchingService(n_shards=n_shards, seed=seed)
    svc.register(TenantSpec(name="mpi", span=SPAN, autotune=False))
    return svc


def keyed_flushes(plane) -> dict:
    return {(r.tenant, r.flush_seq):
            (r.flush_vt, tuple(r.covered_seqs), tuple(r.latencies_vt),
             r.engine_label, tuple(r.outcome.request_to_message.tolist()))
            for r in plane.results}


def drive_epochs(plane, *, epochs: int, partitions: int) -> list:
    bridge = CollectiveBridge(plane, "mpi")
    ps = bridge.psend_init(0, 1, partitions, tag=3)
    pr = bridge.precv_init(1, 0, partitions, tag=3)
    out = []
    for epoch in range(epochs):
        ps.start()
        pr.start()
        for i in range(partitions):
            ps.pready(i, (epoch, i))
        ps.wait()
        out.append(pr.wait())
    return out


class TestEpochs:
    def test_payloads_delivered_in_index_order_across_epochs(self):
        out = drive_epochs(make_service(3), epochs=3, partitions=5)
        assert out == [[(e, i) for i in range(5)] for e in range(3)]

    def test_one_match_per_channel_epoch(self):
        svc = make_service(3)
        drive_epochs(svc, epochs=4, partitions=16)
        # 64 partition transfers, but matching only ever saw the four
        # binding envelopes
        assert svc.report()["matched"] == 4

    def test_parrived_after_superstep(self):
        bridge = CollectiveBridge(make_service(2), "mpi")
        ps = bridge.psend_init(0, 1, 3, tag=1)
        pr = bridge.precv_init(1, 0, 3, tag=1)
        ps.start()
        pr.start()
        ps.pready_range(0, 3, ["a", "b", "c"])
        assert not pr.parrived(0)  # superstep has not run yet
        ps.wait()
        assert pr.parrived(0) and pr.parrived(2)
        assert pr.wait() == ["a", "b", "c"]

    def test_pready_range_fast_path_charges_bytes(self):
        bridge = CollectiveBridge(make_service(2), "mpi")
        ps = bridge.psend_init(0, 1, 8, tag=1, bytes_per_partition=100)
        pr = bridge.precv_init(1, 0, 8, tag=1)
        ps.start()
        pr.start()
        ps.pready_range(0, 8)
        assert ps._wire.nbytes == 800
        ps.wait()
        assert pr.wait() == [None] * 8

    def test_partition_bytes_grow_wire_time(self):
        def wire_for(bpp: int) -> float:
            # n_shards=3 places ranks 0 and 1 on different shards, so
            # the channel actually crosses the fabric (all-local
            # traffic is never charged wire time)
            svc = make_service(3)
            bridge = CollectiveBridge(svc, "mpi",
                                      link=FabricLink(bytes_per_envelope=16))
            ps = bridge.psend_init(0, 1, 8, tag=1, bytes_per_partition=bpp)
            pr = bridge.precv_init(1, 0, 8, tag=1)
            ps.start()
            pr.start()
            ps.pready_range(0, 8)
            ps.wait()
            pr.wait()
            return bridge.fabric.wire_seconds_total

        assert wire_for(1 << 16) > wire_for(8) > 0


class TestErrorPaths:
    def test_pready_after_flush_rejected(self):
        bridge = CollectiveBridge(make_service(2), "mpi")
        ps = bridge.psend_init(0, 1, 2, tag=1)
        pr = bridge.precv_init(1, 0, 2, tag=1)
        ps.start()
        pr.start()
        ps.pready(0)
        with pytest.raises(FabricError, match="never"):
            ps.wait()  # partition 1 missing
        ps._state["mask"][1] = True
        ps.wait()  # flushes the superstep
        ps2 = bridge.psend_init(0, 1, 2, tag=2)
        ps2.start()
        bridge.step()
        with pytest.raises(RuntimeError, match="superstep flushed"):
            ps2.pready(0)
        with pytest.raises(RuntimeError, match="superstep flushed"):
            ps2.pready_range(0, 2)

    def test_double_pready_rejected_on_both_paths(self):
        bridge = CollectiveBridge(make_service(2), "mpi")
        ps = bridge.psend_init(0, 1, 4, tag=1).start()
        bridge.precv_init(1, 0, 4, tag=1).start()
        ps.pready(1)
        with pytest.raises(RuntimeError, match="already marked"):
            ps.pready(1)
        with pytest.raises(RuntimeError, match=r"\[1\] already"):
            ps.pready_range(0, 4)

    def test_pready_range_bounds(self):
        bridge = CollectiveBridge(make_service(2), "mpi")
        ps = bridge.psend_init(0, 1, 4, tag=1).start()
        bridge.precv_init(1, 0, 4, tag=1).start()
        with pytest.raises(IndexError):
            ps.pready_range(0, 5)
        with pytest.raises(IndexError):
            ps.pready_range(-1, 2)

    def test_partition_count_mismatch(self):
        bridge = CollectiveBridge(make_service(2), "mpi")
        ps = bridge.psend_init(0, 1, 4, tag=5)
        pr = bridge.precv_init(1, 0, 8, tag=5)
        ps.start()
        pr.start()
        ps.pready_range(0, 4)
        ps.wait()
        with pytest.raises(FabricError, match="mismatch"):
            pr.wait()

    def test_binding_tag_shared_with_plain_traffic(self):
        bridge = CollectiveBridge(make_service(2), "mpi")
        pr = bridge.precv_init(1, 0, 2, tag=4)
        pr.start()
        bridge.isend(0, 1, "plain", tag=4)
        bridge.step()
        with pytest.raises(FabricError, match="non-partitioned"):
            pr.wait()

    def test_epoch_skew_detected(self):
        bridge = CollectiveBridge(make_service(2), "mpi")
        ps = bridge.psend_init(0, 1, 2, tag=6)
        pr = bridge.precv_init(1, 0, 2, tag=6)
        pr.epoch = 3  # receiver thinks it is ahead
        ps.start()
        pr.start()
        ps.pready_range(0, 2)
        ps.wait()
        with pytest.raises(FabricError, match="epoch skew"):
            pr.wait()

    def test_validation(self):
        bridge = CollectiveBridge(make_service(2), "mpi")
        with pytest.raises(ValueError):
            bridge.psend_init(0, 1, 0)
        with pytest.raises(ValueError):
            bridge.psend_init(0, 1, 2, bytes_per_partition=-1)
        with pytest.raises(ValueError):
            bridge.psend_init(0, SPAN, 2)


class TestClusterIdentity:
    def test_fork_bit_identity(self):
        svc = make_service(3)
        out_s = drive_epochs(svc, epochs=3, partitions=8)
        rep_s = svc.report()
        cl = ClusterService(n_workers=3, seed=7, start_method="fork")
        cl.register(TenantSpec(name="mpi", span=SPAN, autotune=False))
        with cl:
            out_c = drive_epochs(cl, epochs=3, partitions=8)
            rep_c = cl.report()
        assert out_c == out_s
        assert keyed_flushes(cl) == keyed_flushes(svc)
        assert rep_c == rep_s


class TestNeighborhoodOverFabric:
    """The bridge duck-types the collective surface, so the topology
    collectives route through the combining fabric unchanged; their
    sparse edges must agree with a direct in-process Cluster run."""

    @staticmethod
    def _drive(comm):
        from repro.mpi import CartGraph, neighbor_alltoall
        topo = CartGraph((2, 2), periodic=False)
        sends = [[(r, d) for d in topo.destinations(r)]
                 for r in range(topo.n_ranks)]
        return neighbor_alltoall(comm, topo, sends)

    def test_bridge_matches_direct_cluster(self):
        from repro.mpi import Cluster, Communicator
        bridge = CollectiveBridge(make_service(3), "mpi")
        direct = Communicator(Cluster(SPAN))
        assert self._drive(bridge) == self._drive(direct)

    def test_bridge_matches_fork_cluster(self):
        svc = make_service(3)
        out_s = self._drive(CollectiveBridge(svc, "mpi"))
        cl = ClusterService(n_workers=3, seed=7, start_method="fork")
        cl.register(TenantSpec(name="mpi", span=SPAN, autotune=False))
        with cl:
            out_c = self._drive(CollectiveBridge(cl, "mpi"))
        assert out_c == out_s
        assert keyed_flushes(cl) == keyed_flushes(svc)
