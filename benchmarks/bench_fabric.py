"""Combining-fabric sweep: shard pairs x fan-out x message size.

Not a paper figure.  Drives a spanning tenant's
:class:`repro.serve.CollectiveBridge` through ring-exchange supersteps
and an alltoall acceptance point, sweeping shard count, per-rank
fan-out, and modeled message size
(:class:`repro.serve.FabricLink.bytes_per_envelope`), and appends
labeled entries to ``BENCH_serve.json`` under fabric-specific record
fields (``span``, ``combine_ratio``, ``pair_batches``,
``fabric_messages``, ``per_pair_batches``, ``wire_virtual_seconds``,
``supersteps``).

The figure of merit is the **combine ratio** -- inter-shard messages
carried per combined pair batch.  Träff-style message combining means
the batch count scales with communicating *shard pairs* per superstep,
not with messages: doubling fan-out doubles the combine ratio and the
wire bytes, but leaves the batch count flat.  The alltoall point pins
the acceptance criterion directly: exactly one combined batch per
ordered occupied-shard pair per superstep.

Usage::

    PYTHONPATH=src python benchmarks/bench_fabric.py [--smoke]
        [--label LABEL] [--no-json] [--seed SEED] [--span N]
        [--supersteps N] [--shards 2,4] [--fanouts 1,3]
        [--sizes 8,256]

``--smoke`` runs a tiny sweep into a temporary report file,
schema-checks the fabric fields, asserts the one-batch-per-pair
acceptance criterion, and leaves ``BENCH_serve.json`` untouched (the CI
fabric job runs this mode).
"""

from __future__ import annotations

import argparse
import json
import tempfile
import time
from pathlib import Path

from repro.bench import Table, format_rate, write_result
from repro.bench.regression import (ServePerfRecord, append_entry,
                                    serve_report_path, validate_serve_entry)
from repro.mpi import CartGraph
from repro.mpi import collectives as C
from repro.serve import (CollectiveBridge, FabricLink, MatchingService,
                         TenantSpec, stable_shard)


def spanning_name(span: int, n_shards: int) -> str:
    """A base name whose ``name#i`` sub-tenants occupy all shards.

    Placement is ``crc32(name#i) % n``; names are searched so the sweep
    measures combining over exactly ``n_shards`` communicating shards,
    not placement luck.

    CRC32's low output bits are insensitive to the low two bits of the
    last input byte, so sub-indices ``#0..#3`` always agree mod 2 and
    mod 4 -- on power-of-two shard counts no name can span with
    ``span <= 4``.  The search is bounded so an impossible request
    fails loudly instead of spinning.
    """
    for k in range(10_000):
        name = f"fab{k}"
        occupied = {stable_shard(f"{name}#{i}", n_shards)
                    for i in range(span)}
        if len(occupied) == n_shards:
            return name
    raise SystemExit(
        f"no base name spans {n_shards} shards at span={span} "
        f"(CRC32 placement aliases low sub-indices on power-of-two "
        f"shard counts; raise --span)")


def make_bridge(*, n_shards: int, span: int, seed: int,
                payload_bytes: int) -> tuple[MatchingService,
                                             CollectiveBridge]:
    svc = MatchingService(n_shards=n_shards, seed=seed)
    name = spanning_name(span, n_shards)
    svc.register(TenantSpec(name=name, span=span, autotune=False))
    link = FabricLink(bytes_per_envelope=8 + payload_bytes)
    return svc, CollectiveBridge(svc, name, link=link)


def drive_ring(bridge: CollectiveBridge, *, supersteps: int,
               fanout: int) -> None:
    """``supersteps`` BSP rounds: every rank exchanges with its
    ``fanout`` ring neighbours on each side's distinct tag."""
    span = bridge.size
    if fanout >= span:
        raise ValueError("fanout must be < span")
    for _ in range(supersteps):
        reqs = []
        for r in range(span):
            for d in range(1, fanout + 1):
                reqs.append(bridge.irecv(r, (r - d) % span, tag=d))
        for r in range(span):
            for d in range(1, fanout + 1):
                bridge.isend(r, (r + d) % span, (r, d), tag=d)
        for req in reqs:
            req.wait()


def record_point(svc: MatchingService, bridge: CollectiveBridge, *,
                 name: str, n_shards: int, wall: float,
                 seed: int) -> ServePerfRecord:
    fabric = bridge.fabric
    report = svc.report()
    matched = report["matched"]
    return ServePerfRecord(
        workload=name,
        tenants=bridge.size,
        n_envelopes=2 * (fabric.fabric_messages_total
                         + fabric.local_messages_total),
        submitted=report["submitted"],
        accepted=report["accepted"],
        shed_retryable=report["shed_retryable"],
        shed_overloaded=report["shed_overloaded"],
        flushes=report["flushes"],
        matched=matched,
        retunes=report["retunes"],
        seconds=wall,
        matches_per_second=matched / wall if wall > 0 else 0.0,
        latency_p50_vt=report["latency_p50_vt"],
        latency_p99_vt=report["latency_p99_vt"],
        seed=seed,
        procs=n_shards,
        span=bridge.size,
        combine_ratio=(fabric.combine_ratio
                       if fabric.pair_batches_total else None),
        pair_batches=fabric.pair_batches_total,
        fabric_messages=fabric.fabric_messages_total,
        per_pair_batches={f"{s}->{d}": n for (s, d), n
                          in sorted(fabric.per_pair_batches.items())},
        wire_virtual_seconds=fabric.wire_seconds_total,
        supersteps=fabric.supersteps,
    )


def run_ring_point(*, n_shards: int, span: int, fanout: int,
                   payload_bytes: int, supersteps: int,
                   seed: int) -> ServePerfRecord:
    svc, bridge = make_bridge(n_shards=n_shards, span=span, seed=seed,
                              payload_bytes=payload_bytes)
    t0 = time.perf_counter()
    drive_ring(bridge, supersteps=supersteps, fanout=fanout)
    wall = time.perf_counter() - t0
    return record_point(
        svc, bridge, seed=seed, n_shards=n_shards, wall=wall,
        name=f"fabric-s{n_shards}-f{fanout}-b{payload_bytes}")


def run_alltoall_point(*, n_shards: int, span: int, payload_bytes: int,
                       supersteps: int, seed: int) -> ServePerfRecord:
    """The acceptance point: each alltoall superstep must produce
    exactly one combined batch per ordered occupied-shard pair."""
    svc, bridge = make_bridge(n_shards=n_shards, span=span, seed=seed,
                              payload_bytes=payload_bytes)
    t0 = time.perf_counter()
    for _ in range(supersteps):
        C.alltoall(bridge, [[(i, j) for j in range(span)]
                            for i in range(span)])
    wall = time.perf_counter() - t0
    fabric = bridge.fabric
    n_pairs = n_shards * (n_shards - 1)
    if fabric.supersteps != supersteps:
        raise SystemExit(f"alltoall took {fabric.supersteps} supersteps "
                         f"(expected {supersteps})")
    bad = {pair: n for pair, n in fabric.per_pair_batches.items()
           if n != supersteps}
    if bad or len(fabric.per_pair_batches) != n_pairs:
        raise SystemExit(
            f"combining violated: expected one batch per ordered pair "
            f"per superstep ({n_pairs} pairs x {supersteps}), got "
            f"{dict(fabric.per_pair_batches)}")
    return record_point(svc, bridge, seed=seed, n_shards=n_shards,
                        wall=wall, name=f"fabric-alltoall-s{n_shards}")


def run_neighbor_point(*, n_shards: int, span: int, payload_bytes: int,
                       supersteps: int, seed: int) -> ServePerfRecord:
    """Sparse neighborhood collective over a periodic Cartesian grid:
    only declared edges carry traffic, and those that cross shards must
    still coalesce -- at most one combined batch per ordered occupied
    pair per superstep (sparsity can only *reduce* the pair count,
    never multiply batches)."""
    svc, bridge = make_bridge(n_shards=n_shards, span=span, seed=seed,
                              payload_bytes=payload_bytes)
    topo = CartGraph((span // 2, 2) if span % 2 == 0 else (span,),
                     periodic=True)
    t0 = time.perf_counter()
    for _ in range(supersteps):
        C.neighbor_alltoall(
            bridge, topo,
            [[(r, d) for d in topo.destinations(r)] for r in range(span)])
    wall = time.perf_counter() - t0
    fabric = bridge.fabric
    too_many = {pair: n for pair, n in fabric.per_pair_batches.items()
                if n > supersteps}
    if too_many:
        raise SystemExit(
            f"neighborhood combining violated: pair batches exceeded one "
            f"per superstep: {too_many}")
    return record_point(svc, bridge, seed=seed, n_shards=n_shards,
                        wall=wall, name=f"fabric-neighbor-s{n_shards}")


def fabric_table(records: list[ServePerfRecord],
                 title: str = "Combining fabric sweep") -> Table:
    table = Table(title=title,
                  columns=["point", "span", "shards", "supersteps",
                           "pair batches", "messages", "combine",
                           "wire vt", "match rate"])
    for r in records:
        combine = (f"{r.combine_ratio:.2f}"
                   if r.combine_ratio is not None else "-")
        table.add(r.workload, r.span, r.procs, r.supersteps,
                  r.pair_batches, r.fabric_messages, combine,
                  f"{r.wire_virtual_seconds * 1e6:.2f}us",
                  format_rate(r.matches_per_second))
    table.note("combine = inter-shard messages per combined pair batch; "
               "batch count scales with communicating shard pairs per "
               "superstep, never with fan-out or message count")
    return table


def sweep(*, shards: tuple[int, ...], fanouts: tuple[int, ...],
          sizes: tuple[int, ...], span: int, supersteps: int,
          seed: int) -> list[ServePerfRecord]:
    records = []
    for n_shards in shards:
        for fanout in fanouts:
            for payload_bytes in sizes:
                records.append(run_ring_point(
                    n_shards=n_shards, span=span, fanout=fanout,
                    payload_bytes=payload_bytes, supersteps=supersteps,
                    seed=seed))
        records.append(run_alltoall_point(
            n_shards=n_shards, span=span, payload_bytes=max(sizes),
            supersteps=max(1, supersteps // 2), seed=seed))
        records.append(run_neighbor_point(
            n_shards=n_shards, span=span, payload_bytes=max(sizes),
            supersteps=max(1, supersteps // 2), seed=seed))
    return records


def smoke_check(seed: int = 0) -> list[ServePerfRecord]:
    """CI mode: tiny sweep, acceptance assertion, temp-report schema
    check, no committed-report write."""
    records = sweep(shards=(2,), fanouts=(1,), sizes=(8,), span=8,
                    supersteps=2, seed=seed)
    for rec in records:
        if rec.combine_ratio is not None and rec.combine_ratio < 1.0:
            raise SystemExit(f"{rec.workload}: combine ratio below 1.0")
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "BENCH_serve.json"
        append_entry(records, label="smoke-fabric", path=path)
        with open(path) as f:
            report = json.load(f)
        problems = validate_serve_entry(report["entries"][-1])
        if problems:
            raise SystemExit("fabric report schema check failed:\n  "
                             + "\n  ".join(problems))
    return records


def main(argv: list[str] | None = None) -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--smoke", action="store_true",
                    help="tiny sweep + schema/acceptance check; no "
                         "report-file write")
    ap.add_argument("--label", default="fabric",
                    help="entry label in BENCH_serve.json")
    ap.add_argument("--no-json", action="store_true",
                    help="print tables without touching the report file")
    ap.add_argument("--seed", type=int, default=0)
    ap.add_argument("--span", type=int, default=8,
                    help="spanning tenant rank count")
    ap.add_argument("--supersteps", type=int, default=6,
                    help="ring-exchange supersteps per point")
    ap.add_argument("--shards", default="2,4",
                    help="comma-separated shard counts")
    ap.add_argument("--fanouts", default="1,3",
                    help="comma-separated per-rank ring fan-outs")
    ap.add_argument("--sizes", default="8,256",
                    help="comma-separated modeled payload bytes")
    args = ap.parse_args(argv)

    if args.smoke:
        records = smoke_check(seed=args.seed)
        fabric_table(records,
                     title="Fabric smoke (schema checked)").show()
        print("fabric report schema: ok")
        print("one-batch-per-pair acceptance: ok")
        return

    records = sweep(shards=tuple(int(s) for s in args.shards.split(",")),
                    fanouts=tuple(int(f) for f in args.fanouts.split(",")),
                    sizes=tuple(int(b) for b in args.sizes.split(",")),
                    span=args.span, supersteps=args.supersteps,
                    seed=args.seed)
    write_result("fabric_combining", fabric_table(records).show())
    if not args.no_json:
        append_entry(records, label=args.label, path=serve_report_path())
        print(f"appended entry {args.label!r} to {serve_report_path()}")


if __name__ == "__main__":
    main()
