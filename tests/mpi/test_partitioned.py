"""MPI-4 partitioned communication: match once, re-fire many."""

from __future__ import annotations

import pytest

from repro.mpi import (Cluster, Communicator, FaultPlan, FaultSpec,
                       chaos_plan, precv_init, psend_init)


def make_comm(p: int, **kw) -> Communicator:
    return Communicator(Cluster(p, **kw))


def total_matches(comm: Communicator) -> int:
    return sum(ep.matches_total for ep in comm.cluster.endpoints)


def run_epoch(ps, pr, payloads) -> list:
    ps.start()
    pr.start()
    for i, p in enumerate(payloads):
        ps.pready(i, p)
    ps.wait()
    return pr.wait()


class TestMatchOnce:
    def test_one_match_per_epoch_regardless_of_partitions(self):
        comm = make_comm(2)
        ps = psend_init(comm, 0, 1, partitions=16, tag=3)
        pr = precv_init(comm, 1, 0, partitions=16, tag=3)
        before = total_matches(comm)
        for epoch in range(5):
            got = run_epoch(ps, pr, [(epoch, i) for i in range(16)])
            assert got == [(epoch, i) for i in range(16)]
        # 5 epochs x 16 partitions, but exactly 5 matched envelopes:
        # the binding is the only message that ever enters matching
        assert total_matches(comm) - before == 5

    def test_partition_frames_bypass_umq(self):
        comm = make_comm(2)
        ps = psend_init(comm, 0, 1, partitions=4, tag=1)
        pr = precv_init(comm, 1, 0, partitions=4, tag=1)
        run_epoch(ps, pr, list(range(4)))
        router = comm.cluster.partitioned
        stats = router.stats()
        assert stats["frames_total"] == 4
        assert stats["channels"] >= 1
        assert stats["staged_pending"] == 0

    def test_init_performs_no_communication(self):
        comm = make_comm(2)
        psend_init(comm, 0, 1, partitions=8)
        precv_init(comm, 1, 0, partitions=8)
        before = total_matches(comm)
        comm.cluster.drain()
        assert total_matches(comm) == before


class TestPerPartitionCompletion:
    def test_parrived_tracks_individual_partitions(self):
        comm = make_comm(2)
        ps = psend_init(comm, 0, 1, partitions=4, tag=2)
        pr = precv_init(comm, 1, 0, partitions=4, tag=2)
        ps.start()
        pr.start()
        ps.pready(2, "two")
        assert pr.parrived(2)
        assert not pr.parrived(0)
        ps.pready_range(0, 2, ["zero", "one"])
        ps.pready(3, "three")
        assert pr.parrived(0) and pr.parrived(1) and pr.parrived(3)
        ps.wait()
        assert pr.wait() == ["zero", "one", "two", "three"]

    def test_send_side_test_requires_all_fired(self):
        comm = make_comm(2)
        ps = psend_init(comm, 0, 1, partitions=3)
        pr = precv_init(comm, 1, 0, partitions=3)
        ps.start()
        pr.start()
        ps.pready(0)
        assert not ps.test()
        ps.pready_range(1, 3)
        assert ps.test()
        ps.wait()
        pr.wait()

    def test_frames_arriving_before_binding_are_staged(self):
        """Sender fires everything before the receiver even starts:
        frames stage in the router, then drain at bind."""
        comm = make_comm(2)
        ps = psend_init(comm, 0, 1, partitions=4, tag=9)
        pr = precv_init(comm, 1, 0, partitions=4, tag=9)
        ps.start()
        for i in range(4):
            ps.pready(i, i * 10)
        comm.cluster.drain()  # frames land with no bound receiver
        assert comm.cluster.partitioned.stats()["staged_pending"] == 4
        pr.start()
        assert pr.wait() == [0, 10, 20, 30]
        ps.wait()
        assert comm.cluster.partitioned.stats()["staged_pending"] == 0


class TestErrorPaths:
    def test_double_start_rejected(self):
        comm = make_comm(2)
        ps = psend_init(comm, 0, 1, partitions=2)
        ps.start()
        with pytest.raises(RuntimeError, match="already-active"):
            ps.start()

    def test_ops_require_start(self):
        comm = make_comm(2)
        ps = psend_init(comm, 0, 1, partitions=2)
        pr = precv_init(comm, 1, 0, partitions=2)
        with pytest.raises(RuntimeError, match="inactive"):
            ps.pready(0)
        with pytest.raises(RuntimeError, match="inactive"):
            pr.parrived(0)
        with pytest.raises(RuntimeError, match="inactive"):
            ps.wait()

    def test_double_pready_rejected(self):
        comm = make_comm(2)
        ps = psend_init(comm, 0, 1, partitions=2).start()
        ps.pready(0)
        with pytest.raises(RuntimeError, match="already marked ready"):
            ps.pready(0)

    def test_index_out_of_range(self):
        comm = make_comm(2)
        ps = psend_init(comm, 0, 1, partitions=2).start()
        with pytest.raises(IndexError):
            ps.pready(2)

    def test_wait_requires_every_partition_fired(self):
        comm = make_comm(2)
        ps = psend_init(comm, 0, 1, partitions=3).start()
        ps.pready(1)
        with pytest.raises(RuntimeError, match=r"\[0, 2\]"):
            ps.wait()

    def test_partition_count_mismatch(self):
        comm = make_comm(2)
        ps = psend_init(comm, 0, 1, partitions=4, tag=5)
        pr = precv_init(comm, 1, 0, partitions=8, tag=5)
        ps.start()
        pr.start()
        for i in range(4):
            ps.pready(i)
        with pytest.raises(ValueError, match="mismatch"):
            pr.wait()

    def test_binding_tag_shared_with_plain_traffic(self):
        """A partitioned receive that matches an ordinary send fails
        loudly instead of binding garbage."""
        comm = make_comm(2)
        pr = precv_init(comm, 1, 0, partitions=2, tag=4)
        pr.start()
        comm.isend(0, 1, "plain message", tag=4)
        with pytest.raises(RuntimeError, match="non-partitioned"):
            pr.wait()

    def test_validation(self):
        comm = make_comm(2)
        with pytest.raises(ValueError):
            psend_init(comm, 0, 1, partitions=0)
        with pytest.raises(ValueError):
            psend_init(comm, 0, 1, partitions=2, bytes_per_partition=-1)


class TestWireAccounting:
    def test_partition_bytes_charged_on_the_wire(self):
        comm = make_comm(2)
        base = comm.cluster.transfer_seconds
        ps = psend_init(comm, 0, 1, partitions=8,
                        bytes_per_partition=1 << 16)
        pr = precv_init(comm, 1, 0, partitions=8)
        run_epoch(ps, pr, [None] * 8)
        big = comm.cluster.transfer_seconds - base

        comm2 = make_comm(2)
        ps2 = psend_init(comm2, 0, 1, partitions=8, bytes_per_partition=8)
        pr2 = precv_init(comm2, 1, 0, partitions=8)
        run_epoch(ps2, pr2, [None] * 8)
        small = comm2.cluster.transfer_seconds
        assert big > small > 0


class TestUnderFaults:
    @pytest.mark.parametrize("spec", [
        FaultSpec(drop=0.2),
        FaultSpec(duplicate=0.3),
        FaultSpec(reorder=0.4),
        FaultSpec(drop=0.1, duplicate=0.1, reorder=0.1, delay=0.1),
    ], ids=["drop", "duplicate", "reorder", "mixed"])
    def test_epochs_complete_with_payload_integrity(self, spec):
        comm = make_comm(2, fault_plan=FaultPlan(seed=11, default=spec))
        ps = psend_init(comm, 0, 1, partitions=8, tag=6)
        pr = precv_init(comm, 1, 0, partitions=8, tag=6)
        for epoch in range(4):
            got = run_epoch(ps, pr, [(epoch, i) for i in range(8)])
            assert got == [(epoch, i) for i in range(8)]

    def test_chaos_run_matches_clean_run(self):
        def drive(cluster: Cluster) -> list:
            comm = Communicator(cluster)
            ps = psend_init(comm, 0, 1, partitions=6, tag=2)
            pr = precv_init(comm, 1, 0, partitions=6, tag=2)
            out = []
            for epoch in range(3):
                out.append(run_epoch(
                    ps, pr, [(epoch, i, "x" * i) for i in range(6)]))
            return out

        clean = drive(Cluster(2))
        chaotic = drive(Cluster(2, fault_plan=chaos_plan(seed=3)))
        assert clean == chaotic

    def test_match_once_survives_faults(self):
        comm = make_comm(2, fault_plan=chaos_plan(seed=7))
        ps = psend_init(comm, 0, 1, partitions=12, tag=1)
        pr = precv_init(comm, 1, 0, partitions=12, tag=1)
        before = total_matches(comm)
        for epoch in range(3):
            run_epoch(ps, pr, list(range(12)))
        # retransmitted bindings are deduplicated by the reliability
        # layer, so matching still sees exactly one envelope per epoch
        assert total_matches(comm) - before == 3
