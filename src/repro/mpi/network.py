"""Global-address-space transport between simulated GPUs.

The paper's methodology (Section II-C): *"NVLink and PCIe systems allow
GPUs to address a peer's memory directly by spanning a virtual global
address space (GAS) across the network.  'Send' operations write messages
to queues in remote memory and 'Receive' operations query the local queue
for new messages."*

:class:`GASNetwork` models exactly that: a send is a remote queue write
that is visible to the target immediately and **in order per (source,
destination) pair** -- the property MPI's non-overtaking guarantee builds
on.  A simple latency/bandwidth model accumulates simulated transfer time
(NVLink-class numbers by default).

When a :class:`~repro.mpi.faults.FaultPlan` is installed the perfect
wire becomes lossy and a :class:`~repro.mpi.reliability.ReliabilityLayer`
is stacked on top, restoring exactly-once pair-ordered delivery via
sequence numbers, acks, and timed retransmission.  Without a plan, none
of that machinery is instantiated: the fault-free path is byte-for-byte
the original immediate-delivery transport.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable

__all__ = ["LinkModel", "NVLINK", "PCIE3", "GASNetwork", "MessageDescriptor",
           "ENVELOPE_BYTES"]

if TYPE_CHECKING:  # pragma: no cover
    from .faults import FaultPlan
    from .reliability import ReliabilityConfig

#: Size of one envelope write (64-bit packed header + pointer/size word).
ENVELOPE_BYTES = 16


@dataclass(frozen=True)
class LinkModel:
    """Point-to-point link cost model.

    Two distinct costs per transfer:

    * :meth:`transfer_seconds` -- end-to-end latency of one message
      (latency + size/bandwidth); the right metric for a dependent
      round trip such as a rendezvous fetch.
    * :meth:`occupancy_seconds` -- how long the message *occupies the
      wire*: back-to-back pipelined messages overlap their latencies, so
      a stream's duration is bounded by per-packet overhead and
      bandwidth, not by latency.  This is the metric that caps message
      rate.
    """

    name: str
    latency_us: float
    bandwidth_gbs: float
    packet_overhead_ns: float = 50.0

    def transfer_seconds(self, nbytes: int) -> float:
        """Latency + size/bandwidth for one dependent transfer."""
        if nbytes < 0:
            raise ValueError("nbytes cannot be negative")
        return self.latency_us * 1e-6 + nbytes / (self.bandwidth_gbs * 1e9)

    def occupancy_seconds(self, nbytes: int) -> float:
        """Wire occupancy of one message in a pipelined stream."""
        if nbytes < 0:
            raise ValueError("nbytes cannot be negative")
        return max(self.packet_overhead_ns * 1e-9,
                   nbytes / (self.bandwidth_gbs * 1e9))


#: NVLink 1.0-class link (Pascal P100 era): ~1.3 us one-way, 20 GB/s/link,
#: ~22 M small packets/s.
NVLINK = LinkModel(name="nvlink", latency_us=1.3, bandwidth_gbs=20.0,
                   packet_overhead_ns=45.0)

#: PCIe 3.0 x16 peer-to-peer: higher latency, ~12 GB/s effective, ~8 M
#: small writes/s.
PCIE3 = LinkModel(name="pcie3", latency_us=2.5, bandwidth_gbs=12.0,
                  packet_overhead_ns=120.0)


@dataclass
class MessageDescriptor:
    """What a send writes into the remote message queue.

    For eager messages ``payload`` is the data itself; for rendezvous
    messages it is a zero-copy *handle* -- the data stays at the source
    until the match triggers the transfer (``fetch`` callback).
    """

    src: int
    dst: int
    tag: int
    comm: int
    nbytes: int
    eager: bool
    payload: Any = None
    fetch: Callable[[], Any] | None = None
    seq: int = 0
    #: partition-frame identity ``(channel, epoch, index)`` for MPI-4
    #: partitioned re-fires (:mod:`repro.mpi.partitioned`).  Partition
    #: frames ride the same wire (sequence numbers, fault plan,
    #: reliability recovery, wire-time charges) but are routed into the
    #: channel's pre-registered landing buffer instead of the UMQ -- the
    #: match happened once, at ``Start``.  ``None`` for ordinary traffic.
    part: tuple[int, int, int] | None = None


class GASNetwork:
    """Delivers message descriptors between endpoints, in pair order.

    Parameters
    ----------
    link:
        Cost model for transfers.
    deliver:
        Callback ``(descriptor, retry=False) -> bool`` installed by the
        cluster; writes the descriptor into the destination endpoint's
        message queue (a remote GAS store in the modelled system) and
        returns False when flow control rejects the store.  ``retry``
        marks re-push attempts of previously rejected stores.
    fault_plan:
        Optional :class:`~repro.mpi.faults.FaultPlan`.  Installing one
        makes the wire lossy *and* stacks the reliability protocol on
        top; ``None`` (default) keeps the idealized reliable wire with
        zero added bookkeeping.
    reliability:
        Optional :class:`~repro.mpi.reliability.ReliabilityConfig`
        tuning the retransmission protocol.  Supplying one without a
        fault plan runs the protocol (seqnos + acks) over a fault-free
        wire, which is useful for measuring its modelled overhead.
    """

    def __init__(self, link: LinkModel = NVLINK,
                 deliver: Callable[..., bool] | None = None,
                 fault_plan: "FaultPlan | None" = None,
                 reliability: "ReliabilityConfig | None" = None,
                 obs=None) -> None:
        self.link = link
        self._deliver = deliver
        self._obs = obs
        self._pair_seq: dict[tuple[int, int], int] = {}
        self._held: dict[tuple[int, int], "deque"] = {}
        self.transfer_seconds_total = 0.0
        self.wire_busy_seconds = 0.0
        self.messages_sent = 0
        self.bytes_sent = 0
        self.holds_total = 0
        self.fault_plan = fault_plan
        self.reliability = None
        if fault_plan is not None or reliability is not None:
            from .faults import FaultPlan
            from .reliability import ReliabilityLayer
            if fault_plan is None:
                self.fault_plan = fault_plan = FaultPlan(seed=0)
            self.reliability = ReliabilityLayer(self, fault_plan,
                                                reliability)

    def attach(self, deliver: Callable[..., bool]) -> None:
        """Install the delivery callback (done by the cluster)."""
        self._deliver = deliver

    def send(self, desc: MessageDescriptor) -> None:
        """Write a descriptor into the destination's queue.

        Envelope writes are small and ordered per pair; eager payloads are
        charged immediately, rendezvous payloads at fetch time via
        :meth:`charge_fetch`.
        """
        if self._deliver is None:
            raise RuntimeError("network not attached to a cluster")
        pair = (desc.src, desc.dst)
        desc.seq = self._pair_seq.get(pair, 0)
        self._pair_seq[pair] = desc.seq + 1
        charged = ENVELOPE_BYTES + (desc.nbytes if desc.eager else 0)
        self.transfer_seconds_total += self.link.transfer_seconds(charged)
        self.wire_busy_seconds += self.link.occupancy_seconds(charged)
        self.messages_sent += 1
        self.bytes_sent += charged
        if self._obs is not None:
            self._obs.count("net.messages_sent")
            self._obs.count("net.bytes_sent", float(charged))
        if self.reliability is not None:
            self.reliability.send(desc)
            return
        self.deliver_or_hold(desc)

    def deliver_or_hold(self, desc: MessageDescriptor) -> bool:
        """Deliver one in-order descriptor, or park it behind flow
        control; preserves pair order across the hold queue."""
        pair = (desc.src, desc.dst)
        held = self._held.get(pair)
        if held is not None:
            # channel already back-pressured: keep pair order, queue behind
            held.append(desc)
            self.holds_total += 1
            if self._obs is not None:
                self._obs.count("net.holds")
            return False
        if not self._deliver(desc):
            self._held[pair] = deque([desc])
            self.holds_total += 1
            if self._obs is not None:
                self._obs.count("net.holds")
            return False
        return True

    def retry_held(self) -> int:
        """Retry the head of every back-pressured channel, in pair order.

        Returns how many held descriptors were delivered.  Called from
        cluster progress (the sender re-attempting its GAS store once
        credits return).
        """
        delivered = 0
        for pair in list(self._held):
            queue = self._held[pair]
            while queue and self._deliver(queue[0], True):
                queue.popleft()
                delivered += 1
            if not queue:
                del self._held[pair]
        return delivered

    def tick(self) -> None:
        """Advance the reliability clock one progress pass (no-op on the
        fault-free fast path)."""
        if self.reliability is not None:
            self.reliability.tick()

    @property
    def reliability_busy(self) -> bool:
        """Is the reliability layer still recovering traffic?"""
        return self.reliability is not None and self.reliability.busy

    @property
    def held_messages(self) -> int:
        """Descriptors currently waiting for ring credits."""
        return sum(len(q) for q in self._held.values())

    def charge_fetch(self, nbytes: int) -> float:
        """Account a rendezvous payload transfer (a dependent round trip,
        so full latency applies); returns its duration."""
        dt = self.link.transfer_seconds(nbytes)
        self.transfer_seconds_total += dt
        self.wire_busy_seconds += self.link.occupancy_seconds(nbytes)
        self.bytes_sent += nbytes
        return dt

    def charge_retransmit(self, desc: MessageDescriptor) -> float:
        """Account one retransmission: the same wire cost as the first
        transmission of the frame (honest recovery accounting)."""
        charged = ENVELOPE_BYTES + (desc.nbytes if desc.eager else 0)
        dt = self.link.transfer_seconds(charged)
        self.transfer_seconds_total += dt
        self.wire_busy_seconds += self.link.occupancy_seconds(charged)
        self.bytes_sent += charged
        if self._obs is not None:
            self._obs.count("net.retransmits")
            self._obs.instant("net.retransmit", src=desc.src, dst=desc.dst,
                              seq=desc.seq)
        return dt

    def charge_control(self, nbytes: int) -> float:
        """Account one control frame (ack/credit return)."""
        dt = self.link.transfer_seconds(nbytes)
        self.transfer_seconds_total += dt
        self.wire_busy_seconds += self.link.occupancy_seconds(nbytes)
        self.bytes_sent += nbytes
        if self._obs is not None:
            self._obs.count("net.acks")
        return dt
