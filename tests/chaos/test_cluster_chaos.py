"""Cluster chaos: SIGKILL worker processes mid-flush, prove nothing is
lost and nothing is matched twice.

Runs outside the tier-1 gate (marked ``chaos``); CI's cluster job
re-selects it with ``-m chaos``.  Seeds come from ``CHAOS_SEEDS``
(comma-separated, default ``11,23,47``), matching the other chaos
suites' matrix.  Each seed randomizes the kill point (which flush the
armed worker dies on).

The invariants are the acceptance criteria of the multi-process
subsystem:

* an admitted envelope is never lost across a worker SIGKILL -- the
  covered-seq ledger equals the accepted-ticket ledger exactly;
* no envelope is matched twice -- recovery replays the journal
  verbatim and the router dedupes flush results by
  ``(tenant, flush_seq)``;
* the recovered run is **bit-identical** to the in-process service
  (kills and recoveries leave no trace in the deterministic record);
* checkpointed recovery (journal truncated at the blob's mark) replays
  only the suffix and preserves the same identity.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.serve import (BatchPolicy, ClusterService, merge_workloads,
                         run_cluster_workload, run_workload, stable_shard,
                         workload_from_app)

pytestmark = pytest.mark.chaos

SEEDS = [int(s) for s in os.environ.get("CHAOS_SEEDS", "11,23,47").split(",")]

# Small batches so both workers flush repeatedly -- the randomized kill
# point (1st-3rd non-empty flush from arming) must always be reachable
# on either worker.
BATCHING = BatchPolicy(max_envelopes=32, max_delay_vt=0.01)


def chaos_workload(seed: int):
    # Tenant names chosen so the stable hash splits them across both
    # workers of a two-worker cluster ("alpha" -> 0, "beta" -> 1);
    # killing either worker then always hits live tenant state.  The
    # small minife chunks give alpha enough arrivals to flush >= 5
    # times under BATCHING (minife's trace is tiny per step).
    parts = [workload_from_app("df_minife", rate_rps=4000.0, n_ranks=32,
                               steps=5, chunk_envelopes=4, seed=seed,
                               tenant_name="alpha", session=True),
             workload_from_app("df_amg", rate_rps=1500.0, n_ranks=16,
                               steps=3, chunk_envelopes=32, seed=seed + 1,
                               ordering_required=False, tenant_name="beta",
                               session=True)]
    return merge_workloads("cluster-chaos", parts)


def assert_exactly_once(cluster):
    """Zero admitted envelopes lost, none matched twice."""
    covered = sorted(s for r in cluster.results for s in r.covered_seqs)
    accepted = sorted(t.seq for t in cluster.ticket_list() if t.accepted)
    assert covered == accepted
    assert len(set(covered)) == len(covered)
    keys = [(r.tenant, r.flush_seq) for r in cluster.results]
    assert len(set(keys)) == len(keys)


def keyed_flushes(results):
    return {(r.tenant, r.flush_seq): (r.shard_id, r.flush_vt,
                                      r.covered_seqs, r.latencies_vt,
                                      r.engine_label,
                                      r.outcome.matched_count)
            for r in results}


def assert_replay_identity(cluster, service):
    """The chaos run's deterministic record equals the calm one's."""
    assert keyed_flushes(cluster.results) == keyed_flushes(service.results)
    assert cluster.ticket_list() == service.tickets
    assert cluster.report() == service.report()


@pytest.mark.parametrize("seed", SEEDS)
class TestWorkerKill:
    def test_cold_kill_mid_flush(self, seed):
        """SIGKILL with no checkpoint: full-journal replay recovers."""
        wl = chaos_workload(seed)
        rng = np.random.default_rng(seed)
        victim = stable_shard(wl.tenants[int(rng.integers(2))].name, 2)
        after = int(rng.integers(1, 4))
        svc, _ = run_workload(wl, n_shards=2, seed=seed,
                              batching=BATCHING)
        cluster, _ = run_cluster_workload(
            wl, n_workers=2, seed=seed, start_method="fork",
            batching=BATCHING, arm_exit=(victim, after))
        assert len(cluster.recoveries) >= 1
        rec = cluster.recoveries[0]
        assert rec.worker_id == victim
        assert rec.respawn == 1
        assert not rec.had_checkpoint
        assert rec.replayed_frames > 0
        assert_exactly_once(cluster)
        assert_replay_identity(cluster, svc)

    def test_checkpointed_kill_mid_flush(self, seed):
        """SIGKILL after an explicit checkpoint: restore the blob, then
        replay only the journal suffix past its mark."""
        wl = chaos_workload(seed)
        rng = np.random.default_rng(seed + 1000)
        victim = stable_shard(wl.tenants[int(rng.integers(2))].name, 2)
        after = int(rng.integers(1, 4))
        svc, _ = run_workload(wl, n_shards=2, seed=seed,
                              batching=BATCHING)
        cluster = ClusterService(n_workers=2, seed=seed,
                                 start_method="fork", batching=BATCHING,
                                 checkpoint_every=10_000)
        for spec in wl.tenants:
            cluster.register(spec)
        with cluster:
            half = len(wl.arrivals) // 2
            for a in wl.arrivals[:half]:
                cluster.submit(a.tenant, a.messages, a.requests,
                               at_vt=a.vt)
            cluster.checkpoint_now()
            cluster.arm_worker_exit(victim, after_flushes=after)
            for a in wl.arrivals[half:]:
                cluster.submit(a.tenant, a.messages, a.requests,
                               at_vt=a.vt)
            cluster.advance_to(cluster.now
                               + 2.0 * cluster.batching.max_delay_vt)
            cluster.drain()
            cluster.sync()
            assert len(cluster.recoveries) >= 1
            rec = cluster.recoveries[0]
            assert rec.worker_id == victim
            assert rec.had_checkpoint
            assert_exactly_once(cluster)
            assert_replay_identity(cluster, svc)

    def test_kill_both_workers(self, seed):
        """Independent kills on both workers in one run; both recover
        and the record is still exactly-once and bit-identical."""
        wl = chaos_workload(seed)
        rng = np.random.default_rng(seed + 2000)
        svc, _ = run_workload(wl, n_shards=2, seed=seed,
                              batching=BATCHING)
        cluster = ClusterService(n_workers=2, seed=seed,
                                 start_method="fork", batching=BATCHING)
        for spec in wl.tenants:
            cluster.register(spec)
        with cluster:
            cluster.arm_worker_exit(0, after_flushes=int(rng.integers(1, 4)))
            cluster.arm_worker_exit(1, after_flushes=int(rng.integers(1, 4)))
            for a in wl.arrivals:
                cluster.submit(a.tenant, a.messages, a.requests,
                               at_vt=a.vt)
            cluster.advance_to(cluster.now
                               + 2.0 * cluster.batching.max_delay_vt)
            cluster.drain()
            cluster.sync()
            assert {r.worker_id for r in cluster.recoveries} == {0, 1}
            assert_exactly_once(cluster)
            assert_replay_identity(cluster, svc)


def test_chaos_run_is_replayable():
    """Two identical chaos runs (same seed, same kill point) produce the
    same recoveries and the same record -- chaos itself is deterministic
    up to wall-clock interleaving, which the record excludes."""
    seed = SEEDS[0]
    wl = chaos_workload(seed)
    runs = []
    for _ in range(2):
        cluster, _ = run_cluster_workload(
            wl, n_workers=2, seed=seed, start_method="fork",
            batching=BATCHING, arm_exit=(0, 2))
        runs.append(cluster)
    a, b = runs
    assert [r.worker_id for r in a.recoveries] == \
        [r.worker_id for r in b.recoveries]
    assert keyed_flushes(a.results) == keyed_flushes(b.results)
    assert a.ticket_list() == b.ticket_list()
    assert a.report() == b.report()
