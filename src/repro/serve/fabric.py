"""Cross-shard routing with per-shard-pair message combining.

A spanning tenant (``TenantSpec(span=N)``) places N sub-tenants
(``name#0 .. name#N-1``) across the service's shards by the usual CRC32
rule.  The :class:`Fabric` is the routing plane between them: ranks of a
BSP program map onto sub-shards, sends and receive posts accumulate in
fabric outboxes, and at each superstep boundary :meth:`Fabric.flush`
moves everything at once:

1. every receive post becomes part of **one** requests-only delivery to
   its sub-shard (receives are local -- no wire time);
2. every inter-shard message is coalesced with all other messages
   travelling the same ordered ``(source shard, destination shard)``
   pair into **one** combined column block -- packed64 once at the
   source, sliced per destination tenant with the cache intact -- and
   charged **once** in simulated wire time.

This is Träff-style isomorphic sparse-collective message combining: the
number of fabric batches per superstep scales with the number of *shard
pairs* that actually communicate, not with the number of messages.  The
``combine ratio`` (messages carried / pair batches sent) is the figure
of merit; an alltoall over S shards yields exactly ``S*(S-1)`` pair
batches regardless of rank count or fan-out.

:class:`CollectiveBridge` duck-types :class:`~repro.mpi.communicator.
Communicator` over a spanning tenant, so every algorithm in
:mod:`repro.mpi.collectives` (barrier/bcast/alltoall/reduce/allgather/
scan) runs unmodified over the serve plane: collective supersteps become
fabric flushes, and the match outcome of each sub-shard's flush routes
payloads back to the waiting receive handles.

The fabric drives both planes through one duck-typed surface
(``fabric_shard`` / ``fabric_alloc_seq`` / ``fabric_deliver`` /
``sub_tenants``), implemented identically by
:class:`~repro.serve.service.MatchingService` and
:class:`~repro.serve.cluster.ClusterService` -- which is what keeps
same-seed fabric runs bit-identical across the process boundary, SIGKILL
or no SIGKILL (cluster transfers are journaled ``fabric_xfer`` frames;
recovery replays them verbatim).

Like the paper's batch-mode matching, a fabric superstep is *stateless*:
envelopes left unmatched by the superstep's flush are dropped, so a
receive that its superstep cannot satisfy fails fast at ``wait()``
(:class:`FabricError`) instead of silently pinning state -- the BSP
contract that tags are reusable after synchronization, enforced.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..core.envelope import ANY_SOURCE, EnvelopeBatch
from ..core.result import NO_MATCH
from ..mpi.communicator import check_app_tag
from ..mpi.datatypes import clone_payload, payload_nbytes
from .stages import StageClock

__all__ = ["FabricError", "FabricLink", "FabricFlush", "Fabric",
           "BridgeRequest", "CollectiveBridge",
           "BridgePsend", "BridgePrecv"]


class FabricError(RuntimeError):
    """A fabric protocol failure: an unmatched receive at a superstep
    boundary, or a superstep whose flush results cannot be aligned."""


@dataclass(frozen=True)
class FabricLink:
    """Wire-time model for one combined inter-shard batch.

    A pair batch of ``n`` envelopes is charged
    ``latency_vs + n * bytes_per_envelope / bandwidth_bytes_per_vs``
    virtual seconds -- a fixed per-batch cost plus a size term.  The
    fixed cost is exactly what combining amortizes: k messages in one
    batch pay ``latency_vs`` once instead of k times.  Intra-shard
    traffic and receive posts never touch the wire and are charged
    nothing.
    """

    bytes_per_envelope: int = 64
    bandwidth_bytes_per_vs: float = 1e9
    latency_vs: float = 1e-6

    def __post_init__(self) -> None:
        if self.bytes_per_envelope < 1:
            raise ValueError("bytes_per_envelope must be >= 1")
        if self.bandwidth_bytes_per_vs <= 0:
            raise ValueError("bandwidth_bytes_per_vs must be > 0")
        if self.latency_vs < 0:
            raise ValueError("latency_vs must be >= 0")

    def wire_seconds(self, n_envelopes: int, extra_bytes: int = 0) -> float:
        """Virtual seconds to move one combined batch of ``n`` envelopes
        (plus ``extra_bytes`` of piggybacked partition data -- MPI-4
        re-fires ride their channel's binding envelope on the wire)."""
        return (self.latency_vs
                + (n_envelopes * self.bytes_per_envelope + extra_bytes)
                / self.bandwidth_bytes_per_vs)


@dataclass
class _TenantStep:
    """One sub-tenant's slice of a superstep: the receive handles and
    message payload tokens whose rows its flush outcome will index."""

    req_handles: list = field(default_factory=list)
    msg_tokens: list = field(default_factory=list)


@dataclass
class FabricFlush:
    """What one :meth:`Fabric.flush` moved, for the bridge to align."""

    manifest: dict[str, _TenantStep]
    start_vt: float
    end_vt: float
    pair_batches: int = 0
    messages: int = 0


@dataclass
class _Send:
    dst_tenant: str
    src: int
    tag: int
    comm: int
    token: Any
    #: bytes of partition data riding this envelope (0 for ordinary
    #: traffic); charged on the wire but invisible to matching
    nbytes: int = 0


@dataclass
class _Recv:
    src: int
    tag: int
    comm: int
    handle: Any


class Fabric:
    """The combining routing plane over one serve plane.

    Parameters
    ----------
    plane:
        A :class:`~repro.serve.service.MatchingService` or
        :class:`~repro.serve.cluster.ClusterService` (anything with the
        ``fabric_shard`` / ``fabric_alloc_seq`` / ``fabric_deliver``
        surface and ``now``).
    link:
        Wire-time model; default :class:`FabricLink`.
    stages:
        Optional :class:`~repro.serve.stages.StageClock`; flush-building
        work is charged to the ``fabric`` stage (measurement-only).
    """

    def __init__(self, plane, link: FabricLink | None = None,
                 stages: StageClock | None = None) -> None:
        self.plane = plane
        self.link = link if link is not None else FabricLink()
        self.stages = stages
        #: pending sends, keyed by source tenant, send order per key
        self._outbox: dict[str, list[_Send]] = {}
        #: pending receive posts, keyed by destination tenant, post order
        self._recvs: dict[str, list[_Recv]] = {}
        # cumulative combining accounting
        self.supersteps = 0
        self.pair_batches_total = 0
        self.fabric_messages_total = 0
        self.local_messages_total = 0
        self.wire_seconds_total = 0.0
        self.per_pair_batches: dict[tuple[int, int], int] = {}

    # -- posting ------------------------------------------------------------------

    def send(self, src_tenant: str, dst_tenant: str, src: int, tag: int,
             comm: int, token: Any, nbytes: int = 0) -> _Send:
        """Queue one message envelope (plus its payload token) for the
        next superstep.  ``src`` is the sender's rank value as it will
        appear in the envelope's source field.  Returns the queued entry
        so a partitioned channel can keep piggybacking partition bytes
        onto its binding envelope until the flush."""
        entry = _Send(dst_tenant=dst_tenant, src=src, tag=tag, comm=comm,
                      token=token, nbytes=nbytes)
        self._outbox.setdefault(src_tenant, []).append(entry)
        return entry

    def post_recv(self, dst_tenant: str, src: int, tag: int, comm: int,
                  handle: Any) -> None:
        """Queue one receive post at its destination sub-shard; the
        handle is completed (or failed) when the superstep flushes."""
        self._recvs.setdefault(dst_tenant, []).append(
            _Recv(src=src, tag=tag, comm=comm, handle=handle))

    @property
    def combine_ratio(self) -> float:
        """Inter-shard messages carried per pair batch sent (>= 1.0
        whenever anything crossed the wire)."""
        if self.pair_batches_total == 0:
            return 0.0
        return self.fabric_messages_total / self.pair_batches_total

    # -- the superstep boundary ---------------------------------------------------

    def flush(self) -> FabricFlush:
        """Move every queued post: one requests-only delivery per
        receiving tenant, one combined block per ordered shard pair.

        Deliveries land in the destination accumulators immediately
        (receives at ``now``, pair blocks at ``now + wire``); the caller
        then advances the plane to ``end_vt`` and drains, which is the
        next watermark.  Everything here is deterministic given the
        posting order: shard pairs go out sorted, tenants within a pair
        in first-send order, envelopes within a tenant in send order.
        """
        plane = self.plane
        stages = self.stages
        t0 = StageClock.start() if stages is not None else 0.0
        now = float(plane.now)
        manifest: dict[str, _TenantStep] = {}

        def step_of(tenant: str) -> _TenantStep:
            if tenant not in manifest:
                manifest[tenant] = _TenantStep()
            return manifest[tenant]

        # -- phase 1: receive posts, one requests-only delivery per tenant,
        # grouped per destination shard so each shard gets one transfer.
        recvs, self._recvs = self._recvs, {}
        by_dst_shard: dict[int, list[str]] = {}
        shard_of: dict[str, int] = {}
        for tenant in recvs:
            shard = plane.fabric_shard(tenant)
            shard_of[tenant] = shard
            by_dst_shard.setdefault(shard, []).append(tenant)
        for shard in sorted(by_dst_shard):
            segments = []
            for tenant in by_dst_shard[shard]:
                posts = recvs[tenant]
                batch = EnvelopeBatch(src=[r.src for r in posts],
                                      tag=[r.tag for r in posts],
                                      comm=[r.comm for r in posts])
                segments.append({"tenant": tenant,
                                 "seq": plane.fabric_alloc_seq(),
                                 "start": 0, "stop": 0,
                                 "requests": batch})
                step_of(tenant).req_handles.extend(r.handle for r in posts)
            plane.fabric_deliver(shard, {"at_vt": now, "block": None,
                                         "segments": segments})

        # -- phase 2: sends, combined per ordered (src shard, dst shard)
        # pair.  Group first by pair, then by destination tenant, so each
        # tenant's rows are one contiguous slice of the pair block.
        outbox, self._outbox = self._outbox, {}
        pairs: dict[tuple[int, int], dict[str, list[_Send]]] = {}
        for src_tenant, sends in outbox.items():
            src_shard = plane.fabric_shard(src_tenant)
            for s in sends:
                dst_shard = shard_of.get(s.dst_tenant)
                if dst_shard is None:
                    dst_shard = plane.fabric_shard(s.dst_tenant)
                    shard_of[s.dst_tenant] = dst_shard
                pair = (src_shard, dst_shard)
                pairs.setdefault(pair, {}).setdefault(
                    s.dst_tenant, []).append(s)
        max_wire = 0.0
        n_pair_batches = 0
        n_messages = 0
        for pair in sorted(pairs):
            src_shard, dst_shard = pair
            groups = pairs[pair]
            src_col: list[int] = []
            tag_col: list[int] = []
            comm_col: list[int] = []
            extra_bytes = 0
            segments = []
            for tenant, sends in groups.items():
                start = len(src_col)
                for s in sends:
                    src_col.append(s.src)
                    tag_col.append(s.tag)
                    comm_col.append(s.comm)
                    extra_bytes += s.nbytes
                    step_of(tenant).msg_tokens.append(s.token)
                segments.append({"tenant": tenant,
                                 "seq": plane.fabric_alloc_seq(),
                                 "start": start, "stop": len(src_col),
                                 "requests": None})
            block = EnvelopeBatch(src=src_col, tag=tag_col, comm=comm_col)
            # pack once for the whole pair block; every segment slice
            # (and the wire round trip) reuses this cache
            block.packed()
            if src_shard != dst_shard:
                wire = self.link.wire_seconds(len(block), extra_bytes)
                max_wire = max(max_wire, wire)
                n_pair_batches += 1
                n_messages += len(block)
                self.per_pair_batches[pair] = \
                    self.per_pair_batches.get(pair, 0) + 1
            else:
                wire = 0.0
                self.local_messages_total += len(block)
            plane.fabric_deliver(dst_shard, {"at_vt": now + wire,
                                             "block": block,
                                             "segments": segments})
        self.supersteps += 1
        self.pair_batches_total += n_pair_batches
        self.fabric_messages_total += n_messages
        self.wire_seconds_total += max_wire
        if stages is not None:
            stages.stop("fabric", t0)
        return FabricFlush(manifest=manifest, start_vt=now,
                           end_vt=now + max_wire,
                           pair_batches=n_pair_batches, messages=n_messages)


# ---------------------------------------------------------------------------
# The collective bridge
# ---------------------------------------------------------------------------

class BridgeRequest:
    """A nonblocking handle over the fabric (the bridge's
    :class:`~repro.mpi.request.Request` stand-in).

    Send handles complete immediately (fabric sends are buffered, like
    the simulated network's eager path).  Receive handles complete when
    their superstep's flush matches them; waiting on a receive the
    superstep could not satisfy raises :class:`FabricError` -- supersteps
    are stateless, the envelope is already gone.
    """

    __slots__ = ("_bridge", "_done", "_payload")

    def __init__(self, bridge: "CollectiveBridge",
                 done: bool = False, payload: Any = None) -> None:
        self._bridge = bridge
        self._done = done
        self._payload = payload

    @property
    def done(self) -> bool:
        return self._done

    def _complete(self, payload: Any) -> None:
        self._done = True
        self._payload = payload

    def test(self) -> bool:
        return self._done

    def wait(self) -> Any:
        """Drive a superstep if needed; return the received payload."""
        if not self._done:
            self._bridge.step()
        if not self._done:
            raise FabricError(
                "receive not matched by its superstep (stateless fabric "
                "flush dropped the unmatched envelope)")
        return self._payload


class CollectiveBridge:
    """Run :mod:`repro.mpi.collectives` over a spanning tenant.

    Duck-types the :class:`~repro.mpi.communicator.Communicator` surface
    the collectives use (``size`` / ``isend`` / ``irecv`` /
    ``coll_isend`` / ``coll_irecv``), with local rank ``i`` living on
    sub-tenant ``name#i``.  Every algorithm is a sequence of BSP
    supersteps; the first ``wait()`` of a superstep triggers
    :meth:`step`, which flushes the fabric, drains the plane, and routes
    each sub-shard's match outcome back to its receive handles.

    Parameters
    ----------
    plane:
        The serve plane (in-process or cluster) the tenant is registered
        on; ``plane.sub_tenants(tenant)`` defines the rank order.
    tenant:
        The spanning tenant's base name.
    comm_id:
        Matching-tuple communicator value carried by every envelope.
    link, stages:
        Forwarded to the :class:`Fabric`.
    """

    def __init__(self, plane, tenant: str, comm_id: int = 0,
                 link: FabricLink | None = None,
                 stages: StageClock | None = None) -> None:
        self.plane = plane
        self.tenant = tenant
        self.comm_id = comm_id
        self.subs = list(plane.sub_tenants(tenant))
        self.fabric = Fabric(plane, link=link, stages=stages)
        self._results_seen = len(plane.results)
        # partitioned-channel plane (driver-side, like payload tokens)
        self._next_channel = 1
        self._channels: dict[tuple[int, int], dict] = {}
        self._pending_psends: list["BridgePsend"] = []

    @property
    def size(self) -> int:
        """Rank count (= the tenant's span)."""
        return len(self.subs)

    # -- communicator surface -----------------------------------------------------

    def isend(self, src: int, dst: int, payload: Any = None,
              tag: int = 0) -> BridgeRequest:
        """Application send: reserved collective tags are rejected."""
        check_app_tag(tag)
        return self.coll_isend(src, dst, payload, tag)

    def irecv(self, dst: int, src: int, tag: int) -> BridgeRequest:
        """Application receive post (``ANY_SOURCE``/``ANY_TAG`` legal)."""
        check_app_tag(tag, wildcard_ok=True)
        return self.coll_irecv(dst, src, tag)

    def coll_isend(self, src: int, dst: int, payload: Any = None,
                   tag: int = 0) -> BridgeRequest:
        """Unchecked send entry point (reserved tags allowed)."""
        self._check_rank(src)
        self._check_rank(dst)
        # snapshot the payload now: the sender may mutate its buffer
        # after isend returns, and delivery happens at the flush
        self.fabric.send(self.subs[src], self.subs[dst], src, tag,
                         self.comm_id, clone_payload(payload))
        return BridgeRequest(self, done=True)

    def coll_irecv(self, dst: int, src: int, tag: int) -> BridgeRequest:
        """Unchecked receive entry point (reserved tags allowed)."""
        self._check_rank(dst)
        if src != ANY_SOURCE:
            self._check_rank(src)
        handle = BridgeRequest(self)
        self.fabric.post_recv(self.subs[dst], src, tag, self.comm_id,
                              handle)
        return handle

    def send(self, src: int, dst: int, payload: Any = None,
             tag: int = 0) -> None:
        self.isend(src, dst, payload, tag).wait()

    def recv(self, dst: int, src: int, tag: int) -> Any:
        return self.irecv(dst, src, tag).wait()

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < len(self.subs):
            raise ValueError(f"rank {rank} outside communicator "
                             f"(size {len(self.subs)})")

    # -- partitioned channels -----------------------------------------------------

    def psend_init(self, src: int, dst: int, partitions: int,
                   tag: int = 0,
                   bytes_per_partition: int = 8) -> "BridgePsend":
        """Persistent partitioned send over the fabric
        (``MPI_Psend_init``); see :class:`BridgePsend`."""
        return BridgePsend(self, src, dst, partitions, tag=tag,
                           bytes_per_partition=bytes_per_partition)

    def precv_init(self, dst: int, src: int, partitions: int,
                   tag: int = 0) -> "BridgePrecv":
        """Persistent partitioned receive over the fabric
        (``MPI_Precv_init``); see :class:`BridgePrecv`."""
        return BridgePrecv(self, dst, src, partitions, tag=tag)

    # -- the superstep ------------------------------------------------------------

    def step(self) -> FabricFlush:
        """One BSP superstep: flush the fabric, run the plane to the
        superstep's end, and complete the receive handles from each
        sub-shard's match outcome."""
        plane = self.plane
        # seal active partitioned epochs: their binding envelopes leave
        # with this flush, so no further pready can ride them
        pending, self._pending_psends = self._pending_psends, []
        for ps in pending:
            ps._fire()
        fl = self.fabric.flush()
        plane.advance_to(fl.end_vt)
        plane.drain()
        sync = getattr(plane, "sync", None)
        if sync is not None:
            sync()   # cluster plane: barrier so every flush is collected
        new_results = plane.results[self._results_seen:]
        self._results_seen = len(plane.results)
        by_tenant: dict[str, list] = {}
        for r in new_results:
            by_tenant.setdefault(r.tenant, []).append(r)
        for tenant, step in fl.manifest.items():
            results = by_tenant.get(tenant, [])
            if len(results) != 1:
                raise FabricError(
                    f"superstep for {tenant!r} produced "
                    f"{len(results)} flushes (expected exactly 1); "
                    f"fabric deliveries must not share accumulators "
                    f"with client traffic mid-superstep")
            outcome = results[0].outcome
            if (outcome.n_requests != len(step.req_handles)
                    or outcome.n_messages != len(step.msg_tokens)):
                raise FabricError(
                    f"superstep row misalignment for {tenant!r}: flush "
                    f"saw {outcome.n_requests} requests / "
                    f"{outcome.n_messages} messages, fabric delivered "
                    f"{len(step.req_handles)} / {len(step.msg_tokens)}")
            r2m = outcome.request_to_message
            for j, handle in enumerate(step.req_handles):
                m = int(r2m[j])
                if m != NO_MATCH:
                    handle._complete(step.msg_tokens[m])
        return fl


# ---------------------------------------------------------------------------
# Partitioned channels over the fabric
# ---------------------------------------------------------------------------

class _BridgePartitionedBase:
    """State shared by both sides of a fabric partitioned channel."""

    def __init__(self, bridge: CollectiveBridge, partitions: int,
                 tag: int) -> None:
        if partitions < 1:
            raise ValueError("partitions must be >= 1")
        check_app_tag(tag)
        self.bridge = bridge
        self.partitions = partitions
        self.tag = tag
        self.epoch = 0
        self._active = False

    @property
    def active(self) -> bool:
        """Is an epoch in flight (``start()`` without ``wait()``)?"""
        return self._active

    def _require_active(self, op: str) -> None:
        if not self._active:
            raise RuntimeError(f"{op} on an inactive partitioned request; "
                               "call start() first")

    def _check_index(self, i: int) -> None:
        if not 0 <= i < self.partitions:
            raise IndexError(f"partition {i} out of range "
                             f"(0..{self.partitions - 1})")


class BridgePsend(_BridgePartitionedBase):
    """Send side of a partitioned channel over the serve fabric.

    The MPI-4 match-once contract, mapped onto BSP supersteps: each
    ``start()`` queues exactly **one** binding envelope -- the epoch's
    single matchable message -- and every ``pready`` piggybacks its
    partition's bytes onto that envelope (charged in the pair batch's
    wire time, invisible to matching).  Partition payloads stay
    driver-side like every fabric payload token, which is what keeps
    partitioned supersteps bit-identical between the in-process service
    and the cluster, SIGKILL or no SIGKILL.

    An epoch is one superstep: every partition must be fired before the
    flush that carries the binding (supersteps are stateless -- a
    late ``pready`` would have no envelope left to ride).
    """

    def __init__(self, bridge: CollectiveBridge, src: int, dst: int,
                 partitions: int, tag: int = 0,
                 bytes_per_partition: int = 8) -> None:
        super().__init__(bridge, partitions, tag)
        if bytes_per_partition < 0:
            raise ValueError("bytes_per_partition cannot be negative")
        bridge._check_rank(src)
        bridge._check_rank(dst)
        self.src = src
        self.dst = dst
        self.bytes_per_partition = bytes_per_partition
        self.channel = bridge._next_channel
        bridge._next_channel += 1
        self._state: dict | None = None
        self._wire: _Send | None = None
        self._flushed = False

    def start(self) -> "BridgePsend":
        """Activate one epoch: queue the single binding envelope."""
        if self._active:
            raise RuntimeError("start() on an already-active partitioned "
                               "send; wait() the epoch first")
        self.epoch += 1
        self._active = True
        self._flushed = False
        bridge = self.bridge
        self._state = {"partitions": self.partitions,
                       "mask": np.zeros(self.partitions, dtype=bool),
                       "payloads": [None] * self.partitions}
        bridge._channels[(self.channel, self.epoch)] = self._state
        token = {"part_channel": self.channel, "epoch": self.epoch,
                 "partitions": self.partitions,
                 "bytes_per_partition": self.bytes_per_partition}
        self._wire = bridge.fabric.send(
            bridge.subs[self.src], bridge.subs[self.dst], self.src,
            self.tag, bridge.comm_id, token)
        bridge._pending_psends.append(self)
        return self

    def pready(self, i: int, payload: Any = None) -> None:
        """Fire partition ``i``: snapshot its payload and piggyback its
        bytes onto the epoch's binding envelope."""
        self._require_active("pready")
        self._check_index(i)
        if self._flushed:
            raise RuntimeError(
                f"pready({i}) after the epoch's superstep flushed; on "
                "the fabric an epoch is one superstep -- fire every "
                "partition before waiting")
        if self._state["mask"][i]:
            raise RuntimeError(f"partition {i} already marked ready this "
                               "epoch")
        self._state["mask"][i] = True
        self._state["payloads"][i] = clone_payload(payload)
        self._wire.nbytes += max(self.bytes_per_partition,
                                 payload_nbytes(payload))

    def pready_range(self, lo: int, hi: int, payloads: Any = None) -> None:
        """Fire partitions ``lo..hi-1`` (``MPI_Pready_range``).

        The payload-free form is the re-fire fast path: one mask slice
        and one byte charge for the whole range, no per-partition Python
        work -- this is where the match-once amortization actually
        cashes out for bandwidth-shaped streams.
        """
        if payloads is not None:
            for i in range(lo, hi):
                self.pready(i, payloads[i - lo])
            return
        self._require_active("pready_range")
        if not 0 <= lo <= hi <= self.partitions:
            raise IndexError(f"range [{lo}, {hi}) outside "
                             f"{self.partitions} partitions")
        if self._flushed:
            raise RuntimeError(
                f"pready_range({lo}, {hi}) after the epoch's superstep "
                "flushed; on the fabric an epoch is one superstep -- "
                "fire every partition before waiting")
        mask = self._state["mask"]
        if mask[lo:hi].any():
            already = (lo + np.flatnonzero(mask[lo:hi])).tolist()
            raise RuntimeError(f"partitions {already} already marked "
                               "ready this epoch")
        mask[lo:hi] = True
        self._wire.nbytes += self.bytes_per_partition * (hi - lo)

    def wait(self) -> None:
        """Complete the epoch (driving the superstep if this side gets
        there first) and re-arm for the next ``start()``."""
        self._require_active("wait")
        if not self._state["mask"].all():
            missing = np.flatnonzero(~self._state["mask"])
            raise FabricError(
                f"wait() with partitions {missing.tolist()} never "
                "pready'd; every partition must fire each epoch")
        if not self._flushed:
            self.bridge.step()
        self._active = False

    def _fire(self) -> None:
        self._flushed = True


class BridgePrecv(_BridgePartitionedBase):
    """Receive side of a partitioned channel over the serve fabric.

    Each ``start()`` posts exactly **one** receive; its match against
    the binding envelope is the epoch's single matching event, and the
    routed token hands the receiver the channel's driver-side partition
    payloads.  ``parrived(i)`` reports per-partition completion once the
    superstep has run.
    """

    def __init__(self, bridge: CollectiveBridge, dst: int, src: int,
                 partitions: int, tag: int = 0) -> None:
        super().__init__(bridge, partitions, tag)
        bridge._check_rank(dst)
        bridge._check_rank(src)
        self.dst = dst
        self.src = src
        self._handle: BridgeRequest | None = None
        self._bound: dict | None = None
        self._bound_key: tuple[int, int] | None = None

    def start(self) -> "BridgePrecv":
        """Activate one epoch: post the single binding receive."""
        if self._active:
            raise RuntimeError("start() on an already-active partitioned "
                               "receive; wait() the epoch first")
        self.epoch += 1
        self._active = True
        self._bound = None
        self._bound_key = None
        self._handle = self.bridge.irecv(self.dst, self.src, self.tag)
        return self

    def _bind(self) -> dict:
        """Validate the routed binding token against this request."""
        if self._bound is not None:
            return self._bound
        token = self._handle._payload
        if not isinstance(token, dict) or "part_channel" not in token:
            raise FabricError(
                "partitioned receive matched a non-partitioned send on "
                f"tag {self.tag}; the channel tag must not be shared "
                "with ordinary traffic")
        if token["partitions"] != self.partitions:
            raise FabricError(
                f"partition count mismatch: sender declared "
                f"{token['partitions']}, receiver {self.partitions}")
        if token["epoch"] != self.epoch:
            raise FabricError(
                f"epoch skew on partitioned channel "
                f"{token['part_channel']}: sender epoch {token['epoch']}, "
                f"receiver epoch {self.epoch} -- both sides must start() "
                "each epoch exactly once")
        self._bound_key = (token["part_channel"], token["epoch"])
        self._bound = self.bridge._channels[self._bound_key]
        return self._bound

    def parrived(self, i: int) -> bool:
        """Has partition ``i``'s data landed (i.e. the epoch's superstep
        has run and the partition was fired)?  Does not drive the
        superstep itself -- on the fabric, ``wait()`` is the superstep
        boundary."""
        self._require_active("parrived")
        self._check_index(i)
        if not self._handle.done:
            return False
        return bool(self._bind()["mask"][i])

    def wait(self) -> list[Any]:
        """Block until the epoch completes (driving the superstep if
        needed); returns partition payloads in index order and re-arms
        for the next ``start()``."""
        self._require_active("wait")
        self._handle.wait()
        state = self._bind()
        if not state["mask"].all():
            missing = np.flatnonzero(~state["mask"]).tolist()
            raise FabricError(
                f"partitions {missing[:8]} never fired before the "
                "epoch's superstep flushed; on the fabric an epoch is "
                "one superstep")
        payloads = list(state["payloads"])
        self.bridge._channels.pop(self._bound_key, None)
        self._active = False
        self._handle = None
        return payloads
