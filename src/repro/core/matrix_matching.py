"""The paper's MPI-compliant matrix matching algorithm (Section V).

Two-phase structure:

**Scan** (Algorithm 1, parallel): each thread owns one message; for every
receive request in the current *window* the warp votes via ``ballot``
whether its lanes' messages match, and writes the resulting 32-bit vector
into a (warps x window) vote matrix in shared memory.

**Reduce** (Algorithm 2, sequential over columns): one warp walks the
columns (receive requests) in posted order.  Each lane holds one warp-row
of the matrix and a 32-bit *mask* of its still-unmatched messages.  A
``ballot`` finds which lanes still have candidates; ``ffs`` picks the
lowest lane (earliest warp), and a second ``ffs`` picks the lowest bit
(earliest message within the warp) -- preserving MPI's non-overtaking
order.  The winning message's mask bit is cleared so it cannot be matched
again.

Both phases pipeline: while the reduce warp drains one window of columns,
the scan warps fill the next.  The pipelining collapses at 1024 messages
(all 32 warps needed for scan), which is the performance knee in Figure 4.

Two interchangeable implementations are provided:

* :meth:`MatrixMatcher.match` -- array-native fast path: the scan builds
  its vote matrix per message block (peak memory O(block x open columns),
  never the full dense matrix), and the reduce resolves whole batches of
  columns per NumPy step, falling back to a scalar pick only inside a
  conflicting group (two columns bidding on the same warp-word).  Costs
  are charged analytically with *batched* ``add`` calls whose totals are
  bit-identical to the per-column charging they replace.  Used by
  benchmarks.
* :meth:`MatrixMatcher.match_pedantic` -- executes Algorithms 1 and 2
  verbatim on the :class:`~repro.simt.cta.CTA` / :class:`~repro.simt.warp.Warp`
  simulator, one warp instruction at a time.  Used by tests to validate
  the fast path (identical assignments).

The pre-batching scalar reduce is retained as ``reduce_impl="scalar"``
and is asserted bit-identical (match vector and per-op ledger totals) to
the batched reduce by ``tests/core/test_fastpath_equivalence.py``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..simt.cta import CTA, MAX_WARPS_PER_CTA
from ..simt.gpu import GPUSpec, PASCAL_GTX1080
from ..simt.memory import SMEM_WORD_BYTES
from ..simt.timing import CostLedger, TimingModel
from ..simt.warp import WARP_SIZE, ffs32, full_active
from .envelope import EnvelopeBatch
from .result import NO_MATCH, MatchOutcome

__all__ = ["MatrixMatcher", "DEFAULT_WINDOW"]

#: Receive-request columns scanned per pipeline stage.  32 warps x 64
#: columns of int32 votes = 8 KiB of shared memory per buffer; double
#: buffering for the scan/reduce pipeline stays well under the 48 KiB
#: per-CTA limit.
DEFAULT_WINDOW = 64

#: Columns the batched reduce resolves per vectorized step.  Purely a
#: host-side knob: any value produces the same matches and ledger.
REDUCE_BATCH = 256


@dataclass
class _PhasePlan:
    """Per-iteration bookkeeping shared by cost accounting and tests."""

    n_block_msgs: int
    n_warps: int
    n_columns: int
    n_chunks: int


class MatrixMatcher:
    """MPI-compliant GPU matching (scan + ordered reduce).

    Parameters
    ----------
    spec:
        Simulated device (default: the paper's Pascal GTX 1080).
    warps_per_cta:
        Scan warps, i.e. matrix height; 32 (=1024 messages/iteration) in
        the paper.
    window:
        Columns per pipeline stage.
    compaction:
        Append a queue-compaction pass after matching (prefix scan +
        moves).  The paper measures this at roughly 10% of the matching
        rate; it is required whenever unexpected messages exist, and
        skippable under the *no unexpected messages* relaxation.
    compaction_policy:
        ``"always"`` or ``"adaptive"``.  Adaptive implements the paper's
        remark "in cases when the number of matches is very low, the
        bubbles can be tolerated and the compaction can be skipped": the
        pass only runs when at least :data:`COMPACTION_MIN_FRACTION` of
        the requests matched.
    warp_size:
        Lanes per warp.  32 on all real generations; smaller values model
        the *variable warp size* architectural feature the paper endorses
        for short queues (Section VII-C): narrow warps waste fewer lanes
        on queues shorter than 32 and let more matrix rows pack into the
        same thread budget.
    reduce_impl:
        ``"batched"`` (default) resolves whole batches of reduce columns
        per NumPy step; ``"scalar"`` is the pre-batching per-column loop,
        kept as the bit-identical reference for equivalence tests.  Both
        produce the same matches and the same ledger totals.
    obs:
        Optional :class:`~repro.obs.Observability` handle.  When absent
        (default) the hot path takes a single ``is None`` branch and the
        outcome -- match vector, ledger, cycles -- is bit-identical.
    sanitize:
        Optional :class:`~repro.simt.sanitize.Sanitizer`; ``None``
        (default) falls back to ``spec.sanitize``.  Threaded the same way
        as ``obs`` -- the instrumented pedantic path is bit-identical
        when off.  The fast path is analytic (no simulated memories), so
        the sanitizer observes the pedantic execution.
    """

    name = "matrix"

    def __init__(self, spec: GPUSpec = PASCAL_GTX1080,
                 warps_per_cta: int = MAX_WARPS_PER_CTA,
                 window: int = DEFAULT_WINDOW,
                 compaction: bool = False,
                 warp_size: int = WARP_SIZE,
                 compaction_policy: str = "always",
                 reduce_impl: str = "batched",
                 obs=None, sanitize=None) -> None:
        if compaction_policy not in ("always", "adaptive"):
            raise ValueError("compaction_policy must be 'always' or "
                             "'adaptive'")
        if reduce_impl not in ("batched", "scalar"):
            raise ValueError("reduce_impl must be 'batched' or 'scalar'")
        if not 1 <= warps_per_cta <= MAX_WARPS_PER_CTA:
            raise ValueError("warps_per_cta must be in [1, 32]")
        if window < 1:
            raise ValueError("window must be positive")
        if not 1 <= warp_size <= WARP_SIZE:
            raise ValueError(f"warp_size must be in [1, {WARP_SIZE}]")
        # double-buffered vote matrix must fit the CTA's shared memory:
        # 2 buffers x warps x window x 4-byte vote words
        smem_needed = 2 * warps_per_cta * window * SMEM_WORD_BYTES
        if smem_needed > spec.shared_mem_per_cta:
            raise ValueError(
                f"window {window} needs {smem_needed} B of shared memory "
                f"for the double-buffered vote matrix; {spec.name} allows "
                f"{spec.shared_mem_per_cta} B per CTA")
        self.spec = spec
        self.warps_per_cta = warps_per_cta
        self.window = window
        self.compaction = compaction
        self.compaction_policy = compaction_policy
        self.warp_size = warp_size
        self.reduce_impl = reduce_impl
        self._obs = obs
        self._san = sanitize if sanitize is not None else spec.sanitize

    # -- public API ------------------------------------------------------------

    @property
    def messages_per_iteration(self) -> int:
        """Matrix capacity: one message per thread."""
        return self.warps_per_cta * self.warp_size

    def match(self, messages: EnvelopeBatch,
              requests: EnvelopeBatch) -> MatchOutcome:
        """Match with the vectorized fast path and price the execution."""
        ledger = CostLedger()
        out, iterations = self.execute(messages, requests, ledger)
        return self._finish(out, len(messages), len(requests), ledger,
                            iterations=iterations)

    def execute(self, messages: EnvelopeBatch, requests: EnvelopeBatch,
                ledger: CostLedger) -> tuple[np.ndarray, int]:
        """Fast-path matching, charging costs into a caller-owned ledger.

        Used directly by :class:`~repro.core.partitioned.PartitionedMatcher`,
        which prices several queue ledgers jointly.  Returns the
        request->message vector and the iteration (message block) count.
        """
        messages.assert_concrete("message queue")
        n_msg, n_req = len(messages), len(requests)
        out = np.full(n_req, NO_MATCH, dtype=np.int64)
        if n_msg == 0 or n_req == 0:
            return out, 0

        block = self.messages_per_iteration
        n_blocks = math.ceil(n_msg / block)
        unmatched_cols = np.ones(n_req, dtype=bool)
        reduce = (self._reduce_block if self.reduce_impl == "batched"
                  else self._reduce_block_scalar)

        for b in range(n_blocks):
            lo, hi = b * block, min((b + 1) * block, n_msg)
            open_idx = np.nonzero(unmatched_cols)[0]
            open_cols = int(open_idx.size)
            plan = self._plan(hi - lo, open_cols)
            # Blockwise scan: only this block's rows and only the still
            # open columns are materialized, so peak memory is
            # O(block x open columns), never O(n_msg x n_req).
            block_mtx = messages.match_block(requests[open_idx], lo, hi)
            # Pack votes: one int per (warp, open column).
            votes = _pack_block_votes(block_mtx, plan.n_warps,
                                      self.warp_size)
            if self._obs is not None:
                self._obs.count("matrix.blocks")
                if block_mtx.size:
                    self._obs.observe(
                        "matrix.vote_occupancy",
                        float(np.count_nonzero(block_mtx)) / block_mtx.size)
            visited = reduce(votes, open_idx, unmatched_cols, out, lo,
                             ledger, plan)
            if self._obs is not None:
                self._obs.count("matrix.columns_visited", float(visited))
            # The scan pipeline only fills the windows the reduce actually
            # consumed: once every message of the block is matched the
            # remaining columns are skipped (this is why an in-order
            # receive queue is cheap beyond 1024 entries and a reversed
            # one is not -- Section V-B).
            scanned = min(open_cols,
                          math.ceil(visited / self.window) * self.window)
            self._charge_scan(ledger, self._plan(hi - lo, scanned))
            if not unmatched_cols.any():
                break
        if self.compaction and self._should_compact(out, n_req):
            self._charge_compaction(ledger, n_msg, n_req)
        return out, n_blocks

    #: Minimum matched fraction below which adaptive compaction tolerates
    #: the bubbles and skips the pass (Section V-A).
    COMPACTION_MIN_FRACTION = 0.25

    def _should_compact(self, out: np.ndarray, n_req: int) -> bool:
        if self.compaction_policy == "always":
            return True
        matched = int(np.count_nonzero(out != NO_MATCH))
        return matched >= self.COMPACTION_MIN_FRACTION * max(1, n_req)

    # -- fast-path internals -----------------------------------------------------

    def _plan(self, n_block_msgs: int, n_open_columns: int) -> _PhasePlan:
        n_warps = math.ceil(n_block_msgs / self.warp_size)
        n_chunks = math.ceil(n_open_columns / self.window) if n_open_columns else 0
        return _PhasePlan(n_block_msgs=n_block_msgs, n_warps=n_warps,
                          n_columns=n_open_columns, n_chunks=n_chunks)

    def _reduce_block(self, votes: np.ndarray, open_idx: np.ndarray,
                      unmatched_cols: np.ndarray, out: np.ndarray,
                      msg_base: int, ledger: CostLedger,
                      plan: _PhasePlan) -> int:
        """Batched sequential column reduce.

        Functionally identical to :meth:`_reduce_block_scalar` (the modeled
        GPU still walks columns one by one; only the *host* resolves them
        in batches): each column, in posted order, matches the
        lowest-numbered still-unconsumed message among its candidates.
        Columns of a batch are independent unless two of them bid on the
        same warp-word bit, so a batch commits the conflict-free prefix of
        its picks in one vectorized step and falls back to a scalar pick
        only for the first column of a conflicting group.  Costs are
        charged with batched ``add`` calls whose totals equal the
        per-column charging bit for bit (integer counts are exact in
        float64).  Returns the number of columns visited before the
        block's messages were exhausted (early exit).
        """
        n_warps = votes.shape[0]
        block_msgs = plan.n_block_msgs
        mask = np.full(n_warps, (1 << self.warp_size) - 1, dtype=np.int64)
        reduce_phase = ledger.phase("reduce", active_warps=1,
                                    overlap_group=self._overlap_group(plan))
        n_open = int(open_idx.size)
        visited = 0
        matched = 0
        pos = 0
        while pos < n_open and matched < block_msgs:
            end = min(pos + REDUCE_BATCH, n_open)
            b = end - pos
            masked = votes[:, pos:end] & mask[:, None]
            has = masked.any(axis=0)
            if not has.any():
                visited += b
                pos = end
                continue
            # Per-column pick under the batch-entry mask: first warp with
            # a candidate (ffs over the lane ballot), then the lowest set
            # bit of its vote word (ffs within the word) -- i.e. the
            # minimum message id among the column's candidates.
            first_warp = np.argmax(masked != 0, axis=0)
            word = masked[first_warp, np.arange(b)]
            lane = np.zeros(b, dtype=np.int64)
            low = word[has] & -word[has]
            # exact: low is a power of two <= 2**31
            lane[has] = np.log2(low.astype(np.float64)).astype(np.int64)
            pick = np.where(has, first_warp * self.warp_size + lane, -1)
            # A pick is wrong only if an *earlier* column of the batch
            # consumed the same message: find the first duplicated pick.
            # (If an earlier column consumed a non-minimum candidate of a
            # later column, the later column's minimum -- its pick -- is
            # untouched, so distinct picks are exactly the sequential
            # result.)
            order = np.argsort(pick, kind="stable")
            sorted_pick = pick[order]
            dup_sorted = np.zeros(b, dtype=bool)
            dup_sorted[1:] = ((sorted_pick[1:] == sorted_pick[:-1])
                              & (sorted_pick[1:] >= 0))
            is_dup = np.zeros(b, dtype=bool)
            is_dup[order] = dup_sorted
            take = int(np.argmax(is_dup)) if is_dup.any() else b
            # Early exit: stop at the column that consumes the block's
            # last message, exactly like the scalar loop.
            cum = np.cumsum(has[:take])
            exhausted = cum.size > 0 and matched + int(cum[-1]) >= block_msgs
            if exhausted:
                take = int(np.argmax(matched + cum >= block_msgs)) + 1
            sel = np.nonzero(has[:take])[0]
            if sel.size:
                picks = pick[sel]
                cols = open_idx[pos + sel]
                out[cols] = msg_base + picks
                unmatched_cols[cols] = False
                consumed = np.zeros(n_warps, dtype=np.int64)
                np.bitwise_or.at(consumed, picks // self.warp_size,
                                 np.int64(1) << (picks % self.warp_size))
                mask &= ~consumed
                matched += int(sel.size)
            visited += take
            pos += take
            if matched >= block_msgs:
                break
            if take < b and not exhausted:
                # Scalar fallback for the first column of the conflicting
                # group; the rest of the batch re-bids under the updated
                # mask on the next pass.
                col_word = votes[:, pos] & mask
                bidders = np.nonzero(col_word)[0]
                if bidders.size:
                    w = int(bidders[0])
                    lane_match = ffs32(int(col_word[w])) - 1
                    j = open_idx[pos]
                    out[j] = msg_base + w * self.warp_size + lane_match
                    mask[w] &= ~(1 << lane_match)
                    unmatched_cols[j] = False
                    matched += 1
                visited += 1
                pos += 1
        # Batched cost accounting: one add per op kind per block.  The
        # totals are identical to charging per column (smem_load, ballot,
        # 4 alu, branch per visited column; 3 alu, smem_store per match).
        reduce_phase.add("smem_load", float(visited))
        reduce_phase.add("ballot", float(visited))
        reduce_phase.add("alu", 4.0 * visited + 3.0 * matched)
        reduce_phase.add("branch", float(visited))
        if matched:
            reduce_phase.add("smem_store", float(matched))
        # Results stage in shared memory and flush coalesced per window
        # chunk, so per-column cost barely depends on whether it matched
        # ("performance decreases linearly with the number of matched
        # messages": rate ~ matches, time ~ columns).
        reduce_phase.add("gmem_store",
                         2.0 * math.ceil(max(1, visited) / self.window))
        return visited

    def _reduce_block_scalar(self, votes: np.ndarray, open_idx: np.ndarray,
                             unmatched_cols: np.ndarray, out: np.ndarray,
                             msg_base: int, ledger: CostLedger,
                             plan: _PhasePlan) -> int:
        """Pre-batching per-column reduce, kept as the reference
        implementation for the equivalence suite.  Returns the number of
        columns visited before the block's messages were exhausted."""
        n_warps = votes.shape[0]
        block_msgs = plan.n_block_msgs
        mask = np.full(n_warps, (1 << self.warp_size) - 1, dtype=np.int64)
        reduce_phase = ledger.phase("reduce", active_warps=1,
                                    overlap_group=self._overlap_group(plan))
        visited = 0
        matched_in_block = 0
        for c in range(open_idx.size):
            visited += 1
            # lane loads, masked vote, ballot over lanes with candidates
            masked = votes[:, c] & mask
            reduce_phase.add("smem_load", 1)
            reduce_phase.add("ballot", 1)
            reduce_phase.add("alu", 4)
            reduce_phase.add("branch", 1)
            bidders = np.nonzero(masked)[0]
            if bidders.size:
                w = int(bidders[0])              # ffs over the lane ballot
                lane = ffs32(int(masked[w])) - 1  # ffs within the vote word
                j = open_idx[c]
                out[j] = msg_base + w * self.warp_size + lane
                mask[w] &= ~(1 << lane)
                unmatched_cols[j] = False
                reduce_phase.add("alu", 3)
                reduce_phase.add("smem_store", 1)
                matched_in_block += 1
                if matched_in_block == block_msgs:
                    break  # every message of this block is consumed
        reduce_phase.add("gmem_store",
                         2.0 * math.ceil(max(1, visited) / self.window))
        return visited

    def _overlap_group(self, plan: _PhasePlan) -> str | None:
        """Scan/reduce pipelining: possible only while spare warps exist.

        With all 32 warps scanning (1024-message iterations) the reduce
        cannot be overlapped any more -- the Figure 4 knee.
        """
        return "pipeline" if plan.n_warps < MAX_WARPS_PER_CTA else None

    def _charge_scan(self, ledger: CostLedger, plan: _PhasePlan) -> None:
        """Analytic cost of Algorithm 1 for one message block.

        Per warp: one coalesced 64-bit load of its 32 message envelopes
        (2 x 128 B transactions), then per scanned column a broadcast
        request load (staged through shared memory by the prefetcher), a
        64-bit compare, the ballot, and the vote-matrix store.
        """
        scan = ledger.phase("scan", active_warps=max(1, plan.n_warps),
                            overlap_group=self._overlap_group(plan))
        w, c = plan.n_warps, plan.n_columns
        scan.add("gmem_load", 2 * w)
        scan.add("smem_load", float(w * c))
        scan.add("alu", float(w * c))
        scan.add("ballot", float(w * c))
        scan.add("smem_store", float(w * c))
        # Pipeline handoff barrier per window chunk.
        scan.add("sync", float(plan.n_chunks))

    def _charge_compaction(self, ledger: CostLedger, n_msg: int,
                           n_req: int) -> None:
        """Queue compaction after matching (both queues), at CTA width.

        The paper measures the overall impact at about 10% of the
        matching rate.
        """
        from .compaction import charge_compaction
        charge_compaction(ledger, n_msg + n_req, max_warps=self.warps_per_cta)

    def _finish(self, out: np.ndarray, n_msg: int, n_req: int,
                ledger: CostLedger, iterations: int) -> MatchOutcome:
        timing = TimingModel(self.spec).evaluate(ledger)
        if self._obs is not None:
            matched = int(np.count_nonzero(out != NO_MATCH))
            self._obs.count("matrix.matches", float(matched))
            self._obs.match_span(
                "matrix.match", timing.seconds, timing.per_phase_cycles,
                self.spec.clock_hz, n_messages=n_msg, n_requests=n_req,
                matched=matched, iterations=max(1, iterations))
        return MatchOutcome(
            request_to_message=out, n_messages=n_msg, n_requests=n_req,
            seconds=timing.seconds, cycles=timing.cycles,
            iterations=max(1, iterations),
            meta={"phase_cycles": timing.per_phase_cycles,
                  "device": self.spec.name,
                  "warps_per_cta": self.warps_per_cta,
                  "window": self.window,
                  "warp_size": self.warp_size,
                  "compaction": self.compaction})

    # -- pedantic path -------------------------------------------------------------

    def match_pedantic(self, messages: EnvelopeBatch,
                       requests: EnvelopeBatch) -> MatchOutcome:
        """Execute Algorithms 1-2 verbatim on the warp simulator.

        Functionally identical to :meth:`match`; costs are recorded by the
        :class:`~repro.simt.warp.Warp` primitives themselves.  Intended for
        validation at small sizes (it loops in Python per warp per column).
        """
        if self.warp_size != WARP_SIZE:
            raise ValueError("the pedantic path executes physical 32-lane "
                             "warps; variable warp sizes are fast-path only")
        messages.assert_concrete("message queue")
        n_msg, n_req = len(messages), len(requests)
        out = np.full(n_req, NO_MATCH, dtype=np.int64)
        if n_msg == 0 or n_req == 0:
            ledger = CostLedger()
            return self._finish(out, n_msg, n_req, ledger, iterations=0)

        block = self.messages_per_iteration
        n_blocks = math.ceil(n_msg / block)
        unmatched = np.ones(n_req, dtype=bool)
        ledger = CostLedger()
        san = self._san
        if san is not None:
            prev_kernel = san.current_kernel
            san.current_kernel = "matrix.match_pedantic"

        for b in range(n_blocks):
            lo, hi = b * block, min((b + 1) * block, n_msg)
            n_block = hi - lo
            n_warps = math.ceil(n_block / WARP_SIZE)
            cta = CTA(num_warps=n_warps,
                      shared_words=n_warps * self.window, ledger=ledger,
                      cta_id=b, sanitize=san)
            cols = np.nonzero(unmatched)[0]
            plan = self._plan(n_block, cols.size)
            group = self._overlap_group(plan)
            # Per-lane message masks persist across window chunks: a message
            # matched in an earlier chunk must stay consumed for the rest of
            # the block (Algorithm 2 keeps the mask in registers).
            lanes = cta.warps[0].lanes
            holds_row = lanes < n_warps
            mask = np.where(holds_row, (1 << WARP_SIZE) - 1, 0).astype(np.int64)
            block_exhausted = False
            for chunk_start in range(0, cols.size, self.window):
                chunk = cols[chunk_start:chunk_start + self.window]
                self._pedantic_scan(cta, messages, requests,
                                    lo, n_block, chunk, group)
                cta.syncthreads()
                block_exhausted = self._pedantic_reduce(
                    cta, chunk, out, lo, unmatched, group, n_warps, mask,
                    holds_row, n_block)
                cta.syncthreads()
                if block_exhausted:
                    break  # all of this block's messages are consumed
        if san is not None:
            san.finalize()
            san.current_kernel = prev_kernel
        return self._finish(out, n_msg, n_req, ledger, iterations=n_blocks)

    def _pedantic_scan(self, cta: CTA, messages: EnvelopeBatch,
                       requests: EnvelopeBatch,
                       msg_base: int, n_block: int, chunk: np.ndarray,
                       group: str | None) -> None:
        """Algorithm 1: every warp votes its lanes' messages per column."""
        cta.ledger.phase("scan", active_warps=cta.num_warps,
                         overlap_group=group)
        for warp in cta.warps:
            lane_msg = msg_base + warp.warp_id * WARP_SIZE + warp.lanes
            in_range = lane_msg - msg_base < n_block
            warp.active = in_range.copy()
            warp._issue("gmem_load", 2)  # coalesced 64-bit envelope fetch
            for i, j in enumerate(chunk):
                req = requests[int(j)]
                warp._issue("smem_load", 1)  # broadcast request word
                pred = _accepts_vector(req, messages, lane_msg, in_range)
                warp._issue("alu", 1)
                vote = warp.ballot(pred)
                cta.shared.store(
                    np.array([warp.warp_id * self.window + i]),
                    np.array([vote]), warp_id=warp.warp_id)
            warp.active = full_active(WARP_SIZE)

    def _pedantic_reduce(self, cta: CTA, chunk: np.ndarray, out: np.ndarray,
                         msg_base: int, unmatched: np.ndarray,
                         group: str | None, n_warps: int,
                         mask: np.ndarray, holds_row: np.ndarray,
                         n_block: int) -> bool:
        """Algorithm 2: one warp reduces the chunk's columns in order.

        Returns True once every message of the block has been matched
        (the early-exit condition shared with the fast path)."""
        cta.ledger.phase("reduce", active_warps=1, overlap_group=group)
        warp = cta.warps[0]
        lanes = warp.lanes
        full = (1 << WARP_SIZE) - 1
        for i, j in enumerate(chunk):
            addrs = np.minimum(lanes, n_warps - 1) * self.window + i
            votes = cta.shared.load(addrs, warp_id=warp.warp_id)
            votes = np.where(holds_row, votes, 0)
            masked = warp.op(votes & mask, count=1)
            bidders = warp.ballot(masked != 0)
            warp.op(masked, count=3)  # ffs compare, index arithmetic, branch
            if bidders:
                w = ffs32(bidders) - 1
                lane_match = ffs32(int(masked[w])) - 1
                out[j] = msg_base + w * WARP_SIZE + lane_match
                mask[w] &= ~(1 << lane_match)
                unmatched[j] = False
                warp.op(masked, count=3)
                warp._issue("smem_store", 1)
                consumed = sum(
                    bin(full & ~int(m)).count("1")
                    for m, h in zip(mask, holds_row) if h)
                if consumed == n_block:
                    warp._issue("gmem_store", 2)
                    return True
        # coalesced flush of the chunk's staged results
        warp._issue("gmem_store", 2)
        return False


def _pack_block_votes(block_matrix: np.ndarray, n_warps: int,
                      warp_size: int = WARP_SIZE) -> np.ndarray:
    """Collapse a (block_msgs x n_req) boolean matrix into per-warp vote words.

    Accumulates one lane at a time so the largest temporary is a single
    (n_warps x n_req) int64 plane, not an (n_warps x warp_size x n_req)
    cube.
    """
    n_block, n_req = block_matrix.shape
    padded = np.zeros((n_warps * warp_size, n_req), dtype=bool)
    padded[:n_block] = block_matrix
    lanes = padded.reshape(n_warps, warp_size, n_req)
    votes = np.zeros((n_warps, n_req), dtype=np.int64)
    for lane in range(warp_size):
        votes |= lanes[:, lane, :].astype(np.int64) << np.int64(lane)
    return votes


def _accepts_vector(req, messages: EnvelopeBatch, lane_msg: np.ndarray,
                    in_range: np.ndarray) -> np.ndarray:
    """Per-lane predicate: does ``req`` accept each lane's message?"""
    idx = np.where(in_range, lane_msg, 0)
    src_ok = (req.src == -1) | (messages.src[idx] == req.src)
    tag_ok = (req.tag == -1) | (messages.tag[idx] == req.tag)
    comm_ok = messages.comm[idx] == req.comm
    return src_ok & tag_ok & comm_ok & in_range
