"""Application models against the paper's Table I / Figure 2 targets.

Small-scale structural checks run on every model; the quantitative
targets are asserted at each model's default scale (the scale the
benchmarks report).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.traces import (APP_MODELS, analyze, app_names, figure2_summary,
                          generate_trace, get_model, tuple_uniqueness)
from repro.traces.apps.base import (grid_dims, grid_neighbors,
                                    random_neighbors, ring_neighbors,
                                    skewed_neighbors)

ALL = app_names()


class TestTopologyHelpers:
    def test_grid_dims(self):
        assert grid_dims(64, 3) == (4, 4, 4)
        assert grid_dims(12, 2) == (4, 3)
        assert grid_dims(7, 3) == (7, 1, 1)

    def test_face_neighbors_symmetric(self):
        nbrs = grid_neighbors(27, ndim=3, corners=False)
        for r, ns in enumerate(nbrs):
            assert r not in ns
            for n in ns:
                assert r in nbrs[n]
        # interior rank of a 3x3x3 grid has 6 face neighbors
        assert max(len(ns) for ns in nbrs) == 6

    def test_moore_neighbors_count(self):
        nbrs = grid_neighbors(27, ndim=3, corners=True)
        assert max(len(ns) for ns in nbrs) == 26  # interior rank
        assert min(len(ns) for ns in nbrs) == 7   # corner rank

    def test_ring(self):
        nbrs = ring_neighbors(6, hops=1)
        assert nbrs[0] == [5, 1]

    def test_random_symmetric(self):
        rng = np.random.default_rng(0)
        nbrs = random_neighbors(20, 4, rng)
        for r, ns in enumerate(nbrs):
            for n in ns:
                assert r in nbrs[n]

    def test_skewed_degrees(self):
        rng = np.random.default_rng(0)
        nbrs = skewed_neighbors(40, k_min=3, k_max=30, rng=rng,
                                hot_fraction=0.1)
        degrees = sorted(len(ns) for ns in nbrs)
        assert degrees[-1] > 3 * degrees[len(degrees) // 2]


class TestRegistry:
    def test_sixteen_apps(self):
        # 13 DOE proxy apps + 3 Benchpark re-fire models
        assert len(ALL) == 16

    def test_lookup_by_full_name(self):
        assert get_model("EXMATEX LULESH").name == "exmatex_lulesh"
        with pytest.raises(KeyError):
            get_model("hpl")

    def test_every_suite_represented(self):
        suites = {m.suite for m in APP_MODELS.values()}
        assert suites == {"designforward", "cesar", "exact", "exmatex",
                          "amr", "benchpark"}


@pytest.mark.parametrize("app", ALL)
class TestEveryModelStructure:
    """Structural invariants at a small, fast scale."""

    def test_generates_valid_balanced_trace(self, app):
        tr = generate_trace(app, n_ranks=8, steps=2, seed=1)
        assert len(tr) > 0
        assert tr.validate_balance()["balanced"]

    def test_reproducible(self, app):
        a = generate_trace(app, n_ranks=8, steps=2, seed=42)
        b = generate_trace(app, n_ranks=8, steps=2, seed=42)
        assert [(e.kind, e.rank) for e in a] == [(e.kind, e.rank) for e in b]

    def test_seed_changes_trace(self, app):
        a = generate_trace(app, n_ranks=8, steps=2, seed=1)
        b = generate_trace(app, n_ranks=8, steps=2, seed=2)
        assert len(a) > 0 and len(b) > 0  # both valid; equality not required

    def test_replay_drains(self, app):
        """Balanced traces must leave (nearly) empty queues: every send is
        eventually received."""
        tr = generate_trace(app, n_ranks=8, steps=2, seed=1)
        from repro.traces.queue_replay import replay
        states = replay(tr)
        assert sum(len(s.umq) for s in states) == 0
        assert sum(len(s.prq) for s in states) == 0

    def test_wildcard_flags_honest(self, app):
        """The model's declared wildcard usage matches its trace."""
        model = get_model(app)
        tr = generate_trace(app, n_ranks=16, steps=2, seed=0)
        row = analyze(tr)
        assert row.uses_src_wildcard == model.uses_src_wildcard
        assert not row.uses_tag_wildcard  # Table I: no app uses ANY_TAG

    def test_16bit_tags(self, app):
        """'none of the applications needs tag values longer than 16
        bits'."""
        tr = generate_trace(app, n_ranks=16, steps=2, seed=0)
        assert analyze(tr).header_fits_64bit

    def test_invalid_scales_rejected(self, app):
        with pytest.raises(ValueError):
            generate_trace(app, n_ranks=1)
        with pytest.raises(ValueError):
            generate_trace(app, steps=0)


class TestTableITargets:
    """Paper-reported values at default scales."""

    def test_only_minidft_and_minife_use_src_wildcard(self):
        wc = {name for name, m in APP_MODELS.items() if m.uses_src_wildcard}
        assert wc == {"df_minidft", "df_minife"}

    def test_communicator_counts(self):
        assert APP_MODELS["cesar_nekbone"].n_communicators == 2
        assert APP_MODELS["df_minidft"].n_communicators == 7
        others = [m for n, m in APP_MODELS.items()
                  if n not in ("cesar_nekbone", "df_minidft")]
        assert all(m.n_communicators == 1 for m in others)

    def test_amg_peer_count(self):
        row = analyze(generate_trace("df_amg"))
        assert row.peers_mean == pytest.approx(79, rel=0.15)

    def test_cns_peer_count(self):
        row = analyze(generate_trace("exact_cns"))
        assert row.peers_mean == pytest.approx(72, rel=0.15)

    def test_most_apps_10_to_30_peers(self):
        wide = {"df_amg", "exact_cns"}       # the paper's two outliers
        narrow = {"df_minife", "df_partisn", "df_snap",
                  "cesar_crystalrouter", "df_minidft"}  # sweep/group apps
        # Table I covers the 13 DOE proxy apps; the Benchpark models
        # have their own pattern contracts (tests/traces/test_benchpark)
        doe = {n for n, m in APP_MODELS.items() if m.suite != "benchpark"}
        for name in doe - wide - narrow:
            row = analyze(generate_trace(name))
            assert 8 <= row.peers_mean <= 35, (name, row.peers_mean)

    def test_tag_space_sizes(self):
        thousands = {"df_minidft", "df_partisn", "cesar_mocfe"}
        few = {"df_amg", "exmatex_lulesh", "df_minife"}
        for name in thousands:
            tr = generate_trace(name)
            assert analyze(tr).n_tags >= 256, name
        for name in few:
            tr = generate_trace(name)
            assert analyze(tr).n_tags < 4, name

    def test_irregular_rank_usage(self):
        """Nekbone and Boxlib irregular; halo apps uniform (Section VI-A)."""
        nek = analyze(generate_trace("cesar_nekbone")).rank_usage_cov
        box = analyze(generate_trace("amr_boxlib")).rank_usage_cov
        lul = analyze(generate_trace("exmatex_lulesh")).rank_usage_cov
        cns = analyze(generate_trace("exact_cns")).rank_usage_cov
        assert nek > 2 * lul and nek > 2 * cns
        assert box > 1.5 * lul and box > 1.5 * cns


class TestFigure2Targets:
    def test_nekbone_deep_skewed_queues(self):
        out = figure2_summary(generate_trace("cesar_nekbone"))
        assert out["umq_max_mean"] == pytest.approx(4000, rel=0.15)
        assert out["umq_max_median"] == pytest.approx(1800, rel=0.15)

    def test_multigrid_deep_queues(self):
        out = figure2_summary(generate_trace("exact_multigrid"))
        assert out["umq_max_mean"] == pytest.approx(2000, rel=0.15)
        assert out["umq_max_median"] == pytest.approx(1500, rel=0.15)

    def test_other_apps_below_512(self):
        for name in set(ALL) - {"cesar_nekbone", "exact_multigrid"}:
            out = figure2_summary(generate_trace(name))
            assert out["umq_max_mean"] < 512, (name, out["umq_max_mean"])

    def test_umq_prq_similar(self):
        """'UMQ and PRQ show similar queue lengths' -- same order of
        magnitude for the halo apps."""
        out = figure2_summary(generate_trace("exmatex_lulesh"))
        assert out["prq_max_mean"] > 0
        assert out["umq_max_mean"] < 100 and out["prq_max_mean"] < 600


class TestFigure6aTargets:
    def test_most_apps_single_digit_dominant_share(self):
        """'most applications range in single digit percentages'."""
        single_digit = 0
        for name in ALL:
            u = tuple_uniqueness(generate_trace(name))
            if u["dominant_share_mean"] < 0.10:
                single_digit += 1
        assert single_digit >= len(ALL) * 0.6

    def test_lulesh_low_share(self):
        u = tuple_uniqueness(generate_trace("exmatex_lulesh"))
        assert u["dominant_share_mean"] < 0.10
