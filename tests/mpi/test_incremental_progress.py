"""Incremental vs snapshot progress matching."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.envelope import ANY_SOURCE, ANY_TAG
from repro.mpi import Cluster


def _random_traffic(cluster: Cluster, seed: int, n_ops: int = 120,
                    wildcards: bool = True) -> list:
    """Drip-feed a reproducible interleaving of sends/recvs; returns the
    receive requests in post order."""
    rng = np.random.default_rng(seed)
    reqs = []
    for _ in range(n_ops):
        if rng.random() < 0.5:
            src = int(rng.integers(0, cluster.n_ranks - 1))
            tag = int(rng.integers(0, 4))
            cluster.rank(src).isend(cluster.n_ranks - 1, (src, tag), tag=tag)
        else:
            if wildcards and rng.random() < 0.25:
                src = ANY_SOURCE
            else:
                src = int(rng.integers(0, cluster.n_ranks - 1))
            tag = ANY_TAG if wildcards and rng.random() < 0.25 \
                else int(rng.integers(0, 4))
            reqs.append((src, tag,
                         cluster.rank(cluster.n_ranks - 1).irecv(src, tag)))
        cluster.progress()
    cluster.drain()
    return reqs


class TestEquivalence:
    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("wildcards", [False, True])
    def test_same_deliveries_as_snapshot(self, seed, wildcards):
        """Both modes must hand every request the same payload under the
        same drip-fed operation sequence."""
        results = {}
        for mode in ("incremental", "snapshot"):
            cluster = Cluster(4, progress_mode=mode)
            reqs = _random_traffic(cluster, seed, wildcards=wildcards)
            results[mode] = [
                (src, tag, req.wait() if req.test() else None)
                for (src, tag, req) in reqs]
        assert results["incremental"] == results["snapshot"]

    def test_old_request_priority_over_new(self):
        """A message arriving must go to the earlier-posted matching
        request even when a newer request appears in the same pass."""
        c = Cluster(2, progress_mode="incremental")
        r_old = c.rank(1).irecv(src=ANY_SOURCE, tag=0)
        c.progress()          # r_old becomes 'old'
        r_new = c.rank(1).irecv(src=0, tag=0)
        c.rank(0).isend(1, b"m", tag=0)
        c.progress()
        assert r_old.test() and r_old.wait() == b"m"
        assert not r_new.test()

    def test_new_request_takes_earliest_message(self):
        c = Cluster(2, progress_mode="incremental")
        c.rank(0).isend(1, b"first", tag=0)
        c.progress()          # message becomes 'old', unmatched
        c.rank(0).isend(1, b"second", tag=0)
        got = c.rank(1).recv(src=0, tag=0)
        assert got == b"first"


class TestCostScaling:
    def test_dripfeed_pairs_linear_not_quadratic(self):
        """With unmatched entries accumulating, snapshot mode re-checks
        the whole old x old cross product every pass; incremental mode
        checks each pair exactly once."""
        def run(mode: str):
            c = Cluster(2, progress_mode=mode)
            # 3000 unexpected messages pile up (several matrix blocks)
            for t in range(3000):
                c.rank(0).isend(1, t, tag=5)
            c.progress()
            # 60 passes, each posting one never-matching request
            for t in range(60):
                c.rank(1).irecv(src=0, tag=1000 + t)
                c.progress()
            ep = c.endpoints[1]
            return ep.pairs_checked, c.match_seconds

        snap_pairs, snap_time = run("snapshot")
        inc_pairs, inc_time = run("incremental")
        # pairs: 3000*(1+2+..+60) vs 3000*60 -- a ~30x blowup avoided
        assert inc_pairs < snap_pairs / 20
        # device time also improves (the reduce re-walks old columns per
        # block in snapshot mode), though less dramatically: the
        # semantically necessary work (new element x whole other queue)
        # bounds the gain
        assert inc_time < snap_time

    def test_passes_without_news_are_free(self):
        c = Cluster(2, progress_mode="incremental")
        c.rank(1).irecv(src=0, tag=99)  # never satisfied
        c.rank(0).isend(1, b"x", tag=1)  # never matched
        c.progress()
        cost_after_first = c.match_seconds
        for _ in range(50):
            c.progress()
        assert c.match_seconds == cost_after_first  # nothing new to check


class TestModeValidation:
    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            Cluster(2, progress_mode="lazy")

    def test_mode_works_with_rings(self):
        c = Cluster(2, ring_capacity=2, progress_mode="incremental")
        for i in range(8):
            c.rank(0).isend(1, i, tag=i)
        got = [c.rank(1).recv(src=0, tag=i) for i in range(8)]
        assert got == list(range(8))

    def test_mode_works_under_relaxed_matching(self):
        from repro.core.relaxations import RelaxationSet
        c = Cluster(2, progress_mode="incremental",
                    relaxations=RelaxationSet(wildcards=False,
                                              ordering=False))
        reqs = [c.rank(1).irecv(src=0, tag=t) for t in range(20)]
        for t in range(20):
            c.rank(0).isend(1, t * 2, tag=t)
        assert [r.wait() for r in reqs] == [t * 2 for t in range(20)]
