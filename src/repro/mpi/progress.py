"""Per-endpoint progress engine: the simulated communication kernel.

The paper's model dedicates one SM per GPU to a *communication kernel*
that performs matching in the background while application CTAs run
(Section II-C).  :class:`Endpoint` is that kernel's state: the unified
message queue (UMQ at head), the unified receive-request queue (PRQ at
head), and a :class:`~repro.core.engine.MatchingEngine` that is invoked
on every progress pass.  Simulated device time spent matching accumulates
in :attr:`match_seconds`; queue depth statistics feed the same analysis
the trace study performs (Figure 2).
"""

from __future__ import annotations

from collections import deque

import numpy as np

from ..core.engine import MatchingEngine
from ..core.envelope import Envelope
from ..core.queues import UnifiedQueue
from ..core.result import NO_MATCH
from .network import GASNetwork, MessageDescriptor
from .request import Request, Status
from .ringbuffer import IngressRings

__all__ = ["Endpoint"]


class Endpoint:
    """Matching endpoint of one simulated GPU (rank).

    Parameters
    ----------
    rank:
        This endpoint's rank id.
    engine:
        Matching engine (selects algorithm per the active relaxations).
    network:
        Transport used to charge rendezvous fetches.
    ring_capacity:
        When given, arrivals land in fixed-size per-peer ingress rings
        (GPU-resident queues) that the communication kernel drains into
        the UMQ; a full ring *rejects* the store and the network holds
        the channel back -- credit-style flow control.  ``None`` keeps
        the idealized unbounded queue.
    ring_policy:
        What a full ingress ring does with an arriving store.
        ``"backpressure"`` (default) rejects it so the network holds the
        channel (credit flow control); ``"spill"`` accepts it into an
        unbounded per-source host-side spill buffer that is re-pushed
        into the ring on every progress pass -- per-source FIFO order is
        preserved because arrivals queue *behind* the spill once it is
        non-empty.  Spilled and re-pushed counts appear in :meth:`stats`.
    queue_capacity:
        Optional hard bound on UMQ/PRQ depth.  GPU queues are statically
        sized (no in-kernel malloc, Section VII-C); exceeding the bound
        raises OverflowError -- the failure a real deployment must size
        against (cf. Figure 2's depth study).
    progress_mode:
        ``"incremental"`` (default): each pass only cross-checks the
        pairs that involve a *new* arrival or a *new* post -- old
        unmatched pairs can never start matching, so re-scanning them is
        pure waste.  Matches this protocol order: old requests first get
        a shot at the new messages (posted-order priority), then new
        requests search the whole message queue.  ``"snapshot"``: re-run
        the matcher over the full queues every pass (the paper's batch
        microbenchmark formulation; quadratic under drip-feed traffic).
    """

    def __init__(self, rank: int, engine: MatchingEngine,
                 network: GASNetwork,
                 ring_capacity: int | None = None,
                 progress_mode: str = "incremental",
                 queue_capacity: int | None = None,
                 ring_policy: str = "backpressure",
                 obs=None) -> None:
        if progress_mode not in ("incremental", "snapshot"):
            raise ValueError("progress_mode must be 'incremental' or "
                             "'snapshot'")
        if ring_policy not in ("backpressure", "spill"):
            raise ValueError("ring_policy must be 'backpressure' or "
                             "'spill'")
        self.rank = rank
        self.engine = engine
        self.network = network
        self._obs = obs
        self.umq = UnifiedQueue(name=f"rank{rank}.UMQ",
                                capacity=queue_capacity, obs=obs)
        self.prq = UnifiedQueue(name=f"rank{rank}.PRQ",
                                capacity=queue_capacity, obs=obs)
        self.rings = (IngressRings(ring_capacity, obs=obs)
                      if ring_capacity is not None else None)
        self.ring_policy = ring_policy
        self._spill: dict[int, deque] = {}
        self.spilled_total = 0
        self.spill_max = 0
        self.progress_mode = progress_mode
        self._checked_msg_seq = -1
        self._checked_req_seq = -1
        self.match_seconds = 0.0
        self.match_passes = 0
        self.matches_total = 0
        self.pairs_checked = 0

    # -- queue entry points ------------------------------------------------------

    def deliver(self, desc: MessageDescriptor, retry: bool = False) -> bool:
        """A remote send stores this descriptor at our endpoint.

        Returns False when a full ingress ring rejected it (flow
        control); the network must then hold the whole channel to keep
        pair ordering.  Under the ``"spill"`` ring policy a full ring
        never rejects: the descriptor lands in the per-source spill
        buffer instead and is re-pushed on the next progress pass.
        """
        if self.rings is None:
            self._umq_append(desc)
            return True
        spill = self._spill.get(desc.src)
        if spill:
            # order: once a source has spilled, arrivals queue behind it
            self._spill_append(desc)
            return True
        if self.rings.try_push(desc.src, desc, retry=retry):
            return True
        if self.ring_policy == "spill":
            self._spill_append(desc)
            return True
        return False

    def _spill_append(self, desc: MessageDescriptor) -> None:
        self._spill.setdefault(desc.src, deque()).append(desc)
        self.spilled_total += 1
        self.spill_max = max(self.spill_max, self.spill_pending)

    def _drain_spill(self) -> None:
        """Re-push spilled descriptors into their rings, oldest first."""
        for src in list(self._spill):
            queue = self._spill[src]
            while queue and self.rings.try_push(src, queue[0], retry=True):
                queue.popleft()
            if not queue:
                del self._spill[src]

    @property
    def spill_pending(self) -> int:
        """Descriptors currently parked in spill buffers."""
        return sum(len(q) for q in self._spill.values())

    def _umq_append(self, desc: MessageDescriptor) -> None:
        env = Envelope(src=desc.src, tag=desc.tag, comm=desc.comm)
        self.umq.append(env, payload=desc)

    def post_receive(self, src: int, tag: int, comm: int,
                     request: Request) -> None:
        """Post a receive request into the request queue.

        Admission goes through the engine so a wildcard under a
        no-wildcard relaxation either raises (default) or demotes the
        matcher when graceful degradation is enabled.
        """
        env = Envelope(src=src, tag=tag, comm=comm)
        self.engine.admit_requests(_single_batch(env))
        self.prq.append(env, payload=request)

    # -- the communication kernel's main loop --------------------------------------

    def progress(self) -> int:
        """One matching pass; returns the number of matches made."""
        if self._obs is not None:
            self._obs.set_rank(self.rank)
        if self.rings is not None:
            # the communication kernel only dequeues what the (statically
            # sized) UMQ can hold; the rest waits in the rings as credits
            budget = (None if self.umq.capacity is None
                      else self.umq.capacity - len(self.umq))
            for desc in self.rings.drain(budget=budget):
                self._umq_append(desc)
            if self._spill:
                # refill the slots the drain just freed from the spill
                self._drain_spill()
        if len(self.umq) == 0 or len(self.prq) == 0:
            return 0
        self.umq.observe_depth()
        self.prq.observe_depth()
        self.match_passes += 1
        if self.progress_mode == "snapshot":
            return self._match_subset(np.arange(len(self.umq)),
                                      np.arange(len(self.prq)))
        return self._progress_incremental()

    def _progress_incremental(self) -> int:
        """Cross-check only the pairs a new arrival or post creates.

        Phase A: *old* unmatched requests search the new messages first
        (a message arriving at the endpoint scans the PRQ in posted
        order).  Phase B: new requests then search the whole remaining
        message queue (a freshly posted receive scans the UMQ).  The
        union covers exactly the pairs not yet known non-matching, and
        the phase order reproduces batch-matching priority.
        """
        msg_seq_mark = self.umq.last_seq
        req_seq_mark = self.prq.last_seq
        matched = 0
        new_msgs = self.umq.indices_newer_than(self._checked_msg_seq)
        old_reqs = self.prq.indices_not_newer_than(self._checked_req_seq)
        if new_msgs.size and old_reqs.size:
            matched += self._match_subset(new_msgs, old_reqs)
        new_reqs = self.prq.indices_newer_than(self._checked_req_seq)
        if new_reqs.size and len(self.umq):
            matched += self._match_subset(np.arange(len(self.umq)),
                                          new_reqs)
        self._checked_msg_seq = msg_seq_mark
        self._checked_req_seq = req_seq_mark
        return matched

    def _match_subset(self, msg_idx: np.ndarray,
                      req_idx: np.ndarray) -> int:
        """Match selected UMQ rows against selected PRQ rows and retire
        the pairs; returns the match count."""
        messages = self.umq.snapshot().take(msg_idx)
        requests = self.prq.snapshot().take(req_idx)
        outcome = self.engine.match(messages, requests)
        self.match_seconds += outcome.seconds
        self.pairs_checked += len(messages) * len(requests)
        matched_requests = np.nonzero(
            outcome.request_to_message != NO_MATCH)[0]
        if matched_requests.size == 0:
            return 0
        matched_messages = outcome.request_to_message[matched_requests]
        # Hand each matched request its message payload (rendezvous fetches
        # the data from the source now, eager already carried it).
        for r_local, m_local in zip(matched_requests, matched_messages):
            request: Request = self.prq.payload_at(int(req_idx[r_local]))
            desc: MessageDescriptor = self.umq.payload_at(
                int(msg_idx[m_local]))
            payload = desc.payload
            if not desc.eager:
                self.network.charge_fetch(desc.nbytes)
                payload = desc.fetch() if desc.fetch is not None else None
            request._complete(payload, Status(source=desc.src, tag=desc.tag,
                                              comm=desc.comm,
                                              nbytes=desc.nbytes))
        # Compact both queues (the matcher already charged the device cost
        # when compaction is part of the active configuration).
        self.umq.consume(np.sort(msg_idx[matched_messages]))
        self.prq.consume(np.sort(req_idx[matched_requests]))
        self.matches_total += int(matched_requests.size)
        if self._obs is not None:
            self._obs.count("endpoint.matches",
                            float(matched_requests.size))
        return int(matched_requests.size)

    # -- probing ----------------------------------------------------------------------

    def probe(self, src: int, tag: int, comm: int = 0) -> "Status | None":
        """MPI_Iprobe: is a matching message queued, without consuming it?

        Returns the Status of the *earliest* matching unexpected message
        (MPI semantics), or None.  Probing is a matching attempt and is
        recorded in the queue statistics.
        """
        from ..core.envelope import ANY_SOURCE, ANY_TAG
        self.umq.observe_depth()
        snapshot = self.umq.snapshot()
        for i in range(len(snapshot)):
            env = snapshot[i]
            if env.comm != comm:
                continue
            if src != ANY_SOURCE and env.src != src:
                continue
            if tag != ANY_TAG and env.tag != tag:
                continue
            desc = self.umq.payload_at(i)
            return Status(source=env.src, tag=env.tag, comm=env.comm,
                          nbytes=desc.nbytes)
        return None

    # -- introspection ---------------------------------------------------------------

    @property
    def umq_depth(self) -> int:
        """Current unexpected/unmatched message count."""
        return len(self.umq)

    @property
    def prq_depth(self) -> int:
        """Current posted-receive count."""
        return len(self.prq)

    def oldest_unmatched(self) -> dict | None:
        """Envelope + arrival seq of the oldest unmatched message, or
        None on an empty UMQ (watchdog diagnostics)."""
        return self._oldest_of(self.umq)

    def oldest_posted(self) -> dict | None:
        """Envelope + post seq of the oldest open receive, or None."""
        return self._oldest_of(self.prq)

    @staticmethod
    def _oldest_of(queue: UnifiedQueue) -> dict | None:
        if len(queue) == 0:
            return None
        env = queue.snapshot()[0]
        return {"src": env.src, "tag": env.tag, "comm": env.comm,
                "seq": queue.seq_at(0)}

    def stall_info(self) -> dict:
        """Snapshot for the progress watchdog's stall report."""
        return {
            "rank": self.rank,
            "umq_depth": len(self.umq),
            "prq_depth": len(self.prq),
            "oldest_unmatched": self.oldest_unmatched(),
            "oldest_posted": self.oldest_posted(),
            "rings_queued": self.rings.queued if self.rings is not None else 0,
            "spill_pending": self.spill_pending,
        }

    def stats(self) -> dict:
        """Queue and matching statistics for reports."""
        return {
            "rank": self.rank,
            "umq_max": self.umq.stats.max_depth,
            "umq_mean": self.umq.stats.mean_depth,
            "prq_max": self.prq.stats.max_depth,
            "prq_mean": self.prq.stats.mean_depth,
            "match_passes": self.match_passes,
            "matches": self.matches_total,
            "match_seconds": self.match_seconds,
            "pairs_checked": self.pairs_checked,
            "rings": self.rings.stats() if self.rings is not None else None,
            "spilled": self.spilled_total,
            "spill_pending": self.spill_pending,
            "spill_max": self.spill_max,
            "demotions": len(getattr(self.engine, "demotions", ())),
        }


def _single_batch(env: Envelope):
    from ..core.envelope import EnvelopeBatch
    return EnvelopeBatch(src=[env.src], tag=[env.tag], comm=[env.comm])
