"""Relaxation sets, workload validation, and the engine facade."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.engine import MatchingEngine
from repro.core.envelope import ANY_SOURCE, ANY_TAG, EnvelopeBatch
from repro.core.hash_matching import HashMatcher
from repro.core.matrix_matching import MatrixMatcher
from repro.core.partitioned import PartitionedMatcher
from repro.core.relaxations import (TABLE_II_CONFIGS, RelaxationSet,
                                    WorkloadViolation)
from repro.simt.gpu import GPU
from tests.conftest import permuted_pair


class TestRelaxationSet:
    def test_default_is_mpi_compliant(self):
        rel = RelaxationSet()
        assert rel.mpi_compliant
        assert rel.data_structure == "matrix"
        assert not rel.partitionable
        assert rel.user_implication == "none"

    def test_unordered_requires_no_wildcards(self):
        with pytest.raises(ValueError):
            RelaxationSet(wildcards=True, ordering=False)

    def test_partitionable_iff_no_wildcards(self):
        assert RelaxationSet(wildcards=False).partitionable
        assert not RelaxationSet(wildcards=True).partitionable

    def test_table_ii_has_six_rows(self):
        assert len(TABLE_II_CONFIGS) == 6
        assert len({r.label() for r in TABLE_II_CONFIGS}) == 6

    def test_table_ii_row_properties(self):
        """The Part. / Data structure / User implication columns of
        Table II, row by row."""
        expected = [
            (False, "matrix", "none"),
            (False, "matrix", "medium"),
            (True, "matrix", "low"),
            (True, "matrix", "medium"),
            (True, "hash", "high"),
            (True, "hash", "high"),
        ]
        got = [(r.partitionable, r.data_structure, r.user_implication)
               for r in TABLE_II_CONFIGS]
        assert got == expected

    def test_compaction_needed_iff_unexpected(self):
        assert RelaxationSet(unexpected=True).needs_compaction
        assert not RelaxationSet(unexpected=False).needs_compaction

    def test_validate_requests(self):
        rel = RelaxationSet(wildcards=False)
        rel.validate_requests(EnvelopeBatch(src=[1], tag=[2]))
        with pytest.raises(WorkloadViolation):
            rel.validate_requests(EnvelopeBatch(src=[ANY_SOURCE], tag=[2]))
        with pytest.raises(WorkloadViolation):
            rel.validate_requests(EnvelopeBatch(src=[1], tag=[ANY_TAG]))

    def test_validate_unexpected(self):
        RelaxationSet(unexpected=False).validate_unexpected(0)
        with pytest.raises(WorkloadViolation):
            RelaxationSet(unexpected=False).validate_unexpected(3)
        RelaxationSet(unexpected=True).validate_unexpected(100)

    def test_labels(self):
        assert RelaxationSet().label() == "wc+ord+unexp"
        assert RelaxationSet(wildcards=False, ordering=False,
                             unexpected=False).label() == "nowc+noord+pre"


class TestMatchingEngine:
    def test_matcher_selection(self):
        assert isinstance(MatchingEngine().matcher, MatrixMatcher)
        assert isinstance(
            MatchingEngine(relaxations=RelaxationSet(wildcards=False)).matcher,
            PartitionedMatcher)
        assert isinstance(
            MatchingEngine(relaxations=RelaxationSet(
                wildcards=False, ordering=False)).matcher,
            HashMatcher)

    def test_compaction_follows_unexpected(self):
        on = MatchingEngine(relaxations=RelaxationSet())
        off = MatchingEngine(relaxations=RelaxationSet(unexpected=False))
        assert on.matcher.compaction
        assert not off.matcher.compaction

    def test_rejects_wildcards_under_restriction(self, rng):
        eng = MatchingEngine(relaxations=RelaxationSet(wildcards=False))
        msgs = EnvelopeBatch(src=[1], tag=[0])
        reqs = EnvelopeBatch(src=[ANY_SOURCE], tag=[0])
        with pytest.raises(WorkloadViolation):
            eng.match(msgs, reqs)

    def test_rejects_unexpected_under_prepost(self):
        eng = MatchingEngine(relaxations=RelaxationSet(unexpected=False))
        msgs = EnvelopeBatch(src=[1, 2], tag=[0, 0])
        reqs = EnvelopeBatch(src=[1], tag=[0])  # message from 2 is unexpected
        with pytest.raises(WorkloadViolation):
            eng.match(msgs, reqs)

    @pytest.mark.parametrize("rel", TABLE_II_CONFIGS,
                             ids=[r.label() for r in TABLE_II_CONFIGS])
    def test_all_configs_match_and_verify(self, rel, rng):
        msgs, reqs = permuted_pair(rng, 200, n_ranks=32, n_tags=16)
        eng = MatchingEngine(relaxations=rel, verify=True)
        out = eng.match(msgs, reqs)
        assert out.matched_count == 200
        assert out.seconds > 0

    def test_performance_tiers(self, rng):
        """Table II's Low < High < Very High performance ordering."""
        msgs, reqs = permuted_pair(rng, 1024, n_ranks=64, n_tags=64)
        rates = []
        for rel in (RelaxationSet(),
                    RelaxationSet(wildcards=False),
                    RelaxationSet(wildcards=False, ordering=False)):
            eng = MatchingEngine(relaxations=rel, n_queues=16, n_ctas=32)
            rates.append(eng.match(msgs, reqs).matches_per_second())
        assert rates[0] < rates[1] < rates[2]
        assert rates[1] > 5 * rates[0]     # partitioning ~10x
        assert rates[2] > 10 * rates[1]    # hashing another order

    def test_reference_and_cpu_baseline(self, rng):
        msgs, reqs = permuted_pair(rng, 64)
        eng = MatchingEngine()
        ref = eng.reference(msgs, reqs)
        cpu = eng.cpu_baseline(msgs, reqs)
        assert np.array_equal(ref.request_to_message, cpu.request_to_message)
        assert eng.data_structure == "matrix"

    def test_gpu_parameter_threads_through(self, rng):
        msgs, reqs = permuted_pair(rng, 256)
        slow = MatchingEngine(gpu=GPU.kepler_k80()).match(msgs, reqs)
        fast = MatchingEngine(gpu=GPU.pascal_gtx1080()).match(msgs, reqs)
        assert fast.matches_per_second() > slow.matches_per_second()


class TestWorkloadViolationPaths:
    """Every restricted Table II config must reject (or report) exactly
    the features it prohibits -- not just the happy path."""

    NO_WILDCARD_CONFIGS = [r for r in TABLE_II_CONFIGS if not r.wildcards]
    PRE_POSTED_CONFIGS = [r for r in TABLE_II_CONFIGS if not r.unexpected]

    @pytest.mark.parametrize("rel", NO_WILDCARD_CONFIGS,
                             ids=[r.label() for r in NO_WILDCARD_CONFIGS])
    def test_any_source_rejected_everywhere(self, rel):
        eng = MatchingEngine(relaxations=rel)
        msgs = EnvelopeBatch(src=[0], tag=[1])
        reqs = EnvelopeBatch(src=[ANY_SOURCE], tag=[1])
        with pytest.raises(WorkloadViolation, match="wildcard"):
            eng.match(msgs, reqs)

    @pytest.mark.parametrize("rel", NO_WILDCARD_CONFIGS,
                             ids=[r.label() for r in NO_WILDCARD_CONFIGS])
    def test_any_tag_rejected_everywhere(self, rel):
        eng = MatchingEngine(relaxations=rel)
        with pytest.raises(WorkloadViolation):
            eng.match(EnvelopeBatch(src=[0], tag=[1]),
                      EnvelopeBatch(src=[0], tag=[ANY_TAG]))

    @pytest.mark.parametrize("rel", PRE_POSTED_CONFIGS,
                             ids=[r.label() for r in PRE_POSTED_CONFIGS])
    def test_unexpected_rejected_everywhere(self, rel):
        eng = MatchingEngine(relaxations=rel)
        msgs = EnvelopeBatch(src=[0, 1], tag=[3, 3])
        reqs = EnvelopeBatch(src=[0], tag=[3])  # message from 1 unexpected
        with pytest.raises(WorkloadViolation, match="pre-posted"):
            eng.match(msgs, reqs)

    def test_violation_message_names_the_config(self):
        import re
        rel = RelaxationSet(wildcards=False, ordering=False)
        with pytest.raises(WorkloadViolation, match=re.escape(rel.label())):
            rel.validate_requests(EnvelopeBatch(src=[ANY_SOURCE], tag=[0]))

    def test_violation_is_a_value_error(self):
        assert issubclass(WorkloadViolation, ValueError)

    def test_unmatched_requests_are_not_violations(self):
        """Open receives are fine under pre-posted configs; only
        unmatched *messages* are unexpected."""
        eng = MatchingEngine(relaxations=RelaxationSet(unexpected=False))
        out = eng.match(EnvelopeBatch(src=[0], tag=[1]),
                        EnvelopeBatch(src=[0, 0], tag=[1, 2]))
        assert out.matched_count == 1


class TestGracefulDemotion:
    """demote_on_violation=True: runtime violations move down the
    hash -> partitioned -> matrix lattice instead of raising."""

    def test_wildcard_demotes_partitioned_to_matrix(self):
        eng = MatchingEngine(relaxations=RelaxationSet(wildcards=False),
                             demote_on_violation=True)
        msgs = EnvelopeBatch(src=[3], tag=[1])
        reqs = EnvelopeBatch(src=[ANY_SOURCE], tag=[1])
        out = eng.match(msgs, reqs)
        assert out.matched_count == 1
        assert isinstance(eng.matcher, MatrixMatcher)
        assert eng.relaxations.label() == "wc+ord+unexp"
        assert [(e.from_label, e.to_label) for e in eng.demotions] == \
               [("nowc+ord+unexp", "wc+ord+unexp")]

    def test_wildcard_demotes_hash_to_matrix(self):
        eng = MatchingEngine(relaxations=RelaxationSet(
            wildcards=False, ordering=False), demote_on_violation=True)
        assert isinstance(eng.matcher, HashMatcher)
        out = eng.match(EnvelopeBatch(src=[2], tag=[0]),
                        EnvelopeBatch(src=[ANY_SOURCE], tag=[0]))
        assert out.matched_count == 1
        assert isinstance(eng.matcher, MatrixMatcher)

    def test_unexpected_demotion_keeps_family_and_rematches(self):
        eng = MatchingEngine(relaxations=RelaxationSet(
            wildcards=False, ordering=False, unexpected=False),
            demote_on_violation=True)
        msgs = EnvelopeBatch(src=[0, 1], tag=[3, 3])
        reqs = EnvelopeBatch(src=[0], tag=[3])
        out = eng.match(msgs, reqs)
        assert out.matched_count == 1
        assert isinstance(eng.matcher, HashMatcher)  # family unchanged
        assert eng.relaxations.label() == "nowc+noord+unexp"

    def test_demotion_cost_charged_and_recorded(self, rng):
        from repro.core.adaptive import relaunch_seconds
        rel = RelaxationSet(wildcards=False)
        msgs = EnvelopeBatch(src=[5], tag=[2])
        wild = EnvelopeBatch(src=[ANY_SOURCE], tag=[2])
        plain = EnvelopeBatch(src=[5], tag=[2])
        demoting = MatchingEngine(relaxations=rel, demote_on_violation=True)
        out = demoting.match(msgs, wild)
        baseline = MatchingEngine().match(msgs, plain)  # already matrix
        extra = out.seconds - baseline.seconds
        assert extra == pytest.approx(relaunch_seconds(demoting.gpu))
        (from_label, to_label, reason), = out.meta["demotions"]
        assert (from_label, to_label) == ("nowc+ord+unexp", "wc+ord+unexp")
        assert "wildcard" in reason

    def test_matches_stay_mpi_correct_after_demotion(self, rng):
        msgs, reqs = permuted_pair(rng, 100, n_ranks=8, n_tags=4)
        wild = EnvelopeBatch(src=[ANY_SOURCE] * len(reqs.src),
                             tag=list(reqs.tag))
        eng = MatchingEngine(relaxations=RelaxationSet(wildcards=False),
                             demote_on_violation=True, verify=True)
        out = eng.match(msgs, wild)  # verify=True cross-checks ordering
        assert out.matched_count == 100

    def test_require_ordering_moves_hash_to_partitioned(self):
        eng = MatchingEngine(relaxations=RelaxationSet(
            wildcards=False, ordering=False), demote_on_violation=True)
        event = eng.require_ordering()
        assert event.to_label == "nowc+ord+unexp"
        assert isinstance(eng.matcher, PartitionedMatcher)
        assert eng.require_ordering() is None  # idempotent

    def test_demotion_lattice_methods(self):
        hash_cfg = RelaxationSet(wildcards=False, ordering=False,
                                 unexpected=False)
        assert hash_cfg.demoted_for_ordering().label() == "nowc+ord+pre"
        assert hash_cfg.demoted_for_unexpected().label() == "nowc+noord+unexp"
        assert hash_cfg.demoted_for_wildcards().label() == "wc+ord+pre"

    def test_strict_default_unchanged(self):
        eng = MatchingEngine(relaxations=RelaxationSet(wildcards=False))
        assert not eng.demote_on_violation
        with pytest.raises(WorkloadViolation):
            eng.match(EnvelopeBatch(src=[1], tag=[0]),
                      EnvelopeBatch(src=[ANY_SOURCE], tag=[0]))
        assert eng.demotions == []
