"""BSP-style collectives layered on point-to-point matching.

The paper argues GPU applications are "generally well structured and
strictly follow the BSP model", with tags reusable after synchronization.
These collectives are written in that style: each one is a superstep that
posts all receives, performs all sends, and drains the cluster.  They
run *cluster-wide* from the single-threaded driver (the natural shape for
phase-structured simulated programs).

All collectives reserve tags at the top of the 16-bit tag space so they
never collide with application point-to-point traffic.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from .communicator import COLLECTIVE_TAG_BASE, Communicator

__all__ = ["barrier", "bcast", "gather", "scatter", "allgather",
           "alltoall", "reduce", "allreduce", "scan",
           "neighbor_allgather", "neighbor_alltoall", "neighbor_alltoallv",
           "COLLECTIVE_TAG_BASE"]

_TAG_BARRIER = COLLECTIVE_TAG_BASE + 0
_TAG_BCAST = COLLECTIVE_TAG_BASE + 1
_TAG_GATHER = COLLECTIVE_TAG_BASE + 2
_TAG_ALLTOALL = COLLECTIVE_TAG_BASE + 3
_TAG_REDUCE = COLLECTIVE_TAG_BASE + 4
_TAG_SCATTER = COLLECTIVE_TAG_BASE + 5
_TAG_ALLGATHER = COLLECTIVE_TAG_BASE + 6
_TAG_SCAN = COLLECTIVE_TAG_BASE + 7
_TAG_NEIGHBOR_ALLGATHER = COLLECTIVE_TAG_BASE + 8
_TAG_NEIGHBOR_ALLTOALL = COLLECTIVE_TAG_BASE + 9
_TAG_NEIGHBOR_ALLTOALLV = COLLECTIVE_TAG_BASE + 10


def barrier(comm: Communicator) -> None:
    """Dissemination barrier: log2(P) rounds of pairwise notifications.

    Completes only when every rank has heard (transitively) from every
    other -- the BSP superstep boundary after which tags may be reused.
    """
    p = comm.size
    if p <= 1:
        return
    dist = 1
    while dist < p:
        reqs = []
        for r in range(p):
            src = (r - dist) % p
            reqs.append(comm.coll_irecv(r, src, _TAG_BARRIER))
        for r in range(p):
            dst = (r + dist) % p
            comm.coll_isend(r, dst, None, _TAG_BARRIER)
        for req in reqs:
            req.wait()
        dist <<= 1


def bcast(comm: Communicator, root: int, payload: Any) -> list[Any]:
    """Binomial-tree broadcast; returns the payload as seen by each rank."""
    p = comm.size
    results: list[Any] = [None] * p
    results[root] = payload
    if p == 1:
        return results
    # relative rank space rooted at `root`
    have = {root}
    dist = 1
    while dist < p:
        senders = list(have)
        reqs = []
        for s in senders:
            rel = (s - root) % p
            target_rel = rel + dist
            if target_rel < p:
                dst = (target_rel + root) % p
                reqs.append((dst, comm.coll_irecv(dst, s, _TAG_BCAST)))
                comm.coll_isend(s, dst, results[s], _TAG_BCAST)
        for dst, req in reqs:
            results[dst] = req.wait()
            have.add(dst)
        dist <<= 1
    return results


def gather(comm: Communicator, root: int,
           contributions: Sequence[Any]) -> list[Any]:
    """Gather one contribution per rank at ``root`` (rank order)."""
    p = comm.size
    if len(contributions) != p:
        raise ValueError("need one contribution per rank")
    reqs = {}
    for r in range(p):
        if r == root:
            continue
        reqs[r] = comm.coll_irecv(root, r, _TAG_GATHER)
        comm.coll_isend(r, root, contributions[r], _TAG_GATHER)
    out = [None] * p
    out[root] = contributions[root]
    for r, req in reqs.items():
        out[r] = req.wait()
    return out


def alltoall(comm: Communicator,
             send_matrix: Sequence[Sequence[Any]]) -> list[list[Any]]:
    """Personalized all-to-all: ``send_matrix[i][j]`` goes from i to j.

    Returns the receive matrix: ``out[j][i]`` is what j got from i.  This
    is the heaviest matching workload a collective generates -- P^2
    concurrent messages on one tag.
    """
    p = comm.size
    if len(send_matrix) != p or any(len(row) != p for row in send_matrix):
        raise ValueError("send_matrix must be P x P")
    reqs = [[None] * p for _ in range(p)]
    for j in range(p):
        for i in range(p):
            if i != j:
                reqs[j][i] = comm.coll_irecv(j, i, _TAG_ALLTOALL)
    for i in range(p):
        for j in range(p):
            if i != j:
                comm.coll_isend(i, j, send_matrix[i][j], _TAG_ALLTOALL)
    out = [[None] * p for _ in range(p)]
    for j in range(p):
        for i in range(p):
            out[j][i] = (send_matrix[i][j] if i == j
                         else reqs[j][i].wait())
    return out


def reduce(comm: Communicator, root: int, contributions: Sequence[Any],
           op: Callable[[Any, Any], Any]) -> Any:
    """Binomial-tree reduction to ``root`` with operator ``op``.

    ``op`` must be associative; evaluation order follows the tree.
    """
    p = comm.size
    if len(contributions) != p:
        raise ValueError("need one contribution per rank")
    values = {r: contributions[r] for r in range(p)}
    dist = 1
    while dist < p:
        reqs = []
        for rel in range(0, p, dist * 2):
            partner = rel + dist
            if partner < p:
                dst = (rel + root) % p
                src = (partner + root) % p
                reqs.append((dst, src, comm.coll_irecv(dst, src, _TAG_REDUCE)))
                comm.coll_isend(src, dst, values[src], _TAG_REDUCE)
        for dst, src, req in reqs:
            values[dst] = op(values[dst], req.wait())
        dist <<= 1
    return values[root]


def scatter(comm: Communicator, root: int,
            payloads: Sequence[Any]) -> list[Any]:
    """Scatter one payload per rank from ``root``; returns what each rank
    received (rank order)."""
    p = comm.size
    if len(payloads) != p:
        raise ValueError("need one payload per rank")
    reqs = {}
    for r in range(p):
        if r != root:
            reqs[r] = comm.coll_irecv(r, root, _TAG_SCATTER)
    for r in range(p):
        if r != root:
            comm.coll_isend(root, r, payloads[r], _TAG_SCATTER)
    out = [None] * p
    out[root] = payloads[root]
    for r, req in reqs.items():
        out[r] = req.wait()
    return out


def allgather(comm: Communicator,
              contributions: Sequence[Any]) -> list[list[Any]]:
    """Every rank ends with every rank's contribution (ring algorithm).

    Returns ``out[r]`` = the full list as assembled at rank ``r``.
    """
    p = comm.size
    if len(contributions) != p:
        raise ValueError("need one contribution per rank")
    views = [[None] * p for _ in range(p)]
    for r in range(p):
        views[r][r] = contributions[r]
    # p-1 ring steps: pass the piece you received last step onward
    for step in range(p - 1):
        reqs = []
        for r in range(p):
            left = (r - 1) % p
            reqs.append(comm.coll_irecv(r, left, _TAG_ALLGATHER))
        for r in range(p):
            right = (r + 1) % p
            piece_idx = (r - step) % p
            comm.coll_isend(r, right, (piece_idx, views[r][piece_idx]),
                       _TAG_ALLGATHER)
        for r, req in enumerate(reqs):
            idx, piece = req.wait()
            views[r][idx] = piece
    return views


def _check_topology(comm: Communicator, topo) -> None:
    if topo.n_ranks != comm.size:
        raise ValueError(f"topology spans {topo.n_ranks} ranks but the "
                         f"communicator has {comm.size}")


def neighbor_allgather(comm: Communicator, topo,
                       contributions: Sequence[Any]) -> list[list[Any]]:
    """``MPI_Neighbor_allgather``: each rank sends its contribution to
    every destination neighbor and collects one piece per source
    neighbor.

    Returns ``out[r]`` = received pieces in ``topo.sources(r)`` order.
    Only declared edges carry traffic -- on a combining fabric these
    sparse exchanges coalesce into one batch per ordered shard pair,
    exactly like the dense collectives.
    """
    _check_topology(comm, topo)
    p = comm.size
    if len(contributions) != p:
        raise ValueError("need one contribution per rank")
    reqs = [[comm.coll_irecv(r, s, _TAG_NEIGHBOR_ALLGATHER)
             for s in topo.sources(r)] for r in range(p)]
    for r in range(p):
        for d in topo.destinations(r):
            comm.coll_isend(r, d, contributions[r],
                            _TAG_NEIGHBOR_ALLGATHER)
    return [[req.wait() for req in row] for row in reqs]


def neighbor_alltoall(comm: Communicator, topo,
                      send_lists: Sequence[Sequence[Any]]) -> list[list[Any]]:
    """``MPI_Neighbor_alltoall``: personalized exchange along edges.

    ``send_lists[r][k]`` goes to ``topo.destinations(r)[k]``; returns
    ``out[r][k]`` = what ``r`` received from ``topo.sources(r)[k]``.
    """
    _check_topology(comm, topo)
    p = comm.size
    if len(send_lists) != p:
        raise ValueError("need one send list per rank")
    for r in range(p):
        if len(send_lists[r]) != len(topo.destinations(r)):
            raise ValueError(f"rank {r}: {len(send_lists[r])} payloads "
                             f"for {len(topo.destinations(r))} "
                             "destination neighbors")
    reqs = [[comm.coll_irecv(r, s, _TAG_NEIGHBOR_ALLTOALL)
             for s in topo.sources(r)] for r in range(p)]
    for r in range(p):
        for payload, d in zip(send_lists[r], topo.destinations(r)):
            comm.coll_isend(r, d, payload, _TAG_NEIGHBOR_ALLTOALL)
    return [[req.wait() for req in row] for row in reqs]


def neighbor_alltoallv(comm: Communicator, topo,
                       send_lists: Sequence[Sequence[Sequence[Any]]],
                       ) -> list[list[list[Any]]]:
    """``MPI_Neighbor_alltoallv``: variable-count personalized exchange.

    ``send_lists[r][k]`` is the *sequence of items* rank ``r`` sends to
    its k-th destination neighbor (counts may differ per edge, the
    unstructured-halo shape); returns ``out[r][k]`` = the item list
    received from the k-th source neighbor.  Each edge moves one
    message carrying its item list -- the v-variant varies volume, not
    message count.
    """
    _check_topology(comm, topo)
    p = comm.size
    if len(send_lists) != p:
        raise ValueError("need one send list per rank")
    for r in range(p):
        if len(send_lists[r]) != len(topo.destinations(r)):
            raise ValueError(f"rank {r}: {len(send_lists[r])} item lists "
                             f"for {len(topo.destinations(r))} "
                             "destination neighbors")
    reqs = [[comm.coll_irecv(r, s, _TAG_NEIGHBOR_ALLTOALLV)
             for s in topo.sources(r)] for r in range(p)]
    for r in range(p):
        for items, d in zip(send_lists[r], topo.destinations(r)):
            comm.coll_isend(r, d, list(items), _TAG_NEIGHBOR_ALLTOALLV)
    return [[list(req.wait()) for req in row] for row in reqs]


def allreduce(comm: Communicator, contributions: Sequence[Any],
              op: Callable[[Any, Any], Any]) -> list[Any]:
    """Reduce-to-root plus broadcast; returns the total as seen by every
    rank."""
    total = reduce(comm, 0, contributions, op)
    return bcast(comm, 0, total)


def scan(comm: Communicator, contributions: Sequence[Any],
         op: Callable[[Any, Any], Any]) -> list[Any]:
    """Inclusive prefix reduction: rank r gets op-fold of ranks 0..r.

    Linear pipeline (each rank receives the running prefix from its left
    neighbor, folds, and forwards) -- the textbook MPI_Scan.
    """
    p = comm.size
    if len(contributions) != p:
        raise ValueError("need one contribution per rank")
    out = [None] * p
    out[0] = contributions[0]
    for r in range(1, p):
        req = comm.coll_irecv(r, r - 1, _TAG_SCAN)
        comm.coll_isend(r - 1, r, out[r - 1], _TAG_SCAN)
        out[r] = op(req.wait(), contributions[r])
    return out
