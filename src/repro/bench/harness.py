"""Workload builders and sweep drivers shared by the benchmarks."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..core.envelope import EnvelopeBatch

__all__ = ["matching_workload", "partial_workload", "ordered_workload",
           "reversed_workload", "sweep", "SweepPoint"]


def matching_workload(n: int, n_ranks: int = 64, n_tags: int = 64,
                      seed: int = 0,
                      ) -> tuple[EnvelopeBatch, EnvelopeBatch]:
    """The paper's synthetic micro-benchmark workload (Section V-B).

    "The message queues in this benchmark contain random tuples in random
    order, but all tuples of the message queue match with tuples in the
    receive queue, thus no elements are left in the queues after the
    matching."
    """
    rng = np.random.default_rng(seed + n * 7919)
    msgs = EnvelopeBatch.random(n, n_ranks=n_ranks, n_tags=n_tags, rng=rng)
    return msgs, msgs.take(rng.permutation(n))


def partial_workload(n: int, match_fraction: float, n_ranks: int = 64,
                     n_tags: int = 64, seed: int = 0,
                     ) -> tuple[EnvelopeBatch, EnvelopeBatch]:
    """A workload where only a fraction of requests can match (unmatched
    requests name an unreachable rank)."""
    rng = np.random.default_rng(seed + n * 104729)
    msgs = EnvelopeBatch.random(n, n_ranks=n_ranks, n_tags=n_tags, rng=rng)
    reqs = msgs.take(rng.permutation(n))
    n_dead = n - int(round(match_fraction * n))
    dead = rng.choice(n, size=n_dead, replace=False)
    src = reqs.src.copy()
    src[dead] = n_ranks + 10_000
    return msgs, EnvelopeBatch(src, reqs.tag, reqs.comm)


def ordered_workload(n: int, n_ranks: int = 64, n_tags: int = 64,
                     seed: int = 0,
                     ) -> tuple[EnvelopeBatch, EnvelopeBatch]:
    """Unique tuples with the receive queue in message order -- the best
    case beyond 1024 entries: every matrix iteration exhausts its message
    block within the first 1024 columns and early-exits."""
    rng = np.random.default_rng(seed + n * 31337)
    msgs = EnvelopeBatch.random(n, n_ranks=n_ranks, n_tags=n_tags, rng=rng)
    msgs = EnvelopeBatch(msgs.src, np.arange(n) % 60_000, msgs.comm)
    return msgs, msgs.take(np.arange(n))


def reversed_workload(n: int, n_ranks: int = 64, n_tags: int = 64,
                      seed: int = 0,
                      ) -> tuple[EnvelopeBatch, EnvelopeBatch]:
    """Receive queue in exactly reversed message order -- the worst case
    the paper calls out for queues beyond 1024 entries (Section V-B)."""
    rng = np.random.default_rng(seed + n * 31337)
    msgs = EnvelopeBatch.random(n, n_ranks=n_ranks, n_tags=n_tags, rng=rng)
    # make tuples unique so reversal forces maximal ordering conflict
    msgs = EnvelopeBatch(msgs.src, np.arange(n) % 60_000, msgs.comm)
    reqs = msgs.take(np.arange(n - 1, -1, -1))
    return msgs, reqs


@dataclass(frozen=True)
class SweepPoint:
    """One point of a parameter sweep."""

    params: dict
    rate: float
    outcome: "object"


def sweep(matcher_factory: Callable[..., "object"],
          workloads: Sequence[tuple],
          **param_grid) -> list[SweepPoint]:
    """Cross-product sweep: every parameter combination x every workload.

    ``matcher_factory(**params)`` must return an object with
    ``match(messages, requests) -> MatchOutcome``.  Rates are averaged
    over the provided workloads.
    """
    keys = list(param_grid)
    points: list[SweepPoint] = []

    def combos(i: int, current: dict):
        if i == len(keys):
            rates = []
            last = None
            for msgs, reqs in workloads:
                matcher = matcher_factory(**current)
                last = matcher.match(msgs, reqs)
                rates.append(last.matches_per_second())
            points.append(SweepPoint(params=dict(current),
                                     rate=float(np.mean(rates)),
                                     outcome=last))
            return
        for value in param_grid[keys[i]]:
            current[keys[i]] = value
            combos(i + 1, current)
        del current[keys[i]]

    combos(0, {})
    return points
