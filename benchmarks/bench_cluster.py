"""Cluster scaling harness: worker-process sweeps for repro.serve.cluster.

Not a paper figure.  Drives :class:`repro.serve.ClusterService` through
the same open-loop workloads as ``bench_serve.py`` while sweeping worker
process counts (1/2/4/8), tenant counts, and offered load, and appends
labeled entries to ``BENCH_serve.json`` under cluster-specific record
fields (``procs``, ``cores``, ``matches_per_core``,
``matches_per_second_span``, ``shard_volumes``, ``imbalance``,
``offered_rps``).

Two aggregate rates are recorded per sweep point, and the distinction is
the whole honesty story on shared CI hosts:

* ``matches_per_second`` -- measured wall rate (matched / wall seconds of
  the run).  On a host with fewer cores than workers this *cannot* show
  process scaling: the workers time-slice one another.
* ``matches_per_second_span`` -- matched / max per-worker busy seconds,
  i.e. the critical-path rate of the worker span.  When cores >= procs
  the span is what wall time converges to, so this is the achievable
  aggregate rate -- and it is also the number the ``--check-scaling``
  gate (>= 2.5x at 4 workers vs 1) is measured on.

Per-shard load imbalance is max/mean of the workers' windowed message
volumes (the same signal the in-process rebalancer uses), so a sweep
entry shows *where* scaling is lost when placement hashes unevenly.

Usage::

    PYTHONPATH=src python benchmarks/bench_cluster.py [--smoke]
        [--label LABEL] [--no-json] [--seed SEED] [--rate RPS]
        [--steps N] [--ranks N] [--chunk N] [--tenants N]
        [--procs 1,2,4,8] [--start-method fork|spawn]
        [--check-scaling [MIN]]

``--smoke`` runs a tiny two-point sweep into a temporary report file,
schema-checks the cluster fields, cross-checks determinism against the
in-process service, and leaves ``BENCH_serve.json`` untouched (the CI
cluster job runs this mode).
"""

from __future__ import annotations

import argparse
import json
import os
import tempfile
import time
import zlib
from pathlib import Path

from repro.bench import Table, format_rate, write_result
from repro.bench.regression import (ServePerfRecord, append_entry,
                                    serve_report_path, validate_serve_entry)
from repro.serve import (DEFAULT_BENCH_APPS, ServeWorkload, StageClock,
                         merge_workloads, run_cluster_workload,
                         run_workload, workload_from_app)

#: Worker-process counts of the full scaling sweep.
DEFAULT_PROCS = (1, 2, 4, 8)

#: Load multipliers for the p99-vs-offered-load leg of the full sweep.
LOAD_MULTIPLIERS = (1.0, 2.0, 4.0)


def balanced_tenant_names(n_tenants: int, max_procs: int) -> list[str]:
    """Tenant names whose CRC32 placement spreads across ``max_procs``.

    Placement is ``crc32(name) % n`` (:func:`repro.serve.stable_shard`),
    so names are searched until tenant ``i`` lands on worker
    ``i % max_procs`` of a ``max_procs``-worker cluster.  Because the
    sweep's process counts all divide ``max_procs``, a name set balanced
    mod ``max_procs`` is balanced at every smaller power-of-two count
    too -- the sweep measures process scaling, not placement luck.
    """
    names = []
    for i in range(n_tenants):
        want = i % max_procs
        k = 0
        while True:
            name = f"tenant{i}-{k}"
            if zlib.crc32(name.encode("utf-8")) % max_procs == want:
                names.append(name)
                break
            k += 1
    return names


def cluster_workload(*, n_tenants: int = 8, rate_rps: float = 4000.0,
                     steps: int = 24, n_ranks: int | None = 32,
                     chunk_envelopes: int = 512, seed: int = 0,
                     max_procs: int = 8,
                     ) -> tuple[ServeWorkload, float]:
    """One merged multi-tenant workload + its loadgen wall seconds.

    Tenants cycle over the default bench apps with placement-balanced
    names; per-tenant arrival rate is ``rate_rps / n_tenants`` so total
    offered load stays constant across tenant counts (the sweep's
    same-total-load contract).
    """
    if n_tenants < 1:
        raise ValueError("n_tenants must be >= 1")
    names = balanced_tenant_names(n_tenants, max_procs)
    t0 = time.perf_counter()
    parts = []
    for i, name in enumerate(names):
        app, ordering_required = DEFAULT_BENCH_APPS[i % len(DEFAULT_BENCH_APPS)]
        parts.append(workload_from_app(
            app, rate_rps=rate_rps / n_tenants, n_ranks=n_ranks,
            steps=steps, chunk_envelopes=chunk_envelopes, seed=seed + i,
            ordering_required=ordering_required, tenant_name=name))
    loadgen_seconds = time.perf_counter() - t0
    workload = merge_workloads(f"cluster-t{n_tenants}", parts)
    return workload, loadgen_seconds


def run_cluster_point(workload: ServeWorkload, *, procs: int,
                      seed: int = 0, start_method: str = "fork",
                      rate_rps: float = 4000.0,
                      loadgen_seconds: float = 0.0,
                      repeats: int = 3,
                      name: str | None = None) -> ServePerfRecord:
    """One sweep point: serve ``workload`` on ``procs`` workers.

    Best-of-``repeats``: outcomes are deterministic per seed (asserted
    across repeats -- a free determinism check), so repeats differ only
    in host-timing noise; the kept repeat is the one with the best
    worker span (smallest max per-worker busy CPU seconds), the same
    best-of discipline the in-process serve bench applies to wall time.
    """
    best = None
    for _ in range(max(1, repeats)):
        stages = StageClock()
        if loadgen_seconds:
            stages.add("loadgen", loadgen_seconds)
        cluster, wall = run_cluster_workload(
            workload, n_workers=procs, seed=seed,
            start_method=start_method, stages=stages)
        busy = cluster.busy_seconds()
        span = max(busy) if busy else 0.0
        if best is not None and best[2]["matched"] != \
                cluster.report()["matched"]:
            raise SystemExit(f"{workload.name}: matched count varied "
                             f"across repeats -- determinism violation")
        if best is None or span < best[1]:
            best = (cluster, span, cluster.report(), wall)
    cluster, span, report, wall = best
    cores = os.cpu_count() or 1
    matched = report["matched"]
    return ServePerfRecord(
        workload=name if name is not None else
        f"{workload.name}-p{procs}",
        tenants=len(workload.tenants),
        n_envelopes=workload.n_envelopes,
        submitted=report["submitted"],
        accepted=report["accepted"],
        shed_retryable=report["shed_retryable"],
        shed_overloaded=report["shed_overloaded"],
        flushes=report["flushes"],
        matched=matched,
        retunes=report["retunes"],
        seconds=wall,
        matches_per_second=matched / wall if wall > 0 else 0.0,
        latency_p50_vt=report["latency_p50_vt"],
        latency_p99_vt=report["latency_p99_vt"],
        seed=seed,
        stage_seconds=cluster.merged_stage_seconds(),
        procs=procs,
        cores=cores,
        matches_per_core=(matched / wall / min(procs, cores)
                          if wall > 0 else 0.0),
        matches_per_second_span=matched / span if span > 0 else 0.0,
        shard_volumes=cluster.shard_volumes(),
        imbalance=cluster.imbalance(),
        offered_rps=rate_rps,
    )


def cluster_table(records: list[ServePerfRecord],
                  title: str = "Cluster scaling sweep") -> Table:
    table = Table(title=title,
                  columns=["point", "procs", "matched", "wall rate",
                           "span rate", "per-core", "imbalance", "p99"])
    for r in records:
        p99 = (f"{r.latency_p99_vt * 1e6:.1f}us"
               if r.latency_p99_vt is not None else "-")
        table.add(r.workload, r.procs, r.matched,
                  format_rate(r.matches_per_second),
                  format_rate(r.matches_per_second_span),
                  format_rate(r.matches_per_core),
                  f"{r.imbalance:.2f}", p99)
    table.note("span rate = matched / max per-worker busy seconds (the "
               "achievable aggregate when cores >= procs); wall rate is "
               "the measured host rate and cannot exceed core count; "
               "imbalance is max/mean windowed shard volume")
    return table


def identity_check(workload: ServeWorkload, *, procs: int, seed: int,
                   start_method: str) -> None:
    """Cross-check: the cluster's report must equal the in-process
    service's on the same stream (the determinism contract, enforced in
    the bench so a sweep can never quietly measure divergent outcomes)."""
    svc, _ = run_workload(workload, n_shards=procs, seed=seed)
    cluster, _ = run_cluster_workload(workload, n_workers=procs, seed=seed,
                                      start_method=start_method)
    r_in, r_cl = svc.report(), cluster.report()
    if r_in != r_cl:
        diff = {k: (r_in[k], r_cl[k]) for k in r_in if r_in[k] != r_cl[k]}
        raise SystemExit(f"cluster diverged from in-process service on "
                         f"{workload.name} ({procs} procs): {diff}")


def scaling_ratio(records: list[ServePerfRecord], base_procs: int = 1,
                  at_procs: int = 4) -> float | None:
    """Span-rate ratio between two proc counts of the scaling leg.

    Only same-workload points count: a record qualifies when its name is
    exactly ``cluster-t<tenants>-p<procs>`` (the scaling leg's naming),
    so the tenant-count and offered-load legs -- which run different
    streams -- can never masquerade as a scaling comparison.
    """
    candidates = [r for r in records
                  if r.procs is not None
                  and r.workload == f"cluster-t{r.tenants}-p{r.procs}"]
    bases = [r for r in candidates if r.procs == base_procs]
    if not bases:
        return None
    base_rec = bases[0]
    news = [r for r in candidates
            if r.procs == at_procs and r.tenants == base_rec.tenants]
    if not news:
        return None
    base = base_rec.matches_per_second_span
    return news[0].matches_per_second_span / base if base else None


def smoke_check(seed: int = 0,
                start_method: str = "fork") -> list[ServePerfRecord]:
    """CI mode: tiny 1/2-proc sweep, temp-report schema check, identity
    cross-check, no committed-report write."""
    workload, loadgen = cluster_workload(n_tenants=4, steps=2, n_ranks=8,
                                         chunk_envelopes=64, seed=seed,
                                         max_procs=2)
    identity_check(workload, procs=2, seed=seed, start_method=start_method)
    records = [run_cluster_point(workload, procs=p, seed=seed,
                                 start_method=start_method,
                                 loadgen_seconds=loadgen, repeats=1)
               for p in (1, 2)]
    if records[0].matched != records[1].matched:
        raise SystemExit("cluster smoke: matched count changed with the "
                         "worker count -- determinism broken")
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "BENCH_serve.json"
        append_entry(records, label="smoke-cluster", path=path)
        with open(path) as f:
            report = json.load(f)
        problems = validate_serve_entry(report["entries"][-1])
        if problems:
            raise SystemExit("cluster report schema check failed:\n  "
                             + "\n  ".join(problems))
    return records


def full_sweep(*, seed: int = 0, rate_rps: float = 4000.0, steps: int = 24,
               n_ranks: int | None = 32, chunk_envelopes: int = 512,
               n_tenants: int = 8, procs: tuple[int, ...] = DEFAULT_PROCS,
               start_method: str = "fork") -> list[ServePerfRecord]:
    """The full sweep: process scaling, a tenant-count point, and the
    p99-vs-offered-load curve.  Total offered load is held constant
    across the scaling leg (same workload object every point)."""
    max_procs = max(procs)
    records: list[ServePerfRecord] = []

    workload, loadgen = cluster_workload(
        n_tenants=n_tenants, rate_rps=rate_rps, steps=steps,
        n_ranks=n_ranks, chunk_envelopes=chunk_envelopes, seed=seed,
        max_procs=max_procs)
    matched_counts = set()
    for p in procs:
        rec = run_cluster_point(workload, procs=p, seed=seed,
                                start_method=start_method,
                                rate_rps=rate_rps,
                                loadgen_seconds=loadgen)
        matched_counts.add(rec.matched)
        records.append(rec)
    if len(matched_counts) != 1:
        raise SystemExit(f"cluster sweep: matched count varied with the "
                         f"worker count ({sorted(matched_counts)}) -- "
                         f"determinism broken")

    # tenant-count point: half the tenants, same total offered load
    if n_tenants >= 2:
        half_wl, half_lg = cluster_workload(
            n_tenants=n_tenants // 2, rate_rps=rate_rps, steps=steps,
            n_ranks=n_ranks, chunk_envelopes=chunk_envelopes, seed=seed,
            max_procs=max_procs)
        records.append(run_cluster_point(
            half_wl, procs=min(4, max_procs), seed=seed,
            start_method=start_method, rate_rps=rate_rps,
            loadgen_seconds=half_lg))

    # p99 vs offered load at a fixed mid-size cluster
    for mult in LOAD_MULTIPLIERS:
        rate = rate_rps * mult
        load_wl, load_lg = cluster_workload(
            n_tenants=n_tenants, rate_rps=rate, steps=steps,
            n_ranks=n_ranks, chunk_envelopes=chunk_envelopes, seed=seed,
            max_procs=max_procs)
        records.append(run_cluster_point(
            load_wl, procs=min(2, max_procs), seed=seed,
            start_method=start_method, rate_rps=rate,
            loadgen_seconds=load_lg, repeats=1,
            name=f"cluster-load-r{int(rate)}"))
    return records


def main(argv: list[str] | None = None) -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--smoke", action="store_true",
                    help="tiny sweep + schema/identity check; no "
                         "report-file write")
    ap.add_argument("--label", default="cluster",
                    help="entry label in BENCH_serve.json")
    ap.add_argument("--no-json", action="store_true",
                    help="print tables without touching the report file")
    ap.add_argument("--seed", type=int, default=0)
    ap.add_argument("--rate", type=float, default=4000.0,
                    help="total offered load in requests per virtual "
                         "second (split across tenants)")
    ap.add_argument("--steps", type=int, default=24,
                    help="trace timesteps per tenant stream")
    ap.add_argument("--ranks", type=int, default=32,
                    help="ranks per generated trace")
    ap.add_argument("--chunk", type=int, default=512,
                    help="envelopes per loadgen column block")
    ap.add_argument("--tenants", type=int, default=8,
                    help="tenant count of the scaling sweep")
    ap.add_argument("--procs", default="1,2,4,8",
                    help="comma-separated worker-process counts")
    ap.add_argument("--start-method", default="fork",
                    choices=("fork", "spawn"), dest="start_method",
                    help="multiprocessing start method (fork is cheaper; "
                         "spawn exercises the spawn-safety contract)")
    ap.add_argument("--check-scaling", nargs="?", const=2.5, default=None,
                    type=float, metavar="MIN",
                    help="exit nonzero unless the span rate at 4 workers "
                         "reaches MIN x the 1-worker rate (default 2.5)")
    args = ap.parse_args(argv)

    if args.smoke:
        records = smoke_check(seed=args.seed,
                              start_method=args.start_method)
        cluster_table(records,
                      title="Cluster smoke (schema checked)").show()
        print("cluster report schema: ok")
        print("cluster/in-process identity: ok")
        return

    procs = tuple(int(p) for p in args.procs.split(","))
    records = full_sweep(seed=args.seed, rate_rps=args.rate,
                         steps=args.steps, n_ranks=args.ranks,
                         chunk_envelopes=args.chunk,
                         n_tenants=args.tenants, procs=procs,
                         start_method=args.start_method)
    write_result("cluster_scaling", cluster_table(records).show())
    ratio = scaling_ratio(records, base_procs=min(procs), at_procs=4)
    if ratio is not None:
        print(f"span-rate scaling at 4 workers: {ratio:.2f}x of "
              f"{min(procs)} worker(s)")
    if not args.no_json:
        append_entry(records, label=args.label, path=serve_report_path())
        print(f"appended entry {args.label!r} to {serve_report_path()}")
    if args.check_scaling is not None:
        if ratio is None:
            raise SystemExit("--check-scaling needs both the 1- and "
                             "4-worker sweep points")
        if ratio < args.check_scaling:
            raise SystemExit(f"cluster scaling gate failed: {ratio:.2f}x "
                             f"< {args.check_scaling}x at 4 workers")
        print(f"cluster scaling gate: ok ({ratio:.2f}x >= "
              f"{args.check_scaling}x)")


if __name__ == "__main__":
    main()
