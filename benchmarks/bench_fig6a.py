"""Figure 6(a): {src, tag} tuple uniqueness per application.

Paper: "a value of 50% means that a single tuple appears in 50% of all
messages to a given destination.  This would be a bad case for hash
tables ...  most applications range in single digit percentages,
supporting the choice of hash tables."
"""

from __future__ import annotations

from repro.bench import Table, write_result
from repro.traces import app_names, generate_trace, tuple_uniqueness


def figure6a_rows():
    """Uniqueness summary per application at default scale."""
    return {name: tuple_uniqueness(generate_trace(name))
            for name in app_names()}


def test_report_figure6a():
    rows = figure6a_rows()
    table = Table(
        title="Figure 6(a) -- dominant {src, tag} tuple share per "
              "destination",
        columns=["application", "share mean", "share median", "share max",
                 "duplicate msgs"])
    for name, row in rows.items():
        table.add(name,
                  f"{row['dominant_share_mean'] * 100:.1f}%",
                  f"{row['dominant_share_median'] * 100:.1f}%",
                  f"{row['dominant_share_max'] * 100:.1f}%",
                  f"{row['duplicate_fraction'] * 100:.0f}%")
    table.note("paper: most applications in single-digit percentages")
    write_result("fig6a", table.show())

    single_digit = sum(1 for r in rows.values()
                       if r["dominant_share_mean"] < 0.10)
    assert single_digit >= 0.6 * len(rows)
    # the fine-grained-tag apps must be far below 10%
    for app in ("df_minidft", "df_partisn", "cesar_mocfe"):
        assert rows[app]["dominant_share_mean"] < 0.05, app


def test_hash_iterations_track_uniqueness():
    """The operational consequence of Figure 6(a): duplicate-heavy tuple
    streams need more hash-table iterations."""
    import numpy as np

    from repro.core.envelope import EnvelopeBatch
    from repro.core.hash_matching import HashMatcher

    rng = np.random.default_rng(0)
    unique = EnvelopeBatch(src=np.arange(512) % 64,
                           tag=np.arange(512) // 64)
    duplicated = EnvelopeBatch(src=np.zeros(512, dtype=int),
                               tag=np.zeros(512, dtype=int))
    o_unique = HashMatcher().match(unique, unique.take(rng.permutation(512)))
    o_dup = HashMatcher().match(duplicated, duplicated)
    table = Table(title="Figure 6(a) consequence -- hash rounds vs "
                        "tuple uniqueness",
                  columns=["workload", "rounds", "rate"])
    from repro.bench import format_rate
    table.add("512 unique tuples", o_unique.iterations,
              format_rate(o_unique.matches_per_second()))
    table.add("512 copies of one tuple", o_dup.iterations,
              format_rate(o_dup.matches_per_second()))
    write_result("fig6a_consequence", table.show())
    assert o_dup.iterations > 10 * o_unique.iterations
    assert o_dup.matches_per_second() < o_unique.matches_per_second() / 10


def test_perf_uniqueness_analysis(benchmark):
    trace = generate_trace("df_minidft")
    out = benchmark(tuple_uniqueness, trace)
    assert out["dominant_share_mean"] > 0


if __name__ == "__main__":
    test_report_figure6a()
    test_hash_iterations_track_uniqueness()
