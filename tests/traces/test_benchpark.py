"""Benchpark app models: phase structure and pattern contracts.

The quantitative claims these models must honor come from the
Caliper/Benchpark characterization (Nansamba et al., PAPERS.md): huge
per-pair message counts over a tiny ``(src, tag, comm)`` tuple
cardinality, stable peer sets, and phase-dominant re-fire traffic --
the signature that motivates partitioned channels and the autotuner's
match-once pin.
"""

from __future__ import annotations

import pytest

from repro.traces.apps.benchpark import pattern_summary
from repro.traces.generator import generate_trace

BP_APPS = ("bp_amg2023", "bp_kripke", "bp_laghos")


def summary(app: str, **kw):
    trace = generate_trace(app, seed=1, **kw)
    return trace, pattern_summary(trace)


class TestPhaseStructure:
    @pytest.mark.parametrize("app", BP_APPS)
    def test_phases_cover_the_trace_contiguously(self, app):
        trace, _ = summary(app)
        phases = trace.meta["phases"]
        spans = list(phases.values())
        assert spans[0][0] == 0
        assert spans[-1][1] == len(trace.events)
        for (_, hi), (lo, _) in zip(spans, spans[1:]):
            assert hi == lo

    def test_amg_has_setup_then_solve(self):
        trace, _ = summary("bp_amg2023")
        assert list(trace.meta["phases"]) == ["setup", "solve"]

    def test_unphased_trace_falls_back_to_all(self):
        trace = generate_trace("exmatex_lulesh", n_ranks=8, steps=2, seed=0)
        out = pattern_summary(trace)
        assert list(out["phases"]) == ["all"]
        assert out["phases"]["all"]["sends"] == len(trace.sends())


class TestPatternContracts:
    def test_amg_solve_dominates_without_new_tuples(self):
        """V-cycles multiply messages by an order of magnitude but add
        zero tuple shapes over setup -- the match-once signature."""
        _, out = summary("bp_amg2023")
        setup = out["phases"]["setup"]
        solve = out["phases"]["solve"]
        assert solve["sends"] >= 10 * setup["sends"]
        assert solve["tuple_cardinality"] <= setup["tuple_cardinality"]
        assert solve["msgs_per_tuple_mean"] > \
            10 * setup["msgs_per_tuple_mean"]

    def test_kripke_tiny_cardinality_huge_counts(self):
        _, out = summary("bp_kripke")
        sweep = out["phases"]["sweep"]
        # one tag per octant, at most 4 downstream neighbors per rank
        assert sweep["peers_max"] <= 4
        assert sweep["msgs_per_tuple_mean"] >= 50
        assert sweep["msgs_per_pair_max"] >= 50

    def test_kripke_eight_octant_tags(self):
        trace, _ = summary("bp_kripke")
        assert {e.tag for e in trace.sends()} == set(range(8))

    def test_laghos_two_tags_fixed_peers(self):
        trace, out = summary("bp_laghos")
        assert {e.tag for e in trace.sends()} == {0, 1}
        ts = out["phases"]["timestep"]
        assert ts["msgs_per_tuple_mean"] >= 10
        # the halo is fixed: every declared pair carries exactly the
        # same traffic (2 force + 1 velocity per step), so the per-pair
        # distribution is perfectly uniform
        assert ts["msgs_per_pair_mean"] == ts["msgs_per_pair_max"]
        counts: dict[tuple[int, int], int] = {}
        for e in trace.sends():
            counts[(e.rank, e.dst)] = counts.get((e.rank, e.dst), 0) + 1
        assert len(set(counts.values())) == 1

    @pytest.mark.parametrize("app", BP_APPS)
    def test_no_wildcards_anywhere(self, app):
        """Re-fire streams are wildcard-free by construction -- the
        precondition for both the partitioned matcher and partitioned
        channels."""
        from repro.core.envelope import ANY_SOURCE, ANY_TAG
        trace, _ = summary(app)
        posts = trace.recv_posts()
        assert all(e.src != ANY_SOURCE for e in posts)
        assert all(e.tag != ANY_TAG for e in posts)

    @pytest.mark.parametrize("app", BP_APPS)
    def test_summary_is_deterministic(self, app):
        assert summary(app)[1] == summary(app)[1]
