"""repro -- reproduction of *Relaxations for High-Performance Message
Passing on Massively Parallel SIMT Processors* (Klenk, Fröning, Eberle,
Dennison; IPDPS 2017).

Packages
--------
:mod:`repro.simt`
    Functional SIMT (GPU) simulator: warps, ballot/ffs intrinsics, CTAs,
    shared memory, occupancy, and a calibrated timing model for the
    paper's Kepler / Maxwell / Pascal testbeds.
:mod:`repro.core`
    The matching algorithms: MPI-compliant matrix scan+reduce, the
    rank-partitioned and hash-table relaxations, the CPU list baseline,
    and the :class:`~repro.core.engine.MatchingEngine` facade.
:mod:`repro.mpi`
    A message-passing substrate (communicators, send/recv, progress
    engine) layered on the matching engines.
:mod:`repro.traces`
    Synthetic DOE proxy-application traces and the analyzer reproducing
    the paper's Table I / Figure 2 / Figure 6(a) statistics.
:mod:`repro.bench`
    Harness utilities shared by the ``benchmarks/`` suite.
:mod:`repro.obs`
    Cross-layer observability: structured tracing (Chrome/Perfetto
    export) and a metrics registry, attachable to any layer via the
    optional ``obs`` parameter (see ``docs/OBSERVABILITY.md``).

Quickstart
----------
>>> from repro import GPU, MatchingEngine, RelaxationSet, EnvelopeBatch
>>> eng = MatchingEngine(gpu=GPU.pascal_gtx1080())
>>> msgs = EnvelopeBatch(src=[3, 5], tag=[1, 2])
>>> reqs = EnvelopeBatch(src=[5, 3], tag=[2, 1])
>>> outcome = eng.match(msgs, reqs)
>>> outcome.pairs()
[(0, 1), (1, 0)]
"""

from .core import (ANY_SOURCE, ANY_TAG, AdaptiveMatcher, Envelope,
                   EnvelopeBatch, HashMatcher,
                   HashTableConfig, ListMatcher, MatchingEngine, MatchOutcome,
                   MatrixMatcher, NO_MATCH, PartitionedMatcher, RelaxationSet,
                   TABLE_II_CONFIGS, UnifiedQueue, reference_match)
from .obs import MetricsRegistry, Observability, Tracer
from .simt import (GPU, GPUSpec, KEPLER_K80, MAXWELL_M40, PASCAL_GTX1080,
                   WARP_SIZE)

__version__ = "1.0.0"

__all__ = [
    "ANY_SOURCE", "ANY_TAG", "Envelope", "EnvelopeBatch",
    "MatchingEngine", "MatchOutcome", "NO_MATCH", "RelaxationSet",
    "TABLE_II_CONFIGS",
    "MatrixMatcher", "PartitionedMatcher", "HashMatcher", "HashTableConfig",
    "AdaptiveMatcher",
    "ListMatcher", "UnifiedQueue", "reference_match",
    "GPU", "GPUSpec", "KEPLER_K80", "MAXWELL_M40", "PASCAL_GTX1080",
    "WARP_SIZE",
    "Observability", "Tracer", "MetricsRegistry",
    "__version__",
]
