"""Table I statistics over a trace.

Computes the characteristics the paper extracts from the dumpi traces
(Section IV-A): wildcard usage, communicator count, peer counts, tag/src
space size and distribution, and the rank-usage uniformity that decides
whether statically partitioned queues stay balanced (Section VI-A).
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass

import numpy as np

from .events import Trace

__all__ = ["TableIRow", "analyze", "rank_usage_uniformity",
           "tag_distribution", "normalized_entropy"]


@dataclass(frozen=True)
class TableIRow:
    """One application's row of (our reconstruction of) Table I."""

    app: str
    n_ranks: int
    sends: int
    src_wildcards: int
    tag_wildcards: int
    n_communicators: int
    peers_mean: float
    peers_max: int
    n_tags: int
    tag_bits_needed: int
    rank_usage_cov: float
    tag_entropy: float

    @property
    def tags_hashable(self) -> bool:
        """Is the tag usage diverse enough for hash tables / balanced
        enough for tag partitioning?  (Normalized entropy > 0.5 means no
        single tag dominates.)"""
        return self.tag_entropy > 0.5

    @property
    def uses_src_wildcard(self) -> bool:
        """Does the app post any MPI_ANY_SOURCE receive?"""
        return self.src_wildcards > 0

    @property
    def uses_tag_wildcard(self) -> bool:
        """Does the app post any MPI_ANY_TAG receive?"""
        return self.tag_wildcards > 0

    @property
    def header_fits_64bit(self) -> bool:
        """Can {src, tag, comm} pack into one 64-bit word (16-bit tags)?

        The paper: "none of the applications needs tag values longer than
        16 bits ... the entire header could fit into a single 64-bit
        word."
        """
        return self.tag_bits_needed <= 16


def analyze(trace: Trace) -> TableIRow:
    """Compute the Table I row for one trace."""
    sends = trace.sends()
    posts = trace.recv_posts()
    src_wc = sum(1 for p in posts if p.src == -1)
    tag_wc = sum(1 for p in posts if p.tag == -1)
    comms = {e.comm for e in sends} | {p.comm for p in posts}
    peers: dict[int, set[int]] = defaultdict(set)
    for s in sends:
        peers[s.rank].add(s.dst)
        peers[s.dst].add(s.rank)
    peer_counts = np.array([len(peers[r]) for r in range(trace.n_ranks)])
    tags = {s.tag for s in sends}
    max_tag = max(tags) if tags else 0
    tag_counts = Counter(s.tag for s in sends)
    return TableIRow(
        app=trace.app,
        n_ranks=trace.n_ranks,
        sends=len(sends),
        src_wildcards=src_wc,
        tag_wildcards=tag_wc,
        n_communicators=len(comms),
        peers_mean=float(peer_counts.mean()) if peer_counts.size else 0.0,
        peers_max=int(peer_counts.max()) if peer_counts.size else 0,
        n_tags=len(tags),
        tag_bits_needed=int(max_tag).bit_length(),
        rank_usage_cov=rank_usage_uniformity(trace),
        tag_entropy=normalized_entropy(list(tag_counts.values())),
    )


def rank_usage_uniformity(trace: Trace) -> float:
    """Coefficient of variation of per-destination message counts.

    The paper: "We analyzed how often a given rank addresses any other
    rank.  While most of the applications show a regular and uniform
    behavior, CESAR Nekbone and AMR Boxlib showed a rather irregular
    communication behavior."  A near-zero CoV is uniform (queues balance
    under static partitioning); a large CoV is irregular.
    """
    counts = Counter(s.dst for s in trace.sends())
    if not counts:
        return 0.0
    arr = np.array([counts.get(r, 0) for r in range(trace.n_ranks)],
                   dtype=float)
    mean = arr.mean()
    return float(arr.std() / mean) if mean else 0.0


def normalized_entropy(counts) -> float:
    """Shannon entropy of a count vector, normalized to [0, 1].

    1.0 = perfectly uniform usage, 0.0 = a single value dominates (or
    only one value exists).  The paper's "Distribution of src and tag
    space" paragraph observes that this "varies significantly across the
    applications" -- and it decides whether tag partitioning balances
    (EXT3) and how hash tables collide (Figure 6(a)).
    """
    arr = np.asarray(counts if isinstance(counts, np.ndarray)
                     else list(counts), dtype=float).ravel()
    # non-finite counts (overflowed accumulators, corrupt snapshots)
    # would propagate NaN through p*log2(p); treat them as absent
    arr = arr[np.isfinite(arr) & (arr > 0)]
    if arr.size <= 1:
        return 0.0
    p = arr / arr.sum()
    h = -(p * np.log2(p)).sum()
    return float(h / np.log2(arr.size))


def tag_distribution(trace: Trace) -> dict[int, int]:
    """Messages per tag value (the raw distribution behind the entropy)."""
    return dict(Counter(s.tag for s in trace.sends()))
