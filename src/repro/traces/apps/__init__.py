"""Synthetic proxy-application communication models, grouped by suite."""

from .amr import Boxlib
from .base import (AppModel, TraceBuilder, grid_dims, grid_neighbors,
                   random_neighbors, ring_neighbors, skewed_neighbors)
from .cesar import MOCFE, NEKBONE, CrystalRouter
from .designforward import AMG, MiniDFT, MiniFE, PARTISN, SNAP
from .exact import CNS, MultiGrid
from .exmatex import CMC, LULESH

__all__ = [
    "AppModel", "TraceBuilder",
    "grid_dims", "grid_neighbors", "random_neighbors", "ring_neighbors",
    "skewed_neighbors",
    "AMG", "MiniDFT", "MiniFE", "PARTISN", "SNAP",
    "NEKBONE", "MOCFE", "CrystalRouter",
    "CNS", "MultiGrid", "LULESH", "CMC", "Boxlib",
]
