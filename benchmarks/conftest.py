"""Shared benchmark fixtures.

Every ``bench_*.py`` module contains:

* ``test_report_*`` -- regenerates its paper table/figure as a text table
  (printed with ``-s`` and always written to ``benchmarks/results/``), and
* ``test_perf_*`` -- pytest-benchmark measurements of the underlying
  simulation hot paths (host-side wall time of the simulator itself).
"""

from __future__ import annotations

import sys
from pathlib import Path

# allow `pytest benchmarks/` from the repo root without installing tests
sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
