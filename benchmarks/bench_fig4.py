"""Figure 4: single-CTA matrix matching rate vs queue length, 3 GPUs.

Paper shape: steady rates of ~3 / ~3.5 / ~6 Mmatches/s (Kepler K80,
Maxwell M40, Pascal GTX 1080) for queue lengths below 1024; a drop at
1024 where all 32 warps are needed for the scan and the reduce can no
longer be overlapped; further decay beyond 1024 where multiple
iterations are required.
"""

from __future__ import annotations

import pytest

from repro.bench import Table, format_rate, matching_workload, write_result
from repro.core.matrix_matching import MatrixMatcher
from repro.simt.gpu import GPU

# The paper uses a separate single-warp, no-matrix path below 64
# entries; we model the matrix path, so the sweep starts at 64.
QUEUE_LENGTHS = (64, 128, 256, 512, 1024, 2048, 4096)
PAPER_STEADY = {"kepler": 3.0e6, "maxwell": 3.5e6, "pascal": 6.0e6}


def figure4_rates() -> dict[str, dict[int, float]]:
    """Simulated matching rate per generation per queue length."""
    out: dict[str, dict[int, float]] = {}
    for spec in GPU.all_generations():
        rates = {}
        for n in QUEUE_LENGTHS:
            msgs, reqs = matching_workload(n)
            rates[n] = MatrixMatcher(spec=spec).match(
                msgs, reqs).matches_per_second()
        out[spec.generation] = rates
    return out


def test_report_figure4():
    rates = figure4_rates()
    table = Table(
        title="Figure 4 -- single-CTA matrix matching rate vs queue length",
        columns=["queue", "Kepler K80", "Maxwell M40", "Pascal GTX1080"])
    for n in QUEUE_LENGTHS:
        table.add(n, format_rate(rates["kepler"][n]),
                  format_rate(rates["maxwell"][n]),
                  format_rate(rates["pascal"][n]))
    for gen, paper in PAPER_STEADY.items():
        table.note(f"paper steady rate {gen}: {format_rate(paper)} "
                   f"(measured at 512: {format_rate(rates[gen][512])})")
    table.note("paper: drop at 1024 (no scan/reduce overlap), decay beyond")
    write_result("fig4", table.show())

    # shape assertions: steady below 1024, knee at 1024, ordering K<M<P
    for gen, paper in PAPER_STEADY.items():
        assert rates[gen][512] == pytest.approx(paper, rel=0.15)
        assert rates[gen][1024] < 0.85 * rates[gen][512]
        assert rates[gen][4096] < rates[gen][2048] < rates[gen][1024]
    for n in QUEUE_LENGTHS:
        assert rates["kepler"][n] < rates["maxwell"][n] < rates["pascal"][n]


@pytest.mark.parametrize("n", [64, 512, 1024])
def test_perf_matrix_match(benchmark, n):
    msgs, reqs = matching_workload(n)
    matcher = MatrixMatcher()
    outcome = benchmark(matcher.match, msgs, reqs)
    assert outcome.matched_count == n


if __name__ == "__main__":
    test_report_figure4()
