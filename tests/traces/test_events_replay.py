"""Trace container, indexed queue replay, and analyzer mechanics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.traces.analyzer import (analyze, normalized_entropy,
                                   rank_usage_uniformity, tag_distribution)
from repro.traces.events import (BarrierEvent, RecvPostEvent, SendEvent,
                                 Trace)
from repro.traces.queue_replay import (RankReplay, figure2_summary, replay,
                                       _IndexedQueue)
from repro.traces.uniqueness import per_destination_shares, tuple_uniqueness


def T(events, n_ranks=2, app="test"):
    return Trace(app=app, n_ranks=n_ranks, events=events)


def S(t, rank, dst, tag, comm=0):
    return SendEvent(time=t, rank=rank, dst=dst, tag=tag, comm=comm)


def P(t, rank, src, tag, comm=0):
    return RecvPostEvent(time=t, rank=rank, src=src, tag=tag, comm=comm)


class TestTrace:
    def test_validation(self):
        with pytest.raises(ValueError):
            T([S(2, 0, 1, 0), S(1, 0, 1, 0)])  # time goes backwards
        with pytest.raises(ValueError):
            T([S(1, 5, 1, 0)])  # rank out of range
        with pytest.raises(ValueError):
            T([S(1, 0, 9, 0)])  # dst out of range
        with pytest.raises(ValueError):
            Trace(app="x", n_ranks=0, events=[])

    def test_filters(self):
        tr = T([P(1, 1, 0, 0), S(2, 0, 1, 0),
                BarrierEvent(time=3, rank=0), BarrierEvent(time=3, rank=1)])
        assert len(tr.sends()) == 1
        assert len(tr.recv_posts()) == 1
        assert len(tr.barriers()) == 2
        assert len(tr.for_rank(0)) == 2
        assert tr.validate_balance()["balanced"]


class TestIndexedQueue:
    def test_order_across_buckets(self):
        q = _IndexedQueue()
        q.add((("a",),))
        q.add((("b",),))
        q.add((("a",),))
        assert q.find_earliest((("b",), ("a",))) == 0  # earliest overall

    def test_lazy_deletion(self):
        q = _IndexedQueue()
        s0 = q.add((("k",),))
        s1 = q.add((("k",),))
        q.remove(s0)
        assert q.find_earliest((("k",),)) == s1
        assert len(q) == 1

    def test_multi_key_reachability(self):
        q = _IndexedQueue()
        s = q.add((("x",), ("y",)))
        assert q.find_earliest((("y",),)) == s
        q.remove(s)
        assert q.find_earliest((("x",),)) is None


class TestReplaySemantics:
    def test_expected_message(self):
        states = replay(T([P(1, 1, 0, 7), S(2, 0, 1, 7)]))
        assert states[1].expected_total == 1
        assert states[1].unexpected_total == 0
        assert len(states[1].prq) == 0

    def test_unexpected_then_matched(self):
        states = replay(T([S(1, 0, 1, 7), P(2, 1, 0, 7)]))
        assert states[1].unexpected_total == 1
        assert len(states[1].umq) == 0  # consumed by the late post

    def test_pair_ordering(self):
        """Two same-tuple messages must match posts in arrival order."""
        tr = T([S(1, 0, 1, 7), S(2, 0, 1, 7), P(3, 1, 0, 7), P(4, 1, 0, 7)])
        states = replay(tr)
        assert len(states[1].umq) == 0 and len(states[1].prq) == 0

    def test_wildcard_post_matches_earliest_arrival(self):
        tr = T([S(1, 0, 2, 5), S(2, 1, 2, 5), P(3, 2, -1, 5)], n_ranks=3)
        states = replay(tr)
        # one message consumed (the earliest), one still unexpected
        assert len(states[2].umq) == 1
        assert states[2].umq.find_earliest(((1, 5, 0),)) is not None

    def test_any_tag_post(self):
        tr = T([S(1, 0, 1, 42), P(2, 1, 0, -1)])
        states = replay(tr)
        assert len(states[1].umq) == 0

    def test_comm_isolation(self):
        tr = T([S(1, 0, 1, 7, comm=1), P(2, 1, 0, 7, comm=0)])
        states = replay(tr)
        assert len(states[1].umq) == 1
        assert len(states[1].prq) == 1

    def test_depth_observation(self):
        tr = T([S(1, 0, 1, 0), S(2, 0, 1, 1), S(3, 0, 1, 2),
                P(4, 1, 0, 0), P(5, 1, 0, 1), P(6, 1, 0, 2)])
        states = replay(tr)
        assert states[1].umq_stats.max_depth == 3
        assert states[1].umq_stats.attempts == 6

    def test_figure2_summary_fields(self):
        tr = T([S(1, 0, 1, 0), P(2, 1, 0, 0)])
        out = figure2_summary(tr)
        assert out["umq_max_mean"] >= 0
        assert out["unexpected_fraction"] == 1.0


class TestAnalyzer:
    def test_wildcard_counting(self):
        tr = T([S(1, 0, 1, 3), P(2, 1, -1, 3), P(3, 1, 0, -1)])
        row = analyze(tr)
        assert row.src_wildcards == 1
        assert row.tag_wildcards == 1
        assert row.uses_src_wildcard and row.uses_tag_wildcard

    def test_peer_and_tag_counting(self):
        tr = T([S(1, 0, 1, 3), S(2, 0, 1, 4), S(3, 1, 0, 3),
                P(4, 1, 0, 3), P(5, 1, 0, 4), P(6, 0, 1, 3)])
        row = analyze(tr)
        assert row.peers_mean == 1.0 and row.peers_max == 1
        assert row.n_tags == 2
        assert row.header_fits_64bit

    def test_tag_bits(self):
        tr = T([S(1, 0, 1, 2**15)])
        assert analyze(tr).tag_bits_needed == 16

    def test_uniformity_metric(self):
        uniform = T([S(i + 1, 0, 1, 0) for i in range(10)]
                    + [S(20 + i, 1, 0, 0) for i in range(10)])
        assert rank_usage_uniformity(uniform) == pytest.approx(0.0)
        skewed = T([S(i + 1, 0, 1, 0) for i in range(100)], n_ranks=3)
        assert rank_usage_uniformity(skewed) > 1.0

    def test_empty_trace(self):
        row = analyze(T([], n_ranks=2))
        assert row.sends == 0 and row.n_tags == 0
        assert row.tag_entropy == 0.0

    def test_normalized_entropy(self):
        assert normalized_entropy([10, 10, 10, 10]) == pytest.approx(1.0)
        assert normalized_entropy([100]) == 0.0
        assert normalized_entropy([]) == 0.0
        skewed = normalized_entropy([97, 1, 1, 1])
        assert 0.0 < skewed < 0.25
        assert normalized_entropy([5, 5, 0, 0]) == pytest.approx(1.0)

    def test_tag_distribution(self):
        tr = T([S(1, 0, 1, 3), S(2, 0, 1, 3), S(3, 0, 1, 5)])
        assert tag_distribution(tr) == {3: 2, 5: 1}
        row = analyze(tr)
        assert 0.0 < row.tag_entropy < 1.0
        assert row.tags_hashable


class TestUniqueness:
    def test_all_identical(self):
        tr = T([S(i + 1, 0, 1, 7) for i in range(10)])
        u = tuple_uniqueness(tr)
        assert u["dominant_share_mean"] == 1.0
        assert u["duplicate_fraction"] == pytest.approx(0.9)

    def test_all_distinct(self):
        tr = T([S(i + 1, 0, 1, i) for i in range(10)])
        u = tuple_uniqueness(tr)
        assert u["dominant_share_mean"] == pytest.approx(0.1)
        assert u["duplicate_fraction"] == 0.0

    def test_per_destination(self):
        tr = T([S(1, 0, 1, 0), S(2, 0, 1, 0), S(3, 0, 1, 1)])
        shares = per_destination_shares(tr)
        assert shares[1] == pytest.approx(2 / 3)

    def test_empty(self):
        assert tuple_uniqueness(T([], n_ranks=2))["dominant_share_mean"] == 0.0
