"""Table II: the relaxation summary.

Six configurations (wildcards x ordering x unexpected messages), the
data structure each dictates, whether rank partitioning is possible, the
user implication, and the resulting Pascal matching rate.  Paper tiers:
MPI-compliant matrix <6M ("Low"), partitioned matrix <60M/~60M ("High"),
hash table <500M/~500M ("Very High").
"""

from __future__ import annotations

import pytest

from repro.bench import Table, format_rate, matching_workload, \
    partial_workload, write_result
from repro.core.engine import MatchingEngine
from repro.core.relaxations import TABLE_II_CONFIGS

PAPER_COMMENT = {
    "wc+ord+unexp": "MPI (<6M matches/s)",
    "wc+ord+pre": "~6M matches/s",
    "nowc+ord+unexp": "<60M due to compaction",
    "nowc+ord+pre": "~60M matches/s",
    "nowc+noord+unexp": "<500M matches/s",
    "nowc+noord+pre": "~500M matches/s",
}


def table2_rows(n: int = 1024):
    """Rate per Table II configuration on the paper's standard workload.

    Configurations that allow unexpected messages are additionally
    exercised with a half-unexpected workload; the table reports the
    fully-matching rate (the paper's microbenchmark).
    """
    msgs, reqs = matching_workload(n, seed=1234)
    rows = []
    for rel in TABLE_II_CONFIGS:
        eng = MatchingEngine(relaxations=rel, n_queues=32, n_ctas=32)
        out = eng.match(msgs, reqs)
        rows.append((rel, out.matches_per_second()))
    return rows


def test_report_table2():
    rows = table2_rows()
    table = Table(
        title="Table II -- relaxation summary (Pascal GTX1080, 1024 "
              "elements)",
        columns=["wildcards", "ordering", "unexp.msgs", "part.",
                 "structure", "measured", "paper comment"])
    for rel, rate in rows:
        table.add("yes" if rel.wildcards else "no",
                  "yes" if rel.ordering else "no",
                  "yes" if rel.unexpected else "no",
                  "yes" if rel.partitionable else "no",
                  rel.data_structure,
                  format_rate(rate),
                  PAPER_COMMENT[rel.label()])
    write_result("table2", table.show())

    by_label = {rel.label(): rate for rel, rate in rows}
    # performance tiers: Low < High < Very High
    assert by_label["wc+ord+unexp"] < 6e6
    assert by_label["wc+ord+pre"] <= 6e6 * 1.15
    assert 10e6 < by_label["nowc+ord+pre"] < 80e6
    assert by_label["nowc+noord+pre"] == pytest.approx(500e6, rel=0.15)
    # within each structure, dropping unexpected messages never hurts
    assert by_label["wc+ord+pre"] >= by_label["wc+ord+unexp"]
    assert by_label["nowc+ord+pre"] >= by_label["nowc+ord+unexp"]
    # structure ordering: matrix < partitioned matrix < hash
    assert (by_label["wc+ord+unexp"] < by_label["nowc+ord+unexp"]
            < by_label["nowc+noord+unexp"])


def test_report_table2_unexpected_sensitivity():
    """The unexpected-message rows degrade when messages actually are
    unexpected: half-matching workloads on the 'unexp' configurations."""
    table = Table(
        title="Table II (supplement) -- sensitivity to actually-unexpected "
              "traffic (50% matchable)",
        columns=["config", "full-match rate", "half-match rate", "ratio"])
    msgs_f, reqs_f = matching_workload(1024, seed=1234)
    msgs_h, reqs_h = partial_workload(1024, 0.5, seed=1234)
    for rel in TABLE_II_CONFIGS:
        if not rel.unexpected:
            continue
        eng = MatchingEngine(relaxations=rel, n_queues=32, n_ctas=32)
        full = eng.match(msgs_f, reqs_f).matches_per_second()
        half = eng.match(msgs_h, reqs_h).matches_per_second()
        table.add(rel.label(), format_rate(full), format_rate(half),
                  f"{half / full:.2f}")
        assert half < full
    table.note("paper: 'if only half of the messages can be matched, the "
               "matching rate ... is reduced by about 50% as well'")
    write_result("table2_unexpected", table.show())


@pytest.mark.parametrize("rel", TABLE_II_CONFIGS,
                         ids=[r.label() for r in TABLE_II_CONFIGS])
def test_perf_engine_configs(benchmark, rel):
    msgs, reqs = matching_workload(512, seed=1234)
    eng = MatchingEngine(relaxations=rel, n_queues=16, n_ctas=16)
    outcome = benchmark(eng.match, msgs, reqs)
    assert outcome.matched_count == 512


if __name__ == "__main__":
    test_report_table2()
    test_report_table2_unexpected_sensitivity()
