"""Synthetic exascale proxy-application traces and their analyses.

Substitutes for the DOE dumpi traces the paper analyzed (Section IV):
per-application communication models (:mod:`.apps`) generate event
streams whose matching-relevant statistics reproduce Table I, Figure 2,
and Figure 6(a); the analyses themselves (:mod:`.analyzer`,
:mod:`.queue_replay`, :mod:`.uniqueness`) are trace-format agnostic.
"""

from .analyzer import TableIRow, analyze, rank_usage_uniformity
from .events import BarrierEvent, RecvPostEvent, SendEvent, Trace
from .generator import APP_MODELS, app_names, generate_trace, get_model
from .io import dumps, load_trace, loads, save_trace
from .queue_replay import (QueueDepthStats, RankReplay, figure2_summary,
                           replay)
from .uniqueness import per_destination_shares, tuple_uniqueness

__all__ = [
    "Trace", "SendEvent", "RecvPostEvent", "BarrierEvent",
    "APP_MODELS", "app_names", "generate_trace", "get_model",
    "TableIRow", "analyze", "rank_usage_uniformity",
    "QueueDepthStats", "RankReplay", "replay", "figure2_summary",
    "save_trace", "load_trace", "dumps", "loads",
    "per_destination_shares", "tuple_uniqueness",
]
