"""Serve-layer load harness: sustained matches/s under open-loop load.

Not a paper figure.  Drives :class:`repro.serve.MatchingService` through
open-loop workloads derived from the proxy-application traces
(``repro.traces.apps``) and appends a labeled entry to ``BENCH_serve.json``
at the repository root: sustained host-side matches/s plus p50/p99
request latency (virtual seconds, deterministic per seed) per workload.

Usage::

    PYTHONPATH=src python benchmarks/bench_serve.py [--smoke]
        [--label LABEL] [--no-json] [--seed SEED] [--rate RPS]
        [--steps N] [--ranks N] [--sessions]
        [--recover [--kill-at N]]

``--smoke`` runs a tiny sweep, writes the report to a temporary file,
schema-checks it, and leaves ``BENCH_serve.json`` untouched (the CI
serve job runs this mode).  ``--smoke --kill-at 2 --recover`` instead
runs the kill/recover smoke: a supervised run with a chaos kill after
two flushes, asserting zero admitted requests lost and schema-checking
the ``recovery_seconds`` / ``carryover_depth`` fields.  In full mode,
``--recover`` appends one extra ``kill-recover`` record carrying the
recovery figures next to the normal sweep.
"""

from __future__ import annotations

import argparse
import json
import tempfile
import time
from pathlib import Path

from repro.bench import Table, format_rate, write_result
from repro.bench.regression import (ServePerfRecord, append_entry,
                                    load_report, serve_entry_rates,
                                    serve_regression_failures,
                                    serve_report_path, validate_serve_entry)
from repro.serve import (BENCHPARK_BENCH_APPS, DEFAULT_BENCH_APPS,
                         BatchPolicy, MatchingService, ServeWorkload,
                         ShardSupervisor, StageClock, merge_workloads,
                         run_supervised, run_workload, workload_from_app)


def bench_workloads(*, seed: int = 0, rate_rps: float = 4000.0,
                    steps: int = 16, n_ranks: int | None = None,
                    chunk_envelopes: int = 256, session: bool = False,
                    benchpark: bool = False,
                    ) -> list[tuple[ServeWorkload, float]]:
    """One ``(workload, loadgen_seconds)`` per default bench app (>= 3).

    The loadgen wall time -- trace generation plus cutting the busiest
    rank's stream into packed column blocks -- is timed here, outside
    the serve run, and charged to the record's ``loadgen`` stage.

    The defaults (16 trace timesteps, each app's native rank count,
    256-envelope column blocks) keep the sweep long enough that
    sustained rate measures the pipeline, not process startup: the
    columnar data plane makes block size nearly free on the serve side,
    so blocks are sized for flush amortization.

    ``benchpark=True`` extends the sweep with the three Benchpark
    re-fire workloads (declared ``partitioned``, so their autotuners pin
    the match-once lattice point).
    """
    apps = [(app, ordering, False)
            for app, ordering in DEFAULT_BENCH_APPS]
    if benchpark:
        apps += [(app, ordering, True)
                 for app, ordering in BENCHPARK_BENCH_APPS]
    out = []
    for app, ordering_required, partitioned in apps:
        t0 = time.perf_counter()
        workload = workload_from_app(app, rate_rps=rate_rps,
                                     n_ranks=n_ranks, steps=steps,
                                     chunk_envelopes=chunk_envelopes,
                                     seed=seed,
                                     ordering_required=ordering_required,
                                     session=session,
                                     partitioned=partitioned)
        out.append((workload, time.perf_counter() - t0))
    return out


def run_one(workload: ServeWorkload, *, seed: int = 0,
            n_shards: int = 2, promote_after: int = 2,
            loadgen_seconds: float = 0.0,
            repeats: int = 5) -> ServePerfRecord:
    """Serve one workload and fold the run into a perf record.

    Best-of-``repeats`` wall time, the same methodology as the host-perf
    harness (:func:`repro.bench.regression.time_match`): outcomes are
    deterministic per seed, so repeats differ only in host timing noise
    and the fastest run is the honest sustained-rate measurement.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    best_wall = float("inf")
    for _ in range(repeats):
        stages = StageClock()
        if loadgen_seconds:
            stages.add("loadgen", loadgen_seconds)
        service, wall = run_workload(workload, n_shards=n_shards, seed=seed,
                                     promote_after=promote_after,
                                     stages=stages)
        if wall < best_wall:
            best_wall = wall
            best = (service, stages)
    service, stages = best
    wall = best_wall
    report = service.report()
    return ServePerfRecord(
        workload=workload.name,
        tenants=len(workload.tenants),
        n_envelopes=workload.n_envelopes,
        submitted=report["submitted"],
        accepted=report["accepted"],
        shed_retryable=report["shed_retryable"],
        shed_overloaded=report["shed_overloaded"],
        flushes=report["flushes"],
        matched=report["matched"],
        retunes=report["retunes"],
        seconds=wall,
        matches_per_second=report["matched"] / wall if wall > 0 else 0.0,
        latency_p50_vt=report["latency_p50_vt"],
        latency_p99_vt=report["latency_p99_vt"],
        seed=seed,
        stage_seconds=stages.snapshot(),
    )


def serve_table(records: list[ServePerfRecord],
                title: str = "Serve-layer sustained throughput") -> Table:
    table = Table(title=title, columns=["workload", "matched", "shed",
                                        "retunes", "rate", "p99 latency",
                                        "match %"])
    for r in records:
        shed = r.shed_retryable + r.shed_overloaded
        p99 = (f"{r.latency_p99_vt * 1e6:.1f}us"
               if r.latency_p99_vt is not None else "-")
        if r.stage_seconds:
            served = sum(v for k, v in r.stage_seconds.items()
                         if k != "loadgen")
            match_pct = (f"{100 * r.stage_seconds['match'] / served:.0f}%"
                         if served > 0 else "-")
        else:
            match_pct = "-"
        table.add(r.workload, r.matched, shed, r.retunes,
                  format_rate(r.matches_per_second), p99, match_pct)
    table.note("sustained host matches/s over the whole serve run "
               "(open-loop offered load); latency percentiles are in "
               "virtual time, deterministic per seed; match % is the "
               "matching engines' share of the serve-side staged wall "
               "time (loadgen excluded)")
    return table


def recovery_record(*, seed: int = 0, kill_at: int = 2,
                    sessions: bool = True, steps: int = 2,
                    n_ranks: int | None = 8, rate_rps: float = 4000.0,
                    chunk_envelopes: int = 64,
                    n_shards: int = 2) -> ServePerfRecord:
    """Kill-injected supervised run folded into one perf record.

    Merges the default bench apps into a single multi-tenant workload
    (session mode by default, so ``carryover_depth`` is exercised), arms
    a chaos kill on the shard hosting the first tenant after ``kill_at``
    non-empty flushes, and drives the whole thing through
    :func:`repro.serve.run_supervised`.  The run must actually recover
    -- zero admitted requests lost, none double-matched -- or this exits
    nonzero; ``recovery_seconds`` is the summed recovery wall time and
    ``carryover_depth`` the end-of-run session backlog.
    """
    t0 = time.perf_counter()
    parts = [workload_from_app(app, rate_rps=rate_rps, n_ranks=n_ranks,
                               steps=steps, chunk_envelopes=chunk_envelopes,
                               seed=seed, ordering_required=ordering_required,
                               session=sessions)
             for app, ordering_required in DEFAULT_BENCH_APPS]
    loadgen_seconds = time.perf_counter() - t0
    workload = merge_workloads("kill-recover", parts)

    # size watermark at the chunk size: every arrival triggers a
    # synchronous flush, so the armed kill reliably fires mid-run
    svc = MatchingService(n_shards=n_shards, seed=seed,
                          batching=BatchPolicy(
                              max_envelopes=chunk_envelopes))
    for spec in workload.tenants:
        svc.register(spec)
    supervisor = ShardSupervisor(svc, checkpoint_every=2)
    # kill the shard hosting the busiest tenant: the one guaranteed to
    # flush often enough for the armed kill to fire
    counts: dict[str, int] = {}
    for arrival in workload.arrivals:
        counts[arrival.tenant] = counts.get(arrival.tenant, 0) + 1
    victim = svc._placement[max(counts, key=lambda n: (counts[n], n))]
    run = run_supervised(workload, supervisor=supervisor,
                         kill_shard=victim, kill_after_flushes=kill_at)

    if not supervisor.recoveries:
        raise SystemExit("kill/recover run: the armed kill never fired "
                         f"(shard {victim} saw fewer than {kill_at} "
                         "non-empty flushes)")
    accepted = {t.seq for t in svc.tickets if t.accepted}
    covered = [s for r in svc.results for s in r.covered_seqs]
    if len(covered) != len(set(covered)):
        raise SystemExit("kill/recover run: a request was matched twice")
    if set(covered) != accepted:
        lost = sorted(accepted - set(covered))
        raise SystemExit(f"kill/recover run: admitted requests lost "
                         f"across recovery: {lost}")

    report = svc.report()
    stages = StageClock()
    if loadgen_seconds:
        stages.add("loadgen", loadgen_seconds)
    wall = run.wall_seconds
    return ServePerfRecord(
        workload=workload.name,
        tenants=len(workload.tenants),
        n_envelopes=workload.n_envelopes,
        submitted=report["submitted"],
        accepted=report["accepted"],
        shed_retryable=report["shed_retryable"],
        shed_overloaded=report["shed_overloaded"],
        flushes=report["flushes"],
        matched=report["matched"],
        retunes=report["retunes"],
        seconds=wall,
        matches_per_second=report["matched"] / wall if wall > 0 else 0.0,
        latency_p50_vt=report["latency_p50_vt"],
        latency_p99_vt=report["latency_p99_vt"],
        seed=seed,
        stage_seconds=stages.snapshot(),
        recovery_seconds=sum(r.wall_seconds for r in supervisor.recoveries),
        carryover_depth=sum(t["carryover_depth"]
                            for t in report["tenants"].values()),
    )


def recovery_smoke(seed: int = 0, kill_at: int = 2) -> ServePerfRecord:
    """Kill/recover smoke (CI mode): tiny supervised run with a chaos
    kill, temp-report schema check of the recovery fields, no report
    write."""
    rec = recovery_record(seed=seed, kill_at=kill_at)
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "BENCH_serve.json"
        append_entry([rec], label="smoke-recover", path=path)
        with open(path) as f:
            report = json.load(f)
        problems = validate_serve_entry(report["entries"][-1])
        if problems:
            raise SystemExit("kill/recover report schema check failed:\n  "
                             + "\n  ".join(problems))
    return rec


def smoke_check(seed: int = 0) -> list[ServePerfRecord]:
    """Tiny sweep into a temp report + schema validation (CI mode)."""
    records = [run_one(w, seed=seed, loadgen_seconds=lg)
               for w, lg in bench_workloads(seed=seed, steps=2, n_ranks=8)]
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "BENCH_serve.json"
        append_entry(records, label="smoke", path=path)
        with open(path) as f:
            report = json.load(f)
        problems = validate_serve_entry(report["entries"][-1])
        if problems:
            raise SystemExit("serve report schema check failed:\n  "
                             + "\n  ".join(problems))
    return records


def test_report_serve_perf():
    """Smoke entry for ``pytest benchmarks/``: tiny sweep, temp report
    only, so the committed BENCH_serve.json stays put."""
    records = smoke_check()
    write_result("serve_perf", serve_table(
        records, title="Serve-layer sustained throughput (smoke)").show())
    assert len(records) >= 3
    assert all(r.matched > 0 for r in records)
    assert all(r.matches_per_second > 0 for r in records)


def gate_check(base_label: str = "baseline",
               min_ratio: float = 0.6,
               entry_label: str | None = None) -> None:
    """Regression-gate a committed report entry against a base.

    The serve analogue of :func:`repro.bench.regression.regression_failures`:
    every workload in the gated ``BENCH_serve.json`` entry must sustain
    at least ``min_ratio`` of the base entry's matches/s.  By default the
    newest entry is gated; ``entry_label`` pins a specific one (the CI
    serve job pins the in-process entry so cluster-sweep entries appended
    later cannot make the gate vacuous -- their workload names do not
    intersect the base).  Exits nonzero on any failure."""
    report = load_report(serve_report_path())
    if not report["entries"]:
        raise SystemExit("BENCH_serve.json has no entries to gate")
    if entry_label is None:
        newest = report["entries"][-1]
    else:
        matches = [e for e in report["entries"]
                   if e["label"] == entry_label]
        if not matches:
            raise SystemExit(f"BENCH_serve.json has no entry labeled "
                             f"{entry_label!r} to gate")
        newest = matches[-1]
    failures = serve_regression_failures(report, base_label,
                                         newest["label"],
                                         min_ratio=min_ratio)
    base = serve_entry_rates(next(e for e in report["entries"]
                                  if e["label"] == base_label))
    new = serve_entry_rates(newest)
    for workload in sorted(base.keys() & new.keys()):
        print(f"  {workload}: {base[workload]:,.0f}/s -> "
              f"{new[workload]:,.0f}/s "
              f"({new[workload] / base[workload]:.2f}x)")
    if failures:
        lines = [f"  {w}: {ratio:.2f}x of {base_label!r}"
                 for w, ratio in failures]
        raise SystemExit(
            f"serve throughput regressed below {min_ratio}x:\n"
            + "\n".join(lines))
    print(f"serve regression gate: ok ({newest['label']!r} vs "
          f"{base_label!r}, min ratio {min_ratio})")


def main(argv: list[str] | None = None) -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--smoke", action="store_true",
                    help="tiny sweep + schema check; no report-file write")
    ap.add_argument("--gate", nargs="?", const="baseline", default=None,
                    metavar="BASE_LABEL",
                    help="no sweep: check the committed report's newest "
                         "entry against BASE_LABEL (default 'baseline') "
                         "and exit nonzero on regression")
    ap.add_argument("--entry", default=None, metavar="LABEL",
                    help="with --gate: gate the newest entry labeled "
                         "LABEL instead of the report's newest entry")
    ap.add_argument("--label", default="dev",
                    help="entry label in BENCH_serve.json")
    ap.add_argument("--no-json", action="store_true",
                    help="print the table without touching the report file")
    ap.add_argument("--seed", type=int, default=0)
    ap.add_argument("--rate", type=float, default=4000.0,
                    help="offered load in requests per virtual second")
    ap.add_argument("--steps", type=int, default=16,
                    help="trace timesteps per workload")
    ap.add_argument("--ranks", type=int, default=None,
                    help="ranks per generated trace "
                         "(default: each app's native count)")
    ap.add_argument("--chunk", type=int, default=256,
                    help="envelopes per loadgen column block")
    ap.add_argument("--sessions", action="store_true",
                    help="run tenants in persistent-UMQ session mode "
                         "(unmatched envelopes carry over across flushes)")
    ap.add_argument("--benchpark", action="store_true",
                    help="extend the sweep with the Benchpark re-fire "
                         "workloads (bp_amg2023/bp_kripke/bp_laghos, "
                         "declared partitioned)")
    ap.add_argument("--kill-at", type=int, default=None, metavar="N",
                    dest="kill_at",
                    help="chaos: kill the victim shard after N non-empty "
                         "flushes (requires --recover; default 2)")
    ap.add_argument("--recover", action="store_true",
                    help="run a kill-injected supervised pass and record "
                         "recovery_seconds / carryover_depth")
    args = ap.parse_args(argv)
    if args.kill_at is not None and not args.recover:
        ap.error("--kill-at requires --recover")
    kill_at = 2 if args.kill_at is None else args.kill_at

    if args.gate is not None:
        gate_check(base_label=args.gate, entry_label=args.entry)
        return
    if args.entry is not None:
        ap.error("--entry requires --gate")
    if args.smoke:
        if args.recover:
            rec = recovery_smoke(seed=args.seed, kill_at=kill_at)
            print(f"kill/recover smoke: shard recovered in "
                  f"{rec.recovery_seconds * 1e3:.2f}ms, "
                  f"{rec.matched} matched, zero admitted requests lost, "
                  f"carryover depth {rec.carryover_depth}")
            print("serve report schema (recovery fields): ok")
            return
        records = smoke_check(seed=args.seed)
        serve_table(records, title="Serve smoke (schema checked)").show()
        print("serve report schema: ok")
        return

    workloads = bench_workloads(seed=args.seed, rate_rps=args.rate,
                                steps=args.steps, n_ranks=args.ranks,
                                chunk_envelopes=args.chunk,
                                session=args.sessions,
                                benchpark=args.benchpark)
    records = []
    for w, loadgen_seconds in workloads:
        rec = run_one(w, seed=args.seed, loadgen_seconds=loadgen_seconds)
        records.append(rec)
        stages = " ".join(f"{k}={v * 1e3:.1f}ms"
                          for k, v in rec.stage_seconds.items())
        print(f"  {rec.workload}: {rec.matched} matched in "
              f"{rec.seconds:.3f}s {format_rate(rec.matches_per_second)}")
        print(f"    stages: {stages}")
    if args.recover:
        rec = recovery_record(seed=args.seed, kill_at=kill_at,
                              sessions=True, steps=args.steps,
                              n_ranks=args.ranks, rate_rps=args.rate)
        records.append(rec)
        print(f"  {rec.workload}: {rec.matched} matched, recovered in "
              f"{rec.recovery_seconds * 1e3:.2f}ms, "
              f"carryover depth {rec.carryover_depth}")
    serve_table(records).show()
    if not args.no_json:
        append_entry(records, label=args.label, path=serve_report_path())
        print(f"appended entry {args.label!r} to {serve_report_path()}")


if __name__ == "__main__":
    main()
