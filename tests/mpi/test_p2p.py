"""Point-to-point message passing over the simulated cluster."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.envelope import ANY_SOURCE, ANY_TAG
from repro.core.relaxations import RelaxationSet, WorkloadViolation
from repro.mpi import (Cluster, EAGER_LIMIT_BYTES, PCIE3, RequestState,
                       payload_nbytes)
from repro.simt.gpu import GPU


class TestBasicSendRecv:
    def test_recv_after_send(self):
        c = Cluster(2)
        c.rank(0).send(1, b"hi", tag=7)
        assert c.rank(1).recv(src=0, tag=7) == b"hi"

    def test_recv_before_send(self):
        c = Cluster(2)
        req = c.rank(1).irecv(src=0, tag=7)
        assert not req.test()
        c.rank(0).send(1, b"later", tag=7)
        assert req.wait() == b"later"

    def test_numpy_payload_snapshotted(self):
        c = Cluster(2)
        buf = np.arange(8)
        c.rank(0).send(1, buf, tag=0)
        buf[:] = -1  # sender reuses the buffer immediately
        assert np.array_equal(c.rank(1).recv(src=0, tag=0), np.arange(8))

    def test_none_payload(self):
        c = Cluster(2)
        c.rank(0).send(1, None, tag=0)
        assert c.rank(1).recv(src=0, tag=0) is None

    def test_status_fields(self):
        c = Cluster(3)
        req = c.rank(2).irecv(src=1, tag=9)
        c.rank(1).send(2, b"abcd", tag=9)
        req.wait()
        st = req.status
        assert (st.source, st.tag, st.nbytes) == (1, 9, 4)

    def test_tag_discrimination(self):
        c = Cluster(2)
        c.rank(0).send(1, b"a", tag=1)
        c.rank(0).send(1, b"b", tag=2)
        assert c.rank(1).recv(src=0, tag=2) == b"b"
        assert c.rank(1).recv(src=0, tag=1) == b"a"

    def test_source_discrimination(self):
        c = Cluster(3)
        c.rank(0).send(2, b"from0", tag=0)
        c.rank(1).send(2, b"from1", tag=0)
        assert c.rank(2).recv(src=1, tag=0) == b"from1"
        assert c.rank(2).recv(src=0, tag=0) == b"from0"


class TestOrderingGuarantee:
    def test_pair_order_preserved(self):
        c = Cluster(2)
        for i in range(50):
            c.rank(0).send(1, i, tag=3)
        got = [c.rank(1).recv(src=0, tag=3) for _ in range(50)]
        assert got == list(range(50))

    def test_wildcard_recv_takes_earliest(self):
        c = Cluster(2)
        c.rank(0).send(1, b"first", tag=1)
        c.rank(0).send(1, b"second", tag=2)
        assert c.rank(1).recv(src=ANY_SOURCE, tag=ANY_TAG) == b"first"


class TestWildcards:
    def test_any_source(self):
        c = Cluster(3)
        req = c.rank(0).irecv(src=ANY_SOURCE, tag=4)
        c.rank(2).send(0, b"x", tag=4)
        assert req.wait() == b"x"
        assert req.status.source == 2

    def test_any_tag(self):
        c = Cluster(2)
        req = c.rank(1).irecv(src=0, tag=ANY_TAG)
        c.rank(0).send(1, b"y", tag=123)
        assert req.wait() == b"y"
        assert req.status.tag == 123

    def test_wildcards_rejected_under_relaxation(self):
        c = Cluster(2, relaxations=RelaxationSet(wildcards=False))
        with pytest.raises(WorkloadViolation):
            c.rank(0).irecv(src=ANY_SOURCE, tag=0)
        with pytest.raises(WorkloadViolation):
            c.rank(0).irecv(src=1, tag=ANY_TAG)


class TestProtocols:
    def test_small_messages_are_eager(self):
        c = Cluster(2)
        c.rank(0).send(1, b"x" * 100, tag=0)
        desc = c.rank(1).endpoint.umq.payload_at(0)
        assert desc.eager

    def test_large_messages_rendezvous(self):
        c = Cluster(2)
        big = np.zeros(EAGER_LIMIT_BYTES)  # 8x the limit in bytes
        c.rank(0).send(1, big, tag=0)
        desc = c.rank(1).endpoint.umq.payload_at(0)
        assert not desc.eager
        assert desc.payload is None  # data stays at the source until match
        got = c.rank(1).recv(src=0, tag=0)
        assert np.array_equal(got, big)

    def test_rendezvous_charges_transfer_at_match(self):
        c = Cluster(2)
        big = np.zeros(1_000_000)
        c.rank(0).send(1, big, tag=0)
        before = c.transfer_seconds
        c.rank(1).recv(src=0, tag=0)
        # the 8 MB payload moves only after the match
        assert c.transfer_seconds - before > big.nbytes / (30e9)

    def test_payload_nbytes(self):
        assert payload_nbytes(None) == 0
        assert payload_nbytes(b"abc") == 3
        assert payload_nbytes(np.zeros(4, dtype=np.float64)) == 32
        assert payload_nbytes(7) == 8
        assert payload_nbytes("hi") == 2
        assert payload_nbytes((1, 2)) > 0  # pickled

    def test_link_model_selection(self):
        fastc = Cluster(2)
        slowc = Cluster(2, link=PCIE3)
        payload = np.zeros(100_000)
        fastc.rank(0).send(1, payload, tag=0)
        slowc.rank(0).send(1, payload, tag=0)
        fastc.rank(1).recv(src=0, tag=0)
        slowc.rank(1).recv(src=0, tag=0)
        assert slowc.transfer_seconds > fastc.transfer_seconds


class TestRequests:
    def test_deadlock_detection(self):
        c = Cluster(2)
        req = c.rank(0).irecv(src=1, tag=0)
        with pytest.raises(RuntimeError, match="deadlock"):
            req.wait(max_rounds=10)

    def test_cancel(self):
        c = Cluster(2)
        req = c.rank(0).irecv(src=1, tag=0)
        req.cancel()
        assert req.state is RequestState.CANCELLED
        with pytest.raises(RuntimeError):
            req.wait()

    def test_status_before_completion_raises(self):
        c = Cluster(2)
        req = c.rank(0).irecv(src=1, tag=0)
        with pytest.raises(RuntimeError):
            _ = req.status

    def test_send_completes_immediately(self):
        c = Cluster(2)
        req = c.rank(0).isend(1, b"x", tag=0)
        assert req.state is RequestState.COMPLETE


class TestClusterAccounting:
    def test_match_time_accumulates(self):
        c = Cluster(2, gpu=GPU.pascal_gtx1080())
        for i in range(20):
            c.rank(0).send(1, i, tag=i)
        for i in range(20):
            c.rank(1).recv(src=0, tag=i)
        assert c.match_seconds > 0
        stats = c.stats()
        assert stats[1]["matches"] == 20
        assert stats[1]["umq_max"] >= 1

    def test_unexpected_messages_tracked(self):
        c = Cluster(2)
        for i in range(5):
            c.rank(0).send(1, i, tag=0)
        assert c.rank(1).endpoint.umq_depth == 5
        for _ in range(5):
            c.rank(1).recv(src=0, tag=0)
        assert c.rank(1).endpoint.umq_depth == 0

    def test_drain_quiesces(self):
        c = Cluster(2)
        reqs = [c.rank(1).irecv(src=0, tag=i) for i in range(4)]
        for i in range(4):
            c.rank(0).send(1, i, tag=i)
        c.drain()
        assert all(r.test() for r in reqs)

    def test_invalid_cluster(self):
        with pytest.raises(ValueError):
            Cluster(0)
