"""CPU list-matching reference (Section II-C).

Paper: "we experimentally assessed the CPU's matching rate with various
MPI implementations and found that 30M matches/s can be achieved with
short queues.  However, this rate drops to below 5M matches/s for queues
longer than 512 entries."
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench import Table, anchor, format_rate, write_result
from repro.core.bucket_matching import BucketMatcher
from repro.core.envelope import EnvelopeBatch
from repro.core.list_matching import ListMatcher
from repro.core.matrix_matching import MatrixMatcher

QUEUE_LENGTHS = (16, 64, 128, 256, 512, 1024, 2048)


def cpu_rates() -> dict[int, tuple[float, float]]:
    """{queue_length: (rate, mean_search_length)} for the worst-case
    random-order workload the long-queue anchor describes."""
    out = {}
    rng = np.random.default_rng(3)
    for n in QUEUE_LENGTHS:
        msgs = EnvelopeBatch(src=list(range(n)), tag=[0] * n)
        reqs = msgs.take(rng.permutation(n))
        o = ListMatcher().match(msgs, reqs)
        out[n] = (o.matches_per_second(), o.meta["mean_search_length"])
    return out


def test_report_cpu_baseline():
    rates = cpu_rates()
    table = Table(
        title="CPU list-matching reference (Section II-C)",
        columns=["queue", "rate", "mean search length"])
    for n, (rate, search) in rates.items():
        table.add(n, format_rate(rate), f"{search:.0f}")
    # head-of-queue workload: the short-queue anchor
    msgs = EnvelopeBatch(src=[0] * 1000, tag=[0] * 1000)
    short = ListMatcher().match(msgs, msgs).matches_per_second()
    table.add("head-hit", format_rate(short), "1")
    table.note("paper: ~30M matches/s short queues, <5M beyond 512 entries")
    write_result("cpu_baseline", table.show())

    assert short == pytest.approx(anchor("cpu/short_queue"), rel=0.15)
    assert rates[1024][0] < anchor("cpu/long_queue_below")
    assert rates[2048][0] < rates[1024][0] < rates[256][0]


def test_report_cpu_vs_gpu_crossover():
    """Where the paper's comparison lands: the CPU wins short queues,
    the MPI-compliant GPU matrix matcher never catches up (its win needs
    the relaxations), which is exactly the paper's motivation."""
    table = Table(
        title="CPU list vs GPU matrix (full MPI semantics)",
        columns=["queue", "CPU list", "GPU matrix (Pascal)"])
    rng = np.random.default_rng(4)
    for n in (64, 512, 1024, 2048):
        msgs = EnvelopeBatch(src=list(range(n)), tag=[0] * n)
        reqs = msgs.take(rng.permutation(n))
        cpu = ListMatcher().match(msgs, reqs).matches_per_second()
        gpu = MatrixMatcher().match(msgs, reqs).matches_per_second()
        table.add(n, format_rate(cpu), format_rate(gpu))
    table.note("paper: 'we do not compare the GPU with the CPU matching "
               "performance' -- the GPU needs the relaxations to win")
    write_result("cpu_vs_gpu", table.show())


def test_report_cpu_bucket_alternative():
    """Related work [3]: hashed buckets with markers vs plain lists on
    the CPU -- the cited 3.5x-class improvement for long, tuple-diverse
    queues, and its disappearance under wildcard-heavy traffic."""
    table = Table(
        title="CPU list vs hashed-bucket matching (related work [3])",
        columns=["queue", "list", "bucket(256)", "speedup"])
    rng = np.random.default_rng(6)
    speedups = {}
    for n in (256, 1024, 2048, 4096):
        msgs = EnvelopeBatch(src=np.arange(n) % 256, tag=np.arange(n) // 256)
        reqs = msgs.take(rng.permutation(n))
        lst = ListMatcher().match(msgs, reqs)
        bkt = BucketMatcher(n_buckets=256).match(msgs, reqs)
        assert np.array_equal(lst.request_to_message,
                              bkt.request_to_message)
        speedups[n] = (bkt.matches_per_second()
                       / lst.matches_per_second())
        table.add(n, format_rate(lst.matches_per_second()),
                  format_rate(bkt.matches_per_second()),
                  f"{speedups[n]:.1f}x")
    table.note("cited result: 3.5x application-level improvement (FDS, "
               "1792 processes, 256 queues)")
    write_result("cpu_bucket", table.show())
    assert speedups[2048] > 3.0
    assert speedups[4096] > speedups[256]


def test_perf_bucket_match(benchmark):
    rng = np.random.default_rng(7)
    msgs = EnvelopeBatch(src=list(range(512)), tag=[0] * 512)
    reqs = msgs.take(rng.permutation(512))
    matcher = BucketMatcher(n_buckets=64)
    outcome = benchmark(matcher.match, msgs, reqs)
    assert outcome.matched_count == 512


def test_perf_list_match(benchmark):
    rng = np.random.default_rng(5)
    msgs = EnvelopeBatch(src=list(range(512)), tag=[0] * 512)
    reqs = msgs.take(rng.permutation(512))
    matcher = ListMatcher()
    outcome = benchmark(matcher.match, msgs, reqs)
    assert outcome.matched_count == 512


if __name__ == "__main__":
    test_report_cpu_baseline()
    test_report_cpu_vs_gpu_crossover()
    test_report_cpu_bucket_alternative()
