"""Unified queues, compaction utilities, and hash functions."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.compaction import compact_batch, compaction_map
from repro.core.envelope import Envelope, EnvelopeBatch
from repro.core.hashing import (HASH_FUNCTIONS, alu_cost, fibonacci32,
                                fnv1a32, fold64, identity32, jenkins32)
from repro.core.queues import QueueStats, UnifiedQueue


class TestCompaction:
    def test_map_basic(self):
        keep = np.array([True, False, True, True, False])
        assert list(compaction_map(keep)) == [0, -1, 1, 2, -1]

    @given(st.lists(st.booleans(), max_size=200))
    @settings(max_examples=50)
    def test_map_property(self, bits):
        keep = np.array(bits, dtype=bool)
        mapping = compaction_map(keep)
        kept = mapping[keep]
        # kept entries get consecutive slots starting at 0, order preserved
        assert list(kept) == list(range(keep.sum()))
        assert (mapping[~keep] == -1).all()

    def test_compact_batch(self):
        b = EnvelopeBatch(src=[1, 2, 3], tag=[4, 5, 6])
        out, mapping = compact_batch(b, np.array([True, False, True]))
        assert list(out) == [Envelope(1, 4), Envelope(3, 6)]
        assert list(mapping) == [0, -1, 1]

    def test_compact_batch_shape_check(self):
        b = EnvelopeBatch(src=[1], tag=[2])
        with pytest.raises(ValueError):
            compact_batch(b, np.array([True, False]))


class TestUnifiedQueue:
    def test_append_and_snapshot(self):
        q = UnifiedQueue("UMQ")
        q.append(Envelope(1, 2), payload="a")
        q.append(Envelope(3, 4), payload="b")
        snap = q.snapshot()
        assert len(q) == 2 and len(snap) == 2
        assert snap[1] == Envelope(3, 4)
        assert q.payload_at(0) == "a"

    def test_sequence_numbers_monotonic(self):
        q = UnifiedQueue()
        s0 = q.append(Envelope(0, 0))
        s1 = q.append(Envelope(0, 0))
        assert s1 == s0 + 1
        q.consume(np.array([0]))
        assert q.seq_at(0) == s1  # survivor keeps its number

    def test_consume_preserves_order_and_returns_payloads(self):
        q = UnifiedQueue()
        for i in range(5):
            q.append(Envelope(i, 0), payload=i * 10)
        got = q.consume(np.array([1, 3]))
        assert got == [10, 30]
        assert [e.src for e in q.snapshot()] == [0, 2, 4]
        assert [q.payload_at(i) for i in range(3)] == [0, 20, 40]

    def test_consume_validation(self):
        q = UnifiedQueue()
        q.append(Envelope(0, 0))
        with pytest.raises(IndexError):
            q.consume(np.array([5]))
        with pytest.raises(ValueError):
            q.consume(np.array([0, 0]))
        assert q.consume(np.array([], dtype=np.int64)) == []

    def test_capacity_overflow(self):
        q = UnifiedQueue(capacity=2)
        q.append(Envelope(0, 0))
        q.append(Envelope(0, 0))
        with pytest.raises(OverflowError):
            q.append(Envelope(0, 0))

    def test_extend(self):
        q = UnifiedQueue()
        q.extend(EnvelopeBatch(src=[1, 2], tag=[0, 0]), payloads=["x", "y"])
        assert q.payload_at(1) == "y"
        with pytest.raises(ValueError):
            q.extend(EnvelopeBatch(src=[1], tag=[0]), payloads=["x", "y"])

    def test_stats(self):
        q = UnifiedQueue()
        q.append(Envelope(0, 0))
        q.observe_depth()
        q.append(Envelope(0, 0))
        q.observe_depth()
        assert q.stats.max_depth == 2
        assert q.stats.mean_depth == pytest.approx(1.5)
        assert q.stats.appended == 2
        fresh = QueueStats()
        assert fresh.mean_depth == 0.0


class TestHashFunctions:
    @given(st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=100)
    def test_all_stay_in_u32(self, key):
        for fn in HASH_FUNCTIONS.values():
            h = int(fn(np.array([key]))[0])
            assert 0 <= h < 2**32

    def test_deterministic_and_vectorized(self):
        keys = np.arange(1000)
        for fn in HASH_FUNCTIONS.values():
            a = fn(keys)
            b = np.array([int(fn(np.array([k]))[0]) for k in keys])
            assert np.array_equal(a, b)

    def test_jenkins_known_mixing(self):
        """Sequential keys must spread: no two adjacent keys may map to
        adjacent hashes (the property the matcher relies on)."""
        keys = np.arange(4096)
        h = jenkins32(keys)
        assert np.unique(h).size == 4096  # injective on this range
        adjacent = np.abs(np.diff(h.astype(np.int64)))
        assert (adjacent > 1).mean() > 0.99

    def test_identity_does_not_mix(self):
        keys = np.arange(16)
        assert np.array_equal(identity32(keys), keys)

    def test_bucket_uniformity(self):
        """Chi-square-ish check: jenkins/fnv/fibonacci spread sequential
        keys evenly over 64 buckets."""
        keys = np.arange(64 * 256)
        for name in ("jenkins", "fnv1a", "fibonacci"):
            counts = np.bincount(HASH_FUNCTIONS[name](keys) % 64,
                                 minlength=64)
            assert counts.min() > 0.5 * counts.mean(), name
            assert counts.max() < 2.0 * counts.mean(), name

    def test_alu_costs(self):
        assert alu_cost("jenkins") > alu_cost("fibonacci") > alu_cost(
            "identity")
        with pytest.raises(KeyError):
            alu_cost("sha256")

    def test_fold64_uses_both_halves(self):
        a = fold64(np.array([0x0000000100000000]))
        b = fold64(np.array([0x0000000000000001]))
        c = fold64(np.array([0]))
        assert a[0] != c[0] and b[0] != c[0]

    def test_fnv_fib_differ_from_jenkins(self):
        keys = np.arange(100)
        assert not np.array_equal(jenkins32(keys), fnv1a32(keys))
        assert not np.array_equal(jenkins32(keys), fibonacci32(keys))
