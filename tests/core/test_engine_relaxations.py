"""Relaxation sets, workload validation, and the engine facade."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.engine import MatchingEngine
from repro.core.envelope import ANY_SOURCE, ANY_TAG, EnvelopeBatch
from repro.core.hash_matching import HashMatcher
from repro.core.matrix_matching import MatrixMatcher
from repro.core.partitioned import PartitionedMatcher
from repro.core.relaxations import (TABLE_II_CONFIGS, RelaxationSet,
                                    WorkloadViolation)
from repro.simt.gpu import GPU
from tests.conftest import permuted_pair


class TestRelaxationSet:
    def test_default_is_mpi_compliant(self):
        rel = RelaxationSet()
        assert rel.mpi_compliant
        assert rel.data_structure == "matrix"
        assert not rel.partitionable
        assert rel.user_implication == "none"

    def test_unordered_requires_no_wildcards(self):
        with pytest.raises(ValueError):
            RelaxationSet(wildcards=True, ordering=False)

    def test_partitionable_iff_no_wildcards(self):
        assert RelaxationSet(wildcards=False).partitionable
        assert not RelaxationSet(wildcards=True).partitionable

    def test_table_ii_has_six_rows(self):
        assert len(TABLE_II_CONFIGS) == 6
        assert len({r.label() for r in TABLE_II_CONFIGS}) == 6

    def test_table_ii_row_properties(self):
        """The Part. / Data structure / User implication columns of
        Table II, row by row."""
        expected = [
            (False, "matrix", "none"),
            (False, "matrix", "medium"),
            (True, "matrix", "low"),
            (True, "matrix", "medium"),
            (True, "hash", "high"),
            (True, "hash", "high"),
        ]
        got = [(r.partitionable, r.data_structure, r.user_implication)
               for r in TABLE_II_CONFIGS]
        assert got == expected

    def test_compaction_needed_iff_unexpected(self):
        assert RelaxationSet(unexpected=True).needs_compaction
        assert not RelaxationSet(unexpected=False).needs_compaction

    def test_validate_requests(self):
        rel = RelaxationSet(wildcards=False)
        rel.validate_requests(EnvelopeBatch(src=[1], tag=[2]))
        with pytest.raises(WorkloadViolation):
            rel.validate_requests(EnvelopeBatch(src=[ANY_SOURCE], tag=[2]))
        with pytest.raises(WorkloadViolation):
            rel.validate_requests(EnvelopeBatch(src=[1], tag=[ANY_TAG]))

    def test_validate_unexpected(self):
        RelaxationSet(unexpected=False).validate_unexpected(0)
        with pytest.raises(WorkloadViolation):
            RelaxationSet(unexpected=False).validate_unexpected(3)
        RelaxationSet(unexpected=True).validate_unexpected(100)

    def test_labels(self):
        assert RelaxationSet().label() == "wc+ord+unexp"
        assert RelaxationSet(wildcards=False, ordering=False,
                             unexpected=False).label() == "nowc+noord+pre"


class TestMatchingEngine:
    def test_matcher_selection(self):
        assert isinstance(MatchingEngine().matcher, MatrixMatcher)
        assert isinstance(
            MatchingEngine(relaxations=RelaxationSet(wildcards=False)).matcher,
            PartitionedMatcher)
        assert isinstance(
            MatchingEngine(relaxations=RelaxationSet(
                wildcards=False, ordering=False)).matcher,
            HashMatcher)

    def test_compaction_follows_unexpected(self):
        on = MatchingEngine(relaxations=RelaxationSet())
        off = MatchingEngine(relaxations=RelaxationSet(unexpected=False))
        assert on.matcher.compaction
        assert not off.matcher.compaction

    def test_rejects_wildcards_under_restriction(self, rng):
        eng = MatchingEngine(relaxations=RelaxationSet(wildcards=False))
        msgs = EnvelopeBatch(src=[1], tag=[0])
        reqs = EnvelopeBatch(src=[ANY_SOURCE], tag=[0])
        with pytest.raises(WorkloadViolation):
            eng.match(msgs, reqs)

    def test_rejects_unexpected_under_prepost(self):
        eng = MatchingEngine(relaxations=RelaxationSet(unexpected=False))
        msgs = EnvelopeBatch(src=[1, 2], tag=[0, 0])
        reqs = EnvelopeBatch(src=[1], tag=[0])  # message from 2 is unexpected
        with pytest.raises(WorkloadViolation):
            eng.match(msgs, reqs)

    @pytest.mark.parametrize("rel", TABLE_II_CONFIGS,
                             ids=[r.label() for r in TABLE_II_CONFIGS])
    def test_all_configs_match_and_verify(self, rel, rng):
        msgs, reqs = permuted_pair(rng, 200, n_ranks=32, n_tags=16)
        eng = MatchingEngine(relaxations=rel, verify=True)
        out = eng.match(msgs, reqs)
        assert out.matched_count == 200
        assert out.seconds > 0

    def test_performance_tiers(self, rng):
        """Table II's Low < High < Very High performance ordering."""
        msgs, reqs = permuted_pair(rng, 1024, n_ranks=64, n_tags=64)
        rates = []
        for rel in (RelaxationSet(),
                    RelaxationSet(wildcards=False),
                    RelaxationSet(wildcards=False, ordering=False)):
            eng = MatchingEngine(relaxations=rel, n_queues=16, n_ctas=32)
            rates.append(eng.match(msgs, reqs).matches_per_second())
        assert rates[0] < rates[1] < rates[2]
        assert rates[1] > 5 * rates[0]     # partitioning ~10x
        assert rates[2] > 10 * rates[1]    # hashing another order

    def test_reference_and_cpu_baseline(self, rng):
        msgs, reqs = permuted_pair(rng, 64)
        eng = MatchingEngine()
        ref = eng.reference(msgs, reqs)
        cpu = eng.cpu_baseline(msgs, reqs)
        assert np.array_equal(ref.request_to_message, cpu.request_to_message)
        assert eng.data_structure == "matrix"

    def test_gpu_parameter_threads_through(self, rng):
        msgs, reqs = permuted_pair(rng, 256)
        slow = MatchingEngine(gpu=GPU.kepler_k80()).match(msgs, reqs)
        fast = MatchingEngine(gpu=GPU.pascal_gtx1080()).match(msgs, reqs)
        assert fast.matches_per_second() > slow.matches_per_second()
