"""Histogram snapshot hardening: explicit nulls and defined percentiles.

A latency series that saw no traffic must snapshot to explicit nulls
(never ``inf``/NaN, never an exception), and percentile queries must be
well-defined on every series -- including a single sample, where the
percentile *is* the sample.
"""

import json
import math

import pytest

from repro.obs.metrics import HISTOGRAM_BUCKETS, Histogram, MetricsRegistry


class TestEmptyHistogram:
    def test_summary_is_explicit_nulls(self):
        s = Histogram().summary()
        assert s == {"count": 0, "sum": 0.0, "mean": None,
                     "min": None, "max": None, "p50": None, "p99": None}

    def test_summary_has_no_nonfinite_floats(self):
        for v in Histogram().summary().values():
            if isinstance(v, float):
                assert math.isfinite(v)

    def test_percentile_is_none(self):
        h = Histogram()
        assert h.percentile(0) is None
        assert h.percentile(50) is None
        assert h.percentile(100) is None

    def test_snapshot_serializes(self):
        reg = MetricsRegistry()
        reg.histogram("serve.latency_us")  # created, never observed
        snap = reg.snapshot()
        parsed = json.loads(json.dumps(snap))
        assert parsed["histograms"]["serve.latency_us"]["p99"] is None


class TestSingleSample:
    def test_every_percentile_is_the_sample(self):
        h = Histogram()
        h.observe(7.25)
        for q in (0, 1, 50, 99, 100):
            assert h.percentile(q) == 7.25

    def test_summary_fields(self):
        h = Histogram()
        h.observe(3.0)
        s = h.summary()
        assert s["min"] == s["max"] == s["p50"] == s["p99"] == 3.0

    def test_repeated_identical_values(self):
        h = Histogram()
        h.observe(5.0, count=10)
        assert h.percentile(50) == 5.0
        assert h.percentile(99) == 5.0


class TestMultiSample:
    def test_percentiles_clamped_to_observed_range(self):
        h = Histogram()
        for v in (1.0, 2.0, 4.0, 8.0, 100.0, 1000.0):
            h.observe(v)
        for q in (0, 25, 50, 75, 99, 100):
            p = h.percentile(q)
            assert h.min <= p <= h.max

    def test_percentiles_monotone_in_q(self):
        h = Histogram()
        for v in (1.0, 3.0, 9.0, 27.0, 81.0, 243.0, 729.0):
            h.observe(v)
        qs = (0, 10, 25, 50, 75, 90, 99, 100)
        ps = [h.percentile(q) for q in qs]
        assert ps == sorted(ps)

    def test_p50_le_p99_in_summary(self):
        h = Histogram()
        for v in range(1, 200):
            h.observe(float(v))
        s = h.summary()
        assert s["p50"] <= s["p99"] <= s["max"]

    def test_overflow_bucket_uses_observed_max(self):
        h = Histogram()
        big = float(HISTOGRAM_BUCKETS[-1]) * 8
        h.observe(1.0)
        h.observe(big, count=99)
        assert h.percentile(99) <= big

    def test_out_of_range_q_raises(self):
        h = Histogram()
        h.observe(1.0)
        with pytest.raises(ValueError):
            h.percentile(-1)
        with pytest.raises(ValueError):
            h.percentile(100.5)
