#!/usr/bin/env python
"""Inside the matching kernel: watch the paper's algorithms execute.

Pedagogical walk-through at warp level:

1. build a tiny 8-message / 8-request workload and print the **vote
   matrix** the scan phase (Algorithm 1) produces -- which messages each
   receive request could take, exactly the picture in the paper's
   Figure 3;
2. run the **pedantic** matrix path (real ``ballot``/``ffs`` warp
   intrinsics on the simulator) and show the ordered reduce consuming
   columns one by one;
3. run the **warp-level hash path** (atomic CAS insert/claim on simulated
   global memory) on the same workload;
4. feed a matcher-shaped instruction mix through the **cycle-level SM
   scheduler** and compare against the analytic timing model.

Run:  python examples/inside_the_kernel.py
"""

from __future__ import annotations

import numpy as np

from repro import EnvelopeBatch, HashMatcher, MatrixMatcher
from repro.core.verify import reference_match
from repro.simt import SMScheduler, streams_from_mix
from repro.simt.gpu import PASCAL_GTX1080
from repro.simt.timing import CostLedger, TimingModel


def show_vote_matrix(messages: EnvelopeBatch,
                     requests: EnvelopeBatch) -> None:
    """Print the scan phase's boolean match matrix (Figure 3's setup)."""
    matrix = messages.match_matrix(requests)
    print("vote matrix (rows = messages, columns = receive requests):")
    header = "          " + " ".join(f"r{j}" for j in range(len(requests)))
    print(header)
    for i, msg in enumerate(messages):
        bits = " ".join(" X" if matrix[i, j] else " ."
                        for j in range(len(requests)))
        print(f"  m{i} ({msg.src},{msg.tag:2d}) {bits}")


def main() -> None:
    rng = np.random.default_rng(23)
    messages = EnvelopeBatch(src=[0, 1, 0, 2, 1, 0, 2, 1],
                             tag=[5, 5, 7, 5, 7, 5, 7, 5])
    requests = EnvelopeBatch(src=[1, 0, -1, 2, 0, 1, 2, 0],
                             tag=[5, 5, 5, 7, 7, 5, 5, -1])
    print("8 messages vs 8 receive requests "
          "(request r2 wildcards the source, r7 the tag)\n")
    show_vote_matrix(messages, requests)

    # -- the ordered reduce ----------------------------------------------------
    matcher = MatrixMatcher(warps_per_cta=1, window=4)
    outcome = matcher.match_pedantic(messages, requests)
    oracle = reference_match(messages, requests)
    print("\nreduce result (request -> message), executed with real "
          "ballot/ffs warp intrinsics:")
    for j, m in enumerate(outcome.request_to_message):
        req = requests[j]
        src = "*" if req.src == -1 else req.src
        tag = "*" if req.tag == -1 else req.tag
        print(f"  r{j} ({src},{tag}) -> "
              + (f"m{m}" if m >= 0 else "unmatched"))
    assert np.array_equal(outcome.request_to_message,
                          oracle.request_to_message)
    print("  == the MPI reference assignment, bit for bit")

    # -- the hash path ------------------------------------------------------------
    concrete = EnvelopeBatch(src=requests.src.copy(), tag=requests.tag.copy())
    concrete = EnvelopeBatch(np.where(concrete.src == -1, 0, concrete.src),
                             np.where(concrete.tag == -1, 5, concrete.tag))
    hashed = HashMatcher().match_pedantic(messages, concrete)
    print(f"\nwarp-level hash path (atomic CAS on simulated global "
          f"memory): matched {hashed.matched_count}/8 in "
          f"{hashed.iterations} rounds "
          f"(wildcards replaced -- the relaxation's price)")

    # -- the scheduler ---------------------------------------------------------------
    spec = PASCAL_GTX1080
    mix = [("smem_load", 64), ("ballot", 64), ("alu", 256)]
    scheduled = SMScheduler(spec).run(streams_from_mix(1, mix))
    ledger = CostLedger()
    phase = ledger.phase("reduce-like", active_warps=1)
    for kind, count in mix:
        phase.add(kind, count)
    analytic = TimingModel(spec).phase_cycles(phase)
    print(f"\nreduce-shaped instruction stream on one warp:")
    print(f"  cycle-level scheduler : {scheduled.cycles:6.0f} cycles "
          f"(IPC {scheduled.ipc:.2f})")
    print(f"  analytic timing model : {analytic:6.0f} cycles "
          f"(ratio {analytic / scheduled.cycles:.2f})")
    print("\nthe analytic model prices every figure in benchmarks/; the "
          "scheduler keeps it honest (bench EXT6)")


if __name__ == "__main__":
    main()
