"""Request batching: accumulate envelopes, flush on watermarks.

The array-native fast paths (PR 1) only pay off when the matcher sees
*batches* -- a vectorized scan over one envelope is all overhead.  The
serve layer therefore never matches per request: admitted requests pour
into a per-tenant :class:`BatchAccumulator` and are flushed as one
concatenated :class:`~repro.core.envelope.EnvelopeBatch` pair when either
watermark trips:

* **size** -- accumulated envelopes reach ``max_envelopes``;
* **virtual time** -- ``max_delay_vt`` virtual seconds have passed since
  the oldest admitted request (bounding the latency a batch can add).

Both watermarks are deterministic functions of the submitted stream and
the virtual clock; no wall time is consulted anywhere (the replayability
contract of the serve scheduler).

Edge cases are first-class: flushing an empty accumulator yields a valid
zero-length batch pair (a no-op through every matcher) and a
single-envelope flush is legal -- pinned by ``tests/core/test_batch_edges.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core.envelope import EnvelopeBatch
from .messages import ServeRequest

__all__ = ["BatchPolicy", "BatchAccumulator", "concat_batches"]


def concat_batches(batches: Sequence[EnvelopeBatch]) -> EnvelopeBatch:
    """Concatenate envelope batches in order (empty input -> empty batch).

    This is the whole flush: one ``np.concatenate`` per column over the
    admitted views, no per-envelope work.  When every member carries its
    packed64 key column (loadgen-emitted message blocks do), the result
    keeps a concatenated key column too, so the matcher downstream never
    re-packs what the loadgen already packed.
    """
    batches = [b for b in batches if len(b)]
    if not batches:
        return EnvelopeBatch.empty()
    if len(batches) == 1:
        return batches[0]
    packs = [b._packed for b in batches]
    return EnvelopeBatch.view(
        np.concatenate([b.src for b in batches]),
        np.concatenate([b.tag for b in batches]),
        np.concatenate([b.comm for b in batches]),
        packed=(np.concatenate(packs)
                if all(p is not None for p in packs) else None))


@dataclass(frozen=True)
class BatchPolicy:
    """When a tenant's accumulator flushes.

    Parameters
    ----------
    max_envelopes:
        Size watermark: flush as soon as the accumulated envelope count
        (messages + requests) reaches this.  ``1`` degenerates to
        flush-per-request -- the configuration the pass-through
        equivalence contract is pinned under.
    max_delay_vt:
        Virtual-time watermark: flush at ``first_admit + max_delay_vt``
        even if the size watermark was never reached.
    """

    max_envelopes: int = 512
    max_delay_vt: float = 1e-3

    def __post_init__(self) -> None:
        if self.max_envelopes < 1:
            raise ValueError("max_envelopes must be >= 1")
        if self.max_delay_vt <= 0:
            raise ValueError("max_delay_vt must be positive")


class BatchAccumulator:
    """Per-tenant envelope accumulator with watermark-driven flushing."""

    def __init__(self, policy: BatchPolicy | None = None) -> None:
        self.policy = policy if policy is not None else BatchPolicy()
        self._pending: list[ServeRequest] = []
        self._n_envelopes = 0
        self._first_admit_vt: float | None = None
        #: increments on every flush; deadline timers carry the epoch
        #: they were armed in, so stale timers are detected exactly.
        self.epoch = 0

    # -- state ------------------------------------------------------------------

    def __len__(self) -> int:
        """Accumulated envelope count (the inbox-depth unit)."""
        return self._n_envelopes

    @property
    def n_requests(self) -> int:
        """Pending admitted requests."""
        return len(self._pending)

    @property
    def deadline_vt(self) -> float | None:
        """Virtual time of the pending time-watermark flush (None if empty)."""
        if self._first_admit_vt is None:
            return None
        return self._first_admit_vt + self.policy.max_delay_vt

    # -- admission / flushing -----------------------------------------------------

    def admit(self, request: ServeRequest) -> None:
        """Add an admitted request's envelopes to the batch."""
        if self._first_admit_vt is None:
            self._first_admit_vt = request.arrival_vt
        self._pending.append(request)
        self._n_envelopes += request.n_envelopes

    def size_ready(self) -> bool:
        """Has the size watermark tripped?"""
        return self._n_envelopes >= self.policy.max_envelopes

    def time_ready(self, now_vt: float) -> bool:
        """Has the virtual-time watermark tripped?"""
        deadline = self.deadline_vt
        return deadline is not None and now_vt >= deadline

    def flush(self) -> tuple[EnvelopeBatch, EnvelopeBatch, list[ServeRequest]]:
        """Drain everything pending into one concatenated batch pair.

        Returns ``(messages, requests, covered)``; flushing an empty
        accumulator returns valid zero-length batches and an empty cover
        list (a no-op through every matcher).
        """
        covered = self._pending
        messages = concat_batches([r.messages for r in covered])
        requests = concat_batches([r.requests for r in covered])
        self._pending = []
        self._n_envelopes = 0
        self._first_admit_vt = None
        self.epoch += 1
        return messages, requests, covered

    # -- snapshot format ----------------------------------------------------------

    def export_state(self) -> dict:
        """Accumulator state for the serve snapshot format.

        ``pending`` holds the live :class:`ServeRequest` objects; the
        codec in :mod:`repro.serve.state` turns their column batches
        into the binary form.
        """
        return {"pending": list(self._pending),
                "n_envelopes": self._n_envelopes,
                "first_admit_vt": self._first_admit_vt,
                "epoch": self.epoch}

    def restore_state(self, state: dict) -> None:
        """Inverse of :meth:`export_state` (policy is rebuilt separately)."""
        self._pending = list(state["pending"])
        self._n_envelopes = int(state["n_envelopes"])
        fa = state["first_admit_vt"]
        self._first_admit_vt = None if fa is None else float(fa)
        self.epoch = int(state["epoch"])

    def discard_covered(self, covered_seqs: set[int]) -> int:
        """Drop pending requests whose seq is in ``covered_seqs``.

        Crash-recovery reconciliation: a restored checkpoint may hold
        requests that a post-checkpoint flush already matched (the flush
        ledger outlives the crashed shard).  Removing them here is what
        keeps recovery exactly-once.  Returns the envelope count dropped.
        """
        keep = [r for r in self._pending if r.seq not in covered_seqs]
        dropped = self._n_envelopes - sum(r.n_envelopes for r in keep)
        if len(keep) != len(self._pending):
            self._pending = keep
            self._n_envelopes = sum(r.n_envelopes for r in keep)
            self._first_admit_vt = (keep[0].arrival_vt if keep else None)
        return dropped
