"""Named metrics: counters, gauges, histograms, and their registry.

The observability subsystem's quantitative half.  A
:class:`MetricsRegistry` owns named instruments that the instrumented
layers update during a run:

* :class:`Counter` -- monotonically accumulating totals (messages sent,
  retransmissions, matrix blocks scanned, backoff seconds);
* :class:`Gauge` -- last-written level plus its high-water mark (queue
  depth, ring occupancy);
* :class:`Histogram` -- value distributions over power-of-two buckets
  (probe-chain length, vote-matrix occupancy, queue depth per match
  attempt).

Instruments are created lazily on first use, so instrumentation sites
never need registration boilerplate.  ``snapshot()`` renders the whole
registry to a plain dict (JSON-friendly; embedded in stall reports) and
``render_table()`` to a human-readable table.

Everything here is host-side bookkeeping: metrics never touch the
simulated cost ledgers, so attaching a registry cannot perturb modeled
results (the zero-overhead-when-off contract is enforced by
``tests/core/test_fastpath_equivalence.py``).
"""

from __future__ import annotations

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry", "percentile"]

#: Upper bucket bounds of every histogram: 1, 2, 4, ... 2**19, +inf.
HISTOGRAM_BUCKETS = tuple(2 ** i for i in range(20))


def percentile(values, q: float) -> float | None:
    """Quantile of a raw sample series through the histogram estimator.

    Fills one :class:`Histogram` from ``values`` (vectorized -- the
    bucket boundaries match :meth:`Histogram.observe` exactly) and
    returns :meth:`Histogram.percentile`.  Reports that hold raw samples
    (the serve bench's latency lists) route through this instead of
    ``np.percentile`` so they quote the *same* quantile a live metrics
    registry would for the same series -- one estimator everywhere.
    ``None`` on an empty series, like the histogram itself.
    """
    import numpy as np

    arr = np.asarray(values, dtype=float).ravel()
    hist = Histogram()
    if arr.size:
        hist.count = int(arr.size)
        hist.total = float(arr.sum())
        hist.min = float(arr.min())
        hist.max = float(arr.max())
        idx = np.searchsorted(np.asarray(HISTOGRAM_BUCKETS, dtype=float),
                              arr, side="left")
        hist.buckets = np.bincount(
            idx, minlength=len(HISTOGRAM_BUCKETS) + 1).tolist()
    return hist.percentile(q)


class Counter:
    """A float-valued accumulating total."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, n: float = 1.0) -> None:
        """Add ``n`` (may be fractional, e.g. seconds)."""
        self.value += n


class Gauge:
    """Last-written level plus high-water mark."""

    __slots__ = ("value", "max_value", "writes")

    def __init__(self) -> None:
        self.value = 0.0
        self.max_value = 0.0
        self.writes = 0

    def set(self, v: float) -> None:
        """Record the current level."""
        self.value = v
        self.max_value = max(self.max_value, v)
        self.writes += 1


class Histogram:
    """Distribution over power-of-two buckets.

    ``observe(v, count=k)`` records ``k`` identical observations of
    ``v`` in one call (the batched form the vectorized matchers use).
    """

    __slots__ = ("count", "total", "min", "max", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self.buckets = [0] * (len(HISTOGRAM_BUCKETS) + 1)

    def observe(self, value: float, count: int = 1) -> None:
        """Record ``count`` observations of ``value``."""
        if count <= 0:
            return
        self.count += count
        self.total += value * count
        self.min = min(self.min, value)
        self.max = max(self.max, value)
        for i, bound in enumerate(HISTOGRAM_BUCKETS):
            if value <= bound:
                self.buckets[i] += count
                return
        self.buckets[-1] += count

    @property
    def mean(self) -> float:
        """Mean of all observations (0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float | None:
        """Bucket-interpolated percentile ``q`` in [0, 100].

        Well-defined on every series: ``None`` when the histogram is
        empty (an explicit null, never NaN), the sample itself on a
        single-sample series, and a value linearly interpolated within
        the covering power-of-two bucket -- clamped to the observed
        [min, max] -- otherwise.
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        if self.count == 0:
            return None
        if self.count == 1 or self.min == self.max:
            return self.min
        # rank of the target observation, 1-based
        rank = max(1.0, q / 100.0 * self.count)
        cum = 0
        for i, filled in enumerate(self.buckets):
            lower = 0.0 if i == 0 else float(HISTOGRAM_BUCKETS[i - 1])
            upper = (float(HISTOGRAM_BUCKETS[i])
                     if i < len(HISTOGRAM_BUCKETS) else self.max)
            if filled and cum + filled >= rank:
                # interpolate by position inside this bucket
                frac = (rank - cum) / filled
                value = lower + frac * (upper - lower)
                return min(max(value, self.min), self.max)
            cum += filled
        return self.max

    def summary(self) -> dict:
        """JSON-friendly summary of the distribution.

        Empty histograms snapshot to explicit nulls for every
        value-derived field (never ``inf``/NaN, never an exception), so
        a latency series that saw no traffic serializes cleanly.
        """
        if self.count == 0:
            return {"count": 0, "sum": 0.0, "mean": None,
                    "min": None, "max": None, "p50": None, "p99": None}
        return {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.percentile(50),
            "p99": self.percentile(99),
        }


class MetricsRegistry:
    """Lazily-created named instruments of one observed run."""

    def __init__(self) -> None:
        self.counters: dict[str, Counter] = {}
        self.gauges: dict[str, Gauge] = {}
        self.histograms: dict[str, Histogram] = {}

    # -- instrument access (create on first use) --------------------------------

    def counter(self, name: str) -> Counter:
        """The named counter, created on first use."""
        c = self.counters.get(name)
        if c is None:
            c = self.counters[name] = Counter()
        return c

    def gauge(self, name: str) -> Gauge:
        """The named gauge, created on first use."""
        g = self.gauges.get(name)
        if g is None:
            g = self.gauges[name] = Gauge()
        return g

    def histogram(self, name: str) -> Histogram:
        """The named histogram, created on first use."""
        h = self.histograms.get(name)
        if h is None:
            h = self.histograms[name] = Histogram()
        return h

    # -- write shorthands ---------------------------------------------------------

    def inc(self, name: str, n: float = 1.0) -> None:
        """Add ``n`` to the named counter."""
        self.counter(name).inc(n)

    def set(self, name: str, value: float) -> None:
        """Write the named gauge."""
        self.gauge(name).set(value)

    def observe(self, name: str, value: float, count: int = 1) -> None:
        """Record observations into the named histogram."""
        self.histogram(name).observe(value, count)

    # -- export -------------------------------------------------------------------

    def snapshot(self) -> dict:
        """Plain-dict view of every instrument (stable key order)."""
        return {
            "counters": {k: self.counters[k].value
                         for k in sorted(self.counters)},
            "gauges": {k: {"value": g.value, "max": g.max_value,
                           "writes": g.writes}
                       for k, g in sorted(self.gauges.items())},
            "histograms": {k: h.summary()
                           for k, h in sorted(self.histograms.items())},
        }

    def render_table(self) -> str:
        """Human-readable metrics table."""
        lines = ["metric                                    value"]
        lines.append("-" * 52)
        for k in sorted(self.counters):
            lines.append(f"{k:<40}  {self.counters[k].value:g}")
        for k, g in sorted(self.gauges.items()):
            lines.append(f"{k:<40}  {g.value:g} (max {g.max_value:g})")
        for k, h in sorted(self.histograms.items()):
            lines.append(f"{k:<40}  n={h.count} mean={h.mean:.3g} "
                         f"max={h.max if h.count else 0:g}")
        return "\n".join(lines)
