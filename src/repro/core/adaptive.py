"""Adaptive matching: adjust kernel parameters to the queues at hand.

The paper's architectural wishlist (Section VII-C) asks for *"better
dynamic parallelism, which allows for adjusting kernel parameters to
queue sizes"*.  This module implements that policy layer on top of the
existing matchers: before each pass it inspects the queues and picks

* the **data structure** -- wildcards force the matrix path; otherwise
  the rank space decides whether partitioning pays;
* the **queue count** -- bounded by the number of distinct sources
  actually present (the paper's feasibility bound: "the number of peers
  a rank is communicating with constitutes the maximum number of
  queues") and by keeping per-queue depth near the matrix sweet spot;
* the **warp size** -- narrow warps for shallow queues (the variable
  warp-size feature).

Reconfiguring between passes is not free: a dynamic-parallelism child
launch costs :data:`RELAUNCH_OVERHEAD_CYCLES`, charged whenever the
chosen configuration differs from the previous pass's.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..simt.gpu import GPUSpec, PASCAL_GTX1080
from ..simt.warp import WARP_SIZE
from .envelope import ANY_SOURCE, EnvelopeBatch
from .matrix_matching import MatrixMatcher
from .partitioned import PartitionedMatcher
from .result import MatchOutcome

__all__ = ["AdaptiveMatcher", "MatchPlan", "RELAUNCH_OVERHEAD_CYCLES",
           "relaunch_seconds"]

#: Cost of launching a reconfigured child kernel (device-side launch
#: latency on the order of a few microseconds).
RELAUNCH_OVERHEAD_CYCLES = 5_000.0


def relaunch_seconds(spec: GPUSpec) -> float:
    """Device time of one reconfigured child-kernel launch.

    Shared by the adaptive planner (per-pass reconfiguration) and the
    engine's graceful-degradation path (matcher demotion rebuilds the
    kernel the same way).
    """
    return RELAUNCH_OVERHEAD_CYCLES / spec.clock_hz

#: Minimum per-queue depth worth partitioning for: "this is only valid
#: if each queue contains at least 32 entries in order to efficiently
#: use warps" (Section VI-A).
_MIN_QUEUE_DEPTH = 32

#: Workloads at or below this size stay on the single-queue matrix: the
#: multi-queue coordination overhead dominates shallower than this.
_SINGLE_QUEUE_LIMIT = 64


@dataclass(frozen=True)
class MatchPlan:
    """One pass's chosen kernel configuration."""

    structure: str          # "matrix" or "partitioned"
    n_queues: int
    warp_size: int

    def describe(self) -> str:
        """Short human-readable form for logs and meta."""
        if self.structure == "matrix":
            return f"matrix/w{self.warp_size}"
        return f"partitioned/q{self.n_queues}/w{self.warp_size}"


class AdaptiveMatcher:
    """Queue-size-driven configuration of the matrix/partitioned matchers.

    Keeps the MPI ordering guarantee (it only ever uses matrix-family
    matchers); the unordered hash path is a *semantic* choice the planner
    must not make silently.

    Parameters
    ----------
    spec:
        Simulated device.
    compaction:
        Forwarded to the underlying matchers.
    max_queues:
        Upper bound on the partition count.
    """

    name = "adaptive"

    def __init__(self, spec: GPUSpec = PASCAL_GTX1080,
                 compaction: bool = False, max_queues: int = 32) -> None:
        if max_queues < 1:
            raise ValueError("max_queues must be positive")
        self.spec = spec
        self.compaction = compaction
        self.max_queues = max_queues
        self._previous_plan: MatchPlan | None = None
        self.relaunches = 0

    # -- planning -----------------------------------------------------------------

    def plan(self, messages: EnvelopeBatch,
             requests: EnvelopeBatch) -> MatchPlan:
        """Choose the configuration for this pass."""
        n = max(len(messages), 1)
        warp_size = self._pick_warp_size(n)
        if (requests.src == ANY_SOURCE).any():
            # the source wildcard forbids partitioning (Section VI)
            return MatchPlan(structure="matrix", n_queues=1,
                             warp_size=warp_size)
        distinct_sources = int(np.unique(messages.src).size) if len(
            messages) else 1
        if distinct_sources < 2 or n <= _SINGLE_QUEUE_LIMIT:
            return MatchPlan(structure="matrix", n_queues=1,
                             warp_size=warp_size)
        wanted = math.ceil(n / _MIN_QUEUE_DEPTH)
        n_queues = int(min(self.max_queues, distinct_sources, wanted))
        if n_queues <= 1:
            return MatchPlan(structure="matrix", n_queues=1,
                             warp_size=warp_size)
        per_queue = n / n_queues
        return MatchPlan(structure="partitioned", n_queues=n_queues,
                         warp_size=self._pick_warp_size(per_queue))

    @staticmethod
    def _pick_warp_size(queue_depth: float) -> int:
        """Narrow warps for shallow queues, full warps otherwise."""
        if queue_depth >= WARP_SIZE:
            return WARP_SIZE
        return max(4, 1 << max(2, int(math.ceil(math.log2(
            max(2.0, queue_depth))))))

    # -- matching -----------------------------------------------------------------

    def match(self, messages: EnvelopeBatch,
              requests: EnvelopeBatch) -> MatchOutcome:
        """Plan, build the matcher, run, and charge relaunch overhead."""
        plan = self.plan(messages, requests)
        if plan.structure == "matrix":
            matcher = MatrixMatcher(spec=self.spec,
                                    compaction=self.compaction,
                                    warp_size=plan.warp_size)
        else:
            matcher = PartitionedMatcher(spec=self.spec,
                                         n_queues=plan.n_queues,
                                         compaction=self.compaction,
                                         warp_size=plan.warp_size)
        outcome = matcher.match(messages, requests)
        if self._previous_plan is not None and plan != self._previous_plan:
            self.relaunches += 1
            extra = relaunch_seconds(self.spec)
            outcome = MatchOutcome(
                request_to_message=outcome.request_to_message,
                n_messages=outcome.n_messages,
                n_requests=outcome.n_requests,
                seconds=outcome.seconds + extra,
                cycles=outcome.cycles + RELAUNCH_OVERHEAD_CYCLES,
                iterations=outcome.iterations,
                replicas=outcome.replicas,
                meta=dict(outcome.meta))
        self._previous_plan = plan
        outcome.meta["plan"] = plan.describe()
        outcome.meta["relaunches"] = self.relaunches
        return outcome
