"""Warp-level (atomic-CAS) hash matching path and the memory atomics."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.envelope import ANY_SOURCE, EnvelopeBatch
from repro.core.hash_matching import HashMatcher, HashTableConfig
from repro.core.verify import check_relaxed
from repro.simt.memory import GlobalMemory, MemoryError_


class TestAtomicCAS:
    def test_single_winner_per_address(self):
        mem = GlobalMemory(4)
        ok = mem.atomic_cas(np.array([1, 1, 1, 1]),
                            np.zeros(4, dtype=np.int64),
                            np.array([10, 20, 30, 40]))
        assert ok.sum() == 1 and ok[0]
        assert mem.data[1] == 10

    def test_distinct_addresses_all_win(self):
        mem = GlobalMemory(8)
        ok = mem.atomic_cas(np.arange(4), np.zeros(4, dtype=np.int64),
                            np.arange(4) + 100)
        assert ok.all()
        assert list(mem.data[:4]) == [100, 101, 102, 103]

    def test_expected_mismatch_fails(self):
        mem = GlobalMemory(2)
        mem.store(np.array([0]), np.array([5]))
        ok = mem.atomic_cas(np.array([0]), np.array([0]), np.array([9]))
        assert not ok[0]
        assert mem.data[0] == 5

    def test_inactive_lanes_do_not_participate(self):
        mem = GlobalMemory(2)
        ok = mem.atomic_cas(np.array([0, 0]), np.zeros(2, dtype=np.int64),
                            np.array([1, 2]),
                            active=np.array([False, True]))
        assert list(ok) == [False, True]
        assert mem.data[0] == 2

    def test_oob(self):
        with pytest.raises(MemoryError_):
            GlobalMemory(2).atomic_cas(np.array([5]), np.array([0]),
                                       np.array([1]))

    def test_charges_per_distinct_address(self):
        from repro.simt.timing import CostLedger
        led = CostLedger()
        mem = GlobalMemory(8, ledger=led)
        mem.atomic_cas(np.array([1, 1, 2]), np.zeros(3, dtype=np.int64),
                       np.arange(3))
        assert led.total("atomic") == 2.0


class TestPedanticHash:
    @given(st.integers(min_value=0, max_value=200),
           st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=40, deadline=None)
    def test_complete_on_matchable_workloads(self, n, seed):
        rng = np.random.default_rng(seed)
        msgs = EnvelopeBatch.random(n, n_ranks=8, n_tags=4, rng=rng)
        reqs = msgs.take(rng.permutation(n))
        out = HashMatcher().match_pedantic(msgs, reqs)
        check_relaxed(msgs, reqs, out, require_complete=True)
        assert out.matched_count == n

    def test_heavy_duplicates(self):
        dup = EnvelopeBatch(src=[1] * 128, tag=[2] * 128)
        out = HashMatcher().match_pedantic(dup, dup)
        check_relaxed(dup, dup, out, require_complete=True)
        assert out.iterations > 32  # two slots drain ~4/round

    def test_matched_counts_agree_with_fast_path(self):
        rng = np.random.default_rng(9)
        msgs = EnvelopeBatch.random(300, n_ranks=32, n_tags=8, rng=rng)
        reqs = msgs.take(rng.permutation(300))
        fast = HashMatcher().match(msgs, reqs)
        slow = HashMatcher().match_pedantic(msgs, reqs)
        assert fast.matched_count == slow.matched_count == 300

    def test_unmatchable_surplus_terminates(self):
        msgs = EnvelopeBatch(src=[1, 2, 3], tag=[0, 0, 0])
        reqs = EnvelopeBatch(src=[1], tag=[0])
        out = HashMatcher().match_pedantic(msgs, reqs)
        assert out.matched_count == 1

    def test_rejects_wildcards_and_probing(self):
        msgs = EnvelopeBatch(src=[0], tag=[0])
        with pytest.raises(ValueError):
            HashMatcher().match_pedantic(
                msgs, EnvelopeBatch(src=[ANY_SOURCE], tag=[0]))
        with pytest.raises(ValueError):
            HashMatcher(config=HashTableConfig(probe_depth=2)).match_pedantic(
                msgs, msgs)

    def test_charges_atomics(self):
        rng = np.random.default_rng(4)
        msgs = EnvelopeBatch.random(64, n_ranks=16, n_tags=4, rng=rng)
        reqs = msgs.take(rng.permutation(64))
        out = HashMatcher().match_pedantic(msgs, reqs)
        assert out.seconds > 0
        assert "pedantic" in out.meta["phase_cycles"]
