"""Hashed-bucket CPU matching with wildcard markers (related work [3]).

The paper's related-work section describes Flajslik et al.'s CPU-side
answer to slow list matching: *"use hashes to address multiple queues and
insert so-called marker entries to restore order and support wildcards.
Their approach yields 3.5x better performance than traditional,
list-based matching algorithms"*.  This module implements that design as
a second fully MPI-compliant CPU baseline, in both matching directions:

:meth:`BucketMatcher.match` (posted requests search the bucketed UMQ)
    Every queued message is bucketed by a hash of its concrete
    ``{src, tag, comm}`` tuple and carries a global sequence number.  A
    concrete receive walks one bucket; a wildcard receive scans the
    per-bucket heads and takes the globally earliest match.

:meth:`BucketMatcher.match_arrivals` (arriving messages search the
bucketed PRQ)
    This is where Flajslik's **markers** earn their keep: a wildcard
    receive cannot be bucketed, so a *marker* carrying its sequence
    number is appended to every bucket.  An arriving message walks its
    bucket in order; the first live element that accepts it -- concrete
    entry by tuple equality, marker by consulting its wildcard request --
    wins, which preserves exact posted order across the bucket/wildcard
    split.

Both directions produce assignments bit-identical to their sequential
oracles (asserted by the tests); only the traversal cost changes.  A
concrete lookup walks one bucket instead of the whole queue -- the
source of the ~3.5x long-queue speedup the paper cites.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from .envelope import ANY_SOURCE, ANY_TAG, EnvelopeBatch
from .hashing import HASH_FUNCTIONS, fold64
from .list_matching import CPUSpec, XEON_E5
from .result import NO_MATCH, MatchOutcome

__all__ = ["BucketMatcher"]


@dataclass
class _Entry:
    """A bucketed concrete element (message or request)."""

    seq: int
    index: int     # position in the original batch
    src: int
    tag: int
    comm: int
    live: bool = True

    kind = "entry"


@dataclass
class _Marker:
    """A wildcard placeholder (points at the wildcard request's state)."""

    seq: int
    wildcard: "_Wildcard"

    kind = "marker"

    @property
    def live(self) -> bool:
        return self.wildcard.live


@dataclass
class _Wildcard:
    """State of one posted wildcard receive."""

    seq: int
    index: int
    src: int
    tag: int
    comm: int
    live: bool = True

    def accepts(self, src: int, tag: int, comm: int) -> bool:
        if self.comm != comm:
            return False
        if self.src != ANY_SOURCE and self.src != src:
            return False
        if self.tag != ANY_TAG and self.tag != tag:
            return False
        return True


class BucketMatcher:
    """Multi-bucket CPU matching with markers for wildcards.

    Parameters
    ----------
    n_buckets:
        Sub-queue count (the paper's reference deployment used 256
        queues on 1,792 processes).
    cpu:
        Traversal cost model shared with :class:`ListMatcher`, so the
        two CPU baselines are directly comparable.
    hash_name:
        Bucket-addressing hash.
    sanitize:
        Accepted for knob parity with the GPU matchers; the CPU baseline
        touches no simulated memories, so an attached sanitizer observes
        nothing (trivially clean).
    """

    name = "bucket"

    def __init__(self, n_buckets: int = 16, cpu: CPUSpec = XEON_E5,
                 hash_name: str = "jenkins", sanitize=None) -> None:
        if n_buckets < 1:
            raise ValueError("n_buckets must be positive")
        if hash_name not in HASH_FUNCTIONS:
            raise ValueError(f"unknown hash {hash_name!r}")
        self.n_buckets = n_buckets
        self.cpu = cpu
        self._hash = HASH_FUNCTIONS[hash_name]
        self._san = sanitize

    # -- bucket addressing -----------------------------------------------------------

    def _bucket_of(self, src: int, tag: int, comm: int) -> int:
        word = np.int64((comm << 48) | (src << 16) | tag)
        return int(self._hash(fold64(np.array([word])))[0]) % self.n_buckets

    # -- direction 1: requests search the bucketed message queue -----------------------

    def match(self, messages: EnvelopeBatch,
              requests: EnvelopeBatch) -> MatchOutcome:
        """Posted requests (in order) search the bucketed UMQ."""
        messages.assert_concrete("message queue")
        n_msg, n_req = len(messages), len(requests)
        out = np.full(n_req, NO_MATCH, dtype=np.int64)

        buckets: list[deque] = [deque() for _ in range(self.n_buckets)]
        for i in range(n_msg):
            src, tag, comm = (int(messages.src[i]), int(messages.tag[i]),
                              int(messages.comm[i]))
            buckets[self._bucket_of(src, tag, comm)].append(
                _Entry(seq=i, index=i, src=src, tag=tag, comm=comm))

        visited_total = 0
        seconds = 0.0
        for j in range(n_req):
            r_src = int(requests.src[j])
            r_tag = int(requests.tag[j])
            r_comm = int(requests.comm[j])
            visited = 0
            if r_src != ANY_SOURCE and r_tag != ANY_TAG:
                bucket = buckets[self._bucket_of(r_src, r_tag, r_comm)]
                for entry in bucket:
                    if not entry.live:
                        continue
                    visited += 1
                    if (entry.src == r_src and entry.tag == r_tag
                            and entry.comm == r_comm):
                        entry.live = False
                        out[j] = entry.index
                        break
            else:
                # wildcard: take the globally earliest acceptor across
                # buckets (each bucket is FIFO, so its first live
                # acceptor is its earliest)
                best: _Entry | None = None
                for bucket in buckets:
                    for entry in bucket:
                        if not entry.live:
                            continue
                        visited += 1
                        if entry.comm != r_comm:
                            continue
                        if r_src != ANY_SOURCE and entry.src != r_src:
                            continue
                        if r_tag != ANY_TAG and entry.tag != r_tag:
                            continue
                        if best is None or entry.seq < best.seq:
                            best = entry
                        break
                if best is not None:
                    best.live = False
                    out[j] = best.index
            visited_total += visited
            seconds += self.cpu.attempt_seconds(visited)
        seconds += self.cpu.per_entry_ns * 1e-9 * self._gc(buckets)
        return MatchOutcome(
            request_to_message=out, n_messages=n_msg, n_requests=n_req,
            seconds=seconds,
            meta={"entries_visited": visited_total,
                  "mean_search_length": (visited_total / n_req
                                         if n_req else 0.0),
                  "n_buckets": self.n_buckets, "cpu": self.cpu.name,
                  "direction": "requests-search-umq"})

    # -- direction 2: arriving messages search the bucketed request queue ---------------

    def match_arrivals(self, messages: EnvelopeBatch,
                       requests: EnvelopeBatch) -> MatchOutcome:
        """Arriving messages (in order) search the bucketed PRQ.

        All requests are posted first (pre-posted receives, the paper's
        favourite pattern), wildcards leaving a marker in every bucket.
        Each message then takes the earliest-posted request that accepts
        it.  Returns the same request->message vector shape as
        :meth:`match`.
        """
        messages.assert_concrete("message queue")
        n_msg, n_req = len(messages), len(requests)
        out = np.full(n_req, NO_MATCH, dtype=np.int64)

        buckets: list[deque] = [deque() for _ in range(self.n_buckets)]
        for j in range(n_req):
            src, tag, comm = (int(requests.src[j]), int(requests.tag[j]),
                              int(requests.comm[j]))
            if src == ANY_SOURCE or tag == ANY_TAG:
                wc = _Wildcard(seq=j, index=j, src=src, tag=tag, comm=comm)
                for bucket in buckets:
                    bucket.append(_Marker(seq=j, wildcard=wc))
            else:
                buckets[self._bucket_of(src, tag, comm)].append(
                    _Entry(seq=j, index=j, src=src, tag=tag, comm=comm))

        visited_total = 0
        seconds = 0.0
        for i in range(n_msg):
            m_src, m_tag, m_comm = (int(messages.src[i]),
                                    int(messages.tag[i]),
                                    int(messages.comm[i]))
            bucket = buckets[self._bucket_of(m_src, m_tag, m_comm)]
            visited = 0
            for element in bucket:
                if not element.live:
                    continue
                visited += 1
                if element.kind == "entry":
                    if (element.src == m_src and element.tag == m_tag
                            and element.comm == m_comm):
                        element.live = False
                        out[element.index] = i
                        break
                else:  # marker: consult the wildcard it stands for
                    wc = element.wildcard
                    if wc.accepts(m_src, m_tag, m_comm):
                        wc.live = False  # all its markers die with it
                        out[wc.index] = i
                        break
            visited_total += visited
            seconds += self.cpu.attempt_seconds(visited)
        seconds += self.cpu.per_entry_ns * 1e-9 * self._gc(buckets)
        return MatchOutcome(
            request_to_message=out, n_messages=n_msg, n_requests=n_req,
            seconds=seconds,
            meta={"entries_visited": visited_total,
                  "mean_search_length": (visited_total / n_msg
                                         if n_msg else 0.0),
                  "n_buckets": self.n_buckets, "cpu": self.cpu.name,
                  "direction": "arrivals-search-prq"})

    @staticmethod
    def _gc(buckets: list[deque]) -> int:
        purged = 0
        for bucket in buckets:
            while bucket and not bucket[0].live:
                bucket.popleft()
                purged += 1
        return purged


def arrivals_oracle(messages: EnvelopeBatch,
                    requests: EnvelopeBatch) -> np.ndarray:
    """Reference for the arrival direction: every message, in order,
    takes the earliest-posted live request that accepts it."""
    n_msg, n_req = len(messages), len(requests)
    out = np.full(n_req, NO_MATCH, dtype=np.int64)
    live = np.ones(n_req, dtype=bool)
    for i in range(n_msg):
        msg = messages[i]
        for j in range(n_req):
            if not live[j]:
                continue
            if requests[j].accepts(msg):
                out[j] = i
                live[j] = False
                break
    return out
