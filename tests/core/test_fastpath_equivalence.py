"""Equivalence suite: array-native fast paths vs their scalar references.

The perf work in this PR (batched reduce, blockwise scan, precomputed
hash slots, vectorized atomic CAS) is only admissible if it is
*bit-identical* to what it replaced: same match vectors AND same
CostLedger op totals, on every workload shape.  This suite pins that
invariant down, plus the blockwise-scan memory bound.
"""

from __future__ import annotations

import tracemalloc

import numpy as np
import pytest

from repro.bench.harness import (matching_workload, ordered_workload,
                                 partial_workload, reversed_workload)
from repro.core.envelope import ANY_SOURCE, ANY_TAG, EnvelopeBatch
from repro.core.hash_matching import HashMatcher
from repro.core.matrix_matching import MatrixMatcher
from repro.core.partitioned import PartitionedMatcher
from repro.obs import Observability
from repro.simt.memory import GlobalMemory
from repro.simt.timing import CostLedger


def wildcard_workload(n, seed=0):
    """Random workload with heavy MPI_ANY_SOURCE / MPI_ANY_TAG use."""
    msgs, reqs = matching_workload(n, seed=seed)
    src = reqs.src.copy()
    tag = reqs.tag.copy()
    src[::2] = ANY_SOURCE
    tag[::3] = ANY_TAG
    return msgs, EnvelopeBatch(src, tag, reqs.comm)


WORKLOADS = {
    "random": matching_workload,
    "ordered": ordered_workload,
    "reversed": reversed_workload,
    "partial": lambda n, seed=0: partial_workload(n, 0.3, seed=seed),
    "wildcard": wildcard_workload,
}

# crosses the 1024-message pipelining knee and block boundaries
SIZES = (96, 513, 1536, 2600)
SEEDS = (0, 1)


def ledger_signature(ledger: CostLedger) -> dict:
    """Per-phase per-op totals, keyed order-independently."""
    sig = {}
    for p in ledger.phases:
        key = (p.name, p.active_warps, str(p.overlap_group))
        assert key not in sig, "ledger merged phases must be unique"
        sig[key] = dict(p.counts)
    return sig


# -- batched reduce vs scalar reference ---------------------------------------


@pytest.mark.parametrize("workload", sorted(WORKLOADS))
@pytest.mark.parametrize("n", SIZES)
@pytest.mark.parametrize("seed", SEEDS)
def test_matrix_batched_equals_scalar(workload, n, seed):
    msgs, reqs = WORKLOADS[workload](n, seed=seed)
    fast_ledger, slow_ledger = CostLedger(), CostLedger()
    fast = MatrixMatcher(reduce_impl="batched")
    slow = MatrixMatcher(reduce_impl="scalar")
    out_fast, it_fast = fast.execute(msgs, reqs, fast_ledger)
    out_slow, it_slow = slow.execute(msgs, reqs, slow_ledger)
    assert np.array_equal(out_fast, out_slow)
    assert it_fast == it_slow
    assert ledger_signature(fast_ledger) == ledger_signature(slow_ledger)


@pytest.mark.parametrize("warps_per_cta,window", [(2, 8), (4, 16)])
def test_matrix_batched_equals_scalar_small_blocks(warps_per_cta, window):
    """Non-default geometry: many tiny blocks exercise the early-exit and
    re-bid paths of the batched reduce."""
    msgs, reqs = reversed_workload(700, seed=3)
    fast_ledger, slow_ledger = CostLedger(), CostLedger()
    kw = dict(warps_per_cta=warps_per_cta, window=window)
    out_fast, _ = MatrixMatcher(reduce_impl="batched", **kw).execute(
        msgs, reqs, fast_ledger)
    out_slow, _ = MatrixMatcher(reduce_impl="scalar", **kw).execute(
        msgs, reqs, slow_ledger)
    assert np.array_equal(out_fast, out_slow)
    assert ledger_signature(fast_ledger) == ledger_signature(slow_ledger)


@pytest.mark.parametrize("warp_size", [4, 16])
def test_matrix_batched_equals_scalar_narrow_warps(warp_size):
    msgs, reqs = matching_workload(300, seed=2)
    fast_ledger, slow_ledger = CostLedger(), CostLedger()
    out_fast, _ = MatrixMatcher(warp_size=warp_size,
                                reduce_impl="batched").execute(
        msgs, reqs, fast_ledger)
    out_slow, _ = MatrixMatcher(warp_size=warp_size,
                                reduce_impl="scalar").execute(
        msgs, reqs, slow_ledger)
    assert np.array_equal(out_fast, out_slow)
    assert ledger_signature(fast_ledger) == ledger_signature(slow_ledger)


# -- fast path vs pedantic simulator ------------------------------------------


@pytest.mark.parametrize("workload", ["random", "wildcard", "reversed"])
@pytest.mark.parametrize("n", [48, 96, 160])
def test_matrix_fast_matches_pedantic(workload, n):
    msgs, reqs = WORKLOADS[workload](n, seed=0)
    matcher = MatrixMatcher(warps_per_cta=2, window=8)
    fast = matcher.match(msgs, reqs)
    pedantic = matcher.match_pedantic(msgs, reqs)
    assert np.array_equal(fast.request_to_message,
                          pedantic.request_to_message)
    assert fast.matched_count == pedantic.matched_count


# -- partitioned matcher rides the same reduce --------------------------------


@pytest.mark.parametrize("workload", ["random", "ordered", "partial"])
@pytest.mark.parametrize("n", [513, 1536])
def test_partitioned_batched_equals_scalar(workload, n):
    msgs, reqs = WORKLOADS[workload](n, seed=0)
    fast = PartitionedMatcher(n_queues=4, reduce_impl="batched").match(
        msgs, reqs)
    slow = PartitionedMatcher(n_queues=4, reduce_impl="scalar").match(
        msgs, reqs)
    assert np.array_equal(fast.request_to_message, slow.request_to_message)
    assert fast.cycles == slow.cycles
    assert fast.iterations == slow.iterations


# -- hash matcher: precomputed slots ------------------------------------------


@pytest.mark.parametrize("n", [0, 1, 64, 300, 2000])
def test_hash_precompute_equals_reference(n):
    msgs, reqs = matching_workload(n, seed=0)
    fast = HashMatcher(precompute_slots=True).match(msgs, reqs)
    slow = HashMatcher(precompute_slots=False).match(msgs, reqs)
    assert np.array_equal(fast.request_to_message, slow.request_to_message)
    assert fast.cycles == slow.cycles
    assert fast.iterations == slow.iterations


def test_hash_precompute_equals_reference_duplicates():
    # heavy duplicate keys drive the eviction/offset-probing paths
    src = np.zeros(200, dtype=np.int64)
    tag = np.repeat(np.arange(10), 20).astype(np.int64)
    comm = np.zeros(200, dtype=np.int64)
    msgs = EnvelopeBatch(src, tag, comm)
    reqs = msgs.take(np.random.default_rng(0).permutation(200))
    fast = HashMatcher(precompute_slots=True).match(msgs, reqs)
    slow = HashMatcher(precompute_slots=False).match(msgs, reqs)
    assert np.array_equal(fast.request_to_message, slow.request_to_message)
    assert fast.cycles == slow.cycles
    assert fast.matched_count == 200


# -- vectorized atomic CAS ----------------------------------------------------


def _scalar_cas_reference(data, addrs, expected, desired, active):
    """The pre-vectorization per-lane loop, lowest lane first."""
    success = np.zeros(addrs.size, dtype=bool)
    for i in range(addrs.size):
        if not active[i]:
            continue
        if data[addrs[i]] == expected[i]:
            data[addrs[i]] = desired[i]
            success[i] = True
    return success


@pytest.mark.parametrize("seed", range(20))
def test_atomic_cas_matches_scalar_reference(seed):
    rng = np.random.default_rng(seed)
    mem = GlobalMemory(16)
    mem.data[:] = rng.integers(0, 3, size=16)
    ref_data = mem.data.copy()
    addrs = rng.integers(0, 16, size=32)
    expected = rng.integers(0, 3, size=32)
    desired = rng.integers(10, 20, size=32)
    active = rng.random(32) < 0.8
    success = mem.atomic_cas(addrs, expected, desired, active=active)
    ref_success = _scalar_cas_reference(ref_data, addrs, expected, desired,
                                        active)
    assert np.array_equal(success, ref_success)
    assert np.array_equal(mem.data, ref_data)


def test_atomic_cas_chains_same_address():
    """A later lane whose expected equals an earlier lane's desired value
    must still win: same-address lanes replay against updated memory."""
    mem = GlobalMemory(4)
    addrs = np.array([1, 1, 1])
    expected = np.array([0, 7, 9])
    desired = np.array([7, 9, 11])
    success = mem.atomic_cas(addrs, expected, desired)
    assert success.all()
    assert mem.data[1] == 11


# -- blockwise scan memory bound ----------------------------------------------


def _obs_pair(factory, msgs, reqs):
    """Run the same matcher with and without observability attached and
    return both outcomes (obs run first so tracer state can't leak)."""
    traced = factory(Observability.enabled()).match(msgs, reqs)
    plain = factory(None).match(msgs, reqs)
    return traced, plain


@pytest.mark.parametrize("factory,workload", [
    (lambda obs: MatrixMatcher(obs=obs), "random"),
    (lambda obs: MatrixMatcher(obs=obs), "wildcard"),
    (lambda obs: MatrixMatcher(obs=obs), "partial"),
    # partitioned matching rejects the ANY_SOURCE workload by design
    (lambda obs: PartitionedMatcher(n_queues=4, obs=obs), "random"),
    (lambda obs: PartitionedMatcher(n_queues=4, obs=obs), "ordered"),
    (lambda obs: PartitionedMatcher(n_queues=4, obs=obs), "partial"),
], ids=["matrix-random", "matrix-wildcard", "matrix-partial",
        "partitioned-random", "partitioned-ordered", "partitioned-partial"])
def test_obs_attachment_is_bit_identical(workload, factory):
    """The zero-overhead-when-off contract's flip side: attaching the
    observability layer must not perturb the *model* -- same assignment,
    same modeled cycles, same iteration count."""
    msgs, reqs = WORKLOADS[workload](513, seed=1)
    traced, plain = _obs_pair(factory, msgs, reqs)
    assert np.array_equal(traced.request_to_message,
                          plain.request_to_message)
    assert traced.cycles == plain.cycles
    assert traced.iterations == plain.iterations
    assert traced.matched_count == plain.matched_count


@pytest.mark.parametrize("workload", ["random", "partial"])
def test_obs_attachment_is_bit_identical_hash(workload):
    msgs, reqs = WORKLOADS[workload](513, seed=1)
    traced, plain = _obs_pair(lambda obs: HashMatcher(obs=obs), msgs, reqs)
    assert np.array_equal(traced.request_to_message,
                          plain.request_to_message)
    assert traced.cycles == plain.cycles
    assert traced.iterations == plain.iterations


def test_obs_attachment_preserves_ledger():
    """The cost ledger -- per-phase op totals -- is part of the model
    output too; the tracer must never add or merge phases."""
    msgs, reqs = WORKLOADS["random"](700, seed=2)
    obs_ledger, plain_ledger = CostLedger(), CostLedger()
    out_obs, it_obs = MatrixMatcher(obs=Observability.enabled()).execute(
        msgs, reqs, obs_ledger)
    out_plain, it_plain = MatrixMatcher().execute(msgs, reqs, plain_ledger)
    assert np.array_equal(out_obs, out_plain)
    assert it_obs == it_plain
    assert ledger_signature(obs_ledger) == ledger_signature(plain_ledger)


# -- sanitizer: zero overhead when off, bit-identical when on ------------------


@pytest.mark.parametrize("workload", ["random", "wildcard", "reversed"])
@pytest.mark.parametrize("n", [96, 160])
def test_sanitize_attachment_is_bit_identical_matrix_pedantic(workload, n):
    """Attaching the sanitizer must not perturb the model: the pedantic
    path's match vector, modeled cycles, and per-phase ledger totals are
    identical with and without the analysis pass (and the shipped kernel
    is clean, so nothing is even recorded)."""
    from repro.simt.sanitize import Sanitizer
    msgs, reqs = WORKLOADS[workload](n, seed=0)
    kw = dict(warps_per_cta=2, window=8)
    san = Sanitizer()
    inst = MatrixMatcher(sanitize=san, **kw).match_pedantic(msgs, reqs)
    plain = MatrixMatcher(**kw).match_pedantic(msgs, reqs)
    assert san.report.clean, san.report.summary()
    assert np.array_equal(inst.request_to_message, plain.request_to_message)
    assert inst.cycles == plain.cycles
    assert inst.iterations == plain.iterations


@pytest.mark.parametrize("n", [64, 300])
def test_sanitize_attachment_is_bit_identical_hash_pedantic(n):
    from repro.simt.sanitize import Sanitizer
    msgs, reqs = matching_workload(n, seed=1)
    san = Sanitizer()
    inst = HashMatcher(sanitize=san).match_pedantic(msgs, reqs)
    plain = HashMatcher().match_pedantic(msgs, reqs)
    assert san.report.clean, san.report.summary()
    assert np.array_equal(inst.request_to_message, plain.request_to_message)
    assert inst.cycles == plain.cycles


@pytest.mark.parametrize("factory,workload", [
    (lambda san: MatrixMatcher(sanitize=san), "random"),
    (lambda san: MatrixMatcher(sanitize=san), "wildcard"),
    (lambda san: PartitionedMatcher(n_queues=4, sanitize=san), "ordered"),
    (lambda san: HashMatcher(sanitize=san), "partial"),
], ids=["matrix-random", "matrix-wildcard", "partitioned-ordered",
        "hash-partial"])
def test_sanitize_attachment_is_bit_identical_fast_paths(factory, workload):
    from repro.simt.sanitize import Sanitizer
    msgs, reqs = WORKLOADS[workload](513, seed=1)
    san = Sanitizer()
    inst = factory(san).match(msgs, reqs)
    plain = factory(None).match(msgs, reqs)
    assert np.array_equal(inst.request_to_message, plain.request_to_message)
    assert inst.cycles == plain.cycles
    assert inst.iterations == plain.iterations


def test_sanitize_attachment_preserves_pedantic_ledger():
    from repro.simt.sanitize import Sanitizer
    msgs, reqs = WORKLOADS["random"](160, seed=2)
    kw = dict(warps_per_cta=2, window=8)
    san = Sanitizer()
    inst = MatrixMatcher(sanitize=san, **kw).match_pedantic(msgs, reqs)
    plain = MatrixMatcher(**kw).match_pedantic(msgs, reqs)
    assert inst.cycles == plain.cycles
    assert san.report.clean


def test_blockwise_scan_memory_bound():
    """Matching 10^5 messages must not materialize the dense
    n_msg x n_req matrix: peak extra memory is O(block x n_req)."""
    n_msg, n_req = 100_000, 4_096
    msgs = EnvelopeBatch(np.arange(n_msg, dtype=np.int64) % 30_000,
                         np.arange(n_msg, dtype=np.int64) // 30_000,
                         np.zeros(n_msg, dtype=np.int64))
    # request k targets message k*24 exactly (unique envelope per message)
    want = np.arange(n_req, dtype=np.int64) * 24
    reqs = msgs.take(want)
    matcher = MatrixMatcher()
    ledger = CostLedger()
    tracemalloc.start()
    out, iterations = matcher.execute(msgs, reqs, ledger)
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    assert np.array_equal(out, want)
    assert iterations == 98  # ceil(100_000 / 1024): all blocks were scanned
    dense_bytes = n_msg * n_req  # the full bool match matrix
    assert peak < dense_bytes / 4
    assert peak < 100 * 2 ** 20
