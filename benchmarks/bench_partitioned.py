"""Partitioned-channel amortization bench: match once, fire many.

Not a paper figure.  Drives MPI-4 style partitioned channels
(:meth:`repro.serve.CollectiveBridge.psend_init` /
:meth:`~repro.serve.CollectiveBridge.precv_init`) over the combining
fabric and compares them against the *equivalent non-partitioned
stream*: the same ring of shard-crossing channels carrying the same
number of transfers per superstep, but with every transfer individually
matched through ``isend``/``irecv``.

The figure of merit is the **amortization ratio** -- the partitioned
stream's sustained transfers/s divided by the plain stream's.  A
partitioned channel pays for exactly one matched binding envelope per
``start()`` (per epoch); each ``pready`` re-fire afterwards lands
straight in the pre-registered buffer and only adds bytes to the
already-queued pair batch.  The plain stream pays the full match path
per transfer, so with ``K`` partitions the partitioned side amortizes
``K`` matches down to one and the ratio grows with ``K``.

Appends labeled entries to ``BENCH_serve.json`` under the
partitioned-specific record fields (``partitions``,
``refires_per_match``, ``partitioned_rate``, ``plain_rate``,
``amortization_ratio``).

Usage::

    PYTHONPATH=src python benchmarks/bench_partitioned.py [--smoke]
        [--label LABEL] [--no-json] [--seed SEED] [--span N]
        [--partitions N] [--supersteps N] [--shards 2,4]

``--smoke`` runs a tiny point into a temporary report file,
schema-checks the partitioned fields, asserts match-once accounting,
and leaves ``BENCH_serve.json`` untouched (the CI workloads job runs
this mode).  The full run additionally enforces the acceptance gate:
amortization ratio >= 5x at the default partition count.
"""

from __future__ import annotations

import argparse
import json
import tempfile
import time
from pathlib import Path

from repro.bench import Table, format_rate, write_result
from repro.bench.regression import (ServePerfRecord, append_entry,
                                    serve_report_path, validate_serve_entry)
from repro.serve import (CollectiveBridge, FabricLink, MatchingService,
                         TenantSpec, stable_shard)

#: Acceptance gate for the full run (ISSUE: >= 5x amortization).
MIN_AMORTIZATION = 5.0

_TAG = 7


def spanning_name(span: int, n_shards: int) -> str:
    """A base name whose ``name#i`` sub-tenants occupy all shards
    (same bounded CRC32 search as ``bench_fabric.py``)."""
    for k in range(10_000):
        name = f"part{k}"
        occupied = {stable_shard(f"{name}#{i}", n_shards)
                    for i in range(span)}
        if len(occupied) == n_shards:
            return name
    raise SystemExit(
        f"no base name spans {n_shards} shards at span={span} "
        f"(CRC32 placement aliases low sub-indices; raise --span)")


def make_bridge(*, n_shards: int, span: int, seed: int,
                payload_bytes: int = 8) -> tuple[MatchingService,
                                                 CollectiveBridge]:
    svc = MatchingService(n_shards=n_shards, seed=seed)
    name = spanning_name(span, n_shards)
    svc.register(TenantSpec(name=name, span=span, autotune=False,
                            partitioned=True))
    link = FabricLink(bytes_per_envelope=8 + payload_bytes)
    return svc, CollectiveBridge(svc, name, link=link)


def drive_partitioned(bridge: CollectiveBridge, *, partitions: int,
                      supersteps: int) -> int:
    """A ring of partitioned channels (rank r -> r+1), matched once per
    epoch and re-fired ``partitions`` times; returns transfers moved."""
    span = bridge.size
    psends = [bridge.psend_init(r, (r + 1) % span, partitions, tag=_TAG)
              for r in range(span)]
    precvs = [bridge.precv_init((r + 1) % span, r, partitions, tag=_TAG)
              for r in range(span)]
    for step in range(supersteps):
        for ps in psends:
            ps.start()
        for pr in precvs:
            pr.start()
        for ps in psends:
            ps.pready_range(0, partitions)
        for ps in psends:
            ps.wait()
        for pr in precvs:
            got = pr.wait()
            if len(got) != partitions:
                raise SystemExit(
                    f"partitioned wait returned {len(got)} payloads "
                    f"(expected {partitions})")
    return span * partitions * supersteps


def drive_plain(bridge: CollectiveBridge, *, partitions: int,
                supersteps: int) -> int:
    """The equivalent non-partitioned stream: identical ring, identical
    transfer count, every transfer individually matched."""
    span = bridge.size
    for step in range(supersteps):
        reqs = []
        for r in range(span):
            for _ in range(partitions):
                reqs.append(bridge.irecv((r + 1) % span, r, tag=_TAG))
        for r in range(span):
            for _ in range(partitions):
                bridge.isend(r, (r + 1) % span, None, tag=_TAG)
        for req in reqs:
            req.wait()
    return span * partitions * supersteps


def run_point(*, n_shards: int, span: int, partitions: int,
              supersteps: int, seed: int) -> ServePerfRecord:
    """One amortization point: partitioned vs plain on fresh services."""
    svc_plain, bridge_plain = make_bridge(n_shards=n_shards, span=span,
                                          seed=seed)
    t0 = time.perf_counter()
    transfers = drive_plain(bridge_plain, partitions=partitions,
                            supersteps=supersteps)
    wall_plain = time.perf_counter() - t0
    plain_rate = transfers / wall_plain if wall_plain > 0 else 0.0

    svc, bridge = make_bridge(n_shards=n_shards, span=span, seed=seed)
    t0 = time.perf_counter()
    moved = drive_partitioned(bridge, partitions=partitions,
                              supersteps=supersteps)
    wall = time.perf_counter() - t0
    if moved != transfers:
        raise SystemExit(f"stream mismatch: partitioned moved {moved}, "
                         f"plain moved {transfers}")
    partitioned_rate = moved / wall if wall > 0 else 0.0

    report = svc.report()
    matched = report["matched"]
    bindings = span * supersteps  # one matched envelope per channel epoch
    if matched != bindings:
        raise SystemExit(
            f"match-once violated: {matched} matches for {bindings} "
            f"channel epochs (each Start must match exactly once)")
    fabric = bridge.fabric
    return ServePerfRecord(
        workload=f"partitioned-s{n_shards}-p{partitions}",
        tenants=bridge.size,
        n_envelopes=2 * bindings,
        submitted=report["submitted"],
        accepted=report["accepted"],
        shed_retryable=report["shed_retryable"],
        shed_overloaded=report["shed_overloaded"],
        flushes=report["flushes"],
        matched=matched,
        retunes=report["retunes"],
        seconds=wall,
        matches_per_second=matched / wall if wall > 0 else 0.0,
        latency_p50_vt=report["latency_p50_vt"],
        latency_p99_vt=report["latency_p99_vt"],
        seed=seed,
        procs=n_shards,
        span=bridge.size,
        pair_batches=fabric.pair_batches_total,
        fabric_messages=fabric.fabric_messages_total,
        wire_virtual_seconds=fabric.wire_seconds_total,
        supersteps=fabric.supersteps,
        partitions=partitions,
        refires_per_match=partitions,
        partitioned_rate=partitioned_rate,
        plain_rate=plain_rate,
        amortization_ratio=(partitioned_rate / plain_rate
                            if plain_rate > 0 else None),
    )


def partitioned_table(records: list[ServePerfRecord],
                      title: str = "Partitioned amortization",
                      ) -> Table:
    table = Table(title=title,
                  columns=["point", "span", "shards", "parts",
                           "matches", "transfers/s", "plain/s",
                           "amortization"])
    for r in records:
        amort = (f"{r.amortization_ratio:.2f}x"
                 if r.amortization_ratio is not None else "-")
        table.add(r.workload, r.span, r.procs, r.partitions, r.matched,
                  format_rate(r.partitioned_rate),
                  format_rate(r.plain_rate), amort)
    table.note("amortization = partitioned transfers/s over the "
               "equivalent individually-matched stream; the partitioned "
               "side matches one binding envelope per channel epoch and "
               "re-fires the rest")
    return table


def sweep(*, shards: tuple[int, ...], span: int, partitions: int,
          supersteps: int, seed: int) -> list[ServePerfRecord]:
    return [run_point(n_shards=n, span=span, partitions=partitions,
                      supersteps=supersteps, seed=seed)
            for n in shards]


def smoke_check(seed: int = 0) -> list[ServePerfRecord]:
    """CI mode: one tiny point, match-once assertion (inside
    ``run_point``), temp-report schema check, no committed write."""
    records = sweep(shards=(2,), span=8, partitions=4, supersteps=2,
                    seed=seed)
    for rec in records:
        if rec.amortization_ratio is None or rec.amortization_ratio <= 0:
            raise SystemExit(f"{rec.workload}: missing amortization ratio")
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "BENCH_serve.json"
        append_entry(records, label="smoke-partitioned", path=path)
        with open(path) as f:
            report = json.load(f)
        problems = validate_serve_entry(report["entries"][-1])
        if problems:
            raise SystemExit("partitioned report schema check failed:\n  "
                             + "\n  ".join(problems))
    return records


def main(argv: list[str] | None = None) -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--smoke", action="store_true",
                    help="tiny point + schema/match-once check; no "
                         "report-file write, no ratio gate")
    ap.add_argument("--label", default="partitioned",
                    help="entry label in BENCH_serve.json")
    ap.add_argument("--no-json", action="store_true",
                    help="print tables without touching the report file")
    ap.add_argument("--seed", type=int, default=0)
    ap.add_argument("--span", type=int, default=8,
                    help="spanning tenant rank count (= ring channels)")
    ap.add_argument("--partitions", type=int, default=128,
                    help="partitions per channel (re-fires per match)")
    ap.add_argument("--supersteps", type=int, default=4,
                    help="channel epochs per point")
    ap.add_argument("--shards", default="2,4",
                    help="comma-separated shard counts")
    args = ap.parse_args(argv)

    if args.smoke:
        records = smoke_check(seed=args.seed)
        partitioned_table(records,
                          title="Partitioned smoke (schema checked)").show()
        print("partitioned report schema: ok")
        print("match-once accounting: ok")
        return

    records = sweep(shards=tuple(int(s) for s in args.shards.split(",")),
                    span=args.span, partitions=args.partitions,
                    supersteps=args.supersteps, seed=args.seed)
    worst = min(r.amortization_ratio for r in records
                if r.amortization_ratio is not None)
    if worst < MIN_AMORTIZATION:
        raise SystemExit(
            f"amortization gate failed: worst point {worst:.2f}x < "
            f"{MIN_AMORTIZATION:.1f}x (partitioned re-fires are not "
            f"amortizing their binding match)")
    write_result("partitioned_amortization",
                 partitioned_table(records).show())
    if not args.no_json:
        append_entry(records, label=args.label, path=serve_report_path())
        print(f"appended entry {args.label!r} to {serve_report_path()}")


if __name__ == "__main__":
    main()
