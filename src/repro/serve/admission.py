"""Admission control: bounded inboxes and structured load shedding.

Each shard owns a bounded inbox (the sum of its tenants' accumulated
envelopes).  Unbounded queue growth is the classic overload failure --
latency climbs until everything times out -- so the serve layer sheds
instead, in two graduated steps:

* above the **soft watermark** (``soft_fraction * capacity``) new work is
  refused with ``retryable`` and a deterministic virtual-time retry hint
  (one batch-delay period: by then the accumulated batches have flushed);
* at **capacity** new work is refused with ``overloaded`` -- the hard
  backstop.

Admission decisions depend only on the current inbox depth and the
request's envelope count, never on wall time or randomness, so an
identical submitted stream sheds identically on every run (the
determinism contract).

The controller also keeps the shed accounting the bench and the obs
layer report: admitted/shed counts per outcome class.
"""

from __future__ import annotations

from dataclasses import dataclass

from .messages import ACCEPTED, OVERLOADED, RETRYABLE

__all__ = ["AdmissionPolicy", "AdmissionController"]


@dataclass(frozen=True)
class AdmissionPolicy:
    """Bounded-inbox parameters of one shard.

    Parameters
    ----------
    capacity:
        Hard bound on a shard's pending envelopes.  A request whose
        envelopes would push the inbox past this is shed ``overloaded``.
    soft_fraction:
        Fraction of capacity past which new requests are shed
        ``retryable`` instead of admitted (graceful degradation ahead of
        the hard wall).  ``1.0`` disables the soft band.
    retry_after_vt:
        Virtual-seconds hint returned with ``retryable`` tickets.
        ``None`` derives it from the batch policy's flush delay.
    """

    capacity: int = 8192
    soft_fraction: float = 0.75
    retry_after_vt: float | None = None

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ValueError("capacity must be >= 1")
        if not 0.0 < self.soft_fraction <= 1.0:
            raise ValueError("soft_fraction must be in (0, 1]")

    @property
    def soft_watermark(self) -> int:
        """Inbox depth at which the retryable band starts."""
        return int(self.soft_fraction * self.capacity)


class AdmissionController:
    """Stateful admission decisions + shed accounting for one shard."""

    def __init__(self, policy: AdmissionPolicy | None = None,
                 default_retry_after_vt: float = 1e-3) -> None:
        self.policy = policy if policy is not None else AdmissionPolicy()
        self._retry_after = (self.policy.retry_after_vt
                             if self.policy.retry_after_vt is not None
                             else default_retry_after_vt)
        self.admitted = 0
        self.shed_retryable = 0
        self.shed_overloaded = 0

    @property
    def shed_total(self) -> int:
        """All shed requests, both classes."""
        return self.shed_retryable + self.shed_overloaded

    def decide(self, n_envelopes: int,
               inbox_depth: int) -> tuple[str, float | None, str]:
        """Admit or shed a request of ``n_envelopes`` at the given depth.

        Returns ``(status, retry_after_vt, reason)``.  Oversized requests
        (bigger than the whole inbox) are always ``overloaded``: no
        amount of retrying can admit them under this policy.
        """
        pol = self.policy
        if n_envelopes > pol.capacity:
            self.shed_overloaded += 1
            return (OVERLOADED, None,
                    f"request of {n_envelopes} envelopes exceeds shard "
                    f"capacity {pol.capacity}")
        if inbox_depth + n_envelopes > pol.capacity:
            self.shed_overloaded += 1
            return (OVERLOADED, None,
                    f"inbox full ({inbox_depth}/{pol.capacity})")
        if (pol.soft_fraction < 1.0
                and inbox_depth + n_envelopes > pol.soft_watermark):
            self.shed_retryable += 1
            return (RETRYABLE, self._retry_after,
                    f"inbox above soft watermark "
                    f"({inbox_depth}/{pol.soft_watermark})")
        self.admitted += 1
        return (ACCEPTED, None, "")
