#!/usr/bin/env python
"""Exascale proxy-application analysis: which relaxations can each app take?

Reproduces the decision process of the paper's Section IV/VII: generate a
trace per DOE mini-app model, extract the matching-relevant statistics
(wildcards, communicators, peers, tags, queue depths, tuple uniqueness),
and derive the relaxation feasibility verdict for every application:

* no-source-wildcard  -- feasible unless the app posts MPI_ANY_SOURCE;
* no-unexpected       -- cheap if the app mostly pre-posts already;
* no-ordering (hash)  -- attractive if {src, tag} tuples are near-unique.

Run:  python examples/trace_analysis.py
"""

from __future__ import annotations

from repro.traces import (analyze, app_names, figure2_summary,
                          generate_trace, tuple_uniqueness)


def verdicts(row, fig2, uniq) -> tuple[str, str, str]:
    """Feasibility of the three relaxations for one application."""
    no_wildcard = "no (uses ANY_SOURCE)" if row.uses_src_wildcard else "yes"
    if fig2["unexpected_fraction"] < 0.15:
        no_unexpected = "cheap (mostly pre-posted)"
    elif fig2["unexpected_fraction"] < 0.5:
        no_unexpected = "needs some restructuring"
    else:
        no_unexpected = "needs rewrite (late posting)"
    share = uniq["dominant_share_mean"]
    if share < 0.05:
        no_ordering = "good hash fit"
    elif share < 0.15:
        no_ordering = "acceptable hash fit"
    else:
        no_ordering = "duplicate-heavy tuples"
    return no_wildcard, no_unexpected, no_ordering


def main() -> None:
    print("Analyzing synthetic traces of the DOE proxy applications "
          "(stand-ins for the dumpi traces, see DESIGN.md)\n")
    header = (f"{'application':22s} {'peers':>6s} {'tags':>6s} "
              f"{'umq-max':>8s} {'unexp':>6s} {'dup%':>5s}  "
              f"{'-src-wc':22s} {'-unexpected':26s} {'-ordering'}")
    print(header)
    print("-" * len(header))
    for name in app_names():
        trace = generate_trace(name)
        row = analyze(trace)
        fig2 = figure2_summary(trace)
        uniq = tuple_uniqueness(trace)
        v_wc, v_unexp, v_ord = verdicts(row, fig2, uniq)
        print(f"{name:22s} {row.peers_mean:6.0f} {row.n_tags:6d} "
              f"{fig2['umq_max_mean']:8.0f} "
              f"{fig2['unexpected_fraction'] * 100:5.0f}% "
              f"{uniq['dominant_share_mean'] * 100:4.1f}%  "
              f"{v_wc:22s} {v_unexp:26s} {v_ord}")

    print("\nPaper takeaways this analysis reproduces:")
    print(" * only MiniDFT and MiniFE would be blocked by prohibiting "
          "MPI_ANY_SOURCE;")
    print(" * NEKBONE and MultiGrid are the deep-queue outliers "
          "(thousands of entries; everything else is below 512);")
    print(" * tuple duplication is single-digit for most apps, so the "
          "unordered hash-table design is broadly applicable.")


if __name__ == "__main__":
    main()
