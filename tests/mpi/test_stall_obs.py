"""Stall diagnosis x observability: metric snapshots ride the report.

When a :class:`~repro.obs.Observability` handle is attached to a
:class:`~repro.mpi.process.Cluster`, the progress watchdog's
:class:`~repro.mpi.reliability.StallReport` must carry the metrics
snapshot (``obs_metrics``) so a hung run's counters are visible in the
same place as its queue depths -- and must stay ``None`` (not ``{}``)
when observability is off, so callers can tell "no data" from "all
zeroes".
"""

from __future__ import annotations

import pytest

from repro.mpi.faults import FaultPlan, FaultSpec
from repro.mpi.process import Cluster
from repro.mpi.reliability import ReliabilityConfig, StallError
from repro.obs import Observability


def test_stall_report_carries_metric_snapshot():
    obs = Observability.enabled()
    c = Cluster(2, obs=obs)
    c.rank(0).isend(1, b"nobody wants me", tag=9)
    c.progress()
    report = c.stall_report()
    counters = report.obs_metrics["counters"]
    assert counters["net.messages_sent"] == 1
    assert counters["net.bytes_sent"] > 0
    assert report.ranks[1]["umq_depth"] == 1  # obs rides along, not instead


def test_stall_report_obs_metrics_none_without_registry():
    c = Cluster(2)
    c.rank(0).isend(1, b"x", tag=0)
    c.progress()
    assert c.stall_report().obs_metrics is None
    assert "obs counters" not in c.stall_report().render()


def test_watchdog_stall_error_report_includes_obs():
    plan = FaultPlan(seed=8)
    plan.set_link(0, 1, FaultSpec(drop=1.0))
    cfg = ReliabilityConfig(timeout_seconds=1.0, max_retries=10_000)
    obs = Observability.enabled()
    c = Cluster(2, fault_plan=plan, reliability=cfg, obs=obs)
    c.rank(1).irecv(src=0, tag=3)
    c.rank(0).isend(1, b"lost", tag=3)
    with pytest.raises(StallError) as exc:
        c.drain(max_rounds=50)
    report = exc.value.report
    assert report.obs_metrics is not None
    counters = report.obs_metrics["counters"]
    assert counters["cluster.stalls"] == 1
    assert counters["net.messages_sent"] >= 1
    # rendered diagnosis surfaces the counters alongside the queue state
    rendered = report.render()
    assert "obs counters:" in rendered
    assert "net.messages_sent" in rendered


def test_drained_cluster_snapshot_counts_matches():
    obs = Observability.enabled()
    c = Cluster(2, obs=obs)
    c.rank(0).isend(1, b"hello", tag=1)
    assert c.rank(1).recv(src=0, tag=1) == b"hello"
    c.drain()
    counters = obs.snapshot()["counters"]
    assert counters["endpoint.matches"] >= 1
    assert counters.get("cluster.stalls", 0) == 0
