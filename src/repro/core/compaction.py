"""Queue compaction (Section V-A, last step).

After a matching pass, matched entries leave holes ("bubbles") in the
message and receive queues.  Compaction closes them so the head pointer
can advance: a prefix scan computes each surviving entry's new position,
then the entries are moved.  The paper measures the cost at roughly 10%
of the matching rate and notes that it can be *skipped* when the match
density is low enough to tolerate bubbles -- and entirely under the
"no unexpected messages" relaxation, where every message matches.

This module provides the functional compaction used by the queue layer
and the shared cost-accounting helper used by the matchers.
"""

from __future__ import annotations

import math

import numpy as np

from ..simt.timing import CostLedger
from ..simt.warp import WARP_SIZE
from .envelope import EnvelopeBatch

__all__ = ["compact_batch", "compaction_map", "charge_compaction"]


def compaction_map(keep: np.ndarray) -> np.ndarray:
    """New position of every kept entry (exclusive prefix sum of ``keep``).

    Entries that are dropped get position -1.

    >>> compaction_map(np.array([True, False, True, True]))
    array([ 0, -1,  1,  2])
    """
    keep = np.asarray(keep, dtype=bool)
    positions = np.cumsum(keep) - 1
    return np.where(keep, positions, -1).astype(np.int64)


def compact_batch(batch: EnvelopeBatch, keep: np.ndarray,
                  ) -> tuple[EnvelopeBatch, np.ndarray]:
    """Remove dropped entries from a batch, preserving order.

    Returns the compacted batch and the old->new index map (-1 for
    removed entries), which callers use to relocate auxiliary per-entry
    state (payload pointers, sequence numbers).
    """
    keep = np.asarray(keep, dtype=bool)
    if keep.shape != (len(batch),):
        raise ValueError("keep mask must have one entry per batch element")
    mapping = compaction_map(keep)
    return batch.take(np.nonzero(keep)[0]), mapping


def charge_compaction(ledger: CostLedger, n_elements: int,
                      max_warps: int = 32) -> None:
    """Charge a CTA-wide compaction pass for ``n_elements`` queue entries.

    Cost structure: warp-level Kogge-Stone prefix scans (log2(32) shuffle +
    add stages), a cross-warp combine, and a gathered load / scattered
    store of every surviving entry.  The gathered reads are data-dependent
    and only partially coalesce (adjacent survivors often share a 128-byte
    segment: ~2 entries per transaction); the stores write a dense prefix
    and coalesce fully.  Together this prices compaction at roughly 10%
    of the matching rate, the paper's measurement (Section VI-B).
    """
    if n_elements <= 0:
        return
    warps = max(1, min(max_warps, math.ceil(n_elements / WARP_SIZE)))
    phase = ledger.phase("compaction", active_warps=warps)
    per_lane_iters = math.ceil(n_elements / (warps * WARP_SIZE))
    log_w = int(math.log2(WARP_SIZE))
    scan_ops = 2 * log_w * warps * per_lane_iters
    phase.add("alu", float(scan_ops + 2 * warps * per_lane_iters))
    phase.add("shfl", float(log_w * warps * per_lane_iters))
    phase.add("gmem_load", float(n_elements) / 2.0)
    phase.add("gmem_store", float(2 * warps * per_lane_iters))
    phase.add("sync", float(2 * warps))
