"""Smoke coverage for the ``benchmarks/`` suite and the regression gate.

Three contracts:

* every ``bench_*.py`` script must at least import (a bench that dies on
  import silently drops a paper figure from CI);
* :func:`repro.bench.regression.regression_failures` must flag a
  synthetic 2x slowdown and pass an unchanged run -- the gate the
  host-throughput trajectory in ``BENCH_host_perf.json`` relies on;
* ``bench_host_perf.py --trace-out`` must emit a Chrome/Perfetto
  schema-valid ``trace.json`` (the observability acceptance criterion),
  exercised through the real CLI entry point.
"""

from __future__ import annotations

import importlib.util
import json
import sys
from pathlib import Path

import pytest

from repro.bench.regression import (HostPerfRecord, append_entry,
                                    load_report, regression_failures,
                                    run_suite, speedup)

from ..obs.test_tracer_metrics import assert_perfetto_schema

BENCH_DIR = Path(__file__).resolve().parents[2] / "benchmarks"
BENCH_SCRIPTS = sorted(BENCH_DIR.glob("bench_*.py"))


def _load(path: Path):
    name = f"bench_smoke_{path.stem}"
    spec = importlib.util.spec_from_file_location(name, path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    try:
        spec.loader.exec_module(module)
    finally:
        sys.modules.pop(name, None)
    return module


def test_bench_directory_is_complete():
    """The glob below must actually see the suite (guards a layout move
    silently turning every import test into a no-op)."""
    assert len(BENCH_SCRIPTS) >= 14


@pytest.mark.parametrize("path", BENCH_SCRIPTS, ids=lambda p: p.stem)
def test_bench_script_imports(path):
    _load(path)  # import errors (stale APIs, renamed modules) fail here
    assert 'if __name__ == "__main__":' in path.read_text(), \
        f"{path.stem} is not runnable as a script"


# -- the regression gate ------------------------------------------------------


def _entry(label: str, rates: dict[tuple[str, int], float]) -> list[dict]:
    return [{"label": label,
             "records": [{"matcher": m, "n": n, "matches_per_second": r}
                         for (m, n), r in rates.items()]}]


def test_regression_gate_flags_synthetic_slowdown():
    base = {("matrix", 1000): 1e6, ("hash", 1000): 4e6}
    slow = {("matrix", 1000): 0.5e6, ("hash", 1000): 4.1e6}
    report = {"entries": _entry("base", base) + _entry("new", slow)}
    failures = regression_failures(report, "base", "new")
    assert failures == [("matrix", 1000, pytest.approx(0.5))]


def test_regression_gate_passes_unchanged_run():
    rates = {("matrix", 1000): 1e6, ("partitioned", 8000): 2e6}
    report = {"entries": _entry("base", rates) + _entry("new", dict(rates))}
    assert regression_failures(report, "base", "new") == []


def test_regression_gate_sorts_worst_first_and_ignores_new_points():
    base = {("matrix", 1000): 1e6, ("hash", 1000): 1e6,
            ("partitioned", 1000): 1e6}
    new = {("matrix", 1000): 0.5e6, ("hash", 1000): 0.2e6,
           ("hash", 64000): 0.1e6}  # depth only present in `new`: skipped
    report = {"entries": _entry("base", base) + _entry("new", new)}
    failures = regression_failures(report, "base", "new")
    assert [f[0] for f in failures] == ["hash", "matrix"]


def test_regression_gate_rejects_bad_ratio():
    report = {"entries": _entry("a", {}) + _entry("b", {})}
    with pytest.raises(ValueError):
        regression_failures(report, "a", "b", min_ratio=0.0)


def test_report_round_trip_and_speedup(tmp_path):
    path = tmp_path / "perf.json"
    records = [HostPerfRecord(matcher="matrix", n=100, seconds=0.1,
                              matched=100, matches_per_second=1000.0,
                              repeats=1)]
    append_entry(records, label="base", path=path)
    faster = [HostPerfRecord(matcher="matrix", n=100, seconds=0.05,
                             matched=100, matches_per_second=2000.0,
                             repeats=1)]
    append_entry(faster, label="new", path=path)
    report = load_report(path)
    assert speedup(report, "matrix", 100, "base", "new") == pytest.approx(2.0)
    assert regression_failures(report, "base", "new") == []
    assert regression_failures(report, "new", "base") == [
        ("matrix", 100, pytest.approx(0.5))]


def test_run_suite_smoke():
    records = run_suite(sizes=(200,), repeats=1)
    assert {r.matcher for r in records} == {"matrix", "partitioned", "hash"}
    assert all(r.matched == 200 for r in records)


# -- --trace-out: the Perfetto acceptance criterion ---------------------------


def test_host_perf_trace_out_is_perfetto_valid(tmp_path, capsys):
    module = _load(BENCH_DIR / "bench_host_perf.py")
    trace_path = tmp_path / "trace.json"
    module.main(["--no-json", "--sizes", "400",
                 "--trace-out", str(trace_path)])
    out = capsys.readouterr().out
    assert "wrote Perfetto trace" in out

    with open(trace_path) as f:
        doc = json.load(f)
    assert_perfetto_schema(doc)
    assert doc["displayTimeUnit"] == "ms"
    # the sweep's spans and the device metadata actually landed
    names = {ev["name"] for ev in doc["traceEvents"]}
    assert {"matrix.match", "partitioned.match", "hash.match"} <= names
    assert doc["otherData"]["device"] == "GeForce GTX 1080"
    # every matcher's phase lanes are present too
    assert any(n.startswith("matrix.match.") for n in names)
