"""Two-level hash-table matching (Section VI-C relaxation).

Dropping ordering guarantees (and wildcards) removes every dependency
between match attempts, so the queues can be replaced by a hash table with
constant-time insert and lookup.  The paper's structure:

* a **primary** table five times larger than the **secondary** table;
* phase 1 (*insert*): every thread takes one receive request and inserts
  it into the primary table; on collision it tries the secondary table; on
  a second collision the thread holds the request for the next iteration;
* phase 2 (*query*): every thread takes one message, hashes its key, and
  probes primary then secondary; a miss defers the message to the next
  iteration;
* iterations repeat until everything is matched -- "the more collisions
  occur, the more iterations are required".

Keys are the packed {src, tag, comm} word; the *slot* is picked by
hashing its 32-bit XOR-fold with Jenkins' 6-shift function (configurable
for the ablation bench), while table equality compares the full 64-bit
word so fold aliases (e.g. a comm bit landing on a src bit) can never
produce a false match.  Duplicate tuples collide *by construction* and
drive up iteration count, which is why the paper checks tuple uniqueness
across applications (Figure 6(a)) before committing to this design.

Completeness caveat: with single-probe levels and "hold on to the request
for the next iteration" deferral (the paper's exact policy), a request
whose two slots are both occupied by *other* live requests can starve if
those blockers never drain.  On fully-matchable workloads (every message
has a partner) every live entry always drains, so matching is complete;
on workloads with surplus requests the matcher gives up after
``max_stall_rounds`` fruitless rounds and reports the remainder
unmatched -- the same behaviour a fixed-size GPU table would exhibit.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..simt.gpu import GPUSpec, PASCAL_GTX1080
from ..simt.memory import GlobalMemory
from ..simt.occupancy import KernelResources
from ..simt.timing import CostLedger, TimingModel
from ..simt.warp import WARP_SIZE
from .envelope import EnvelopeBatch
from .hashing import HASH_FUNCTIONS, alu_cost, fold64
from .result import NO_MATCH, MatchOutcome

__all__ = ["HashMatcher", "HashTableConfig"]

#: Salt XORed into keys before hashing for the secondary table, so the two
#: levels probe independent slots.
_SECONDARY_SALT = 0x5BD1E995


def _take(table: np.ndarray | None, indices: np.ndarray) -> np.ndarray | None:
    """Gather from a precomputed slot table (``None`` passes through)."""
    return None if table is None else table[indices]


@dataclass(frozen=True)
class HashTableConfig:
    """Sizing and hashing knobs of the two-level table.

    ``scale`` is total slots per queue element; the split between levels
    follows the paper's 5:1 primary:secondary ratio by default
    (``primary_factor=5``).  ``probe_depth`` adds linear probing inside
    each level before falling through (the paper's policy is depth 1:
    collide once -> secondary table, collide twice -> defer; the
    collision-resolution policy space is its declared future work).
    """

    scale: float = 1.5
    primary_factor: int = 5
    hash_name: str = "jenkins"
    max_stall_rounds: int = 2
    probe_depth: int = 1

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise ValueError("scale must be positive")
        if self.primary_factor < 1:
            raise ValueError("primary_factor must be >= 1")
        if self.hash_name not in HASH_FUNCTIONS:
            raise ValueError(f"unknown hash {self.hash_name!r}")
        if self.probe_depth < 1:
            raise ValueError("probe_depth must be >= 1")

    def sizes(self, n: int) -> tuple[int, int]:
        """(primary_slots, secondary_slots) for ``n`` elements."""
        total = max(8, math.ceil(self.scale * max(1, n)))
        secondary = max(4, total // (self.primary_factor + 1))
        primary = secondary * self.primary_factor
        return primary, secondary


class _Level:
    """One open-addressed (single-probe) hash table level.

    A successful claim *frees* its slot immediately (the request has been
    handed its message), so later rounds can reinsert another request with
    the same key -- essential for workloads with duplicate tuples.
    """

    __slots__ = ("keys", "req_idx", "used")

    def __init__(self, slots: int) -> None:
        self.keys = np.zeros(slots, dtype=np.int64)
        self.req_idx = np.full(slots, -1, dtype=np.int64)
        self.used = np.zeros(slots, dtype=bool)

    def live_entries(self) -> np.ndarray:
        """Request indices still waiting in this level."""
        return self.req_idx[self.used]


class HashMatcher:
    """Unordered matching through a two-level hash table.

    Parameters
    ----------
    spec:
        Simulated device.
    n_ctas:
        Number of *independent* matching-engine CTAs launched on the
        communication SM, each serving its own equally-sized workload
        (Figure 6(b) compares 1 and 32).  The functional result covers one
        engine; the timing covers the makespan of all of them -- resident
        CTAs run concurrently (with mutual contention), the rest
        serialize into waves -- and the outcome's ``replicas`` field makes
        rates aggregate.
    config:
        Table sizing/hash configuration.
    precompute_slots:
        Host-side optimization (default on): hash every key's slot in
        each level once per :meth:`match` instead of re-hashing the
        pending set every round.  Hashing is deterministic, so rounds,
        assignments, and the cost ledger are identical either way (the
        *modeled* GPU still hashes per round and is charged for it);
        ``False`` keeps the per-round hashing as the equivalence-test
        reference.
    obs:
        Optional observability handle (one ``is None`` branch per path).
    sanitize:
        Optional :class:`~repro.simt.sanitize.Sanitizer`; ``None``
        (default) falls back to ``spec.sanitize``.  Instruments the
        pedantic path's :class:`~repro.simt.memory.GlobalMemory`; the
        table regions are host-``memset`` before use (the device-code
        analogue is a ``cudaMemset`` of the empty sentinel), so queries
        of empty slots are initcheck-defined.

    Notes
    -----
    Wildcards are rejected: this matcher exists *because* the relaxation
    prohibits them (they could be supported "theoretically", per the
    paper, but are out of scope exactly as in the paper).
    """

    name = "hash"

    def __init__(self, spec: GPUSpec = PASCAL_GTX1080, n_ctas: int = 1,
                 config: HashTableConfig | None = None,
                 precompute_slots: bool = True,
                 obs=None, sanitize=None) -> None:
        if n_ctas < 1:
            raise ValueError("n_ctas must be positive")
        self.spec = spec
        self.n_ctas = n_ctas
        self.config = config if config is not None else HashTableConfig()
        self.precompute_slots = precompute_slots
        self._obs = obs
        self._san = sanitize if sanitize is not None else spec.sanitize
        self._hash = HASH_FUNCTIONS[self.config.hash_name]
        self._hash_alu = alu_cost(self.config.hash_name)
        self._workload_warps = 1

    # -- public API --------------------------------------------------------------

    def match(self, messages: EnvelopeBatch,
              requests: EnvelopeBatch) -> MatchOutcome:
        """Match (unordered) and price the rounds on the device model."""
        messages.assert_concrete("message queue")
        if requests.has_wildcards:
            raise ValueError("hash matching requires the no-wildcards "
                             "relaxation; requests contain wildcards")
        n_msg, n_req = len(messages), len(requests)
        ledger = CostLedger()
        out = np.full(n_req, NO_MATCH, dtype=np.int64)
        self._workload_warps = 1
        if n_msg == 0 or n_req == 0:
            return self._finish(out, n_msg, n_req, ledger, 0, 0)

        self._workload_warps = max(1, math.ceil(max(n_msg, n_req) / WARP_SIZE))
        # Full packed words: slot selection folds to 32 bits, but the
        # equality checks use all 64 so cross-comm aliases cannot match.
        msg_keys = messages.packed()
        req_keys = requests.packed()
        primary_slots, secondary_slots = self.config.sizes(max(n_msg, n_req))
        primary = _Level(primary_slots)
        secondary = _Level(secondary_slots)
        if self.precompute_slots:
            # Hash each key once per level up front; rounds then index the
            # tables instead of re-hashing the whole pending set.
            req_slots = (self._slot_of(req_keys, primary, 0),
                         self._slot_of(req_keys, secondary, _SECONDARY_SALT))
            msg_slots = (self._slot_of(msg_keys, primary, 0),
                         self._slot_of(msg_keys, secondary, _SECONDARY_SALT))
        else:
            req_slots = msg_slots = (None, None)

        pending_req = np.arange(n_req, dtype=np.int64)
        pending_msg = np.arange(n_msg, dtype=np.int64)
        rounds = 0
        stall = 0
        collisions = 0
        while pending_msg.size and (pending_req.size
                                    or self._live(primary, secondary)):
            rounds += 1
            pending_req, ins_collisions = self._insert_round(
                primary, secondary, pending_req, req_keys, req_slots, ledger)
            pending_msg, matched = self._query_round(
                primary, secondary, pending_msg, msg_keys, msg_slots, out,
                ledger)
            collisions += ins_collisions
            if self._obs is not None and matched:
                # Each message claimed this round needed `rounds` probes of
                # the table before it found its partner.
                self._obs.observe("hash.probe_chain", float(rounds),
                                  count=matched)
            if matched == 0 and ins_collisions == 0 and pending_req.size == 0:
                # Nothing inserted, nothing matched: the remaining messages
                # have no partner in the table; they stay unexpected.
                break
            if matched == 0:
                stall += 1
                if stall > self.config.max_stall_rounds:
                    break
            else:
                stall = 0
        return self._finish(out, n_msg, n_req, ledger, rounds, collisions)

    # -- rounds --------------------------------------------------------------------

    @staticmethod
    def _live(primary: _Level, secondary: _Level) -> bool:
        return bool(primary.used.any() or secondary.used.any())

    def _insert_round(self, primary: _Level, secondary: _Level,
                      pending_req: np.ndarray, req_keys: np.ndarray,
                      req_slots: tuple, ledger: CostLedger,
                      ) -> tuple[np.ndarray, int]:
        """Phase 1: try to place every pending request; returns deferred set."""
        if pending_req.size == 0:
            return pending_req, 0
        phase = ledger.phase("insert", active_warps=self._active_warps(
            pending_req.size))
        keys = req_keys[pending_req]
        phase.add("gmem_load", self._warp_instr(pending_req.size))
        phase.add("alu", self._warp_instr(pending_req.size) * self._hash_alu)

        phase.add("sync", float(self._warps_per_cta()))
        lost_primary, placed_p = self._try_place(
            primary, pending_req, keys, salt=0,
            base_slots=_take(req_slots[0], pending_req))
        phase.add("atomic", self._warp_instr(pending_req.size)
                  * self.config.probe_depth)
        collisions = int(lost_primary.size)
        deferred = lost_primary
        if lost_primary.size:
            phase.add("alu",
                      self._warp_instr(lost_primary.size) * self._hash_alu)
            phase.add("atomic", self._warp_instr(lost_primary.size)
                      * self.config.probe_depth)
            deferred, placed_s = self._try_place(
                secondary, lost_primary, req_keys[lost_primary],
                salt=_SECONDARY_SALT,
                base_slots=_take(req_slots[1], lost_primary))
            collisions += int(deferred.size)
        return deferred, collisions

    def _try_place(self, level: _Level, req_indices: np.ndarray,
                   keys: np.ndarray, salt: int,
                   base_slots: np.ndarray | None = None,
                   ) -> tuple[np.ndarray, int]:
        """Atomic-CAS placement with linear probing.

        Each probe offset is one more CAS attempt on the next slot; one
        winner per empty slot per round.  Depth 1 is the paper's policy.
        ``base_slots`` optionally carries the precomputed offset-0 slot of
        every pending key (identical to hashing in place).

        The one-winner-per-slot election is a reverse scatter: writing
        pending positions slot-wise in reverse order leaves the *first*
        contender of every slot in the scratch table, exactly the winner
        a stable sort-by-slot would pick -- in O(n) instead of
        O(n log n), which is what un-flattens the 64k host-rate curve.
        Only scattered entries of the scratch table are ever read back,
        so it needs no initialization.
        """
        pending = req_indices
        pending_keys = keys
        pending_slots = base_slots
        placed = 0
        for offset in range(self.config.probe_depth):
            if pending.size == 0:
                break
            base = (self._slot_of(pending_keys, level, salt)
                    if pending_slots is None else pending_slots)
            slots = (base + offset) % level.keys.size
            positions = np.arange(pending.size, dtype=np.int64)
            winner = np.empty(level.keys.size, dtype=np.int64)
            winner[slots[::-1]] = positions[::-1]
            is_winner = winner[slots] == positions
            can_place = is_winner & ~level.used[slots]
            sel = np.nonzero(can_place)[0]
            placed += int(sel.size)
            level.keys[slots[sel]] = pending_keys[sel]
            level.req_idx[slots[sel]] = pending[sel]
            level.used[slots[sel]] = True
            pending = pending[~can_place]
            pending_keys = pending_keys[~can_place]
            if pending_slots is not None:
                pending_slots = pending_slots[~can_place]
        return pending, placed

    def _query_round(self, primary: _Level, secondary: _Level,
                     pending_msg: np.ndarray, msg_keys: np.ndarray,
                     msg_slots: tuple, out: np.ndarray, ledger: CostLedger,
                     ) -> tuple[np.ndarray, int]:
        """Phase 2: probe both levels for every pending message."""
        phase = ledger.phase("query", active_warps=self._active_warps(
            pending_msg.size))
        keys = msg_keys[pending_msg]
        phase.add("sync", float(self._warps_per_cta()))
        phase.add("alu", self._warp_instr(pending_msg.size) * self._hash_alu)
        phase.add("gmem_load", self._warp_instr(pending_msg.size)
                  * self.config.probe_depth)

        remaining, matched_p = self._try_claim(
            primary, pending_msg, keys, salt=0, out=out,
            base_slots=_take(msg_slots[0], pending_msg))
        matched = matched_p
        if remaining.size:
            phase.add("alu",
                      self._warp_instr(remaining.size) * self._hash_alu)
            phase.add("gmem_load", self._warp_instr(remaining.size)
                      * self.config.probe_depth)
            remaining, matched_s = self._try_claim(
                secondary, remaining, msg_keys[remaining],
                salt=_SECONDARY_SALT, out=out,
                base_slots=_take(msg_slots[1], remaining))
            matched += matched_s
        phase.add("atomic", self._warp_instr(matched))
        phase.add("gmem_store", self._warp_instr(matched))
        return remaining, matched

    def _try_claim(self, level: _Level, msg_indices: np.ndarray,
                   keys: np.ndarray, salt: int, out: np.ndarray,
                   base_slots: np.ndarray | None = None,
                   ) -> tuple[np.ndarray, int]:
        """Claim matching live entries, probing like the placement side."""
        pending = msg_indices
        pending_keys = keys
        pending_slots = base_slots
        matched = 0
        for offset in range(self.config.probe_depth):
            if pending.size == 0:
                break
            base = (self._slot_of(pending_keys, level, salt)
                    if pending_slots is None else pending_slots)
            slots = (base + offset) % level.keys.size
            hit = level.used[slots] & (level.keys[slots] == pending_keys)
            # Only hitting threads attempt the claim CAS, so the
            # one-per-slot winner is chosen among hits; non-matching
            # probes never contend.  Same reverse-scatter election as
            # placement: the first hit of every slot wins its CAS.
            hit_pos = np.nonzero(hit)[0]
            hit_slots = slots[hit_pos]
            claim = np.zeros(pending.size, dtype=bool)
            if hit_pos.size:
                winner = np.empty(level.keys.size, dtype=np.int64)
                winner[hit_slots[::-1]] = hit_pos[::-1]
                claim[hit_pos] = winner[hit_slots] == hit_pos
            sel = np.nonzero(claim)[0]
            matched += int(sel.size)
            out[level.req_idx[slots[sel]]] = pending[sel]
            level.used[slots[sel]] = False  # free for reinsertion
            pending = pending[~claim]
            pending_keys = pending_keys[~claim]
            if pending_slots is not None:
                pending_slots = pending_slots[~claim]
        return pending, matched

    def _slot_of(self, keys: np.ndarray, level: _Level, salt: int) -> np.ndarray:
        folded = fold64(keys)
        hashed = self._hash(folded ^ salt) if salt else self._hash(folded)
        return hashed % level.keys.size

    # -- pedantic warp-level path -------------------------------------------------------

    def match_pedantic(self, messages: EnvelopeBatch,
                       requests: EnvelopeBatch,
                       max_rounds: int = 10_000) -> MatchOutcome:
        """Execute the two-level table warp by warp on the SIMT memory
        simulator, with real atomic CAS for insert and claim.

        Demonstrates that the hash matcher is implementable with nothing
        beyond warp-wide loads and ``atomicCAS`` -- no dynamic memory, no
        ordering.  Round structure differs slightly from the vectorized
        fast path (progress is per warp, not per full pending set), so
        the *assignment* may differ; validity and completeness on
        matchable workloads are the invariants (see tests).

        Limited to ``probe_depth == 1`` (the paper's policy).
        """
        if self.config.probe_depth != 1:
            raise ValueError("pedantic hash path implements the paper's "
                             "depth-1 policy only")
        messages.assert_concrete("message queue")
        if requests.has_wildcards:
            raise ValueError("hash matching requires the no-wildcards "
                             "relaxation; requests contain wildcards")
        n_msg, n_req = len(messages), len(requests)
        ledger = CostLedger()
        ledger.phase("pedantic", active_warps=self._active_warps(
            max(n_msg, n_req, 1)))
        out = np.full(n_req, NO_MATCH, dtype=np.int64)
        self._workload_warps = max(1, math.ceil(max(n_msg, n_req)
                                                / WARP_SIZE))
        if n_msg == 0 or n_req == 0:
            return self._finish(out, n_msg, n_req, ledger, 0, 0)

        msg_keys = messages.packed() + 1   # 0 = empty sentinel
        req_keys = requests.packed() + 1
        P, S = self.config.sizes(max(n_msg, n_req))
        san = self._san
        if san is not None:
            prev_kernel = san.current_kernel
            san.current_kernel = "hash.match_pedantic"
        mem = GlobalMemory(2 * (P + S), ledger=ledger, sanitize=san)
        kp = mem.alloc("keys_primary", P)
        vp = mem.alloc("vals_primary", P)
        ks = mem.alloc("keys_secondary", S)
        vs = mem.alloc("vals_secondary", S)
        # cudaMemset of the empty sentinel before launch; uncharged and a
        # no-op on the zero-initialized simulated memory, but it defines
        # every slot a depth-1 probe may legally read.
        for region in ("keys_primary", "vals_primary",
                       "keys_secondary", "vals_secondary"):
            mem.memset(region, 0)

        def level_params(keys, salt, base_k, base_v, size):
            folded = fold64(keys - 1)
            hashed = self._hash(folded ^ salt) if salt else self._hash(folded)
            slots = hashed % size
            return base_k + slots, base_v + slots

        pending_req = np.arange(n_req, dtype=np.int64)
        pending_msg = np.arange(n_msg, dtype=np.int64)
        rounds = 0
        stall = 0
        while pending_msg.size and rounds < max_rounds:
            rounds += 1
            progress = 0
            # insert phase, one warp of requests at a time
            deferred_req = []
            for w0 in range(0, pending_req.size, WARP_SIZE):
                lanes = pending_req[w0:w0 + WARP_SIZE]
                keys = req_keys[lanes]
                placed = np.zeros(lanes.size, dtype=bool)
                for salt, bk, bv, size in ((0, kp, vp, P),
                                           (_SECONDARY_SALT, ks, vs, S)):
                    todo = ~placed
                    if not todo.any():
                        break
                    ka, va = level_params(keys, salt, bk, bv, size)
                    won = mem.atomic_cas(ka, np.zeros(lanes.size,
                                                      dtype=np.int64),
                                         keys, active=todo)
                    if won.any():
                        mem.store(va[won], lanes[won])
                    placed |= won
                deferred_req.extend(lanes[~placed])
                progress += int(placed.sum())
            pending_req = np.array(deferred_req, dtype=np.int64)
            # query phase, one warp of messages at a time
            deferred_msg = []
            for w0 in range(0, pending_msg.size, WARP_SIZE):
                lanes = pending_msg[w0:w0 + WARP_SIZE]
                keys = msg_keys[lanes]
                matched = np.zeros(lanes.size, dtype=bool)
                for salt, bk, bv, size in ((0, kp, vp, P),
                                           (_SECONDARY_SALT, ks, vs, S)):
                    todo = ~matched
                    if not todo.any():
                        break
                    ka, va = level_params(keys, salt, bk, bv, size)
                    stored = mem.load(ka)
                    hit = todo & (stored == keys)
                    if not hit.any():
                        continue
                    req_idx = mem.load(va)
                    claimed = mem.atomic_cas(ka, keys,
                                             np.zeros(lanes.size,
                                                      dtype=np.int64),
                                             active=hit)
                    sel = np.nonzero(claimed)[0]
                    out[req_idx[sel]] = lanes[sel]
                    matched |= claimed
                deferred_msg.extend(lanes[~matched])
                progress += int(matched.sum())
            pending_msg = np.array(deferred_msg, dtype=np.int64)
            if progress == 0:
                stall += 1
                if stall > self.config.max_stall_rounds:
                    break
            else:
                stall = 0
        if san is not None:
            san.finalize()
            san.current_kernel = prev_kernel
        return self._finish(out, n_msg, n_req, ledger, rounds, 0)

    # -- cost plumbing ---------------------------------------------------------------

    @staticmethod
    def _warp_instr(n_elements: int) -> float:
        """Warp instructions for an elementwise step over ``n_elements``."""
        return float(math.ceil(n_elements / WARP_SIZE))

    def _active_warps(self, n_elements: int) -> int:
        """Warps of one engine CTA concurrently working a phase."""
        needed = max(1, math.ceil(n_elements / WARP_SIZE))
        return max(1, min(needed, 1024 // WARP_SIZE))

    def _warps_per_cta(self) -> int:
        """CTA width for barrier accounting: each insert->query boundary is
        a CTA-wide barrier whose cost grows with the warps it drains."""
        return max(1, min(self._workload_warps, 1024 // WARP_SIZE))

    def _resources(self) -> KernelResources:
        threads = self._warps_per_cta() * WARP_SIZE
        return KernelResources(threads_per_cta=threads,
                               shared_mem_per_cta=0, regs_per_thread=28)

    def _finish(self, out: np.ndarray, n_msg: int, n_req: int,
                ledger: CostLedger, rounds: int, collisions: int,
                ) -> MatchOutcome:
        from ..simt.occupancy import occupancy
        occ = occupancy(self.spec, self._resources())
        resident = max(1, min(self.n_ctas, occ.max_resident_ctas))
        waves = math.ceil(self.n_ctas / resident)
        contention = 1.0 + self.spec.cta_contention * (resident - 1)
        timing = TimingModel(self.spec, family="hash").evaluate(ledger)
        cycles = timing.cycles * waves * contention
        if self._obs is not None:
            matched = int(np.count_nonzero(out != NO_MATCH))
            self._obs.count("hash.rounds", float(rounds))
            self._obs.count("hash.insert_collisions", float(collisions))
            self._obs.count("hash.matches", float(matched))
            self._obs.match_span(
                "hash.match", cycles / self.spec.clock_hz,
                timing.per_phase_cycles, self.spec.clock_hz,
                n_messages=n_msg, n_requests=n_req, matched=matched,
                rounds=rounds, collisions=collisions)
        return MatchOutcome(
            request_to_message=out, n_messages=n_msg, n_requests=n_req,
            seconds=cycles / self.spec.clock_hz, cycles=cycles,
            iterations=max(1, rounds), replicas=self.n_ctas,
            meta={"phase_cycles": timing.per_phase_cycles,
                  "device": self.spec.name, "n_ctas": self.n_ctas,
                  "waves": waves, "resident_ctas": resident,
                  "contention": contention, "collisions": collisions,
                  "hash": self.config.hash_name})
