"""Design Forward suite models: AMG, MiniDFT, MiniFE, PARTISN, SNAP.

Each model reproduces the Table-I-relevant behaviour of its mini-app:

=========  =======  =====  ========  =============================
app        src-wc   comms  peers     tags
=========  =======  =====  ========  =============================
AMG        no       1      ~79       < 4
MiniDFT    **yes**  7      group     thousands
MiniFE     **yes**  1      ~6        < 4
PARTISN    no       1      2-4       thousands (wavefront stages)
SNAP       no       1      2-4       tens
=========  =======  =====  ========  =============================
"""

from __future__ import annotations

import numpy as np

from .base import AppModel, TraceBuilder, grid_neighbors, random_neighbors

__all__ = ["AMG", "MiniDFT", "MiniFE", "PARTISN", "SNAP"]


class AMG(AppModel):
    """Algebraic multigrid V-cycles.

    Communication grows with grid coarsening: fine levels talk to the
    6-face halo, coarse levels to geometrically distant ranks, so the
    *union* of peers across the cycle is large (~79 in the paper's
    trace) while the tag space stays tiny.
    """

    name = "df_amg"
    full_name = "Design Forward AMG"
    suite = "designforward"
    description = "V-cycle halo exchanges with level-growing neighbor sets"
    default_ranks = 128
    default_steps = 2

    #: random-graph degree parameter per level, fine -> coarse (after
    #: symmetrization the union of peers lands near the paper's ~79 at
    #: 128 ranks)
    LEVEL_DEGREES = (4, 6, 10, 15, 22)

    def build(self, b: TraceBuilder, n_ranks: int, steps: int,
              rng: np.random.Generator) -> None:
        level_nbrs = [random_neighbors(n_ranks, k, rng)
                      for k in self.LEVEL_DEGREES]
        # fine level is the true grid halo, not random
        level_nbrs[0] = grid_neighbors(n_ranks, ndim=3, corners=False)
        for _step in range(steps):
            # down-sweep then up-sweep of the V-cycle
            for level in list(range(len(level_nbrs))) \
                    + list(reversed(range(len(level_nbrs) - 1))):
                pairs = [(s, d) for s in range(n_ranks)
                         for d in level_nbrs[level][s]]
                b.exchange(pairs, tag_of=lambda s, d, k, lv=level: lv % 3,
                           prepost_fraction=0.6, rng=rng)
            b.barrier(n_ranks)


class MiniDFT(AppModel):
    """Plane-wave DFT: dense transposes inside band groups.

    Seven communicators partition the ranks (band / plane / pool groups);
    traffic is all-to-all within a group with a fresh tag per transpose
    slice, so the tag space reaches thousands.  Some receives use
    MPI_ANY_SOURCE (one of only two analyzed apps that do).
    """

    name = "df_minidft"
    full_name = "Design Forward MiniDFT"
    suite = "designforward"
    description = "grouped all-to-all transposes, per-slice tags"
    uses_src_wildcard = True
    n_communicators = 7
    default_ranks = 56
    default_steps = 8

    GROUP_SIZE = 8

    def build(self, b: TraceBuilder, n_ranks: int, steps: int,
              rng: np.random.Generator) -> None:
        groups = [list(range(g, min(g + self.GROUP_SIZE, n_ranks)))
                  for g in range(0, n_ranks, self.GROUP_SIZE)]
        tag_counter = 0
        for step in range(steps):
            for gi, group in enumerate(groups):
                comm = gi % self.n_communicators
                pairs = [(s, d) for s in group for d in group if s != d]
                base = tag_counter
                b.exchange(
                    pairs,
                    tag_of=lambda s, d, k, _b=base: (_b + s * 7 + d) % 60000,
                    comm_of=lambda s, d, k, c=comm: c,
                    prepost_fraction=0.5,
                    wildcard_src_fraction=0.15,
                    rng=rng)
                tag_counter += len(group) * 8
            b.barrier(n_ranks)


class MiniFE(AppModel):
    """Unstructured implicit FE (CG solve): 6-face halo, one dot-product
    gather with MPI_ANY_SOURCE per iteration, fewer than 4 tags."""

    name = "df_minife"
    full_name = "Design Forward MiniFE"
    suite = "designforward"
    description = "CG halo exchange + wildcard reduction gathers"
    uses_src_wildcard = True
    default_ranks = 64
    default_steps = 12

    def build(self, b: TraceBuilder, n_ranks: int, steps: int,
              rng: np.random.Generator) -> None:
        nbrs = grid_neighbors(n_ranks, ndim=3, corners=False)
        for _step in range(steps):
            halo = [(s, d) for s in range(n_ranks) for d in nbrs[s]]
            b.exchange(halo, tag_of=lambda s, d, k: 0,
                       prepost_fraction=0.75, rng=rng)
            # convergence check: contributions gathered at rank 0 with
            # ANY_SOURCE, but only every few iterations so rank 0 does
            # not dominate the traffic distribution
            if _step % 4 == 0:
                for s in range(1, n_ranks):
                    b.send(s, 0, tag=1)
                for _ in range(1, n_ranks):
                    b.post(0, src=-1, tag=1)
            b.barrier(n_ranks)


class PARTISN(AppModel):
    """S_N transport sweep (KBA): 2-D pipeline with a distinct tag per
    (angle octant, z-plane) wavefront stage -> thousands of tags.
    Downstream ranks see the wavefront arrive before they post."""

    name = "df_partisn"
    full_name = "Design Forward PARTISN"
    suite = "designforward"
    description = "KBA sweep pipeline, per-stage tags, late posting"
    default_ranks = 64
    default_steps = 4

    OCTANTS = 8
    PLANES = 32

    def build(self, b: TraceBuilder, n_ranks: int, steps: int,
              rng: np.random.Generator) -> None:
        nbrs = grid_neighbors(n_ranks, ndim=2, corners=False)
        for step in range(steps):
            for octant in range(self.OCTANTS):
                for plane in range(self.PLANES):
                    tag = ((step * self.OCTANTS + octant) * self.PLANES
                           + plane) % 60000
                    pairs = [(s, d) for s in range(n_ranks)
                             for d in nbrs[s][:2]]
                    b.exchange(pairs, tag_of=lambda s, d, k, t=tag: t,
                               prepost_fraction=0.3, rng=rng)
            b.barrier(n_ranks)


class SNAP(AppModel):
    """SN Application Proxy: PARTISN-like sweep but with tags reused per
    octant (tens of tags, not thousands)."""

    name = "df_snap"
    full_name = "Design Forward SNAP"
    suite = "designforward"
    description = "KBA sweep with octant-level tag reuse"
    default_ranks = 64
    default_steps = 6

    OCTANTS = 8

    def build(self, b: TraceBuilder, n_ranks: int, steps: int,
              rng: np.random.Generator) -> None:
        nbrs = grid_neighbors(n_ranks, ndim=2, corners=False)
        for _step in range(steps):
            for octant in range(self.OCTANTS):
                pairs = [(s, d) for s in range(n_ranks)
                         for d in nbrs[s][:2]]
                b.exchange(pairs, tag_of=lambda s, d, k, o=octant: o,
                           msgs_per_pair=4, prepost_fraction=0.5, rng=rng)
            b.barrier(n_ranks)
