"""Columnar-vs-scalar differential: the packed data plane changes speed,
never outcomes.

The columnar data plane threads packed NumPy columns (with a cached
packed64 key column) from the loadgen through batching to the matcher.
The scalar :class:`~repro.core.envelope.Envelope` path -- round-tripping
every batch through Python objects, which drops every cache and every
view relationship -- must produce **byte-identical** serve runs: same
report, same tickets, same shed counts, same retune events, same match
assignments.  Anything less means the cache is load-bearing, which
would break the view/adapter contract.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.envelope import EnvelopeBatch
from repro.serve import (AdmissionPolicy, BatchPolicy, MatchingService,
                         tenant_stream_from_trace, workload_from_app)
from repro.traces import generate_trace


def scalarize(batch: EnvelopeBatch) -> EnvelopeBatch:
    """Round-trip through scalar envelopes: no caches, no views."""
    out = EnvelopeBatch.from_envelopes(list(batch))
    assert out._packed is None
    return out


def run_service(workload, *, scalar: bool, seed: int = 11,
                admission=None, batching=None):
    svc = MatchingService(n_shards=2, seed=seed, promote_after=2,
                          profile_window=4, admission=admission,
                          batching=batching)
    for spec in workload.tenants:
        svc.register(spec)
    for a in workload.arrivals:
        messages, requests = a.messages, a.requests
        if scalar:
            messages, requests = scalarize(messages), scalarize(requests)
        svc.submit(a.tenant, messages, requests, at_vt=a.vt)
    svc.drain()
    return svc


@pytest.mark.parametrize("app,ordering", [
    ("df_amg", False),          # dup-heavy, reaches the hash path
    ("df_minife", True),        # wildcard user, stays on matrix
])
def test_columnar_and_scalar_runs_are_byte_identical(app, ordering):
    workload = workload_from_app(app, steps=3, n_ranks=8, seed=5,
                                 chunk_envelopes=32,
                                 ordering_required=ordering)
    col = run_service(workload, scalar=False)
    sca = run_service(workload, scalar=True)

    # the deterministic JSON report is the end-to-end fingerprint
    assert json.dumps(col.report(), sort_keys=True) == \
        json.dumps(sca.report(), sort_keys=True)
    # every admission answer
    assert [(t.status, t.tenant, t.seq, t.retry_after_vt, t.reason)
            for t in col.tickets] == \
        [(t.status, t.tenant, t.seq, t.retry_after_vt, t.reason)
         for t in sca.tickets]
    assert col.shed_counts == sca.shed_counts
    # every retune decision, in order
    assert [(e.from_label, e.to_label, e.direction, e.vt)
            for e in col.retune_events] == \
        [(e.from_label, e.to_label, e.direction, e.vt)
         for e in sca.retune_events]
    # every flush's exact match assignment
    assert len(col.results) == len(sca.results)
    for rc, rs in zip(col.results, sca.results):
        assert rc.tenant == rs.tenant and rc.flush_seq == rs.flush_seq
        assert rc.engine_label == rs.engine_label
        assert np.array_equal(rc.outcome.request_to_message,
                              rs.outcome.request_to_message)
        assert rc.covered_seqs == rs.covered_seqs
        assert rc.latencies_vt == rs.latencies_vt


def test_differential_under_shedding():
    """Admission decisions (and shed tickets) are cache-independent."""
    workload = workload_from_app("df_amg", steps=3, n_ranks=8, seed=5,
                                 chunk_envelopes=32,
                                 ordering_required=False)
    # a slow flush cadence against a tight inbox so admission actually bites
    tight = AdmissionPolicy(capacity=128, soft_fraction=0.5)
    small = BatchPolicy(max_envelopes=4096, max_delay_vt=0.05)
    col = run_service(workload, scalar=False, admission=tight,
                      batching=small)
    sca = run_service(workload, scalar=True, admission=tight,
                      batching=small)
    assert col.shed_counts == sca.shed_counts
    assert sum(col.shed_counts.values()) > 0   # the policy actually bit
    assert [t.status for t in col.tickets] == [t.status for t in sca.tickets]
    assert json.dumps(col.report(), sort_keys=True) == \
        json.dumps(sca.report(), sort_keys=True)


def test_report_quantiles_match_obs_histogram():
    """The service report and a live metrics snapshot of the same run
    quote identical latency quantiles: ``report()`` routes through the
    same bucketed estimator the ``serve.latency_us`` histogram uses."""
    from repro.obs import Observability

    workload = workload_from_app("df_amg", steps=3, n_ranks=8, seed=5,
                                 chunk_envelopes=32,
                                 ordering_required=False)
    obs = Observability.enabled()
    svc = MatchingService(n_shards=2, seed=11, promote_after=2,
                          profile_window=4, obs=obs)
    for spec in workload.tenants:
        svc.register(spec)
    for a in workload.arrivals:
        svc.submit(a.tenant, a.messages, a.requests, at_vt=a.vt)
    svc.drain()
    report = svc.report()
    hist = obs.metrics.histogram("serve.latency_us")
    assert hist.count == len(svc.latencies_vt) > 0
    for q, key in ((50, "latency_p50_vt"), (99, "latency_p99_vt")):
        assert report[key] == pytest.approx(hist.percentile(q) / 1e6)


def test_loadgen_chunks_carry_the_packed_column():
    """The zero-repacking contract: message chunks leave the loadgen with
    their packed64 key column already computed, and it is exactly what
    ``packed()`` would compute."""
    trace = generate_trace("df_amg", n_ranks=8, steps=2, seed=3)
    chunks = tenant_stream_from_trace(trace, rank=0, chunk_envelopes=16)
    assert chunks
    for messages, requests in chunks:
        if len(messages):
            assert messages._packed is not None
            recomputed = ((messages.comm << 48) | (messages.src << 16)
                          | messages.tag)
            assert np.array_equal(messages.packed(), recomputed)
        # the request side may hold wildcards and is never pre-packed
        assert requests._packed is None
