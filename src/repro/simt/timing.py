"""Cost accounting and the throughput timing model.

The functional simulator executes the paper's algorithms lane-accurately;
this module turns the *instruction and memory-transaction counts* of that
execution into predicted cycles and wall time on a given
:class:`~repro.simt.gpu.GPUSpec`.

Model
-----
Execution is split into **phases** (e.g. the matrix matcher's *scan* and
*reduce*).  Each phase knows how many warps were concurrently active.  For
a phase ``p`` the model charges:

``issue(p)``
    total scheduler occupancy: ``sum(count_k * issue_cost_k)`` divided by
    the number of schedulers that can be kept busy,
    ``min(schedulers_per_sm, active_warps)``.

``latency(p)``
    total exposed memory latency: each memory instruction stalls its warp
    for the device latency, but stalls of different warps overlap, so the
    total is divided by ``active_warps``.  This is the classic
    latency-hiding throughput argument: a single warp (the sequential
    reduce phase!) eats every stall, 32 warps hide almost all of them.

``cycles(p) = max(issue(p), latency(p)) + sync_overhead(p)``

Phases may declare an *overlap group*: phases in the same group run
concurrently (software pipelining of scan and reduce, Section V-A) and the
group costs ``max`` of its members rather than their sum.

The final per-device, per-family ``calibration`` multiplier anchors
absolute rates to the paper's measured hardware numbers; all *relative*
effects (queue length, queue count, CTA serialization, match fraction)
emerge from the counts.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from .gpu import GPUSpec

__all__ = ["PhaseCost", "CostLedger", "TimingModel", "TimingBreakdown"]

#: Latency class of each instruction kind; kinds not listed expose no
#: additional latency beyond their issue cost.
_LATENCY_KIND = {
    "smem_load": "smem",
    "smem_store": "smem_store",
    "gmem_load": "gmem",
    "gmem_store": "gmem_store",
    "atomic": "atomic",
}

#: Cycles a CTA-wide barrier costs on top of issue (drain + reconverge).
SYNC_OVERHEAD_CYCLES = 30.0


@dataclass
class PhaseCost:
    """Instruction counts for one execution phase.

    Attributes
    ----------
    name:
        Phase label (appears in timing breakdowns).
    active_warps:
        Warps concurrently resident and runnable during the phase; this is
        the latency-hiding pool.
    counts:
        Mapping instruction-kind -> number of *warp* instructions issued
        (already aggregated across all warps participating in the phase).
    overlap_group:
        Phases sharing a non-None group execute concurrently and are
        charged ``max`` instead of ``sum``.
    """

    name: str
    active_warps: int = 1
    counts: dict = field(default_factory=lambda: defaultdict(float))
    overlap_group: str | None = None

    def add(self, kind: str, count: float = 1.0) -> None:
        """Record ``count`` warp instructions of ``kind``."""
        self.counts[kind] += count

    def merge(self, other: "PhaseCost") -> None:
        """Fold another phase's counts into this one (same name/warps)."""
        for kind, count in other.counts.items():
            self.counts[kind] += count

    def total(self, kind: str) -> float:
        """Count for one kind (0 when absent)."""
        return self.counts.get(kind, 0.0)


class CostLedger:
    """Accumulates :class:`PhaseCost` records during a simulated kernel.

    A ledger always has a *current* phase; :meth:`issue` charges it.  Use
    :meth:`phase` to open a new phase (phases with the same name and warp
    count are merged so loops can re-open phases cheaply).
    """

    def __init__(self) -> None:
        self.phases: list[PhaseCost] = []
        self._current: PhaseCost | None = None
        self.phase("default", active_warps=1)

    def phase(self, name: str, active_warps: int = 1,
              overlap_group: str | None = None) -> PhaseCost:
        """Open (or re-open) a phase and make it current."""
        if active_warps < 1:
            raise ValueError("active_warps must be >= 1")
        for existing in self.phases:
            if (existing.name == name and existing.active_warps == active_warps
                    and existing.overlap_group == overlap_group):
                self._current = existing
                return existing
        ph = PhaseCost(name=name, active_warps=active_warps,
                       overlap_group=overlap_group)
        self.phases.append(ph)
        self._current = ph
        return ph

    @property
    def current(self) -> PhaseCost:
        """The phase currently receiving issues."""
        assert self._current is not None
        return self._current

    def issue(self, kind: str, count: float = 1.0) -> None:
        """Charge ``count`` warp instructions of ``kind`` to the current phase."""
        self.current.add(kind, count)

    def total(self, kind: str) -> float:
        """Total count of ``kind`` across all phases."""
        return sum(p.total(kind) for p in self.phases)

    def grand_total(self) -> float:
        """Total warp instructions across all phases and kinds."""
        return sum(sum(p.counts.values()) for p in self.phases)

    def nonempty_phases(self) -> list[PhaseCost]:
        """Phases that actually issued something."""
        return [p for p in self.phases if p.counts]


@dataclass
class TimingBreakdown:
    """Result of evaluating a ledger on a device."""

    cycles: float
    seconds: float
    per_phase_cycles: dict
    spec_name: str

    def rate(self, items: int) -> float:
        """Items per second given this breakdown's wall time."""
        if self.seconds <= 0:
            raise ValueError("non-positive duration")
        return items / self.seconds


class TimingModel:
    """Evaluates a :class:`CostLedger` on a :class:`GPUSpec`.

    Parameters
    ----------
    spec:
        Target device.
    serialization:
        Multiplier for CTA serialization: when more CTAs are launched than
        the SM can co-schedule, the caller computes the factor via
        :mod:`repro.simt.occupancy` and passes it here (default 1.0).
    family:
        Algorithm family selecting the device's calibration anchor
        ("default" for the matrix/list kernels, "hash" for the
        hash-table kernel).
    """

    def __init__(self, spec: GPUSpec, serialization: float = 1.0,
                 family: str = "default") -> None:
        if serialization < 1.0:
            raise ValueError("serialization factor cannot be < 1")
        self.spec = spec
        self.serialization = serialization
        self.family = family

    # -- per-phase model -----------------------------------------------------

    def _latency_of(self, kind: str) -> float:
        spec = self.spec
        cls = _LATENCY_KIND.get(kind)
        if cls == "smem":
            return spec.smem_latency
        if cls == "smem_store":
            return spec.smem_latency * 0.5  # stores retire without load-use stall
        if cls == "gmem":
            return spec.gmem_latency
        if cls == "gmem_store":
            return spec.gmem_latency * 0.4  # write-back, partially fire-and-forget
        if cls == "atomic":
            return spec.gmem_latency * 1.5
        return 0.0

    def phase_cycles(self, phase: PhaseCost) -> float:
        """Predicted cycles for one phase (before calibration scaling)."""
        spec = self.spec
        issue_total = sum(count * spec.issue_cost(kind)
                          for kind, count in phase.counts.items())
        issue_cycles = issue_total / max(1, min(spec.schedulers_per_sm,
                                                phase.active_warps))
        latency_total = sum(count * self._latency_of(kind)
                            for kind, count in phase.counts.items())
        latency_cycles = latency_total / max(1, phase.active_warps)
        sync_cycles = phase.total("sync") * SYNC_OVERHEAD_CYCLES
        return max(issue_cycles, latency_cycles) + sync_cycles

    # -- ledger evaluation ----------------------------------------------------

    def evaluate(self, ledger: CostLedger) -> TimingBreakdown:
        """Total predicted cycles / seconds for a ledger.

        Phases in the same overlap group cost the max of the group's
        members; ungrouped phases are summed.
        """
        per_phase: dict[str, float] = {}
        groups: dict[str, float] = defaultdict(float)
        total = 0.0
        for phase in ledger.nonempty_phases():
            cycles = self.phase_cycles(phase)
            per_phase[phase.name] = per_phase.get(phase.name, 0.0) + cycles
            if phase.overlap_group is not None:
                groups[phase.overlap_group] = max(groups[phase.overlap_group],
                                                  cycles)
            else:
                total += cycles
        total += sum(groups.values())
        total *= self.serialization * self.spec.calibration_for(self.family)
        seconds = total / self.spec.clock_hz
        return TimingBreakdown(cycles=total, seconds=seconds,
                               per_phase_cycles=per_phase,
                               spec_name=self.spec.name)
