"""Warp primitive tests: bit intrinsics, ballots, shuffles, reductions."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simt.timing import CostLedger
from repro.simt.warp import (FULL_MASK, WARP_SIZE, Warp, WarpDivergenceError,
                             brev32, clz32, ffs32, lane_ids, lanemask_lt,
                             pack_ballot, popc32, unpack_ballot)

u32 = st.integers(min_value=0, max_value=FULL_MASK)


class TestBitIntrinsics:
    def test_ffs_zero(self):
        assert ffs32(0) == 0

    def test_ffs_one_based(self):
        assert ffs32(1) == 1
        assert ffs32(0b1000) == 4
        assert ffs32(1 << 31) == 32

    @given(u32)
    def test_ffs_matches_definition(self, x):
        if x == 0:
            assert ffs32(x) == 0
        else:
            pos = ffs32(x)
            assert (x >> (pos - 1)) & 1
            assert x & ((1 << (pos - 1)) - 1) == 0

    def test_clz(self):
        assert clz32(0) == 32
        assert clz32(1) == 31
        assert clz32(FULL_MASK) == 0

    @given(u32)
    def test_clz_popc_brev_consistency(self, x):
        # brev maps leading zeros to trailing zeros
        assert popc32(brev32(x)) == popc32(x)
        if x:
            assert clz32(x) == ffs32(brev32(x)) - 1

    @given(u32)
    def test_brev_involution(self, x):
        assert brev32(brev32(x)) == x

    def test_popc(self):
        assert popc32(0) == 0
        assert popc32(FULL_MASK) == 32
        assert popc32(0b1011) == 3

    def test_lanemask_lt(self):
        assert lanemask_lt(0) == 0
        assert lanemask_lt(5) == 0b11111
        with pytest.raises(ValueError):
            lanemask_lt(32)


class TestBallotPacking:
    def test_roundtrip_full(self):
        bits = np.zeros(32, dtype=bool)
        bits[[0, 3, 31]] = True
        word = pack_ballot(bits)
        assert word == 1 | (1 << 3) | (1 << 31)
        assert np.array_equal(unpack_ballot(word), bits)

    @given(st.lists(st.booleans(), min_size=32, max_size=32))
    def test_roundtrip_property(self, bits):
        arr = np.array(bits, dtype=bool)
        assert np.array_equal(unpack_ballot(pack_ballot(arr)), arr)

    def test_short_warp(self):
        assert pack_ballot(np.array([True, False, True])) == 0b101

    def test_rejects_oversized(self):
        with pytest.raises(ValueError):
            pack_ballot(np.ones(33, dtype=bool))


class TestWarp:
    def test_ballot_masks_inactive_lanes(self):
        w = Warp()
        w.active[:16] = False
        vote = w.ballot(np.ones(WARP_SIZE, dtype=bool))
        assert vote == (FULL_MASK >> 16) << 16

    def test_ballot_requires_full_predicate(self):
        with pytest.raises(ValueError):
            Warp().ballot(np.ones(5, dtype=bool))

    def test_any_all(self):
        w = Warp()
        pred = np.zeros(WARP_SIZE, dtype=bool)
        assert not w.any(pred)
        assert not w.all(pred)
        pred[7] = True
        assert w.any(pred)
        pred[:] = True
        assert w.all(pred)

    def test_all_ignores_inactive(self):
        w = Warp()
        pred = np.ones(WARP_SIZE, dtype=bool)
        pred[3] = False
        w.active[3] = False
        assert w.all(pred)

    def test_shfl_broadcast(self):
        w = Warp()
        vals = np.arange(WARP_SIZE)
        assert np.all(w.shfl(vals, 7) == 7)

    def test_shfl_from_inactive_raises(self):
        w = Warp()
        w.active[7] = False
        with pytest.raises(WarpDivergenceError):
            w.shfl(np.arange(WARP_SIZE), 7)

    def test_shfl_up_down(self):
        w = Warp()
        vals = np.arange(WARP_SIZE)
        up = w.shfl_up(vals, 1)
        assert up[0] == 0 and np.all(up[1:] == vals[:-1])
        down = w.shfl_down(vals, 1)
        assert down[-1] == 31 and np.all(down[:-1] == vals[1:])

    def test_shfl_xor_butterfly(self):
        w = Warp()
        vals = np.arange(WARP_SIZE)
        assert np.all(w.shfl_xor(vals, 1) == (vals ^ 1))

    def test_reduce_sum(self):
        w = Warp()
        assert w.reduce_sum(np.ones(WARP_SIZE, dtype=np.int64)) == WARP_SIZE
        assert w.reduce_sum(np.arange(WARP_SIZE)) == sum(range(WARP_SIZE))

    def test_reduce_sum_respects_mask(self):
        w = Warp()
        w.active[16:] = False
        assert w.reduce_sum(np.ones(WARP_SIZE, dtype=np.int64)) == 16

    @given(st.lists(st.integers(min_value=-100, max_value=100),
                    min_size=32, max_size=32))
    @settings(max_examples=25)
    def test_scan_property(self, values):
        w = Warp()
        vals = np.array(values, dtype=np.int64)
        inc = w.inclusive_scan(vals)
        assert np.array_equal(inc, np.cumsum(vals))
        exc = w.exclusive_scan(vals)
        assert np.array_equal(exc, np.cumsum(vals) - vals)

    def test_push_pop_mask(self):
        w = Warp()
        saved = w.push_mask(lane_ids() < 8)
        assert w.active.sum() == 8
        w.pop_mask(saved)
        assert w.active.all()

    def test_mask_depth_tracks_push_pop_nesting(self):
        w = Warp()
        assert w.mask_depth == 0
        outer = w.push_mask(lane_ids() < 16)
        inner = w.push_mask(lane_ids() < 8)
        assert w.mask_depth == 2
        w.pop_mask(inner)
        assert w.mask_depth == 1
        w.pop_mask(outer)
        assert w.mask_depth == 0

    def test_ledger_records_issues(self):
        led = CostLedger()
        w = Warp(ledger=led)
        w.ballot(np.ones(WARP_SIZE, dtype=bool))
        w.shfl_down(np.arange(WARP_SIZE), 1)
        w.any(np.ones(WARP_SIZE, dtype=bool))
        assert led.total("ballot") == 1
        assert led.total("shfl") == 1
        assert led.total("vote") == 1


class TestShuffleDivergence:
    """All four shuffle variants reject inactive-source reads alike
    (reading an inactive lane is UB in hardware), and the built-in
    reductions stay legal under partial masks by reconverging."""

    def test_shfl_up_from_inactive_raises(self):
        w = Warp()
        w.active[4] = False   # lane 5 would read lane 4
        with pytest.raises(WarpDivergenceError):
            w.shfl_up(np.arange(WARP_SIZE), 1)

    def test_shfl_down_from_inactive_raises(self):
        w = Warp()
        w.active[5] = False   # lane 4 would read lane 5
        with pytest.raises(WarpDivergenceError):
            w.shfl_down(np.arange(WARP_SIZE), 1)

    def test_shfl_xor_from_inactive_raises(self):
        w = Warp()
        w.active[1] = False   # lane 0 would read lane 0^1 = 1
        with pytest.raises(WarpDivergenceError):
            w.shfl_xor(np.arange(WARP_SIZE), 1)

    def test_shfl_from_inactive_raises_vector_src(self):
        w = Warp()
        w.active[7] = False
        src = np.full(WARP_SIZE, 7)
        with pytest.raises(WarpDivergenceError):
            w.shfl(np.arange(WARP_SIZE), src)

    def test_clamped_lanes_reading_self_are_legal(self):
        # Window clamping maps out-of-range sources to the reader itself;
        # an active reader reading itself is always defined, even when
        # other (unread) lanes are inactive.
        w = Warp()
        w.active[16:] = False
        vals = np.arange(WARP_SIZE)
        # shfl_up(16): active lanes 0..15 would read lanes -16..-1, which
        # clamp to the readers themselves -- all active, so legal.
        up = w.shfl_up(vals, 16)
        assert np.array_equal(up[:16], vals[:16])

    def test_shfl_down_into_inactive_upper_half_raises(self):
        w = Warp()
        w.active[16:] = False
        with pytest.raises(WarpDivergenceError):
            w.shfl_down(np.arange(WARP_SIZE), 16)

    def test_reduce_sum_still_respects_mask(self):
        # the canonical masked reduce: zero inactive contributions, then
        # run the tree reconverged -- must not raise and must exclude
        # inactive lanes from the total
        w = Warp()
        w.active[16:] = False
        assert w.reduce_sum(np.ones(WARP_SIZE, dtype=np.int64)) == 16
        assert w.active.sum() == 16   # mask restored after the tree

    def test_inclusive_scan_still_respects_mask(self):
        w = Warp()
        w.active[16:] = False
        vals = np.ones(WARP_SIZE, dtype=np.int64)
        inc = w.inclusive_scan(vals)
        assert inc[15] == 16
        assert inc[31] == 16   # inactive lanes contributed zero
        assert w.active.sum() == 16

    def test_reduction_ledger_counts_unchanged_by_mask(self):
        led_full = CostLedger()
        Warp(ledger=led_full).reduce_sum(np.ones(WARP_SIZE, dtype=np.int64))
        led_masked = CostLedger()
        wm = Warp(ledger=led_masked)
        wm.active[16:] = False
        wm.reduce_sum(np.ones(WARP_SIZE, dtype=np.int64))
        assert led_full.total("shfl") == led_masked.total("shfl")
        assert led_full.total("alu") == led_masked.total("alu")

    def test_invalid_warp_size(self):
        with pytest.raises(ValueError):
            Warp(warp_size=0)
        with pytest.raises(ValueError):
            Warp(warp_size=64)
