"""Unit tests for the SIMT sanitizer: checkers, report, fixtures."""

from __future__ import annotations

import numpy as np
import pytest

from repro.obs import Observability
from repro.simt.cta import CTA
from repro.simt.gpu import PASCAL_GTX1080
from repro.simt.kernel import KernelLaunch
from repro.simt.memory import GlobalMemory, SharedMemory
from repro.simt.sanitize import CHECKERS, Sanitizer
from repro.simt.sanitize_fixtures import EXPECTED_CODES, FIXTURES, run_fixture
from repro.simt.sanitize_report import (SEVERITY_ERROR, Finding,
                                        SanitizerError, SanitizerReport)
from repro.simt.sm import SMScheduler, WarpStream
from repro.simt.timing import CostLedger


def _finding(**kw) -> Finding:
    base = dict(checker="racecheck", code="write-write",
                severity=SEVERITY_ERROR, message="m")
    base.update(kw)
    return Finding(**base)


class TestSanitizerReport:
    def test_empty_report_is_clean(self):
        rep = SanitizerReport()
        assert rep.clean
        assert rep.counts() == {}
        assert "clean" in rep.summary()
        rep.assert_clean()   # no raise

    def test_add_and_query(self):
        rep = SanitizerReport()
        assert rep.add(_finding(address=3))
        assert not rep.clean
        assert rep.by_checker("racecheck")
        assert rep.counts() == {"racecheck": 1}
        assert rep.errors()

    def test_dedup_on_identity(self):
        rep = SanitizerReport()
        assert rep.add(_finding(address=3, warp_id=1, epoch=0))
        assert not rep.add(_finding(address=3, warp_id=1, epoch=0))
        # different warp / epoch / address are distinct findings
        assert rep.add(_finding(address=3, warp_id=2, epoch=0))
        assert rep.add(_finding(address=3, warp_id=1, epoch=1))
        assert rep.add(_finding(address=4, warp_id=1, epoch=0))
        assert rep.counts() == {"racecheck": 5}   # dedup still counted
        assert len(rep.findings) == 4

    def test_per_checker_cap_counts_suppressed(self):
        rep = SanitizerReport(max_per_checker=3)
        for a in range(10):
            rep.add(_finding(address=a))
        assert len(rep.findings) == 3
        assert rep.counts() == {"racecheck": 10}
        assert not rep.clean
        assert "suppressed" in rep.summary()

    def test_assert_clean_raises_with_report(self):
        rep = SanitizerReport()
        rep.add(_finding())
        with pytest.raises(SanitizerError) as exc:
            rep.assert_clean()
        assert exc.value.report is rep
        assert "racecheck" in str(exc.value)

    def test_summary_mentions_location(self):
        rep = SanitizerReport()
        rep.add(_finding(address=7, kernel="k", region="r", epoch=2,
                         warp_id=5))
        s = rep.summary()
        for token in ("addr=7", "kernel=k", "region='r'", "epoch=2",
                      "warp=5"):
            assert token in s


class TestSanitizerConfig:
    def test_all_checkers_default(self):
        san = Sanitizer()
        assert all(san.enabled(c) for c in CHECKERS)

    def test_subset_selection(self):
        san = Sanitizer(checkers=("racecheck",))
        assert san.enabled("racecheck")
        assert not san.enabled("initcheck")

    def test_unknown_checker_rejected(self):
        with pytest.raises(ValueError):
            Sanitizer(checkers=("racecheck", "bogus"))

    def test_disabled_checker_stays_silent(self):
        san = Sanitizer(checkers=("synccheck",))
        cta = CTA(num_warps=2, shared_words=16, sanitize=san)
        word = np.array([0])
        cta.shared.store(word, np.array([1]), warp_id=0)
        cta.shared.store(word, np.array([2]), warp_id=1)  # race, unchecked
        assert san.finalize().clean


class TestFixturesFire:
    @pytest.mark.parametrize("name", sorted(FIXTURES))
    def test_fixture_detected(self, name):
        report = run_fixture(name)
        checker, code = EXPECTED_CODES[name]
        assert any(f.checker == checker and f.code == code
                   for f in report.findings), report.summary()

    def test_unknown_fixture_rejected(self):
        with pytest.raises(KeyError):
            run_fixture("nonexistent")


class TestRacecheckSemantics:
    def test_barrier_orders_producer_consumer(self):
        san = Sanitizer()
        cta = CTA(num_warps=2, shared_words=16, sanitize=san)
        word = np.array([4])
        cta.shared.store(word, np.array([1]), warp_id=0)
        cta.syncthreads()
        cta.shared.load(word, warp_id=1)
        assert san.finalize().clean

    def test_same_warp_rewrite_is_not_a_race(self):
        san = Sanitizer()
        cta = CTA(num_warps=2, shared_words=16, sanitize=san)
        word = np.array([4])
        cta.shared.store(word, np.array([1]), warp_id=0)
        cta.shared.store(word, np.array([2]), warp_id=0)
        cta.shared.load(word, warp_id=0)
        assert san.finalize().clean

    def test_read_read_is_not_a_race(self):
        san = Sanitizer()
        cta = CTA(num_warps=2, shared_words=16, sanitize=san)
        word = np.array([4])
        cta.shared.store(word, np.array([1]), warp_id=0)
        cta.syncthreads()
        cta.shared.load(word, warp_id=0)
        cta.shared.load(word, warp_id=1)
        assert san.finalize().clean

    def test_read_then_write_without_barrier_is_a_race(self):
        san = Sanitizer()
        cta = CTA(num_warps=2, shared_words=16, sanitize=san)
        word = np.array([4])
        cta.shared.store(word, np.array([1]), warp_id=0)
        cta.syncthreads()
        cta.shared.load(word, warp_id=0)
        cta.shared.store(word, np.array([9]), warp_id=1)
        rep = san.finalize()
        assert any(f.code == "read-write" for f in rep.findings)

    def test_epoch_advances_with_barriers(self):
        san = Sanitizer()
        cta = CTA(num_warps=1, shared_words=16, sanitize=san)
        assert cta.shared._san_shadow.epoch == 0
        cta.syncthreads()
        cta.syncthreads()
        assert cta.shared._san_shadow.epoch == 2


class TestInitcheckSemantics:
    def test_store_defines_word(self):
        san = Sanitizer()
        led = CostLedger()
        mem = GlobalMemory(32, ledger=led, sanitize=san)
        mem.alloc("buf", 32)
        mem.store(np.array([3]), np.array([1]))
        mem.load(np.array([3]))
        assert san.finalize().clean

    def test_memset_defines_region(self):
        san = Sanitizer()
        led = CostLedger()
        mem = GlobalMemory(32, ledger=led, sanitize=san)
        mem.alloc("buf", 16)
        mem.memset("buf")
        mem.load(np.arange(16))
        assert san.finalize().clean

    def test_atomic_win_defines_word(self):
        san = Sanitizer()
        led = CostLedger()
        mem = GlobalMemory(32, ledger=led, sanitize=san)
        mem.alloc("buf", 16)
        mem.memset("buf")
        won = mem.atomic_cas(np.array([2]), np.array([0]), np.array([9]))
        assert won.all()
        mem.load(np.array([2]))
        assert san.finalize().clean

    def test_shared_uninit_read_fires_and_store_defines(self):
        san = Sanitizer()
        smem = SharedMemory(16, ledger=CostLedger(), sanitize=san)
        smem.store(np.array([1]), np.array([5]), warp_id=0)
        smem.load(np.array([1]), warp_id=0)    # defined
        smem.load(np.array([2]), warp_id=0)    # never stored
        rep = san.finalize()
        bad = [f for f in rep.findings if f.code == "uninit-smem-load"]
        assert len(bad) == 1 and bad[0].address == 2

    def test_straddle_reports_region_names(self):
        rep = run_fixture("region_straddle")
        straddle = [f for f in rep.findings if f.code == "region-straddle"]
        assert straddle and straddle[0].region == "keys"


class TestLedgerAudit:
    def test_charged_traffic_is_clean(self):
        san = Sanitizer()
        led = CostLedger()
        mem = GlobalMemory(32, ledger=led, sanitize=san)
        mem.alloc("buf", 32)
        mem.memset("buf")
        mem.store(np.arange(8), np.arange(8))
        mem.load(np.arange(8))
        mem.atomic_cas(np.array([0]), np.array([0]), np.array([1]))
        assert san.finalize().clean

    def test_audit_is_consumed_by_finalize(self):
        san = Sanitizer()
        mem = GlobalMemory(16, sanitize=san)     # detached ledger
        mem.alloc("buf", 16)
        mem.memset("buf")
        mem.load(np.array([0]))
        first = san.finalize()
        assert not first.clean
        # second finalize must not re-report the same traffic
        n = len(first.findings)
        assert len(san.finalize().findings) == n


class TestKnobThreading:
    def test_kernel_launch_threads_sanitizer(self):
        san = Sanitizer()

        def racy_kernel(cta):
            word = np.array([0])
            cta.shared.store(word, np.array([1]), warp_id=0)
            cta.shared.store(word, np.array([2]), warp_id=1)

        launch = KernelLaunch(PASCAL_GTX1080, warps_per_cta=2,
                              shared_words=16, sanitize=san)
        launch.run(racy_kernel)
        rep = san.report
        assert any(f.code == "write-write" for f in rep.findings)
        assert rep.findings[0].kernel == "racy_kernel"

    def test_spec_level_default(self):
        san = Sanitizer()
        spec = PASCAL_GTX1080.with_(sanitize=san)
        assert spec == PASCAL_GTX1080        # excluded from equality

        def uninit_kernel(cta):
            cta.shared.load(np.array([3]), warp_id=0)

        KernelLaunch(spec, warps_per_cta=1, shared_words=8).run(
            uninit_kernel)
        assert any(f.code == "uninit-smem-load" for f in san.report.findings)

    def test_scheduler_spec_default(self):
        san = Sanitizer()
        spec = PASCAL_GTX1080.with_(sanitize=san)
        streams = [WarpStream(0, ["alu", "sync", "alu"]),
                   WarpStream(1, ["alu"])]
        SMScheduler(spec).run(streams)
        assert any(f.code == "barrier-count-mismatch"
                   for f in san.report.findings)

    def test_balanced_streams_are_clean(self):
        san = Sanitizer()
        streams = [WarpStream(0, ["alu", "sync", "alu"]),
                   WarpStream(1, ["alu", "sync", "alu"])]
        SMScheduler(PASCAL_GTX1080, sanitize=san).run(streams)
        assert san.finalize().clean


class TestObsIntegration:
    def test_findings_emit_counter_and_instant(self):
        obs = Observability.enabled()
        san = Sanitizer(obs=obs)
        cta = CTA(num_warps=1, shared_words=8, sanitize=san)
        cta.shared.load(np.array([0]), warp_id=0)   # uninit read
        san.finalize()
        snap = obs.snapshot()
        assert snap["counters"]["sanitizer.findings"] >= 1
        names = [ev["name"] for ev in obs.tracer.events]
        assert "sanitizer.finding" in names
