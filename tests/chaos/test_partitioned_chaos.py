"""Partitioned-channel chaos: SIGKILL a worker between channel epochs,
prove the re-fired partitions land bit-identically after recovery.

Runs outside the tier-1 gate (marked ``chaos``); CI's workloads job
re-selects it with ``-m chaos``.  Seeds come from ``CHAOS_SEEDS``
(comma-separated, default ``11,23,47``); each seed varies which worker
is armed and how deep into the epoch sequence it dies.

The invariant under test is the match-once contract's hardest case: a
binding envelope is journaled like any state-mutating frame, so a worker
SIGKILLed between a binding's match and its superstep flush replays the
match verbatim -- the channel's partition payloads (driver-side tokens)
then land exactly as in a clean run, and matching never sees a second
envelope for the epoch.
"""

from __future__ import annotations

import os

import pytest

from repro.serve import ClusterService, CollectiveBridge, TenantSpec

pytestmark = pytest.mark.chaos

SEEDS = [int(s) for s in os.environ.get("CHAOS_SEEDS", "11,23,47").split(",")]

SPAN = 4
N_WORKERS = 3
EPOCHS = 4
PARTITIONS = 8


def run_epochs(seed: int, arm: tuple[int, int] | None):
    cl = ClusterService(n_workers=N_WORKERS, seed=seed, start_method="fork")
    cl.register(TenantSpec(name="mpi", span=SPAN, autotune=False,
                           partitioned=True))
    with cl:
        if arm is not None:
            cl.arm_worker_exit(*arm)
        bridge = CollectiveBridge(cl, "mpi")
        # two counter-directed channels so more than one shard pair
        # carries partitioned traffic
        ps_a = bridge.psend_init(0, 1, PARTITIONS, tag=3)
        pr_a = bridge.precv_init(1, 0, PARTITIONS, tag=3)
        ps_b = bridge.psend_init(1, 0, PARTITIONS, tag=4)
        pr_b = bridge.precv_init(0, 1, PARTITIONS, tag=4)
        out = []
        for epoch in range(EPOCHS):
            for req in (ps_a, pr_a, ps_b, pr_b):
                req.start()
            for i in range(PARTITIONS):
                ps_a.pready(i, (seed, epoch, "a", i))
                ps_b.pready(i, (seed, epoch, "b", i))
            ps_a.wait()
            ps_b.wait()
            out.append((pr_a.wait(), pr_b.wait()))
        keyed = {(r.tenant, r.flush_seq):
                 (r.flush_vt, tuple(r.covered_seqs), tuple(r.latencies_vt),
                  tuple(r.outcome.request_to_message.tolist()))
                 for r in cl.results}
        report = cl.report()
        recoveries = len(cl.recoveries)
    return out, keyed, report, recoveries


@pytest.mark.parametrize("seed", SEEDS)
def test_sigkill_between_epochs_replays_identically(seed):
    clean = run_epochs(seed, arm=None)
    assert clean[3] == 0
    assert clean[0] == [
        ([(seed, e, "a", i) for i in range(PARTITIONS)],
         [(seed, e, "b", i) for i in range(PARTITIONS)])
        for e in range(EPOCHS)]
    armed_worker = [1, 2, 1][seed % 3]
    after = 1 + seed % 3
    chaos = run_epochs(seed, arm=(armed_worker, after))
    assert chaos[3] >= 1, "the armed SIGKILL never fired"
    assert chaos[0] == clean[0], "re-fired partition payloads diverged"
    assert chaos[1] == clean[1], "keyed flush record diverged"
    assert chaos[2] == clean[2], "report diverged"
