"""Common machinery for the synthetic proxy-application models.

Each application model is an :class:`AppModel` subclass that declares its
Table-I-visible identity (suite, wildcard usage, communicator count) and
implements :meth:`build` using the :class:`TraceBuilder` and the topology
helpers below.  The models are *communication skeletons*: they reproduce
the pattern, tag discipline, posting discipline, and volume of the real
mini-app's point-to-point traffic -- the properties the paper's matching
analysis depends on -- not its numerics.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from ..events import BarrierEvent, RecvPostEvent, SendEvent, Trace

__all__ = ["AppModel", "TraceBuilder", "grid_dims", "grid_neighbors",
           "ring_neighbors", "random_neighbors", "skewed_neighbors"]


class TraceBuilder:
    """Accumulates events with a monotonically increasing clock.

    The synthetic clock has no physical meaning; only the *order* of
    events matters to the analyses (it decides queue interleavings).
    """

    def __init__(self) -> None:
        self._events: list = []
        self._t = 0.0

    def _tick(self) -> float:
        self._t += 1.0
        return self._t

    def send(self, rank: int, dst: int, tag: int, comm: int = 0,
             nbytes: int = 8) -> None:
        """Record a send."""
        self._events.append(SendEvent(time=self._tick(), rank=rank, dst=dst,
                                      tag=tag, comm=comm, nbytes=nbytes))

    def post(self, rank: int, src: int, tag: int, comm: int = 0) -> None:
        """Record a receive post (src/tag may be -1)."""
        self._events.append(RecvPostEvent(time=self._tick(), rank=rank,
                                          src=src, tag=tag, comm=comm))

    def barrier(self, n_ranks: int) -> None:
        """Record a superstep boundary on every rank."""
        t = self._tick()
        for r in range(n_ranks):
            self._events.append(BarrierEvent(time=t, rank=r))

    def exchange(self, pairs: Sequence[tuple[int, int]],
                 tag_of: Callable[[int, int, int], int],
                 comm_of: Callable[[int, int, int], int] | None = None,
                 msgs_per_pair: int = 1,
                 prepost_fraction: float = 1.0,
                 rng: np.random.Generator | None = None,
                 wildcard_src_fraction: float = 0.0,
                 nbytes: int = 8) -> None:
        """One exchange phase over directed ``(src, dst)`` pairs.

        ``tag_of(src, dst, k)`` names the tag of the k-th message on a
        pair; ``comm_of`` likewise for the communicator (default 0).

        ``prepost_fraction`` of the receives are posted *before* any send
        of the phase (they land in the PRQ and wait); the rest are posted
        after all sends (those messages sit in the UMQ as unexpected).
        ``wildcard_src_fraction`` of the receives use MPI_ANY_SOURCE.
        """
        rng = rng if rng is not None else np.random.default_rng(0)
        comm_of = comm_of if comm_of is not None else (lambda s, d, k: 0)
        recvs = []
        for (src, dst) in pairs:
            for k in range(msgs_per_pair):
                use_wc = rng.random() < wildcard_src_fraction
                recvs.append((dst, -1 if use_wc else src,
                              tag_of(src, dst, k), comm_of(src, dst, k)))
        rng.shuffle(recvs)
        n_pre = int(round(prepost_fraction * len(recvs)))
        for (dst, src, tag, comm) in recvs[:n_pre]:
            self.post(dst, src, tag, comm)
        order = list(range(len(pairs)))
        rng.shuffle(order)
        for i in order:
            src, dst = pairs[i]
            for k in range(msgs_per_pair):
                self.send(src, dst, tag_of(src, dst, k),
                          comm_of(src, dst, k), nbytes=nbytes)
        for (dst, src, tag, comm) in recvs[n_pre:]:
            self.post(dst, src, tag, comm)

    def build(self, app: str, n_ranks: int, meta: dict | None = None) -> Trace:
        """Finalize into a :class:`Trace`."""
        return Trace(app=app, n_ranks=n_ranks, events=self._events,
                     meta=meta)


class AppModel:
    """Base class for application communication models.

    Subclasses override the class attributes and implement :meth:`build`.
    (Deliberately *not* a dataclass: the identity fields are class-level
    constants of each model, not per-instance state.)
    """

    #: short identifier, e.g. ``"exmatex_lulesh"``
    name: str = "base"
    #: human-readable name as it appears in the paper's Table I
    full_name: str = "base"
    #: proxy-app suite (designforward / cesar / exact / exmatex / amr)
    suite: str = "none"
    #: one-line description of the modelled communication skeleton
    description: str = ""
    #: does the app post MPI_ANY_SOURCE receives? (Table I: only
    #: Design Forward MiniDFT and MiniFE do)
    uses_src_wildcard: bool = False
    #: does the app use MPI_ANY_TAG? (Table I: none do)
    uses_tag_wildcard: bool = False
    #: distinct communicators carrying point-to-point traffic
    n_communicators: int = 1
    #: default rank count for `generate()`
    default_ranks: int = 32
    #: default superstep count
    default_steps: int = 10

    def generate(self, n_ranks: int | None = None, steps: int | None = None,
                 seed: int = 0) -> Trace:
        """Generate a trace at the given scale (defaults per app)."""
        n_ranks = self.default_ranks if n_ranks is None else n_ranks
        steps = self.default_steps if steps is None else steps
        if n_ranks < 2:
            raise ValueError("need at least 2 ranks to communicate")
        if steps < 1:
            raise ValueError("steps must be positive")
        rng = np.random.default_rng(seed + 0x5EED)
        builder = TraceBuilder()
        self.build(builder, n_ranks, steps, rng)
        return builder.build(self.name, n_ranks,
                             meta={"steps": steps, "seed": seed,
                                   "suite": self.suite})

    def build(self, b: TraceBuilder, n_ranks: int, steps: int,
              rng: np.random.Generator) -> None:
        """Emit the app's events into the builder (subclass hook)."""
        raise NotImplementedError


# -- topology helpers ------------------------------------------------------------


def grid_dims(n_ranks: int, ndim: int) -> tuple[int, ...]:
    """Near-cubic process grid factorization of ``n_ranks``.

    >>> grid_dims(64, 3)
    (4, 4, 4)
    """
    dims = [1] * ndim
    n = n_ranks
    f = 2
    factors = []
    while f * f <= n:
        while n % f == 0:
            factors.append(f)
            n //= f
        f += 1
    if n > 1:
        factors.append(n)
    for p in sorted(factors, reverse=True):
        dims[int(np.argmin(dims))] *= p
    return tuple(sorted(dims, reverse=True))


def grid_neighbors(n_ranks: int, ndim: int = 3, corners: bool = False,
                   ) -> list[list[int]]:
    """Cartesian halo neighbors (non-periodic) for every rank.

    ``corners=False`` gives the 2*ndim face stencil; ``corners=True`` the
    full Moore neighborhood (8 in 2-D, 26 in 3-D) that halo codes like
    LULESH exchange with.
    """
    dims = grid_dims(n_ranks, ndim)
    coords = [np.unravel_index(r, dims) for r in range(n_ranks)]
    index = {c: r for r, c in enumerate(coords)}
    offsets: list[tuple[int, ...]] = []
    if corners:
        grids = np.meshgrid(*[[-1, 0, 1]] * ndim, indexing="ij")
        for off in zip(*[g.ravel() for g in grids]):
            if any(off):
                offsets.append(off)
    else:
        for d in range(ndim):
            for s in (-1, 1):
                off = [0] * ndim
                off[d] = s
                offsets.append(tuple(off))
    out: list[list[int]] = []
    for r in range(n_ranks):
        mine = []
        for off in offsets:
            c = tuple(int(x) + int(o) for x, o in zip(coords[r], off))
            if all(0 <= ci < di for ci, di in zip(c, dims)):
                mine.append(index[c])
        out.append(mine)
    return out


def ring_neighbors(n_ranks: int, hops: int = 1) -> list[list[int]]:
    """Bidirectional ring with ``hops`` neighbors on each side."""
    return [[(r + d) % n_ranks for d in range(-hops, hops + 1) if d != 0]
            for r in range(n_ranks)]


def random_neighbors(n_ranks: int, k: int,
                     rng: np.random.Generator) -> list[list[int]]:
    """Uniform random ``k``-neighbor sets (symmetrized, so degrees are
    approximately ``k`` and communication is two-way like real halo
    exchanges)."""
    k = min(k, n_ranks - 1)
    nbrs = [set() for _ in range(n_ranks)]
    for r in range(n_ranks):
        choices = rng.choice([x for x in range(n_ranks) if x != r],
                             size=k, replace=False)
        for c in choices:
            nbrs[r].add(int(c))
            nbrs[int(c)].add(r)
    return [sorted(s) for s in nbrs]


def skewed_neighbors(n_ranks: int, k_min: int, k_max: int,
                     rng: np.random.Generator,
                     hot_fraction: float = 0.1) -> list[list[int]]:
    """Irregular neighbor sets: a few 'hot' ranks talk to many peers.

    Models the irregular rank-usage distribution the paper observes for
    CESAR Nekbone and AMR Boxlib (Section VI-A), which unbalances
    statically partitioned queues.
    """
    hot = max(1, int(hot_fraction * n_ranks))
    nbrs = [set() for _ in range(n_ranks)]
    for r in range(n_ranks):
        k = k_max if r < hot else k_min
        k = min(k, n_ranks - 1)
        choices = rng.choice([x for x in range(n_ranks) if x != r],
                             size=k, replace=False)
        for c in choices:
            nbrs[r].add(int(c))
            nbrs[int(c)].add(r)
    return [sorted(s) for s in nbrs]
