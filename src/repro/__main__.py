"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``apps``
    List the modelled proxy applications.
``analyze [APP ...]``
    Table I / Figure 2 / Figure 6(a) statistics for the named apps
    (default: all).
``trace APP PATH [--ranks N] [--steps S] [--seed K]``
    Generate a synthetic trace and save it as JSONL.
``replay PATH``
    Load a saved trace and print its analysis.
``match N [--relaxation LABEL] [--gpu NAME] [--queues Q] [--ctas C]``
    Run the synthetic matching microbenchmark at queue length N.
``calibrate``
    Re-derive the per-device calibration multipliers.
``serve-demo [--seed K] [--steps S] [--ranks N] [--rate R] [--obs]``
    Run the three-tenant serving demo (``repro.serve``) and print its
    deterministic run report; ``--obs`` attaches the observability layer
    and prints the tracer/metrics summary.
``bench {host,serve} [--seed K]``
    Quick host-throughput or serve-layer sweep, printed only (the
    report-writing harnesses live in ``benchmarks/``).
"""

from __future__ import annotations

import argparse
import sys


def _cmd_apps(_args) -> int:
    from .traces import APP_MODELS
    for name, model in APP_MODELS.items():
        wc = " [src-wildcard]" if model.uses_src_wildcard else ""
        print(f"{name:22s} {model.full_name:28s} "
              f"ranks={model.default_ranks:<4d} "
              f"comms={model.n_communicators}{wc}")
        print(f"{'':22s} {model.description}")
    return 0


def _analyze_one(name_or_trace) -> None:
    from .traces import analyze, figure2_summary, tuple_uniqueness
    if isinstance(name_or_trace, str):
        from .traces import generate_trace
        trace = generate_trace(name_or_trace)
    else:
        trace = name_or_trace
    row = analyze(trace)
    fig2 = figure2_summary(trace)
    uniq = tuple_uniqueness(trace)
    print(f"{trace.app}: ranks={row.n_ranks} sends={row.sends} "
          f"peers={row.peers_mean:.1f}/{row.peers_max} tags={row.n_tags} "
          f"comms={row.n_communicators} "
          f"srcwc={'yes' if row.uses_src_wildcard else 'no'}")
    print(f"  UMQ max depth mean/median: {fig2['umq_max_mean']:.0f}/"
          f"{fig2['umq_max_median']:.0f}; unexpected "
          f"{fig2['unexpected_fraction'] * 100:.0f}%; dominant tuple share "
          f"{uniq['dominant_share_mean'] * 100:.1f}%")


def _cmd_analyze(args) -> int:
    from .traces import app_names
    for name in (args.apps or app_names()):
        _analyze_one(name)
    return 0


def _cmd_trace(args) -> int:
    from .traces import generate_trace
    from .traces.io import save_trace
    trace = generate_trace(args.app, n_ranks=args.ranks, steps=args.steps,
                           seed=args.seed)
    path = save_trace(trace, args.path)
    print(f"wrote {len(trace)} events to {path}")
    return 0


def _cmd_replay(args) -> int:
    from .traces.io import load_trace
    _analyze_one(load_trace(args.path))
    return 0


def _cmd_match(args) -> int:
    from .bench import matching_workload
    from .core.engine import MatchingEngine
    from .core.relaxations import TABLE_II_CONFIGS
    from .simt.gpu import GPU
    by_label = {rel.label(): rel for rel in TABLE_II_CONFIGS}
    if args.relaxation not in by_label:
        print(f"unknown relaxation {args.relaxation!r}; "
              f"choices: {sorted(by_label)}", file=sys.stderr)
        return 2
    msgs, reqs = matching_workload(args.n)
    eng = MatchingEngine(gpu=GPU.by_name(args.gpu),
                         relaxations=by_label[args.relaxation],
                         n_queues=args.queues, n_ctas=args.ctas)
    out = eng.match(msgs, reqs)
    print(f"{args.relaxation} on {eng.gpu.name}: matched "
          f"{out.matched_count}/{args.n} at "
          f"{out.matches_per_second() / 1e6:.1f} Mmatches/s "
          f"({eng.data_structure}, {out.iterations} iterations)")
    return 0


def _cmd_calibrate(_args) -> int:
    from .bench.calibration import recalibrate
    recalibrate()
    return 0


def _cmd_serve_demo(args) -> int:
    from .serve import demo
    obs = None
    if args.obs:
        from .obs import Observability
        obs = Observability.enabled()
    service, workload, wall = demo(seed=args.seed, steps=args.steps,
                                   n_ranks=args.ranks, rate_rps=args.rate,
                                   obs=obs)
    report = service.report()
    print(f"serve-demo: {len(workload.tenants)} tenants, "
          f"{workload.n_envelopes} envelopes offered at {args.rate:g} req/s "
          f"(virtual), seed={args.seed}")
    print(f"  submitted={report['submitted']} accepted={report['accepted']} "
          f"shed={report['shed_retryable']}+{report['shed_overloaded']} "
          f"flushes={report['flushes']} matched={report['matched']}")
    p50, p99 = report["latency_p50_vt"], report["latency_p99_vt"]
    if p50 is not None:
        print(f"  latency p50/p99: {p50 * 1e6:.1f}/{p99 * 1e6:.1f} "
              f"virtual us; host wall {wall * 1e3:.1f} ms")
    for name, t in report["tenants"].items():
        moves = " -> ".join([t["retunes"][0][0]] +
                            [r[1] for r in t["retunes"]]
                            ) if t["retunes"] else t["engine"]
        print(f"  {name:16s} shard={t['shard']} engine={moves} "
              f"flushes={t['flushes']} matched={t['matched']}")
    if obs is not None:
        from .obs.report import summary
        print(summary(obs))
    return 0


def _cmd_bench(args) -> int:
    if args.target == "host":
        from .bench.regression import QUICK_SIZES, run_suite
        for rec in run_suite(sizes=QUICK_SIZES):
            print(f"{rec.matcher:12s} n={rec.n:<6d} {rec.seconds:.3f}s "
                  f"{rec.matches_per_second / 1e6:.2f} Mmatches/s")
        return 0
    from .serve import (DEFAULT_BENCH_APPS, merge_workloads,
                        run_cluster_workload, run_workload, workload_from_app)
    parts = [workload_from_app(app, n_ranks=8, steps=2, seed=args.seed,
                               ordering_required=ordering_required)
             for app, ordering_required in DEFAULT_BENCH_APPS]
    procs = getattr(args, "procs", None)
    for workload in parts + [merge_workloads("mixed", parts)]:
        if procs:
            service, wall = run_cluster_workload(
                workload, n_workers=procs, seed=args.seed, promote_after=2,
                start_method="fork")
        else:
            service, wall = run_workload(workload, n_shards=2, seed=args.seed,
                                         promote_after=2)
        report = service.report()
        rate = report["matched"] / wall if wall > 0 else 0.0
        label = f"{workload.name}" + (f" x{procs}proc" if procs else "")
        print(f"{label:16s} matched={report['matched']:<6d} "
              f"shed={report['shed_retryable'] + report['shed_overloaded']:<4d} "
              f"retunes={report['retunes']} {rate / 1e3:.1f} Kmatches/s")
    print("(printed only; benchmarks/bench_host_perf.py, "
          "benchmarks/bench_serve.py, and benchmarks/bench_cluster.py "
          "write the labeled reports)")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro", description="GPU message matching under relaxed MPI "
        "semantics (IPDPS 2017 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("apps", help="list proxy-application models")

    p = sub.add_parser("analyze", help="trace statistics per application")
    p.add_argument("apps", nargs="*", help="app names (default: all)")

    p = sub.add_parser("trace", help="generate and save a trace")
    p.add_argument("app")
    p.add_argument("path")
    p.add_argument("--ranks", type=int, default=None)
    p.add_argument("--steps", type=int, default=None)
    p.add_argument("--seed", type=int, default=0)

    p = sub.add_parser("replay", help="analyze a saved trace")
    p.add_argument("path")

    p = sub.add_parser("match", help="run the matching microbenchmark")
    p.add_argument("n", type=int)
    p.add_argument("--relaxation", default="wc+ord+unexp")
    p.add_argument("--gpu", default="pascal")
    p.add_argument("--queues", type=int, default=32)
    p.add_argument("--ctas", type=int, default=32)

    sub.add_parser("calibrate", help="re-derive calibration multipliers")

    p = sub.add_parser("serve-demo", help="run the three-tenant serve demo")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--steps", type=int, default=3)
    p.add_argument("--ranks", type=int, default=16)
    p.add_argument("--rate", type=float, default=4000.0,
                   help="offered load, requests per virtual second")
    p.add_argument("--obs", action="store_true",
                   help="attach observability; print tracer/metrics summary")

    p = sub.add_parser("bench", help="quick printed benchmark sweep")
    p.add_argument("target", choices=["host", "serve"])
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--procs", type=int, default=None,
                   help="serve only: run each workload through a "
                   "multi-process cluster with N worker processes")

    args = parser.parse_args(argv)
    handler = {"apps": _cmd_apps, "analyze": _cmd_analyze,
               "trace": _cmd_trace, "replay": _cmd_replay,
               "match": _cmd_match, "calibrate": _cmd_calibrate,
               "serve-demo": _cmd_serve_demo, "bench": _cmd_bench}
    try:
        return handler[args.command](args)
    except (KeyError, ValueError, OSError) as exc:
        # user-input errors surface as one line, not a traceback
        if isinstance(exc, OSError):
            message = str(exc)
        else:
            message = exc.args[0] if exc.args else exc
        print(f"error: {message}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
