"""Memory transaction analysis, simulated memories, occupancy, CTAs."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simt.cta import CTA, MAX_WARPS_PER_CTA
from repro.simt.gpu import GPU, KEPLER_K80, PASCAL_GTX1080
from repro.simt.kernel import KernelLaunch
from repro.simt.memory import (GMEM_WORD_BYTES, SMEM_WORD_BYTES, GlobalMemory,
                               MemoryError_, SharedMemory, bank_conflicts,
                               coalesced_transactions)
from repro.simt.occupancy import (KernelResources, occupancy,
                                  serialization_factor)
from repro.simt.timing import CostLedger


class TestCoalescing:
    def test_unit_stride_is_one_transaction(self):
        assert coalesced_transactions(np.arange(32) * 4) == 1

    def test_full_scatter_is_32(self):
        assert coalesced_transactions(np.arange(32) * 128) == 32

    def test_stride_two_is_two(self):
        assert coalesced_transactions(np.arange(32) * 8) == 2

    def test_same_address_broadcast(self):
        assert coalesced_transactions(np.full(32, 1024)) == 1

    def test_straddling_access(self):
        # one 4-byte access crossing a 128B boundary touches 2 segments
        assert coalesced_transactions(np.array([126]), access_bytes=4) == 2

    def test_empty(self):
        assert coalesced_transactions(np.array([], dtype=np.int64)) == 0

    def test_negative_rejected(self):
        with pytest.raises(MemoryError_):
            coalesced_transactions(np.array([-4]))

    @given(st.lists(st.integers(min_value=0, max_value=10_000),
                    min_size=1, max_size=32))
    @settings(max_examples=50)
    def test_bounds(self, addrs):
        txns = coalesced_transactions(np.array(addrs))
        assert 1 <= txns <= 2 * len(addrs)

    def test_wide_access_counts_interior_segments(self):
        # a 512-byte access spans 4 aligned 128B segments; counting only
        # first/last would report 2
        assert coalesced_transactions(np.array([0]), access_bytes=512) == 4
        assert coalesced_transactions(np.array([64]), access_bytes=512) == 5

    def test_wide_access_overlapping_lanes_merge(self):
        # two lanes covering adjacent 256B windows share one interior
        # segment: words 0..255 and 256..511 -> segments 0,1 and 2,3
        assert coalesced_transactions(np.array([0, 256]),
                                      access_bytes=256) == 4

    @given(st.lists(st.integers(min_value=0, max_value=4096),
                    min_size=1, max_size=8),
           st.integers(min_value=1, max_value=1024))
    @settings(max_examples=50)
    def test_wide_access_matches_bruteforce(self, addrs, access_bytes):
        arr = np.array(addrs)
        expect = len({seg for a in addrs
                      for seg in range(a // 128,
                                       (a + access_bytes - 1) // 128 + 1)})
        assert coalesced_transactions(arr, access_bytes=access_bytes) \
            == expect


class TestBankConflicts:
    def test_conflict_free_unit_stride(self):
        assert bank_conflicts(np.arange(32) * 4) == 1

    def test_broadcast_is_free(self):
        assert bank_conflicts(np.full(32, 64)) == 1

    def test_stride_32_words_worst_case(self):
        # all lanes hit bank 0 with distinct words -> 32-way replay
        assert bank_conflicts(np.arange(32) * 32 * 4) == 32

    def test_two_way(self):
        addrs = np.concatenate([np.arange(16) * 4, np.arange(16) * 4 + 32 * 4])
        assert bank_conflicts(addrs) == 2


class TestSimulatedMemories:
    def test_global_alloc_load_store(self):
        led = CostLedger()
        mem = GlobalMemory(1024, ledger=led)
        base = mem.alloc("queue", 256)
        addrs = base + np.arange(32)
        mem.store(addrs, np.arange(32))
        assert np.array_equal(mem.load(addrs), np.arange(32))
        assert led.total("gmem_store") >= 1
        assert led.total("gmem_load") >= 1

    def test_global_oob(self):
        mem = GlobalMemory(64)
        with pytest.raises(MemoryError_):
            mem.load(np.array([64]))
        with pytest.raises(MemoryError_):
            mem.store(np.array([-1]), np.array([0]))

    def test_alloc_exhaustion_and_duplicates(self):
        mem = GlobalMemory(64)
        mem.alloc("a", 60)
        with pytest.raises(MemoryError_):
            mem.alloc("b", 10)
        with pytest.raises(MemoryError_):
            mem.alloc("a", 1)

    def test_region_lookup(self):
        mem = GlobalMemory(64)
        base = mem.alloc("a", 10)
        assert mem.region("a") == (base, 10)

    def test_unknown_region_raises_memory_error(self):
        # a bare KeyError used to leak out of region()
        mem = GlobalMemory(64)
        mem.alloc("a", 10)
        with pytest.raises(MemoryError_, match="unknown region"):
            mem.region("nope")

    def test_zero_size_alloc_rejected(self):
        # a zero-sized region's base would alias its successor's
        mem = GlobalMemory(64)
        with pytest.raises(ValueError):
            mem.alloc("empty", 0)
        with pytest.raises(ValueError):
            mem.alloc("negative", -1)

    def test_memset_fills_region_without_charges(self):
        led = CostLedger()
        mem = GlobalMemory(64, ledger=led)
        mem.alloc("buf", 16)
        mem.memset("buf", 7)
        assert np.all(mem.data[:16] == 7)
        assert led.total("gmem_store") == 0.0

    def test_shared_memory_conflict_charging(self):
        led = CostLedger()
        smem = SharedMemory(4096, ledger=led)
        smem.store(np.arange(32) * 32, np.ones(32))  # 32-way conflict
        assert led.total("smem_store") == 32.0

    def test_shared_oob(self):
        smem = SharedMemory(16)
        with pytest.raises(MemoryError_):
            smem.load(np.array([16]))


class TestWordSizeModel:
    """Element size is an explicit knob; the shipped defaults pin the
    modeled figures the rest of the suite (and the paper anchors) rest
    on: 4-byte vote words in shared memory, 8-byte packed envelopes in
    global memory."""

    def test_default_word_sizes(self):
        assert SharedMemory(16).word_bytes == SMEM_WORD_BYTES == 4
        assert GlobalMemory(16).word_bytes == GMEM_WORD_BYTES == 8

    def test_shared_capacity_uses_word_bytes(self):
        assert SharedMemory(128).size_bytes == 512
        assert SharedMemory(128, word_bytes=8).size_bytes == 1024

    def test_global_capacity_uses_word_bytes(self):
        assert GlobalMemory(128).size_bytes == 1024

    def test_shared_charge_figures_pinned(self):
        # regression pin: unit-stride 32-lane store = conflict-free (1.0),
        # 32-word stride = 32-way replay; identical before and after the
        # word-size parameter was made explicit
        led = CostLedger()
        smem = SharedMemory(4096, ledger=led)
        smem.store(np.arange(32), np.ones(32))
        assert led.total("smem_store") == 1.0
        smem.load(np.arange(32) * 32)
        assert led.total("smem_load") == 32.0

    def test_global_charge_figures_pinned(self):
        # regression pin: 32 consecutive 8-byte words = 2 x 128B
        # transactions; a full 32-way scatter = 32
        led = CostLedger()
        mem = GlobalMemory(8192, ledger=led)
        mem.store(np.arange(32), np.arange(32))
        assert led.total("gmem_store") == 2.0
        mem.load(np.arange(32) * 16)
        assert led.total("gmem_load") == 32.0

    def test_conflict_degree_invariant_in_word_bytes(self):
        # the conflict analysis scales addresses and the bank map by the
        # same word size, so the replay degree only depends on the word
        # access pattern -- 4- and 8-byte layouts agree
        for wb in (4, 8):
            led = CostLedger()
            smem = SharedMemory(4096, ledger=led, word_bytes=wb)
            smem.store(np.arange(32) * 32, np.ones(32))
            assert led.total("smem_store") == 32.0


class TestOccupancy:
    def test_warp_limited_matrix_kernel(self):
        """The paper's matrix kernel (1024 threads) allows exactly two
        resident CTAs (Section VI-A)."""
        res = KernelResources(threads_per_cta=1024,
                              shared_mem_per_cta=16 * 1024,
                              regs_per_thread=32)
        for spec in GPU.all_generations():
            occ = occupancy(spec, res)
            assert occ.max_resident_ctas == 2

    def test_small_cta_allows_many(self):
        res = KernelResources(threads_per_cta=64, regs_per_thread=16)
        occ = occupancy(PASCAL_GTX1080, res)
        assert occ.max_resident_ctas == PASCAL_GTX1080.max_ctas_per_sm

    def test_kepler_cta_slot_limit(self):
        res = KernelResources(threads_per_cta=32, regs_per_thread=16)
        assert occupancy(KEPLER_K80, res).max_resident_ctas == 16

    def test_shared_memory_limited(self):
        res = KernelResources(threads_per_cta=64,
                              shared_mem_per_cta=48 * 1024,
                              regs_per_thread=16)
        occ = occupancy(PASCAL_GTX1080, res)
        assert occ.limiting_resource == "shared_mem"
        assert occ.max_resident_ctas == 2  # 96 KiB / 48 KiB

    def test_oversized_cta_rejected(self):
        with pytest.raises(ValueError):
            occupancy(PASCAL_GTX1080,
                      KernelResources(threads_per_cta=2048))

    def test_oversized_shared_rejected(self):
        with pytest.raises(ValueError):
            occupancy(PASCAL_GTX1080,
                      KernelResources(threads_per_cta=32,
                                      shared_mem_per_cta=64 * 1024))

    def test_serialization_waves(self):
        res = KernelResources(threads_per_cta=1024, regs_per_thread=32)
        assert serialization_factor(PASCAL_GTX1080, res, 1) == 1
        assert serialization_factor(PASCAL_GTX1080, res, 2) == 1
        assert serialization_factor(PASCAL_GTX1080, res, 3) == 2
        assert serialization_factor(PASCAL_GTX1080, res, 32) == 16

    def test_serialization_multiple_sms(self):
        res = KernelResources(threads_per_cta=1024, regs_per_thread=32)
        assert serialization_factor(PASCAL_GTX1080, res, 32, sm_count=16) == 1

    def test_occupancy_fraction(self):
        res = KernelResources(threads_per_cta=1024, regs_per_thread=32)
        occ = occupancy(PASCAL_GTX1080, res)
        assert occ.occupancy_fraction == pytest.approx(1.0)


class TestCTA:
    def test_limits(self):
        with pytest.raises(ValueError):
            CTA(num_warps=0)
        with pytest.raises(ValueError):
            CTA(num_warps=MAX_WARPS_PER_CTA + 1)

    def test_threads_and_ids(self):
        cta = CTA(num_warps=4)
        assert cta.num_threads == 128
        assert np.array_equal(cta.thread_ids(), np.arange(128))

    def test_syncthreads_charges_all_warps(self):
        cta = CTA(num_warps=8)
        cta.syncthreads()
        assert cta.barrier_count == 1
        assert cta.ledger.total("sync") == 8.0

    def test_shared_allocation(self):
        cta = CTA(num_warps=2, shared_words=128)
        assert cta.shared is not None
        assert cta.shared.size_bytes == 512
        assert CTA(num_warps=2).shared is None


class TestKernelLaunch:
    def test_functional_outputs_per_cta(self):
        launch = KernelLaunch(PASCAL_GTX1080, grid_ctas=3, warps_per_cta=2)
        result = launch.run(lambda cta: cta.cta_id * 10)
        assert result.outputs == [0, 10, 20]

    def test_waves_scale_time_not_results(self):
        def body(cta):
            cta.ledger.phase("work", active_warps=cta.num_warps)
            cta.ledger.issue("alu", 1000)
            return cta.cta_id

        r2 = KernelLaunch(PASCAL_GTX1080, grid_ctas=2,
                          warps_per_cta=32).run(body)
        r4 = KernelLaunch(PASCAL_GTX1080, grid_ctas=4,
                          warps_per_cta=32).run(body)
        assert r2.waves == 1 and r4.waves == 2
        # 4 CTAs in 2 waves take ~2x the time of 2 CTAs in 1 wave
        assert r4.seconds == pytest.approx(2 * r2.seconds, rel=0.01)

    def test_invalid_launch(self):
        with pytest.raises(ValueError):
            KernelLaunch(PASCAL_GTX1080, grid_ctas=0)
        with pytest.raises(ValueError):
            KernelLaunch(PASCAL_GTX1080, sm_count=999)
