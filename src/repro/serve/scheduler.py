"""Deterministic virtual-time event loop.

Every scheduling decision in the serve layer runs on a **virtual clock**:
submissions arrive at caller-supplied virtual times, batch deadlines are
virtual offsets, completion times are flush time plus *modeled* device
seconds.  No wall clock is ever consulted on a decision path, so a serve
run is a pure function of (workload stream, seed, configuration) -- two
runs with the same inputs produce identical match outcomes, shed counts,
and retune events, and any production incident can be replayed exactly.

Events with equal timestamps are ordered by a monotonically increasing
sequence number (insertion order), which makes tie-breaking deterministic
without consulting the RNG; the seeded generator exists for *policy*
randomness (e.g. load-generator jitter), never for ordering.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Iterator

import numpy as np

__all__ = ["VirtualClock", "TimerEvent", "EventLoop"]


class VirtualClock:
    """Monotonic virtual-seconds clock."""

    def __init__(self, start: float = 0.0) -> None:
        self.now = float(start)

    def advance_to(self, vt: float) -> None:
        """Move the clock forward (never backward)."""
        if vt < self.now:
            raise ValueError(f"virtual time cannot run backward "
                             f"({vt} < {self.now})")
        self.now = vt


@dataclass(order=True, frozen=True)
class TimerEvent:
    """One scheduled callback: ``(vt, seq)`` is the total order."""

    vt: float
    seq: int
    kind: str = field(compare=False)
    payload: Any = field(compare=False, default=None)


class EventLoop:
    """Seeded, deterministic timer queue on a :class:`VirtualClock`.

    Parameters
    ----------
    seed:
        Seeds :attr:`rng`, the single generator every stochastic serve
        policy must draw from (one seed -> one replayable run).
    """

    def __init__(self, seed: int = 0, start: float = 0.0) -> None:
        self.clock = VirtualClock(start)
        self.rng = np.random.default_rng(seed)
        self.seed = seed
        self._heap: list[TimerEvent] = []
        self._next_seq = 0

    @property
    def now(self) -> float:
        return self.clock.now

    def schedule(self, vt: float, kind: str, payload: Any = None) -> TimerEvent:
        """Enqueue an event at virtual time ``vt`` (>= now)."""
        if vt < self.clock.now:
            raise ValueError(f"cannot schedule into the past "
                             f"({vt} < {self.clock.now})")
        ev = TimerEvent(vt=vt, seq=self._next_seq, kind=kind, payload=payload)
        self._next_seq += 1
        heapq.heappush(self._heap, ev)
        return ev

    def due(self, vt: float) -> Iterator[TimerEvent]:
        """Pop and yield events with timestamp <= ``vt`` in (vt, seq)
        order, advancing the clock to each event as it fires and to
        ``vt`` at the end."""
        while self._heap and self._heap[0].vt <= vt:
            ev = heapq.heappop(self._heap)
            self.clock.advance_to(ev.vt)
            yield ev
        self.clock.advance_to(vt)

    def drain(self) -> Iterator[TimerEvent]:
        """Pop and yield every remaining event in order."""
        while self._heap:
            ev = heapq.heappop(self._heap)
            self.clock.advance_to(ev.vt)
            yield ev

    def __len__(self) -> int:
        return len(self._heap)

    # -- snapshot format ----------------------------------------------------------

    def export_state(self) -> dict:
        """Full loop state for the serve snapshot format.

        Captures everything a bit-identical replay needs: the virtual
        clock, the ``(vt, seq)`` cursor, every pending timer, and the
        PCG64 generator state (``bit_generator.state`` -- the 128-bit
        internal counters, not the seed, so a mid-run restore continues
        the *same* random stream rather than restarting it).
        """
        return {"now": self.clock.now,
                "seed": self.seed,
                "next_seq": self._next_seq,
                "rng_state": self.rng.bit_generator.state,
                "events": [(ev.vt, ev.seq, ev.kind, ev.payload)
                           for ev in sorted(self._heap)]}

    def restore_state(self, state: dict) -> None:
        """Inverse of :meth:`export_state`."""
        self.clock = VirtualClock(float(state["now"]))
        self.seed = int(state["seed"])
        self._next_seq = int(state["next_seq"])
        self.rng = np.random.default_rng(self.seed)
        self.rng.bit_generator.state = state["rng_state"]
        self._heap = [TimerEvent(vt=float(vt), seq=int(seq),
                                 kind=str(kind), payload=payload)
                      for vt, seq, kind, payload in state["events"]]
        heapq.heapify(self._heap)
