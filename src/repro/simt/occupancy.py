"""Occupancy calculator.

Mirrors NVIDIA's occupancy calculator: given a kernel's resource footprint
(threads per CTA, shared memory per CTA, registers per thread) and a
:class:`~repro.simt.gpu.GPUSpec`, compute how many CTAs can be co-resident
on one SM.  The paper relies on this: *"According to NVIDIA's occupancy
calculator, this algorithm allows two CTAs to run in parallel.  Hence,
more CTAs leads to serialization"* (Section VI-A).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .gpu import GPUSpec

__all__ = ["KernelResources", "OccupancyResult", "occupancy", "serialization_factor"]

#: Register allocation granularity (registers are allocated per warp in
#: blocks of this many).
_REG_ALLOC_UNIT = 256

#: Shared memory allocation granularity in bytes.
_SMEM_ALLOC_UNIT = 256


@dataclass(frozen=True)
class KernelResources:
    """Per-CTA resource footprint of a kernel launch."""

    threads_per_cta: int
    shared_mem_per_cta: int = 0
    regs_per_thread: int = 32

    def __post_init__(self) -> None:
        if self.threads_per_cta < 1:
            raise ValueError("threads_per_cta must be positive")
        if self.shared_mem_per_cta < 0 or self.regs_per_thread < 0:
            raise ValueError("resource sizes cannot be negative")

    @property
    def warps_per_cta(self) -> int:
        """Warps per CTA (32-thread granularity, rounded up)."""
        return math.ceil(self.threads_per_cta / 32)


@dataclass(frozen=True)
class OccupancyResult:
    """Outcome of an occupancy computation."""

    max_resident_ctas: int
    limiting_resource: str
    active_warps_per_sm: int
    occupancy_fraction: float


def occupancy(spec: GPUSpec, res: KernelResources) -> OccupancyResult:
    """Maximum co-resident CTAs per SM and the limiting resource.

    Raises
    ------
    ValueError
        If a single CTA does not fit on the SM at all.
    """
    if res.threads_per_cta > spec.max_threads_per_cta:
        raise ValueError(
            f"{res.threads_per_cta} threads/CTA exceeds device limit "
            f"{spec.max_threads_per_cta}")

    limits: dict[str, int] = {}
    limits["ctas"] = spec.max_ctas_per_sm
    limits["warps"] = spec.max_warps_per_sm // res.warps_per_cta

    if res.shared_mem_per_cta > 0:
        if res.shared_mem_per_cta > spec.shared_mem_per_cta:
            raise ValueError(
                f"{res.shared_mem_per_cta} B shared/CTA exceeds per-CTA limit "
                f"{spec.shared_mem_per_cta}")
        smem = _round_up(res.shared_mem_per_cta, _SMEM_ALLOC_UNIT)
        limits["shared_mem"] = spec.shared_mem_per_sm // smem

    regs_per_warp = _round_up(res.regs_per_thread * 32, _REG_ALLOC_UNIT)
    if regs_per_warp > 0:
        regs_per_cta = regs_per_warp * res.warps_per_cta
        limits["registers"] = spec.registers_per_sm // regs_per_cta

    limiting = min(limits, key=lambda k: limits[k])
    max_ctas = limits[limiting]
    if max_ctas < 1:
        raise ValueError(f"kernel does not fit on {spec.name}: "
                         f"limited by {limiting}")
    active_warps = max_ctas * res.warps_per_cta
    return OccupancyResult(
        max_resident_ctas=max_ctas,
        limiting_resource=limiting,
        active_warps_per_sm=min(active_warps, spec.max_warps_per_sm),
        occupancy_fraction=min(active_warps, spec.max_warps_per_sm)
        / spec.max_warps_per_sm,
    )


def serialization_factor(spec: GPUSpec, res: KernelResources,
                         launched_ctas: int, sm_count: int = 1) -> float:
    """How many waves the launch needs on ``sm_count`` SMs.

    The paper pins all matching CTAs to a single SM (``sm_count=1``), so
    launching more CTAs than the occupancy bound serializes them into
    waves: 5 CTAs at 2-resident run as ceil(5/2) = 3 waves, i.e. a 3x
    slowdown relative to a single wave of parallel CTAs.
    """
    if launched_ctas < 1:
        raise ValueError("launched_ctas must be positive")
    resident = occupancy(spec, res).max_resident_ctas * max(1, sm_count)
    return math.ceil(launched_ctas / resident)


def _round_up(value: int, unit: int) -> int:
    return ((value + unit - 1) // unit) * unit
