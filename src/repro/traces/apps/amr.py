"""AMR suite model: Boxlib.

Adaptive mesh refinement regrids between steps, so the neighbor sets
drift over time and are size-skewed (ranks owning refined regions talk
to many more peers).  Section VI-A singles Boxlib out, together with
Nekbone, for its irregular rank-usage distribution -- the case that
unbalances statically partitioned queues.
"""

from __future__ import annotations

import numpy as np

from .base import AppModel, TraceBuilder, skewed_neighbors

__all__ = ["Boxlib"]


class Boxlib(AppModel):
    """Block-structured AMR: drifting, skewed halo exchanges."""

    name = "amr_boxlib"
    full_name = "AMR Boxlib"
    suite = "amr"
    description = "regridding halo exchange with skewed peer degrees"
    default_ranks = 48
    default_steps = 8

    #: steps between regrids (neighbor-set reshuffles)
    REGRID_EVERY = 3

    def build(self, b: TraceBuilder, n_ranks: int, steps: int,
              rng: np.random.Generator) -> None:
        nbrs = skewed_neighbors(n_ranks, k_min=3, k_max=40, rng=rng,
                                 hot_fraction=0.08)
        for step in range(steps):
            if step and step % self.REGRID_EVERY == 0:
                nbrs = skewed_neighbors(n_ranks, k_min=3, k_max=40, rng=rng,
                                 hot_fraction=0.08)
            pairs = [(s, d) for s in range(n_ranks) for d in nbrs[s]]
            # tag identifies the fine/coarse level pair plus a phase bit
            b.exchange(pairs,
                       tag_of=lambda s, d, k, st=step: (st % 4) * 8 + k % 8,
                       msgs_per_pair=2, prepost_fraction=0.5, rng=rng)
            b.barrier(n_ranks)
