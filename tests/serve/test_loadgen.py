"""Open-loop load generation and the serve bench record schema."""

from __future__ import annotations

import numpy as np

from repro.bench.regression import (ServePerfRecord, append_entry,
                                    serve_entry_rates, validate_serve_entry)
from repro.serve import (DEFAULT_BENCH_APPS, busiest_rank, merge_workloads,
                         run_workload, tenant_stream_from_trace,
                         workload_from_app)
from repro.traces import generate_trace


class TestStreamExtraction:
    def test_busiest_rank_is_deterministic_and_in_range(self):
        trace = generate_trace("df_amg", n_ranks=8, steps=2, seed=0)
        rank = busiest_rank(trace)
        assert 0 <= rank < trace.n_ranks
        assert rank == busiest_rank(generate_trace("df_amg", n_ranks=8,
                                                   steps=2, seed=0))

    def test_chunks_preserve_trace_order(self):
        trace = generate_trace("df_amg", n_ranks=8, steps=2, seed=0)
        rank = busiest_rank(trace)
        fine = tenant_stream_from_trace(trace, rank, chunk_envelopes=16)
        coarse = tenant_stream_from_trace(trace, rank,
                                          chunk_envelopes=10 ** 9)
        assert len(coarse) == 1
        # concatenating the fine chunks reproduces the coarse stream
        fine_msgs = np.concatenate([m.src for m, _ in fine if len(m)])
        assert fine_msgs.tolist() == coarse[0][0].src.tolist()
        assert all(len(m) + len(r) <= 16 for m, r in fine)

    def test_wildcards_survive_extraction(self):
        from repro.core.envelope import ANY_SOURCE
        trace = generate_trace("df_minife", n_ranks=8, steps=2, seed=0)
        chunks = tenant_stream_from_trace(trace, busiest_rank(trace))
        any_src = any((r.src == ANY_SOURCE).any() for _, r in chunks)
        assert any_src   # df_minife is the Table I MPI_ANY_SOURCE user


class TestWorkloads:
    def test_default_apps_cover_the_lattice(self):
        assert len(DEFAULT_BENCH_APPS) >= 3
        apps = dict(DEFAULT_BENCH_APPS)
        assert apps["df_minife"] is True       # wildcard user
        assert apps["df_amg"] is False         # ordering-tolerant

    def test_same_seed_same_workload(self):
        a = workload_from_app("df_amg", n_ranks=8, steps=2, seed=5)
        b = workload_from_app("df_amg", n_ranks=8, steps=2, seed=5)
        assert [x.vt for x in a.arrivals] == [x.vt for x in b.arrivals]
        assert all(
            x.messages.src.tolist() == y.messages.src.tolist()
            and x.requests.tag.tolist() == y.requests.tag.tolist()
            for x, y in zip(a.arrivals, b.arrivals))

    def test_arrivals_are_open_loop_and_sorted(self):
        w = workload_from_app("df_amg", n_ranks=8, steps=2, seed=0,
                              rate_rps=1000.0)
        vts = [a.vt for a in w.arrivals]
        assert vts == sorted(vts)
        assert all(vt > 0 for vt in vts)

    def test_merge_interleaves_by_virtual_time(self):
        parts = [workload_from_app(app, n_ranks=8, steps=2, seed=0,
                                   ordering_required=ordering)
                 for app, ordering in DEFAULT_BENCH_APPS]
        merged = merge_workloads("mixed", parts)
        vts = [a.vt for a in merged.arrivals]
        assert vts == sorted(vts)
        assert len(merged.tenants) == len(DEFAULT_BENCH_APPS)
        assert merged.n_envelopes == sum(p.n_envelopes for p in parts)

    def test_run_workload_is_deterministic(self):
        w = workload_from_app("df_amg", n_ranks=8, steps=2, seed=2,
                              ordering_required=False)
        reports = []
        for _ in range(2):
            service, _ = run_workload(w, n_shards=2, seed=2,
                                      promote_after=2)
            reports.append(service.report())
        assert reports[0] == reports[1]
        assert reports[0]["matched"] > 0


class TestRecordSchema:
    def _record(self, workload: str = "df_amg") -> ServePerfRecord:
        return ServePerfRecord(
            workload=workload, tenants=1, n_envelopes=100, submitted=10,
            accepted=10, shed_retryable=0, shed_overloaded=0, flushes=3,
            matched=40, retunes=1, seconds=0.01,
            matches_per_second=4000.0, latency_p50_vt=1e-4,
            latency_p99_vt=2e-4, seed=0)

    def test_appended_entry_validates(self, tmp_path):
        path = tmp_path / "BENCH_serve.json"
        report = append_entry([self._record(), self._record("df_minife")],
                              label="test", path=path)
        entry = report["entries"][-1]
        assert validate_serve_entry(entry) == []
        assert serve_entry_rates(entry) == {"df_amg": 4000.0,
                                            "df_minife": 4000.0}

    def test_validation_flags_missing_fields(self):
        assert validate_serve_entry({"label": "x"})  # no timestamp/records
        bad = {"label": "x", "timestamp": "t",
               "records": [{"workload": "w"}]}
        problems = validate_serve_entry(bad)
        assert any("missing 'matched'" in p for p in problems)

    def test_committed_report_validates(self):
        from repro.bench.regression import load_report, serve_report_path
        report = load_report(serve_report_path())
        assert report["entries"], "BENCH_serve.json must ship an entry"
        for entry in report["entries"]:
            assert validate_serve_entry(entry) == []
