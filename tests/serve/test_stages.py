"""Per-stage wall-clock accounting, including the ``transport`` stage.

The ``transport`` stage exists because the cluster router does real
work -- frame encode/decode and queue hand-off -- that no pre-cluster
stage could attribute: before it, router/IPC time silently leaked into
whatever stage ran next, so the serve bench's "match %" column was
wrong in multi-process mode.  The contract pinned here:

* ``transport`` is a first-class member of ``SERVE_STAGES``;
* an in-process run charges **zero** transport time (no process
  boundary exists);
* a cluster run charges **positive** transport time on the router, and
  the merged per-stage view still includes the worker-side stages;
* attaching a clock never perturbs outcomes (measurement-only).
"""

from __future__ import annotations

from repro.serve import (SERVE_STAGES, StageClock, run_cluster_workload,
                         run_workload, workload_from_app)


def small_workload(seed: int = 5):
    return workload_from_app("df_amg", rate_rps=2000.0, n_ranks=8,
                             steps=2, seed=seed, ordering_required=False)


class TestStageClock:
    def test_transport_is_a_pipeline_stage(self):
        assert "transport" in SERVE_STAGES
        # Between workload construction and the first serve decision.
        assert SERVE_STAGES.index("transport") < \
            SERVE_STAGES.index("admission")

    def test_clock_accounting(self):
        clock = StageClock()
        assert clock.snapshot() == {s: 0.0 for s in SERVE_STAGES}
        t0 = clock.start()
        clock.stop("transport", t0)
        clock.add("transport", 0.25)
        snap = clock.snapshot()
        assert snap["transport"] >= 0.25
        assert clock.counts["transport"] == 2
        assert all(snap[s] == 0.0 for s in SERVE_STAGES
                   if s != "transport")

    def test_in_process_run_charges_zero_transport(self):
        clock = StageClock()
        svc, _ = run_workload(small_workload(), n_shards=1, seed=5,
                              stages=clock)
        snap = clock.snapshot()
        assert snap["transport"] == 0.0
        assert snap["match"] > 0.0

    def test_cluster_run_charges_transport(self):
        clock = StageClock()
        cluster, _ = run_cluster_workload(small_workload(), n_workers=1,
                                          seed=5, start_method="fork",
                                          stages=clock)
        # The router did real encode/enqueue work...
        assert clock.snapshot()["transport"] > 0.0
        # ...and the merged view spans both processes: router transport
        # plus the worker-side pipeline stages.
        merged = cluster.merged_stage_seconds()
        assert set(merged) == set(SERVE_STAGES)
        assert merged["transport"] >= clock.snapshot()["transport"]
        assert merged["match"] > 0.0

    def test_clock_is_measurement_only(self):
        """Attaching a clock must not perturb the deterministic record."""
        wl = small_workload(seed=9)
        bare, _ = run_workload(wl, n_shards=1, seed=9)
        clocked, _ = run_workload(wl, n_shards=1, seed=9,
                                  stages=StageClock())
        assert clocked.report() == bare.report()
