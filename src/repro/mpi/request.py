"""Nonblocking-operation handles (MPI_Request equivalents)."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Callable

__all__ = ["RequestState", "Request", "Status"]


class RequestState(enum.Enum):
    """Lifecycle of a nonblocking operation."""

    PENDING = "pending"
    COMPLETE = "complete"
    CANCELLED = "cancelled"


@dataclass
class Status:
    """Completion metadata (MPI_Status equivalent)."""

    source: int
    tag: int
    comm: int
    nbytes: int


class Request:
    """Handle for a nonblocking send or receive.

    ``wait()`` drives the owning cluster's progress engine until the
    operation completes, mirroring how MPI progress happens inside
    blocking calls.
    """

    def __init__(self, kind: str, progress_fn: Callable[[], None]) -> None:
        if kind not in ("send", "recv"):
            raise ValueError("kind must be 'send' or 'recv'")
        self.kind = kind
        self._progress = progress_fn
        self._state = RequestState.PENDING
        self._payload: Any = None
        self._status: Status | None = None

    # -- completion plumbing (called by the progress engine) ------------------

    def _complete(self, payload: Any, status: Status) -> None:
        if self._state is not RequestState.PENDING:
            raise RuntimeError(f"completing a {self._state.value} request")
        self._payload = payload
        self._status = status
        self._state = RequestState.COMPLETE

    def cancel(self) -> None:
        """Cancel a pending request (only valid before completion)."""
        if self._state is RequestState.COMPLETE:
            raise RuntimeError("cannot cancel a completed request")
        self._state = RequestState.CANCELLED

    # -- user API ----------------------------------------------------------------

    @property
    def state(self) -> RequestState:
        """Current lifecycle state."""
        return self._state

    def test(self) -> bool:
        """Nonblocking completion check (drives one progress pass)."""
        if self._state is RequestState.PENDING:
            self._progress()
        return self._state is RequestState.COMPLETE

    def wait(self, max_rounds: int = 10_000) -> Any:
        """Block until complete; returns the received payload (None for
        sends).

        Raises
        ------
        RuntimeError
            If the request cannot complete within ``max_rounds`` progress
            passes -- the simulation's deadlock detector.
        """
        rounds = 0
        while self._state is RequestState.PENDING:
            self._progress()
            rounds += 1
            if rounds > max_rounds:
                raise RuntimeError(
                    f"{self.kind} request did not complete after "
                    f"{max_rounds} progress rounds: likely deadlock "
                    "(missing matching send/recv)")
        if self._state is RequestState.CANCELLED:
            raise RuntimeError("waited on a cancelled request")
        return self._payload

    @property
    def status(self) -> Status:
        """Completion status; only valid after completion."""
        if self._status is None:
            raise RuntimeError("request not complete; no status available")
        return self._status
