"""Warp-level SIMT primitives.

This module is the bottom layer of the functional SIMT simulator.  It
provides the CUDA warp intrinsics the paper's matching algorithms are
written against:

* ``ballot`` -- evaluate a predicate on every lane of a warp and collect
  the results into a 32-bit vector (LSB = lane 0), mirroring CUDA's
  ``__ballot`` / ``__ballot_sync``.
* ``ffs`` / ``clz`` / ``popc`` / ``brev`` -- the hardware bit functions the
  paper's reduce phase relies on (``__ffs`` is 1-based, returning 0 for a
  zero input, exactly like the PTX instruction).
* warp shuffles (``shfl``, ``shfl_up``, ``shfl_down``, ``shfl_xor``) and
  votes (``any``/``all``).

Lane state is represented as NumPy arrays of length ``warp_size`` so that
a warp instruction is a single vectorized operation, which is both faithful
to the SIMT model (one instruction, many lanes) and fast to simulate.

All functions here are *functional*: they do not account for cost.  The
:class:`~repro.simt.timing.CostLedger` accounting is performed by
:class:`Warp`, which wraps these primitives and records one warp
instruction per call, the way a real warp scheduler issues them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
import numpy as np

__all__ = [
    "WARP_SIZE",
    "FULL_MASK",
    "ffs32",
    "clz32",
    "popc32",
    "brev32",
    "full_active",
    "lane_ids",
    "lanemask_lt",
    "pack_ballot",
    "unpack_ballot",
    "Warp",
    "WarpDivergenceError",
]

#: Number of threads per warp on every NVIDIA generation the paper measures.
WARP_SIZE = 32

#: All-lanes-active mask (``0xFFFFFFFF``), as used by ``__ballot_sync``.
FULL_MASK = 0xFFFFFFFF


class WarpDivergenceError(RuntimeError):
    """Raised when a warp-synchronous operation is attempted on a warp whose
    lanes have diverged in a way the operation cannot express (for example a
    shuffle from an inactive lane)."""


def ffs32(x: int) -> int:
    """Find-first-set, CUDA ``__ffs`` semantics.

    Returns the 1-based position of the least significant set bit of the
    32-bit value ``x``, or 0 when ``x == 0``.

    >>> ffs32(0b1000)
    4
    >>> ffs32(0)
    0
    """
    x = int(x) & FULL_MASK
    if x == 0:
        return 0
    return (x & -x).bit_length()


def clz32(x: int) -> int:
    """Count leading zeros of a 32-bit value, CUDA ``__clz`` semantics.

    Returns 32 for ``x == 0``.

    >>> clz32(1)
    31
    >>> clz32(0)
    32
    """
    x = int(x) & FULL_MASK
    return 32 - x.bit_length()


def popc32(x: int) -> int:
    """Population count (number of set bits), CUDA ``__popc`` semantics."""
    return bin(int(x) & FULL_MASK).count("1")


def brev32(x: int) -> int:
    """Bit-reverse a 32-bit value, CUDA ``__brev`` semantics."""
    x = int(x) & FULL_MASK
    out = 0
    for _ in range(32):
        out = (out << 1) | (x & 1)
        x >>= 1
    return out


#: Cached per-warp constant arrays, keyed by warp size.  These are
#: returned read-only and shared: the pedantic paths request them once
#: per warp instruction, and reallocating an arange/ones per call
#: dominated the host profile of the warp-level simulator.
_LANE_IDS_CACHE: dict[int, np.ndarray] = {}
_FULL_ACTIVE_CACHE: dict[int, np.ndarray] = {}
_LANE_WEIGHTS_CACHE: dict[int, np.ndarray] = {}


def lane_ids(warp_size: int = WARP_SIZE) -> np.ndarray:
    """Per-lane thread index within the warp (``threadIdx.x % warpSize``).

    Returns a cached **read-only** array; copy before mutating.
    """
    arr = _LANE_IDS_CACHE.get(warp_size)
    if arr is None:
        arr = np.arange(warp_size, dtype=np.int64)
        arr.setflags(write=False)
        _LANE_IDS_CACHE[warp_size] = arr
    return arr


def full_active(warp_size: int = WARP_SIZE) -> np.ndarray:
    """All-lanes-active boolean mask (cached, **read-only**).

    The no-divergence steady state every kernel starts from; sharing one
    frozen array avoids a ``np.ones`` allocation per warp per call on the
    pedantic paths.  Warp methods never mutate ``active`` in place (they
    rebind it), so sharing is safe; copy before mutating.
    """
    arr = _FULL_ACTIVE_CACHE.get(warp_size)
    if arr is None:
        arr = np.ones(warp_size, dtype=bool)
        arr.setflags(write=False)
        _FULL_ACTIVE_CACHE[warp_size] = arr
    return arr


def lanemask_lt(lane: int) -> int:
    """CUDA ``%lanemask_lt``: bits set for all lanes strictly below ``lane``."""
    if not 0 <= lane < WARP_SIZE:
        raise ValueError(f"lane must be in [0, {WARP_SIZE}), got {lane}")
    return (1 << lane) - 1


def pack_ballot(predicate: np.ndarray) -> int:
    """Pack a boolean lane vector into a 32-bit ballot word (LSB = lane 0).

    This is the pure bit-packing at the heart of ``__ballot``; it accepts
    vectors of any length up to 32 (shorter warps are used by the paper's
    figures for queues below 64 entries).
    """
    bits = np.asarray(predicate, dtype=bool)
    if bits.ndim != 1 or bits.size > 32:
        raise ValueError("ballot predicate must be a 1-D vector of <=32 lanes")
    # dot with powers of two; exact for 32 bits in int64
    weights = _LANE_WEIGHTS_CACHE.get(bits.size)
    if weights is None:
        weights = 1 << np.arange(bits.size, dtype=np.int64)
        weights.setflags(write=False)
        _LANE_WEIGHTS_CACHE[bits.size] = weights
    return int(bits.astype(np.int64) @ weights)


def unpack_ballot(word: int, warp_size: int = WARP_SIZE) -> np.ndarray:
    """Expand a 32-bit ballot word back into a boolean lane vector."""
    word = int(word) & FULL_MASK
    return ((word >> lane_ids(warp_size)) & 1).astype(bool)


@dataclass
class Warp:
    """A single warp: 32 lanes executing in lockstep.

    Lane-local registers are NumPy arrays of length :attr:`warp_size`; each
    method models one warp instruction and reports it to the attached
    :class:`~repro.simt.timing.CostLedger` (if any).

    Parameters
    ----------
    warp_id:
        Index of this warp within its CTA.
    warp_size:
        Number of lanes; 32 on all simulated generations, but the paper's
        discussion of *variable warp sizes* (Section VII-C) motivates keeping
        this a parameter.
    ledger:
        Optional cost ledger; when present every primitive records its issue.
    active:
        Boolean lane mask.  Inactive lanes have their results masked off,
        mirroring how divergent SIMT threads are handled in hardware.
    """

    warp_id: int = 0
    warp_size: int = WARP_SIZE
    ledger: "object | None" = None
    active: np.ndarray = field(default=None)  # type: ignore[assignment]
    #: Nesting depth of :meth:`push_mask` frames not yet reconverged by
    #: :meth:`pop_mask`.  Pure bookkeeping (no cost); the sanitizer's
    #: synccheck reads it to flag barriers inside divergent regions.
    mask_depth: int = field(default=0, init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.warp_size < 1 or self.warp_size > 32:
            raise ValueError("warp_size must be in [1, 32]")
        if self.active is None:
            # private copy: callers may mutate a warp's mask in place
            self.active = full_active(self.warp_size).copy()
        else:
            self.active = np.asarray(self.active, dtype=bool).copy()
            if self.active.shape != (self.warp_size,):
                raise ValueError("active mask must have warp_size entries")

    # -- cost hooks --------------------------------------------------------

    def _issue(self, kind: str, count: int = 1) -> None:
        if self.ledger is not None:
            self.ledger.issue(kind, count)

    # -- lane bookkeeping ----------------------------------------------------

    @property
    def lanes(self) -> np.ndarray:
        """Lane indices ``[0, warp_size)``."""
        return lane_ids(self.warp_size)

    def activemask(self) -> int:
        """CUDA ``__activemask()``: ballot of currently active lanes."""
        self._issue("alu")
        return pack_ballot(self.active)

    def push_mask(self, predicate: np.ndarray) -> np.ndarray:
        """Enter a divergent branch: returns the previous mask; active lanes
        become ``active & predicate``.  Pair with :meth:`pop_mask`."""
        predicate = np.asarray(predicate, dtype=bool)
        prev = self.active.copy()
        self.active = self.active & predicate
        self.mask_depth += 1
        self._issue("branch")
        return prev

    def pop_mask(self, saved: np.ndarray) -> None:
        """Reconverge after a divergent branch."""
        self.active = np.asarray(saved, dtype=bool).copy()
        self.mask_depth = max(0, self.mask_depth - 1)

    # -- arithmetic (cost-tracked helpers) ----------------------------------

    def op(self, result: np.ndarray, count: int = 1) -> np.ndarray:
        """Record ``count`` ALU warp instructions and pass ``result`` through.

        Used by kernels to attribute vectorized NumPy arithmetic to the
        warp's instruction stream without re-implementing every operator.
        """
        self._issue("alu", count)
        return result

    # -- votes and ballots ---------------------------------------------------

    def ballot(self, predicate: np.ndarray) -> int:
        """``__ballot(predicate)``: 32-bit vector of per-lane predicate results.

        Inactive lanes always contribute a 0 bit, as in hardware.
        """
        predicate = np.asarray(predicate, dtype=bool)
        if predicate.shape != (self.warp_size,):
            raise ValueError("predicate must have one entry per lane")
        self._issue("ballot")
        return pack_ballot(predicate & self.active)

    def any(self, predicate: np.ndarray) -> bool:
        """``__any(predicate)``: true if any active lane's predicate holds."""
        self._issue("vote")
        return bool(np.any(np.asarray(predicate, dtype=bool) & self.active))

    def all(self, predicate: np.ndarray) -> bool:
        """``__all(predicate)``: true if every active lane's predicate holds."""
        self._issue("vote")
        predicate = np.asarray(predicate, dtype=bool)
        return bool(np.all(predicate[self.active])) if self.active.any() else True

    # -- shuffles ------------------------------------------------------------

    def _check_shuffle_sources(self, src: np.ndarray) -> None:
        """Reject shuffles where any active lane reads an inactive source.

        In hardware that read is undefined behaviour; every shuffle variant
        enforces the same rule (window-clamped lanes read themselves, which
        is always defined since the reader is active).
        """
        if not self.active[src[self.active]].all():
            raise WarpDivergenceError("shuffle reads from inactive lane")

    def shfl(self, values: np.ndarray, src_lane: int | np.ndarray) -> np.ndarray:
        """``__shfl``: every lane reads ``values`` from ``src_lane``.

        ``src_lane`` may be a scalar (broadcast) or a per-lane index vector.
        Reading from an inactive lane raises :class:`WarpDivergenceError`,
        which in hardware would be undefined behaviour.
        """
        values = np.asarray(values)
        src = np.broadcast_to(np.asarray(src_lane, dtype=np.int64) % self.warp_size,
                              (self.warp_size,))
        self._check_shuffle_sources(src)
        self._issue("shfl")
        return values[src]

    def shfl_up(self, values: np.ndarray, delta: int) -> np.ndarray:
        """``__shfl_up``: lane ``i`` reads lane ``i - delta``; lanes below
        ``delta`` keep their own value.

        Like :meth:`shfl`, an active lane reading an inactive source raises
        :class:`WarpDivergenceError` (UB in hardware)."""
        values = np.asarray(values)
        src = self.lanes - int(delta)
        src = np.where(src < 0, self.lanes, src)
        self._check_shuffle_sources(src)
        self._issue("shfl")
        return values[src]

    def shfl_down(self, values: np.ndarray, delta: int) -> np.ndarray:
        """``__shfl_down``: lane ``i`` reads lane ``i + delta``; top lanes keep
        their own value.

        Like :meth:`shfl`, an active lane reading an inactive source raises
        :class:`WarpDivergenceError` (UB in hardware)."""
        values = np.asarray(values)
        src = self.lanes + int(delta)
        src = np.where(src >= self.warp_size, self.lanes, src)
        self._check_shuffle_sources(src)
        self._issue("shfl")
        return values[src]

    def shfl_xor(self, values: np.ndarray, mask: int) -> np.ndarray:
        """``__shfl_xor``: butterfly exchange pattern.

        Like :meth:`shfl`, an active lane reading an inactive source raises
        :class:`WarpDivergenceError` (UB in hardware)."""
        values = np.asarray(values)
        src = self.lanes ^ int(mask)
        src = np.where(src >= self.warp_size, self.lanes, src)
        self._check_shuffle_sources(src)
        self._issue("shfl")
        return values[src]

    # -- warp-level reductions (built from shuffles) -------------------------

    def reduce_sum(self, values: np.ndarray) -> int:
        """Warp tree-reduction via ``shfl_down``; returns the lane-0 total.

        Issues ``log2(warp_size)`` shuffle + add pairs, like the canonical
        CUDA warp reduce: inactive lanes contribute 0, then the tree runs
        reconverged under the full mask (the ``__shfl_down_sync(FULL_MASK,
        ...)`` idiom), so partial masks never make the shuffles read
        undefined lanes.
        """
        vals = np.asarray(values, dtype=np.int64).copy()
        vals[~self.active] = 0
        saved = self.active
        self.active = full_active(self.warp_size)
        try:
            delta = 1
            while delta < self.warp_size:
                shifted = self.shfl_down(vals, delta)
                self._issue("alu")
                vals = vals + np.where(self.lanes + delta < self.warp_size,
                                       shifted, 0)
                delta <<= 1
        finally:
            self.active = saved
        return int(vals[0])

    def inclusive_scan(self, values: np.ndarray) -> np.ndarray:
        """Warp-level inclusive prefix sum (Kogge-Stone via ``shfl_up``).

        Reconverges to the full mask for the shuffle tree, as
        :meth:`reduce_sum` does; inactive lanes contribute 0.
        """
        vals = np.asarray(values, dtype=np.int64).copy()
        vals[~self.active] = 0
        saved = self.active
        self.active = full_active(self.warp_size)
        try:
            delta = 1
            while delta < self.warp_size:
                shifted = self.shfl_up(vals, delta)
                self._issue("alu")
                vals = vals + np.where(self.lanes >= delta, shifted, 0)
                delta <<= 1
        finally:
            self.active = saved
        return vals

    def exclusive_scan(self, values: np.ndarray) -> np.ndarray:
        """Warp-level exclusive prefix sum."""
        inc = self.inclusive_scan(values)
        self._issue("alu")
        return inc - np.asarray(values, dtype=np.int64)
