"""Regression net for the paper's quantitative anchors.

These tests pin the calibrated model to the numbers the paper reports.
If a model change moves an anchor by more than the stated tolerance, a
test here fails -- re-run the calibration (see DESIGN.md section 5)
rather than loosening the tolerance.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.envelope import EnvelopeBatch
from repro.core.hash_matching import HashMatcher
from repro.core.list_matching import ListMatcher
from repro.core.matrix_matching import MatrixMatcher
from repro.core.partitioned import PartitionedMatcher
from repro.simt.gpu import GPU
from tests.conftest import partial_match_pair, permuted_pair


@pytest.fixture(scope="module")
def wl512():
    rng = np.random.default_rng(1234)
    msgs = EnvelopeBatch.random(512, n_ranks=64, n_tags=64, rng=rng)
    return msgs, msgs.take(rng.permutation(512))


@pytest.fixture(scope="module")
def wl1024():
    rng = np.random.default_rng(1234)
    msgs = EnvelopeBatch.random(1024, n_ranks=64, n_tags=64, rng=rng)
    return msgs, msgs.take(rng.permutation(1024))


def mps(outcome) -> float:
    return outcome.matches_per_second() / 1e6


class TestFigure4Anchors:
    """Single-CTA matrix matching: ~3 / ~3.5 / ~6 Mmatches/s steady."""

    @pytest.mark.parametrize("gen,rate", [("kepler", 3.0), ("maxwell", 3.5),
                                          ("pascal", 6.0)])
    def test_steady_rate(self, wl512, gen, rate):
        out = MatrixMatcher(spec=GPU.by_name(gen)).match(*wl512)
        assert mps(out) == pytest.approx(rate, rel=0.15)

    def test_rate_flat_below_1024(self):
        """'The performance of our algorithm is steady' across queue
        lengths below the 1024 knee."""
        rng = np.random.default_rng(5)
        rates = []
        for n in (64, 128, 256, 512):
            msgs = EnvelopeBatch.random(n, n_ranks=32, n_tags=32, rng=rng)
            reqs = msgs.take(rng.permutation(n))
            rates.append(mps(MatrixMatcher().match(msgs, reqs)))
        assert max(rates) / min(rates) < 1.35

    def test_knee_at_1024(self, wl512, wl1024):
        """'At a queue length of 1024, the performance drops because ...
        the reduce phase cannot be overlapped anymore.'"""
        r512 = mps(MatrixMatcher().match(*wl512))
        r1024 = mps(MatrixMatcher().match(*wl1024))
        assert r1024 < 0.8 * r512

    def test_decay_beyond_1024(self):
        """'Queues that contain more than 1024 elements require multiple
        iterations and the performance drops accordingly.'"""
        rng = np.random.default_rng(6)
        rates = []
        for n in (1024, 2048, 4096):
            msgs = EnvelopeBatch.random(n, n_ranks=64, n_tags=64, rng=rng)
            reqs = msgs.take(rng.permutation(n))
            out = MatrixMatcher().match(msgs, reqs)
            assert out.iterations == n // 1024
            rates.append(mps(out))
        assert rates[0] > rates[1] > rates[2]

    def test_generation_ordering(self, wl512):
        rates = [mps(MatrixMatcher(spec=g).match(*wl512))
                 for g in GPU.all_generations()]
        assert rates[0] < rates[1] < rates[2]


class TestFigure5Anchors:
    """Partitioned matching: linear-ish scaling, ~60M ceiling, waves."""

    def test_scaling_with_queue_count(self, wl1024):
        rates = {q: mps(PartitionedMatcher(n_queues=q).match(*wl1024))
                 for q in (1, 2, 4, 8, 16, 32)}
        assert rates[2] > 1.8 * rates[1] / 2 * 2  # monotone growth
        for lo, hi in [(1, 2), (2, 4), (4, 8), (8, 16), (16, 32)]:
            assert rates[hi] > rates[lo]
        # ~60 Mmatches/s ceiling at 32 queues on Pascal (abstract)
        assert rates[32] == pytest.approx(60.0, rel=0.2)

    def test_average_speedup_over_older_generations(self):
        """'the GTX1080 yields an average speedup of 2.12x over the Kepler
        K80 and 1.56x over the Maxwell M40'."""
        rng = np.random.default_rng(77)
        msgs = EnvelopeBatch.random(2048, n_ranks=64, n_tags=8, rng=rng)
        reqs = msgs.take(rng.permutation(2048))
        ratios_k, ratios_m = [], []
        for q in (1, 2, 4, 8, 16, 32):
            rp = mps(PartitionedMatcher(spec=GPU.pascal_gtx1080(),
                                        n_queues=q).match(msgs, reqs))
            rk = mps(PartitionedMatcher(spec=GPU.kepler_k80(),
                                        n_queues=q).match(msgs, reqs))
            rm = mps(PartitionedMatcher(spec=GPU.maxwell_m40(),
                                        n_queues=q).match(msgs, reqs))
            ratios_k.append(rp / rk)
            ratios_m.append(rp / rm)
        assert np.mean(ratios_k) == pytest.approx(2.12, rel=0.15)
        assert np.mean(ratios_m) == pytest.approx(1.56, rel=0.15)

    def test_serialization_beyond_two_ctas(self):
        """Longer totals need more CTAs; beyond two resident they wave."""
        rng = np.random.default_rng(8)
        msgs = EnvelopeBatch.random(8192, n_ranks=64, n_tags=8, rng=rng)
        reqs = msgs.take(rng.permutation(8192))
        out = PartitionedMatcher(n_queues=8).match(msgs, reqs)
        assert out.meta["ctas"] == 8
        assert out.meta["waves"] == 4


class TestFigure6bAnchors:
    """Hash matching: 110/150 Kepler, ~500 Pascal 32-CTA."""

    @pytest.mark.parametrize("gen,ctas,rate", [
        ("kepler", 1, 110.0), ("kepler", 32, 150.0),
        ("pascal", 32, 500.0),
    ])
    def test_paper_stated_rates(self, wl1024, gen, ctas, rate):
        out = HashMatcher(spec=GPU.by_name(gen), n_ctas=ctas).match(*wl1024)
        assert mps(out) == pytest.approx(rate, rel=0.15)

    def test_pascal_speedup_over_kepler(self, wl1024):
        """'This translates into a speedup of 3.3x over Kepler.'"""
        p = mps(HashMatcher(spec=GPU.pascal_gtx1080(), n_ctas=32).match(
            *wl1024))
        k = mps(HashMatcher(spec=GPU.kepler_k80(), n_ctas=32).match(*wl1024))
        assert p / k == pytest.approx(3.3, rel=0.15)

    def test_hash_beats_matrix_by_80x(self, wl512, wl1024):
        """Abstract: 'speedups of ... 80x by allowing out-of-order message
        delivery' on Pascal -- the hash rate against the matrix matcher's
        steady headline rate (~6M), which is how the paper's 500/6 ~ 80x
        arithmetic works."""
        h = mps(HashMatcher(n_ctas=32).match(*wl1024))
        m = mps(MatrixMatcher().match(*wl512))
        assert h / m == pytest.approx(80.0, rel=0.25)


class TestSectionVIAnchors:
    """Compaction (~10%) and match-fraction (~linear) statements."""

    def test_compaction_costs_about_ten_percent(self, wl1024):
        on = mps(MatrixMatcher(compaction=True).match(*wl1024))
        off = mps(MatrixMatcher(compaction=False).match(*wl1024))
        assert 0.05 < 1 - on / off < 0.2

    def test_rate_linear_in_match_fraction(self):
        rng = np.random.default_rng(11)
        msgs, reqs_half = partial_match_pair(rng, 1024, 0.5, n_ranks=64,
                                             n_tags=64)
        rng2 = np.random.default_rng(11)
        msgs_f, reqs_full = permuted_pair(rng2, 1024, n_ranks=64, n_tags=64)
        half = MatrixMatcher().match(msgs, reqs_half)
        full = MatrixMatcher().match(msgs_f, reqs_full)
        assert half.matched_count == 512
        ratio = half.matches_per_second() / full.matches_per_second()
        assert ratio == pytest.approx(0.5, abs=0.12)


class TestCPUBaselineAnchors:
    """Section II-C: ~30M matches/s short queues, <5M beyond 512."""

    def test_short_queue_rate(self):
        msgs = EnvelopeBatch(src=[0] * 1000, tag=[0] * 1000)
        out = ListMatcher().match(msgs, msgs)
        assert mps(out) == pytest.approx(30.0, rel=0.15)

    def test_long_queue_rate_below_5m(self):
        n = 1024
        rng = np.random.default_rng(3)
        msgs = EnvelopeBatch(src=list(range(n)), tag=[0] * n)
        reqs = msgs.take(rng.permutation(n))
        out = ListMatcher().match(msgs, reqs)
        assert mps(out) < 5.0
