"""Fabric chaos: SIGKILL a worker mid-superstep, prove the collective
still completes with a bit-identical record.

Runs outside the tier-1 gate (marked ``chaos``); CI's fabric job
re-selects it with ``-m chaos``.  Seeds come from ``CHAOS_SEEDS``
(comma-separated, default ``11,23,47``) like the other chaos suites;
each seed varies which worker is armed and which superstep it dies on.

The invariants extend the cluster suite's to the combining fabric:

* a ``fabric_xfer`` frame is journaled like any state-mutating frame,
  so a worker SIGKILLed between a transfer's delivery and its superstep
  flush replays the transfer verbatim -- zero envelopes lost;
* the recovered run's collective results, keyed flush record, and
  report are bit-identical to a clean run of the same seed (and hence
  to the in-process service, which the clean run is tested against in
  ``tests/serve/test_fabric.py``).
"""

from __future__ import annotations

import os

import pytest

from repro.mpi import collectives as C
from repro.serve import ClusterService, CollectiveBridge, TenantSpec

pytestmark = pytest.mark.chaos

SEEDS = [int(s) for s in os.environ.get("CHAOS_SEEDS", "11,23,47").split(",")]

SPAN = 4
N_WORKERS = 3


def run_suite(seed: int, arm: tuple[int, int] | None):
    cl = ClusterService(n_workers=N_WORKERS, seed=seed, start_method="fork")
    cl.register(TenantSpec(name="mpi", span=SPAN, autotune=False))
    with cl:
        if arm is not None:
            cl.arm_worker_exit(*arm)
        bridge = CollectiveBridge(cl, "mpi")
        record = {
            "alltoall": C.alltoall(bridge, [[(i, j) for j in range(SPAN)]
                                            for i in range(SPAN)]),
            "allreduce": C.allreduce(bridge, list(range(SPAN)),
                                     lambda a, b: a + b),
            "allgather": C.allgather(bridge, [("g", r)
                                              for r in range(SPAN)]),
            "scan": C.scan(bridge, [2 ** r for r in range(SPAN)],
                           lambda a, b: a + b),
        }
        keyed = {(r.tenant, r.flush_seq):
                 (r.flush_vt, tuple(r.covered_seqs), tuple(r.latencies_vt),
                  tuple(r.outcome.request_to_message.tolist()))
                 for r in cl.results}
        report = cl.report()
        recoveries = len(cl.recoveries)
    return record, keyed, report, recoveries


@pytest.mark.parametrize("seed", SEEDS)
def test_sigkill_mid_superstep_replays_identically(seed):
    clean = run_suite(seed, arm=None)
    assert clean[3] == 0
    # arm a worker that actually hosts sub-tenants, at a seed-varied
    # flush depth, so the kill lands inside a later superstep's flush
    armed_worker = [1, 2, 1][seed % 3]
    after = 1 + seed % 3
    chaos = run_suite(seed, arm=(armed_worker, after))
    assert chaos[3] >= 1, "the armed SIGKILL never fired"
    assert chaos[0] == clean[0], "collective results diverged"
    assert chaos[1] == clean[1], "keyed flush record diverged"
    assert chaos[2] == clean[2], "report diverged"
