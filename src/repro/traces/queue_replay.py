"""Queue reconstruction from traces (the Figure 2 analysis).

"Based on the trace files, we reconstruct the queues to assess their
maximum length at any matching attempt" (Section IV-A).  This module
replays a :class:`~repro.traces.events.Trace` through per-rank UMQ/PRQ
pairs with full MPI matching semantics and records depth statistics.

The replay is an *analysis tool* (the paper used Python/R scripts for
the same job), so unlike the GPU matchers it is free to use indexed
lookups: messages and requests are bucketed by their concrete fields
with lazy deletion, making the replay O(events) even for the NEKBONE /
MultiGrid traces whose queues reach thousands of entries.
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass, field

import numpy as np

from .events import Trace

__all__ = ["QueueDepthStats", "RankReplay", "replay", "figure2_summary"]

_WILD = -1


@dataclass
class QueueDepthStats:
    """Depth observations of one queue during replay."""

    max_depth: int = 0
    _sum: int = 0
    _n: int = 0

    def observe(self, depth: int) -> None:
        self.max_depth = max(self.max_depth, depth)
        self._sum += depth
        self._n += 1

    @property
    def mean_depth(self) -> float:
        return self._sum / self._n if self._n else 0.0

    @property
    def attempts(self) -> int:
        return self._n


class _IndexedQueue:
    """Order-preserving matching queue with bucketed lookup.

    Entries carry a monotonically increasing sequence number (queue
    order).  ``find_earliest(keys)`` returns the live entry with the
    smallest sequence number among any of the candidate buckets --
    exactly "first match in queue order" without a linear walk.
    Removal is lazy: buckets keep stale heads that are skipped on access.
    """

    def __init__(self) -> None:
        self._buckets: dict = defaultdict(deque)
        self._live: set[int] = set()
        self._meta: dict[int, tuple] = {}
        self._next_seq = 0

    def __len__(self) -> int:
        return len(self._live)

    def add(self, keys: tuple, meta: tuple = ()) -> int:
        """Insert an entry reachable under each of ``keys``."""
        seq = self._next_seq
        self._next_seq += 1
        for key in keys:
            self._buckets[key].append(seq)
        self._live.add(seq)
        self._meta[seq] = meta
        return seq

    def find_earliest(self, keys: tuple) -> int | None:
        """Smallest live sequence number reachable under any key."""
        best = None
        for key in keys:
            bucket = self._buckets.get(key)
            if not bucket:
                continue
            while bucket and bucket[0] not in self._live:
                bucket.popleft()  # lazy deletion
            if bucket and (best is None or bucket[0] < best):
                best = bucket[0]
        return best

    def remove(self, seq: int) -> tuple:
        """Remove an entry; returns its metadata."""
        self._live.discard(seq)
        return self._meta.pop(seq)


@dataclass
class RankReplay:
    """Replay state and statistics of one rank."""

    rank: int
    umq: _IndexedQueue = field(default_factory=_IndexedQueue)
    prq: _IndexedQueue = field(default_factory=_IndexedQueue)
    umq_stats: QueueDepthStats = field(default_factory=QueueDepthStats)
    prq_stats: QueueDepthStats = field(default_factory=QueueDepthStats)
    unexpected_total: int = 0
    expected_total: int = 0

    # -- event handlers ---------------------------------------------------------

    def on_message(self, src: int, tag: int, comm: int) -> None:
        """A message arrived: search the PRQ, else join the UMQ."""
        self.umq_stats.observe(len(self.umq))
        self.prq_stats.observe(len(self.prq))
        # a message can satisfy any of the four request wildcard forms
        candidates = ((src, tag, comm), (src, _WILD, comm),
                      (_WILD, tag, comm), (_WILD, _WILD, comm))
        seq = self.prq.find_earliest(candidates)
        if seq is not None:
            self.prq.remove(seq)
            self.expected_total += 1
        else:
            self.umq.add(((src, tag, comm),))
            self.unexpected_total += 1

    def on_post(self, src: int, tag: int, comm: int) -> None:
        """A receive was posted: search the UMQ, else join the PRQ."""
        self.umq_stats.observe(len(self.umq))
        self.prq_stats.observe(len(self.prq))
        if src != _WILD and tag != _WILD:
            candidates = ((src, tag, comm),)
        else:
            # wildcard requests scan every message bucket they reach; the
            # indexed queue needs the message-side key, which is concrete,
            # so wildcard forms fall back to a filtered linear candidate
            # set over bucket keys.
            candidates = tuple(
                key for key in self.umq._buckets
                if key[2] == comm
                and (src == _WILD or key[0] == src)
                and (tag == _WILD or key[1] == tag))
        seq = self.umq.find_earliest(candidates)
        if seq is not None:
            self.umq.remove(seq)
        else:
            keys = ((src, tag, comm),)
            self.prq.add(keys)

    def summary(self) -> dict:
        """Per-rank statistics dictionary."""
        return {
            "rank": self.rank,
            "umq_max": self.umq_stats.max_depth,
            "umq_mean": self.umq_stats.mean_depth,
            "prq_max": self.prq_stats.max_depth,
            "prq_mean": self.prq_stats.mean_depth,
            "unexpected": self.unexpected_total,
            "expected": self.expected_total,
            "attempts": self.umq_stats.attempts,
        }


def replay(trace: Trace) -> list[RankReplay]:
    """Replay a trace; returns per-rank replay states with statistics.

    Sends are delivered to the destination instantly (the GAS write
    model), so arrival order equals global trace order -- which preserves
    pair ordering, the property MPI matching needs.
    """
    ranks = [RankReplay(rank=r) for r in range(trace.n_ranks)]
    for ev in trace.events:
        if ev.kind == "send":
            ranks[ev.dst].on_message(ev.rank, ev.tag, ev.comm)
        elif ev.kind == "post_recv":
            ranks[ev.rank].on_post(ev.src, ev.tag, ev.comm)
        # barriers carry no queue traffic
    return ranks


def figure2_summary(trace: Trace) -> dict:
    """The Figure 2 statistic set for one application trace.

    Returns mean/median/max across ranks of the per-rank maximum queue
    depths, for both UMQ and PRQ.
    """
    states = replay(trace)
    umq_max = np.array([s.umq_stats.max_depth for s in states])
    prq_max = np.array([s.prq_stats.max_depth for s in states])
    return {
        "app": trace.app,
        "n_ranks": trace.n_ranks,
        "umq_max_mean": float(umq_max.mean()),
        "umq_max_median": float(np.median(umq_max)),
        "umq_max_max": int(umq_max.max()),
        "prq_max_mean": float(prq_max.mean()),
        "prq_max_median": float(np.median(prq_max)),
        "prq_max_max": int(prq_max.max()),
        "unexpected_fraction": (
            sum(s.unexpected_total for s in states)
            / max(1, sum(s.unexpected_total + s.expected_total
                         for s in states))),
    }
