"""Hypothesis fuzz for the snapshot codec and the cluster wire frames.

Two layers, one contract each:

* ``repro.serve.state.dumps`` / ``loads`` -- any snapshotable value
  (nested containers of scalars, strings, bytes, and ndarrays of every
  supported dtype/shape) round-trips **byte-identically**:
  ``dumps(loads(dumps(x))) == dumps(x)``.  Byte-identity is stronger
  than value equality and is what checkpoint diffing and the identity
  suites lean on.
* ``repro.serve.wire`` frames -- the same property through
  ``encode_frame`` / ``decode_frame`` for every frame kind, plus the
  integrity guarantee: **every** single-bit corruption of a frame or a
  snapshot blob raises (CRC32 detects all 1-bit errors); corruption is
  never silent.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve import (FRAME_KINDS, SnapshotError, WireError,
                         decode_frame, encode_frame)
from repro.serve.state import dumps, loads

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

# NaN breaks value-equality assertions; the byte-identity property
# would hold regardless, but keeping comparisons simple is worth more
# than fuzzing one float bit pattern.
_floats = st.floats(allow_nan=False, allow_infinity=True, width=64)

_scalars = st.one_of(
    st.none(), st.booleans(),
    st.integers(min_value=-(2 ** 130), max_value=2 ** 130),
    _floats,
    st.text(max_size=32),
    st.binary(max_size=48),
)

_dtypes = st.sampled_from([np.int8, np.uint8, np.int16, np.int32,
                           np.int64, np.uint64, np.float32, np.float64,
                           np.bool_])


@st.composite
def ndarrays(draw):
    dtype = np.dtype(draw(_dtypes))
    # 0-d arrays are out of scope: the codec treats them as scalars, and
    # no snapshot producer emits them.
    shape = tuple(draw(st.lists(st.integers(0, 5), min_size=1,
                                max_size=3)))
    n = int(np.prod(shape, dtype=np.int64))
    raw = draw(st.binary(min_size=n * dtype.itemsize,
                         max_size=n * dtype.itemsize))
    arr = np.frombuffer(raw, dtype=dtype).reshape(shape).copy()
    if dtype.kind == "f":
        # Scrub NaNs from the raw-byte reinterpretation (see _floats).
        arr = np.nan_to_num(arr, nan=0.0)
    return arr


_leaves = st.one_of(_scalars, ndarrays())

_values = st.recursive(
    _leaves,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.lists(children, max_size=4).map(tuple),
        st.dictionaries(st.text(max_size=8), children, max_size=4),
    ),
    max_leaves=12,
)


def assert_equal_tree(a, b):
    if isinstance(a, np.ndarray):
        assert isinstance(b, np.ndarray)
        assert a.dtype == b.dtype and a.shape == b.shape
        assert np.array_equal(a, b)
    elif isinstance(a, dict):
        assert list(a) == list(b)
        for k in a:
            assert_equal_tree(a[k], b[k])
    elif isinstance(a, (list, tuple)):
        assert type(a) is type(b) and len(a) == len(b)
        for x, y in zip(a, b):
            assert_equal_tree(x, y)
    else:
        assert a == b and type(a) is type(b)


def sample_bit_positions(n_bits: int, limit: int = 256) -> list[int]:
    """Every bit for small blobs; an evenly-spread + header-dense sample
    for large ones (exhaustive flipping is quadratic in blob size)."""
    if n_bits <= limit:
        return list(range(n_bits))
    head = list(range(min(128, n_bits)))
    step = max(1, n_bits // (limit - len(head)))
    return head + list(range(128, n_bits, step))


# ---------------------------------------------------------------------------
# Snapshot codec
# ---------------------------------------------------------------------------

class TestSnapshotFuzz:
    @settings(max_examples=150, deadline=None)
    @given(_values)
    def test_round_trip_is_byte_identical(self, obj):
        blob = dumps(obj)
        rt = loads(blob)
        assert_equal_tree(rt, obj)
        assert dumps(rt) == blob

    @settings(max_examples=40, deadline=None)
    @given(_values)
    def test_every_single_bit_flip_is_rejected(self, obj):
        blob = dumps(obj)
        for pos in sample_bit_positions(len(blob) * 8):
            corrupt = bytearray(blob)
            corrupt[pos // 8] ^= 1 << (pos % 8)
            with pytest.raises(SnapshotError):
                loads(bytes(corrupt))

    @settings(max_examples=60, deadline=None)
    @given(_values, st.integers(0, 64))
    def test_truncation_is_rejected(self, obj, cut):
        blob = dumps(obj)
        if cut >= len(blob):
            cut = len(blob) - 1
        with pytest.raises(SnapshotError):
            loads(blob[:cut])


# ---------------------------------------------------------------------------
# Wire frames
# ---------------------------------------------------------------------------

class TestWireFuzz:
    @settings(max_examples=150, deadline=None)
    @given(st.sampled_from(sorted(FRAME_KINDS)), _values)
    def test_frame_round_trip_is_byte_identical(self, kind, payload):
        frame = encode_frame(kind, payload)
        got_kind, got_payload = decode_frame(frame)
        assert got_kind == kind
        assert_equal_tree(got_payload, payload)
        assert encode_frame(got_kind, got_payload) == frame

    @settings(max_examples=30, deadline=None)
    @given(st.sampled_from(sorted(FRAME_KINDS)), _values)
    def test_every_single_bit_flip_is_rejected(self, kind, payload):
        frame = encode_frame(kind, payload)
        for pos in sample_bit_positions(len(frame) * 8):
            corrupt = bytearray(frame)
            corrupt[pos // 8] ^= 1 << (pos % 8)
            with pytest.raises((WireError, SnapshotError)):
                decode_frame(bytes(corrupt))

    @settings(max_examples=40, deadline=None)
    @given(st.sampled_from(sorted(FRAME_KINDS)), _values,
           st.integers(0, 64))
    def test_truncation_is_rejected(self, kind, payload, cut):
        frame = encode_frame(kind, payload)
        if cut >= len(frame):
            cut = len(frame) - 1
        with pytest.raises((WireError, SnapshotError)):
            decode_frame(frame[:cut])

    def test_unknown_kind_rejected(self):
        with pytest.raises(WireError, match="kind"):
            encode_frame("no-such-frame", None)
