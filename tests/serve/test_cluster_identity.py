"""Cross-process determinism: a same-seed cluster run is bit-identical
to the in-process :class:`MatchingService`.

The contract under test is the cluster's core relaxation payoff: serve
decisions never read wall clocks or process identity, and placement is
the same stable CRC32 hash whether ``n`` counts in-process shards or
worker processes -- so ``ClusterService(n_workers=N)`` must reproduce
``MatchingService(n_shards=N)`` exactly: same tickets, same flush
results (virtual timestamps, covered seqs, per-request latencies,
engine labels), same report dict.  Identity must survive admission
shedding (shed decisions are part of the deterministic record, not an
exception to it) and session tenants (carried state crosses flushes).

Tests default to the ``fork`` start method for speed; one smoke pins
the ``spawn`` contract (workers must rebuild everything from the wire
init blob, never inherit router memory).
"""

from __future__ import annotations

import multiprocessing

import pytest

from repro.serve import (AdmissionPolicy, BatchPolicy, ClusterError,
                         ClusterService, MatchingService, merge_workloads,
                         run_cluster_workload, run_workload, stable_shard,
                         workload_from_app)
from repro.serve.loadgen import ServeWorkload


def mixed_workload(seed: int = 7, *, steps: int = 3, n_ranks: int = 24,
                   session: bool = False):
    parts = [workload_from_app("df_minife", rate_rps=2000.0,
                               n_ranks=n_ranks, steps=steps, seed=seed,
                               tenant_name="mini", session=session),
             workload_from_app("df_amg", rate_rps=1500.0, n_ranks=n_ranks,
                               steps=steps, seed=seed + 1,
                               ordering_required=False, tenant_name="amg",
                               session=session)]
    return merge_workloads("mix", parts)


def keyed_flushes(results):
    """Flush results keyed for order-independent comparison.

    The router interleaves response queues nondeterministically in wall
    time, so ``results`` list order may differ between runs; the keyed
    *content* -- everything virtual-time-derived -- may not.
    """
    out = {}
    for r in results:
        key = (r.tenant, r.flush_seq)
        assert key not in out, f"duplicate flush {key}"
        out[key] = (r.shard_id, r.flush_vt, r.covered_seqs,
                    r.latencies_vt, r.engine_label,
                    r.outcome.matched_count)
    return out


def assert_identical(cluster, service):
    assert keyed_flushes(cluster.results) == keyed_flushes(service.results)
    assert cluster.ticket_list() == service.tickets
    assert cluster.report() == service.report()


class TestClusterIdentity:
    def test_two_workers_match_two_shards(self):
        wl = mixed_workload(seed=7)
        svc, _ = run_workload(wl, n_shards=2, seed=7)
        cluster, _ = run_cluster_workload(wl, n_workers=2, seed=7,
                                          start_method="fork")
        assert cluster.report()["matched"] > 0
        assert_identical(cluster, svc)

    def test_single_worker_matches_single_shard(self):
        wl = mixed_workload(seed=11, steps=2)
        svc, _ = run_workload(wl, n_shards=1, seed=11)
        cluster, _ = run_cluster_workload(wl, n_workers=1, seed=11,
                                          start_method="fork")
        assert_identical(cluster, svc)

    def test_identity_under_admission_shedding(self):
        """Shed tickets are deterministic serve decisions: the cluster
        must shed the *same* requests with the same retry hints."""
        wl = mixed_workload(seed=13)
        admission = AdmissionPolicy(capacity=192, soft_fraction=0.5)
        batching = BatchPolicy(max_envelopes=256, max_delay_vt=0.05)
        svc, _ = run_workload(wl, n_shards=2, seed=13,
                              admission=admission, batching=batching)
        shed = svc.shed_counts
        assert shed["retryable"] + shed["overloaded"] > 0, \
            "scenario must actually shed"
        cluster, _ = run_cluster_workload(
            wl, n_workers=2, seed=13, admission=admission,
            batching=batching, start_method="fork")
        assert cluster.shed_counts == shed
        assert_identical(cluster, svc)

    def test_identity_with_session_tenants(self):
        """Persistent-UMQ carry-over crosses flush boundaries; the
        worker's carried state must evolve exactly like the shard's."""
        wl = mixed_workload(seed=17, session=True)
        svc, _ = run_workload(wl, n_shards=2, seed=17)
        cluster, _ = run_cluster_workload(wl, n_workers=2, seed=17,
                                          start_method="fork")
        assert_identical(cluster, svc)

    def test_spawn_smoke(self):
        """The spawn-safety contract: a spawned worker holds no forked
        router memory; everything arrives via the wire init blob."""
        wl = mixed_workload(seed=19, steps=2, n_ranks=8)
        svc, _ = run_workload(wl, n_shards=2, seed=19)
        cluster, _ = run_cluster_workload(wl, n_workers=2, seed=19,
                                          start_method="spawn")
        assert_identical(cluster, svc)


class TestRouterMechanics:
    def test_placement_is_the_stable_hash(self):
        wl = mixed_workload(seed=7, steps=2, n_ranks=8)
        cluster, _ = run_cluster_workload(wl, n_workers=2, seed=7,
                                          start_method="fork")
        report = cluster.report()
        for spec in wl.tenants:
            assert report["tenants"][spec.name]["shard"] == \
                stable_shard(spec.name, 2)

    def test_tickets_cover_every_submission_after_sync(self):
        wl = mixed_workload(seed=23, steps=2, n_ranks=8)
        cluster, _ = run_cluster_workload(wl, n_workers=2, seed=23,
                                          start_method="fork")
        tickets = cluster.ticket_list()
        assert len(tickets) == len(wl.arrivals)
        assert [t.seq for t in tickets] == list(range(len(wl.arrivals)))

    def test_virtual_time_cannot_run_backward(self):
        wl = mixed_workload(seed=7, steps=2, n_ranks=8)
        cluster = ClusterService(n_workers=2, seed=7, start_method="fork")
        for spec in wl.tenants:
            cluster.register(spec)
        with cluster:
            a = wl.arrivals[0]
            cluster.submit(a.tenant, a.messages, a.requests, at_vt=1.0)
            with pytest.raises(ClusterError, match="backward"):
                cluster.submit(a.tenant, a.messages, a.requests,
                               at_vt=0.5)
            with pytest.raises(ClusterError, match="backward"):
                cluster.advance_to(0.25)

    def test_register_after_start_rejected(self):
        wl = mixed_workload(seed=7, steps=2, n_ranks=8)
        cluster = ClusterService(n_workers=2, seed=7, start_method="fork")
        cluster.register(wl.tenants[0])
        with cluster:
            with pytest.raises(ClusterError, match="before start"):
                cluster.register(wl.tenants[1])

    def test_worker_stats_require_sync(self):
        cluster = ClusterService(n_workers=1, seed=0, start_method="fork")
        cluster.register(mixed_workload(steps=2, n_ranks=8).tenants[0])
        with cluster:
            with pytest.raises(ClusterError, match="sync"):
                cluster.worker_stats()
            cluster.sync()
            assert len(cluster.worker_stats()) == 1

    def test_checkpoint_identity_is_preserved(self):
        """An explicit mid-run checkpoint (journal truncation included)
        must not perturb the deterministic record."""
        wl = mixed_workload(seed=29, steps=2)
        svc, _ = run_workload(wl, n_shards=2, seed=29)
        cluster = ClusterService(n_workers=2, seed=29, start_method="fork")
        for spec in wl.tenants:
            cluster.register(spec)
        with cluster:
            half = len(wl.arrivals) // 2
            for a in wl.arrivals[:half]:
                cluster.submit(a.tenant, a.messages, a.requests,
                               at_vt=a.vt)
            cluster.checkpoint_now()
            for a in wl.arrivals[half:]:
                cluster.submit(a.tenant, a.messages, a.requests,
                               at_vt=a.vt)
            cluster.advance_to(cluster.now
                               + 2.0 * cluster.batching.max_delay_vt)
            cluster.drain()
            cluster.sync()
            assert_identical(cluster, svc)


class TestRouterHardening:
    """Regressions for router races around checkpointing, shutdown, and
    harness cleanup."""

    def test_no_checkpoint_mark_while_sending(self):
        """A checkpoint request marked while a journaled frame is still
        mid-delivery would truncate that frame from the journal without
        its effects being in the blob -- ``_maybe_checkpoint`` must be a
        no-op during ``_send``."""
        cluster = ClusterService(n_workers=1, seed=0, start_method="fork",
                                 checkpoint_every=1)
        cluster.register(mixed_workload(steps=2, n_ranks=8).tenants[0])
        with cluster:
            w = cluster._workers[0]
            w.flushes_since_ckpt = cluster.checkpoint_every  # past cadence
            cluster._in_send = True
            try:
                cluster._maybe_checkpoint()
                assert w.ckpt_mark is None, \
                    "checkpoint marked while a send was in flight"
            finally:
                cluster._in_send = False
            cluster._maybe_checkpoint()
            assert w.ckpt_mark is not None  # cadence fires once send ends

    def test_checkpoint_cadence_identity_under_tiny_queue(self):
        """checkpoint_every=1 with a depth-1 command queue maximises
        checkpoint requests racing full-queue sends; the record must
        stay bit-identical to the in-process service."""
        wl = mixed_workload(seed=37, steps=2)
        svc, _ = run_workload(wl, n_shards=2, seed=37)
        cluster, _ = run_cluster_workload(wl, n_workers=2, seed=37,
                                          start_method="fork",
                                          checkpoint_every=1,
                                          queue_depth=1)
        assert_identical(cluster, svc)

    def test_stop_does_not_recover_dead_workers(self):
        """A worker found dead during shutdown is terminated at the
        join, never respawned for a journal replay it would only be
        killed after."""
        cluster = ClusterService(n_workers=2, seed=0, start_method="fork")
        wl = mixed_workload(steps=2, n_ranks=8)
        for spec in wl.tenants:
            cluster.register(spec)
        cluster.start()
        victim = cluster._workers[0]
        victim.proc.terminate()
        victim.proc.join(timeout=5.0)
        cluster.stop()
        assert cluster.recoveries == []
        assert all(not w.alive() for w in cluster._workers)

    def test_replayed_export_does_not_accumulate_blobs(self):
        """A source recovery after a completed migration replays the
        journaled export_tenant frame; the re-posted tenant_state has no
        consumer and must be dropped, not accumulated."""
        wl = mixed_workload(seed=41, steps=2)
        cluster = ClusterService(n_workers=2, seed=41, start_method="fork")
        for spec in wl.tenants:
            cluster.register(spec)
        moved = wl.tenants[0].name
        src = stable_shard(moved, 2)
        with cluster:
            half = len(wl.arrivals) // 2
            for a in wl.arrivals[:half]:
                cluster.submit(a.tenant, a.messages, a.requests,
                               at_vt=a.vt)
            cluster.begin_migration(moved, 1 - src)
            for a in wl.arrivals[half:]:
                cluster.submit(a.tenant, a.messages, a.requests,
                               at_vt=a.vt)
            cluster.advance_to(cluster.now
                               + 2.0 * cluster.batching.max_delay_vt)
            assert cluster.migrations, "migration must have cut over"
            source = cluster._workers[src]
            source.proc.terminate()
            source.proc.join(timeout=5.0)
            cluster.drain()     # finds the dead source; journal replays
            cluster.sync()
            assert any(r.worker_id == src for r in cluster.recoveries)
            assert cluster._tenant_blobs == {}

    def test_arm_exit_reports_delivery(self):
        cluster = ClusterService(n_workers=1, seed=0, start_method="fork")
        cluster.register(mixed_workload(steps=2, n_ranks=8).tenants[0])
        with cluster:
            assert cluster.arm_worker_exit(0, after_flushes=100) is True

    def test_workload_harness_stops_workers_on_error(self):
        """An exception mid-drive (here: an arrival for an unregistered
        tenant) must still stop the worker processes, and the harness
        must forward the service knobs it advertises."""
        wl = mixed_workload(seed=7, steps=2, n_ranks=8)
        bad = ServeWorkload(name="bad", tenants=wl.tenants[:1],
                            arrivals=wl.arrivals)
        assert any(a.tenant != wl.tenants[0].name for a in bad.arrivals)
        with pytest.raises(KeyError):
            run_cluster_workload(bad, n_workers=1, seed=7,
                                 start_method="fork", verify=True,
                                 op_timeout=10.0, max_respawns=3)
        leaked = [p for p in multiprocessing.active_children()
                  if p.name.startswith("repro-serve-worker")]
        assert leaked == []


class TestClusterMigration:
    def test_live_migration_preserves_results(self):
        """Migrating a tenant between worker processes mid-stream loses
        nothing: every admitted request still flushes exactly once, and
        the report lands the tenant on the destination worker."""
        wl = mixed_workload(seed=31)
        cluster = ClusterService(n_workers=2, seed=31, start_method="fork")
        for spec in wl.tenants:
            cluster.register(spec)
        moved = wl.tenants[0].name
        src = stable_shard(moved, 2)
        dst = 1 - src
        with cluster:
            half = len(wl.arrivals) // 2
            for a in wl.arrivals[:half]:
                cluster.submit(a.tenant, a.messages, a.requests,
                               at_vt=a.vt)
            mig = cluster.begin_migration(moved, dst)
            assert mig.from_worker == src and mig.to_worker == dst
            assert len(mig.state_bytes) > 0
            for a in wl.arrivals[half:]:
                cluster.submit(a.tenant, a.messages, a.requests,
                               at_vt=a.vt)
            cluster.advance_to(cluster.now
                               + 2.0 * cluster.batching.max_delay_vt)
            cluster.drain()
            cluster.sync()
            assert mig.completed_vt is not None
            report = cluster.report()
            assert report["tenants"][moved]["shard"] == dst
            covered = sorted(s for r in cluster.results
                             for s in r.covered_seqs)
            accepted = sorted(t.seq for t in cluster.ticket_list()
                              if t.accepted)
            assert covered == accepted
