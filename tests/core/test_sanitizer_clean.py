"""Differential sanitizer suite: every shipped matcher runs clean.

The fixtures in :mod:`repro.simt.sanitize_fixtures` prove each checker
*can* fire; this suite is the other half of the differential argument:
the matching kernels we actually ship -- matrix, partitioned, hash,
bucket, list, on both their fast and pedantic paths -- produce zero
findings at representative sizes.  Together the two halves pin the
sanitizer as a meaningful oracle rather than a pass that is silent
because it checks nothing.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.harness import (matching_workload, ordered_workload,
                                 partial_workload, reversed_workload)
from repro.core.bucket_matching import BucketMatcher
from repro.core.envelope import ANY_SOURCE, ANY_TAG, EnvelopeBatch
from repro.core.hash_matching import HashMatcher
from repro.core.list_matching import ListMatcher
from repro.core.matrix_matching import MatrixMatcher
from repro.core.partitioned import PartitionedMatcher
from repro.simt.sanitize import Sanitizer
from repro.simt.sanitize_fixtures import EXPECTED_CODES, run_fixture


def wildcard_workload(n, seed=0):
    msgs, reqs = matching_workload(n, seed=seed)
    src = reqs.src.copy()
    tag = reqs.tag.copy()
    src[::2] = ANY_SOURCE
    tag[::3] = ANY_TAG
    return msgs, EnvelopeBatch(src, tag, reqs.comm)


WORKLOADS = {
    "random": matching_workload,
    "ordered": ordered_workload,
    "reversed": reversed_workload,
    "partial": lambda n, seed=0: partial_workload(n, 0.3, seed=seed),
    "wildcard": wildcard_workload,
}

# small enough to keep the suite fast, large enough to cross CTA and
# warp boundaries in the pedantic paths
SIZES = (96, 513)


class TestPedanticPathsClean:
    """The instrumented (per-warp simulated) paths are where races,
    uninitialized reads, and ledger drift would actually live."""

    @pytest.mark.parametrize("n", SIZES)
    @pytest.mark.parametrize("workload", sorted(WORKLOADS))
    def test_matrix_pedantic_clean(self, workload, n):
        msgs, reqs = WORKLOADS[workload](n, seed=0)
        san = Sanitizer()
        MatrixMatcher(warps_per_cta=2, window=8,
                      sanitize=san).match_pedantic(msgs, reqs)
        assert san.report.clean, san.report.summary()

    @pytest.mark.parametrize("n", SIZES)
    @pytest.mark.parametrize("workload",
                             ["random", "ordered", "reversed", "partial"])
    def test_hash_pedantic_clean(self, workload, n):
        # hash matching is exact-envelope only; wildcards are routed to
        # the matrix matcher by callers, so they are not exercised here
        msgs, reqs = WORKLOADS[workload](n, seed=0)
        san = Sanitizer()
        HashMatcher(sanitize=san).match_pedantic(msgs, reqs)
        assert san.report.clean, san.report.summary()

    def test_repeated_launches_accumulate_into_one_report(self):
        # one Sanitizer across several launches still comes back clean,
        # i.e. finalize() does not leak shadow state between kernels
        san = Sanitizer()
        m = MatrixMatcher(warps_per_cta=2, window=8, sanitize=san)
        h = HashMatcher(sanitize=san)
        for seed in (0, 1):
            msgs, reqs = matching_workload(96, seed=seed)
            m.match_pedantic(msgs, reqs)
            h.match_pedantic(msgs, reqs)
        assert san.report.clean, san.report.summary()
        san.report.assert_clean()   # no raise


class TestFastPathsClean:
    """Fast paths never touch the simulated memories, so the knob must
    be accepted and the report must stay trivially clean."""

    @pytest.mark.parametrize("factory", [
        lambda san: MatrixMatcher(sanitize=san),
        lambda san: PartitionedMatcher(n_queues=4, sanitize=san),
        lambda san: HashMatcher(sanitize=san),
        lambda san: BucketMatcher(sanitize=san),
        lambda san: ListMatcher(sanitize=san),
    ], ids=["matrix", "partitioned", "hash", "bucket", "list"])
    def test_fast_path_clean(self, factory):
        msgs, reqs = matching_workload(513, seed=0)
        san = Sanitizer()
        out = factory(san).match(msgs, reqs)
        assert out.matched_count == 513
        assert san.report.clean, san.report.summary()


class TestFixtureCatalogueFires:
    """The converse: every planted-defect fixture is detected.  (The
    per-fixture detail assertions live in tests/simt/test_sanitize.py;
    this keeps the differential pair visible in one file.)"""

    @pytest.mark.parametrize("name", sorted(EXPECTED_CODES))
    def test_fixture_is_not_clean(self, name):
        report = run_fixture(name)
        assert not report.clean
        checker, code = EXPECTED_CODES[name]
        assert any(f.checker == checker and f.code == code
                   for f in report.findings), report.summary()


def test_clean_report_roundtrips_through_summary():
    msgs, reqs = matching_workload(96, seed=0)
    san = Sanitizer()
    MatrixMatcher(warps_per_cta=2, window=8,
                  sanitize=san).match_pedantic(msgs, reqs)
    assert "clean" in san.report.summary()
    assert san.report.counts() == {}
    assert np.all([san.report.clean])
