"""Pickle-free wire frames for the cluster's process boundary.

The router and its worker processes speak a tiny framed protocol over
bounded multiprocessing queues.  Every frame is **data, never code**: the
payload is encoded with the same tagged binary codec the snapshot plane
uses (:mod:`repro.serve.state`), wrapped in a frame header with its own
magic, a format version, a one-byte frame kind, an explicit payload
length, and a CRC32 trailer covering the kind byte and the payload::

    RSRVWIRE | u16 version | u8 kind | u64 payload_len | payload | u32 crc

Design points:

* **No pickle of live objects.**  Envelope batches cross the boundary as
  their packed column ``state_dict`` (the cached packed64 key column
  included -- the zero re-marshalling contract survives the process
  hop); tickets, flush results, and tenant specs use the snapshot
  plane's canonical tuple/dict forms.  The only thing multiprocessing
  itself ever transports is ``bytes``.
* **Every single-bit corruption is rejected.**  A flipped bit lands in
  the magic (bad magic), the version (unsupported version), the length
  field (length mismatch), or the CRC-covered region (CRC mismatch) --
  there is no bit position whose corruption decodes silently (pinned by
  ``tests/serve/test_codec_fuzz.py``).
* **Kinds are a closed registry.**  A frame kind is a name from
  :data:`FRAME_KINDS`; unknown kind bytes are a :class:`WireError`, so a
  protocol skew between router and worker fails loudly at the boundary
  instead of corrupting matching state.
"""

from __future__ import annotations

import struct
import zlib

from .messages import FlushResult, TenantSpec, Ticket
from .state import (SnapshotError, _dec, _enc, _flush_result_from,
                    _flush_result_state, _spec_from, _spec_state,
                    _ticket_from, _ticket_state)

__all__ = ["WIRE_MAGIC", "WIRE_VERSION", "FRAME_KINDS", "WireError",
           "encode_frame", "decode_frame",
           "ticket_wire", "ticket_from_wire",
           "flush_wire", "flush_from_wire",
           "spec_wire", "spec_from_wire"]

#: Wire frame magic (8 bytes; distinct from the snapshot magic so a
#: frame can never be mistaken for a checkpoint blob or vice versa).
WIRE_MAGIC = b"RSRVWIRE"

#: Frame format version; decoders refuse versions they do not know.
WIRE_VERSION = 1

#: The protocol's frame kinds.  Router -> worker: ``submit`` (one routed
#: request), ``advance`` (broadcast virtual-time advance), ``drain``
#: (flush every accumulator), ``checkpoint`` (snapshot request),
#: ``stats`` (tokened stats request -- doubles as the FIFO barrier),
#: ``arm_exit`` (chaos: SIGKILL yourself mid-flush), ``export_tenant`` /
#: ``install_tenant`` / ``release_tenant`` (live migration legs),
#: ``stop`` (clean shutdown).  Worker -> router: ``ticket``, ``flush``,
#: ``checkpointed``, ``stats_reply``, ``tenant_state``, ``bye``.
FRAME_KINDS = (
    "submit", "advance", "drain", "checkpoint", "stats", "arm_exit",
    "export_tenant", "install_tenant", "release_tenant", "stop",
    "ticket", "flush", "checkpointed", "stats_reply", "tenant_state",
    "bye",
    # appended in PR 9 -- kind ids are tuple indices, so new kinds only
    # ever go at the end
    "fabric_xfer",
)

_KIND_ID = {kind: i for i, kind in enumerate(FRAME_KINDS)}

_HEADER = struct.Struct("<HBQ")   # version, kind, payload length


class WireError(ValueError):
    """A wire frame could not be encoded or decoded (corruption,
    truncation, bad magic/version/kind/CRC, or an unencodable payload)."""


def encode_frame(kind: str, payload: object = None) -> bytes:
    """Encode one ``(kind, payload)`` frame into its guarded wire form."""
    kind_id = _KIND_ID.get(kind)
    if kind_id is None:
        raise WireError(f"unknown frame kind {kind!r}")
    body = bytearray()
    try:
        _enc(payload, body)
    except SnapshotError as exc:
        raise WireError(f"unencodable {kind!r} payload: {exc}") from exc
    body = bytes(body)
    covered = bytes([kind_id]) + body
    return (WIRE_MAGIC
            + _HEADER.pack(WIRE_VERSION, kind_id, len(body))
            + body
            + struct.pack("<I", zlib.crc32(covered)))


def decode_frame(data: bytes) -> tuple[str, object]:
    """Decode :func:`encode_frame` output, verifying magic, version,
    kind, length, and CRC before touching the payload."""
    head = len(WIRE_MAGIC) + _HEADER.size
    if len(data) < head + 4:
        raise WireError("frame shorter than its header")
    if data[:len(WIRE_MAGIC)] != WIRE_MAGIC:
        raise WireError("bad frame magic")
    version, kind_id, length = _HEADER.unpack_from(data, len(WIRE_MAGIC))
    if version != WIRE_VERSION:
        raise WireError(f"unsupported wire version {version} "
                        f"(expected {WIRE_VERSION})")
    if len(data) != head + length + 4:
        raise WireError("frame length mismatch")
    body = data[head:head + length]
    (crc,) = struct.unpack_from("<I", data, head + length)
    if zlib.crc32(bytes([kind_id]) + body) != crc:
        raise WireError("frame CRC mismatch (corrupt payload)")
    if kind_id >= len(FRAME_KINDS):
        raise WireError(f"unknown frame kind id {kind_id}")
    try:
        payload, pos = _dec(body, 0)
    except SnapshotError as exc:
        raise WireError(f"corrupt frame payload: {exc}") from exc
    if pos != length:
        raise WireError("trailing bytes after frame payload")
    return FRAME_KINDS[kind_id], payload


# -- message-type payload forms --------------------------------------------------
#
# Thin public faces over the snapshot plane's canonical serializers, so
# the cluster module never reaches into state.py's underscore namespace
# and the two planes cannot drift apart on field layout.

def ticket_wire(ticket: Ticket) -> tuple:
    """A ticket's wire payload (the snapshot plane's tuple form)."""
    return _ticket_state(ticket)


def ticket_from_wire(payload) -> Ticket:
    """Inverse of :func:`ticket_wire`."""
    return _ticket_from(payload)


def flush_wire(result: FlushResult) -> dict:
    """A flush result's wire payload (columns and outcome included)."""
    return _flush_result_state(result)


def flush_from_wire(payload: dict) -> FlushResult:
    """Inverse of :func:`flush_wire`."""
    return _flush_result_from(payload)


def spec_wire(spec: TenantSpec) -> dict:
    """A tenant spec's wire payload."""
    return _spec_state(spec)


def spec_from_wire(payload: dict) -> TenantSpec:
    """Inverse of :func:`spec_wire`."""
    return _spec_from(payload)
