"""Matching engine facade: relaxation set -> algorithm/data structure.

:class:`MatchingEngine` is the public entry point of the core library.
Given a :class:`~repro.core.relaxations.RelaxationSet` it selects the
matcher the paper prescribes (Table II):

======================  =========  ==============================
relaxations             structure  matcher
======================  =========  ==============================
wildcards + ordering    matrix     :class:`MatrixMatcher` (1 queue)
no wildcards, ordering  matrix     :class:`PartitionedMatcher`
no ordering             hash       :class:`HashMatcher`
======================  =========  ==============================

with the compaction pass enabled exactly when unexpected messages are
allowed.  Optionally every outcome is cross-checked against the MPI
reference oracle (ordered configurations) or the relaxed validity checker
(unordered).

**Graceful degradation.**  By default a workload that uses a prohibited
feature raises :class:`~repro.core.relaxations.WorkloadViolation`.  With
``demote_on_violation=True`` the engine instead *demotes*: it moves to
the minimal relaxation set that admits the feature (see the demotion
lattice in :mod:`repro.core.relaxations`), rebuilds the matcher
(hash -> partitioned -> matrix direction only), records a
:class:`DemotionEvent`, and charges the reconfiguration as one
dynamic-parallelism child-kernel relaunch -- the same cost model the
adaptive planner uses.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..simt.gpu import GPUSpec, PASCAL_GTX1080
from .adaptive import RELAUNCH_OVERHEAD_CYCLES, relaunch_seconds
from .envelope import EnvelopeBatch
from .hash_matching import HashMatcher, HashTableConfig
from .list_matching import ListMatcher
from .matrix_matching import DEFAULT_WINDOW, MatrixMatcher
from .partitioned import PartitionedMatcher
from .relaxations import RelaxationSet, WorkloadViolation
from .result import MatchOutcome
from .verify import check_mpi_ordering, check_relaxed, reference_match

__all__ = ["MatchingEngine", "DemotionEvent"]


@dataclass(frozen=True)
class DemotionEvent:
    """One graceful-degradation step taken by the engine."""

    from_label: str
    to_label: str
    reason: str
    extra_seconds: float
    extra_cycles: float = RELAUNCH_OVERHEAD_CYCLES


class MatchingEngine:
    """Select and drive the right matcher for a relaxation set.

    Parameters
    ----------
    gpu:
        Simulated device (default Pascal GTX 1080).
    relaxations:
        Guarantee set; defaults to fully MPI-compliant matching.
    n_queues:
        Partition count when the source wildcard is prohibited.
    n_ctas:
        CTA count for the hash matcher.
    window:
        Matrix scan window.
    hash_config:
        Two-level table configuration for the hash matcher.
    verify:
        Cross-check every outcome against the reference semantics (slow;
        intended for tests and debugging).
    demote_on_violation:
        Graceful degradation: instead of raising
        :class:`~repro.core.relaxations.WorkloadViolation` on a runtime
        relaxation violation, demote to the strongest matcher that is
        still correct, record the :class:`DemotionEvent`, and charge the
        rebuild as a kernel relaunch.  Off by default (strict mode).
    obs:
        Optional :class:`~repro.obs.Observability` handle, forwarded to
        the matcher it builds.  ``None`` (default) keeps every hot path
        on the single-branch fast path with bit-identical results.

    Examples
    --------
    >>> from repro import GPU, MatchingEngine, RelaxationSet, EnvelopeBatch
    >>> eng = MatchingEngine(gpu=GPU.pascal_gtx1080(),
    ...                      relaxations=RelaxationSet(wildcards=False,
    ...                                                ordering=False,
    ...                                                unexpected=False))
    >>> msgs = EnvelopeBatch(src=[0, 1], tag=[7, 7])
    >>> reqs = EnvelopeBatch(src=[1, 0], tag=[7, 7])
    >>> eng.match(msgs, reqs).matched_count
    2
    """

    def __init__(self, gpu: GPUSpec = PASCAL_GTX1080,
                 relaxations: RelaxationSet | None = None,
                 n_queues: int = 4, n_ctas: int = 1,
                 window: int = DEFAULT_WINDOW,
                 hash_config: HashTableConfig | None = None,
                 verify: bool = False,
                 demote_on_violation: bool = False,
                 obs=None) -> None:
        self.gpu = gpu
        self.relaxations = (relaxations if relaxations is not None
                            else RelaxationSet())
        self.verify = verify
        self.demote_on_violation = demote_on_violation
        self._obs = obs
        self.demotions: list[DemotionEvent] = []
        self._pending_demotion_seconds = 0.0
        self._pending_demotion_cycles = 0.0
        # kept for matcher rebuilds after a demotion
        self._n_queues = n_queues
        self._n_ctas = n_ctas
        self._window = window
        self._hash_config = hash_config
        self._matcher = self._build_matcher()

    def _build_matcher(self):
        rel = self.relaxations
        compaction = rel.needs_compaction
        if not rel.ordering:
            return HashMatcher(spec=self.gpu, n_ctas=self._n_ctas,
                               config=self._hash_config, obs=self._obs)
        if rel.partitionable:
            return PartitionedMatcher(spec=self.gpu,
                                      n_queues=self._n_queues,
                                      window=self._window,
                                      compaction=compaction,
                                      obs=self._obs)
        return MatrixMatcher(spec=self.gpu, window=self._window,
                             compaction=compaction, obs=self._obs)

    # -- graceful degradation ---------------------------------------------------

    def _demote(self, new_rel: RelaxationSet, reason: str) -> DemotionEvent:
        """Move to ``new_rel``, rebuild the matcher, and book the
        reconfiguration cost against the next outcome."""
        event = DemotionEvent(from_label=self.relaxations.label(),
                              to_label=new_rel.label(), reason=reason,
                              extra_seconds=relaunch_seconds(self.gpu))
        self.demotions.append(event)
        if self._obs is not None:
            self._obs.count("engine.demotions")
            self._obs.instant("engine.demotion", from_label=event.from_label,
                              to_label=event.to_label, reason=reason)
        self.relaxations = new_rel
        self._matcher = self._build_matcher()
        self._pending_demotion_seconds += event.extra_seconds
        self._pending_demotion_cycles += event.extra_cycles
        return event

    def admit_requests(self, requests: EnvelopeBatch) -> None:
        """Validate a request batch against the active relaxations.

        Raises :class:`~repro.core.relaxations.WorkloadViolation` in
        strict mode; demotes (wildcard lattice move) when graceful
        degradation is enabled.
        """
        try:
            self.relaxations.validate_requests(requests)
        except WorkloadViolation as exc:
            if not self.demote_on_violation:
                raise
            self._demote(self.relaxations.demoted_for_wildcards(),
                         f"wildcard request: {exc}")
            self.relaxations.validate_requests(requests)

    def require_ordering(self) -> DemotionEvent | None:
        """Explicitly restore the non-overtaking guarantee (hash ->
        partitioned); returns the demotion event, or None when ordering
        is already guaranteed."""
        if self.relaxations.ordering:
            return None
        return self._demote(self.relaxations.demoted_for_ordering(),
                            "ordering required")

    @property
    def matcher(self):
        """The concrete matcher chosen for the relaxation set."""
        return self._matcher

    @property
    def data_structure(self) -> str:
        """Table II's data-structure column for this engine."""
        return self.relaxations.data_structure

    def match(self, messages: EnvelopeBatch,
              requests: EnvelopeBatch) -> MatchOutcome:
        """Validate the workload, match, and (optionally) verify semantics.

        With graceful degradation enabled, a runtime violation demotes
        the matcher and the pass is re-run under the new configuration
        instead of raising; the demotion and its relaunch cost are
        recorded on the outcome (``meta["demotions"]``).
        """
        obs = self._obs
        trace_start = (obs.tracer.now
                       if obs is not None and obs.tracer is not None else 0.0)
        self.admit_requests(requests)
        outcome = self._matcher.match(messages, requests)
        if not self.relaxations.unexpected:
            # All receives must have been pre-posted: any message left
            # unmatched after the pass arrived without a matching posted
            # receive, regardless of how many requests remain open.
            unexpected = outcome.n_messages - outcome.matched_count
            try:
                self.relaxations.validate_unexpected(unexpected)
            except WorkloadViolation as exc:
                if not self.demote_on_violation:
                    raise
                self._demote(self.relaxations.demoted_for_unexpected(),
                             f"unexpected messages: {exc}")
                outcome = self._matcher.match(messages, requests)
        if self._pending_demotion_seconds:
            outcome.seconds += self._pending_demotion_seconds
            outcome.cycles += self._pending_demotion_cycles
            outcome.meta["demotions"] = [
                (e.from_label, e.to_label, e.reason)
                for e in self.demotions]
            self._pending_demotion_seconds = 0.0
            self._pending_demotion_cycles = 0.0
        if self.verify:
            if self.relaxations.ordering:
                check_mpi_ordering(messages, requests, outcome)
            else:
                check_relaxed(messages, requests, outcome)
        if obs is not None:
            obs.count("engine.passes")
            obs.count("engine.matched", float(outcome.matched_count))
            if obs.tracer is not None:
                # The matcher's own span already advanced the trace clock;
                # wrap it without advancing again.
                obs.tracer.complete("engine.match", trace_start,
                                    obs.tracer.now - trace_start,
                                    matcher=self._matcher.name,
                                    relaxations=self.relaxations.label())
        return outcome

    def submit_batch(self, messages, requests) -> MatchOutcome:
        """Columnar batch ingest: match one pre-batched column pair.

        The native envelope representation end-to-end is the packed
        struct-of-arrays :class:`~repro.core.envelope.EnvelopeBatch`;
        scalar :class:`~repro.core.envelope.Envelope` iterables are
        accepted as an adapter (the MPI layer's shape) and converted
        exactly once at this boundary, so no per-envelope work survives
        past ingest.  Matching semantics, demotion behaviour, and
        outcomes are identical to :meth:`match`.
        """
        if not isinstance(messages, EnvelopeBatch):
            messages = EnvelopeBatch.from_envelopes(messages)
        if not isinstance(requests, EnvelopeBatch):
            requests = EnvelopeBatch.from_envelopes(requests)
        return self.match(messages, requests)

    # -- queue state as columns --------------------------------------------------

    def export_unmatched(self, messages: EnvelopeBatch,
                         requests: EnvelopeBatch, outcome: MatchOutcome,
                         msg_indices=None, req_indices=None,
                         ) -> tuple[EnvelopeBatch, EnvelopeBatch]:
        """The pass's UMQ and PRQ as packed column blocks.

        Returns ``(umq, prq)``: the messages left unmatched (the
        unexpected-message queue) and the requests left posted (the
        posted-receive queue), as zero-copy ``take`` views of the input
        batches.  The views keep the cached packed64 key column, so
        carrying unmatched envelopes into a later pass (persistent-UMQ
        sessions) or a checkpoint never re-marshals them.

        ``msg_indices`` / ``req_indices`` accept precomputed unmatched
        index arrays so callers that already derived them from the
        outcome don't pay the scan twice.
        """
        if msg_indices is None:
            msg_indices = outcome.unmatched_message_indices()
        if req_indices is None:
            req_indices = outcome.unmatched_request_indices()
        return messages.take(msg_indices), requests.take(req_indices)

    # -- snapshot format ---------------------------------------------------------

    def export_state(self) -> dict:
        """Engine state for the serve snapshot format.

        Covers everything a restored engine needs to continue
        bit-identically: the relaxation point (matchers themselves hold
        no cross-pass state), the demotion log, the relaunch cost still
        pending against the next outcome, and the build knobs.
        """
        return {
            "relaxations": self.relaxations.label(),
            "demotions": [(e.from_label, e.to_label, e.reason,
                           e.extra_seconds, e.extra_cycles)
                          for e in self.demotions],
            "pending_seconds": self._pending_demotion_seconds,
            "pending_cycles": self._pending_demotion_cycles,
            "n_queues": self._n_queues,
            "n_ctas": self._n_ctas,
            "window": self._window,
            "demote_on_violation": self.demote_on_violation,
        }

    @classmethod
    def from_state(cls, state: dict, gpu: GPUSpec = PASCAL_GTX1080,
                   verify: bool = False, obs=None) -> "MatchingEngine":
        """Rebuild an engine from :meth:`export_state` (inverse op)."""
        engine = cls(gpu=gpu,
                     relaxations=RelaxationSet.from_label(
                         state["relaxations"]),
                     n_queues=int(state["n_queues"]),
                     n_ctas=int(state["n_ctas"]),
                     window=int(state["window"]),
                     verify=verify,
                     demote_on_violation=bool(state["demote_on_violation"]),
                     obs=obs)
        engine.demotions = [
            DemotionEvent(from_label=f, to_label=t, reason=r,
                          extra_seconds=float(s), extra_cycles=float(c))
            for f, t, r, s, c in state["demotions"]]
        engine._pending_demotion_seconds = float(state["pending_seconds"])
        engine._pending_demotion_cycles = float(state["pending_cycles"])
        return engine

    def reference(self, messages: EnvelopeBatch,
                  requests: EnvelopeBatch) -> MatchOutcome:
        """The sequential MPI oracle's assignment (no device timing)."""
        return reference_match(messages, requests)

    def cpu_baseline(self, messages: EnvelopeBatch,
                     requests: EnvelopeBatch) -> MatchOutcome:
        """The CPU list-based baseline's assignment and timing."""
        return ListMatcher().match(messages, requests)
