"""Structured tracing with Chrome/Perfetto and JSONL export.

The observability subsystem's timeline half.  A :class:`Tracer` records
*span* (complete, ``ph: "X"``) and *instant* (``ph: "i"``) events against
a **simulated-time clock**: timestamps are the simulated seconds the
timing model charges (kernel durations, matcher passes), not host wall
time, so the exported timeline shows where the modeled cycles went.

Export formats:

* :meth:`write_chrome` -- the Chrome Trace Event JSON object format
  (``{"traceEvents": [...]}``) that https://ui.perfetto.dev and
  ``chrome://tracing`` open directly.  Process/thread metadata events
  (``ph: "M"``) label ranks and phase lanes.
* :meth:`write_jsonl` -- one event per line, for ad-hoc ``jq``/pandas
  analysis.

Event attribution: ``current_pid`` / ``current_tid`` name the default
process (rank) and thread lane of subsequent events; the MPI progress
layer sets ``current_pid`` to the rank whose communication kernel is
running, so multi-rank timelines separate per rank.

The event buffer is bounded (``max_events``); once full, further events
are counted in ``dropped`` instead of growing without bound -- a tracer
left attached to a long soak run degrades to counters, never to OOM.
"""

from __future__ import annotations

import json
from pathlib import Path

__all__ = ["Tracer"]


class Tracer:
    """Span/instant event recorder on a simulated-seconds clock.

    Parameters
    ----------
    max_events:
        Hard cap on buffered events; overflow increments ``dropped``.
    """

    def __init__(self, max_events: int = 1_000_000) -> None:
        if max_events < 1:
            raise ValueError("max_events must be positive")
        self.max_events = max_events
        self.events: list[dict] = []
        self.dropped = 0
        #: simulated-time clock, in seconds; advanced by span emission
        self.now = 0.0
        #: default process id (rank) of subsequent events
        self.current_pid = 0
        #: default thread lane of subsequent events
        self.current_tid = 0
        self._process_names: dict[int, str] = {}
        self._thread_names: dict[tuple[int, int], str] = {}
        #: free-form run metadata (device spec, workload) for the export
        self.metadata: dict = {}

    # -- clock --------------------------------------------------------------------

    def advance(self, seconds: float) -> None:
        """Advance the simulated clock (span helpers do this for you)."""
        self.now += seconds

    # -- naming -------------------------------------------------------------------

    def set_process_name(self, pid: int, name: str) -> None:
        """Label a process lane (one per rank) in the exported trace."""
        self._process_names[pid] = name

    def set_thread_name(self, pid: int, tid: int, name: str) -> None:
        """Label a thread lane within a process."""
        self._thread_names[(pid, tid)] = name

    # -- event emission -----------------------------------------------------------

    def _emit(self, event: dict) -> None:
        if len(self.events) >= self.max_events:
            self.dropped += 1
            return
        self.events.append(event)

    def complete(self, name: str, start_seconds: float, dur_seconds: float,
                 pid: int | None = None, tid: int | None = None,
                 cat: str = "sim", **args) -> None:
        """Record one complete span (``ph: "X"``), timestamps in seconds.

        Does **not** advance the clock; use
        :meth:`repro.obs.Observability.span` for emit-and-advance.
        """
        ev = {
            "name": name,
            "cat": cat,
            "ph": "X",
            "ts": start_seconds * 1e6,
            "dur": max(0.0, dur_seconds) * 1e6,
            "pid": self.current_pid if pid is None else pid,
            "tid": self.current_tid if tid is None else tid,
        }
        if args:
            ev["args"] = args
        self._emit(ev)

    def instant(self, name: str, pid: int | None = None,
                tid: int | None = None, cat: str = "sim",
                scope: str = "t", **args) -> None:
        """Record one instant event (``ph: "i"``) at the current clock."""
        ev = {
            "name": name,
            "cat": cat,
            "ph": "i",
            "ts": self.now * 1e6,
            "s": scope,
            "pid": self.current_pid if pid is None else pid,
            "tid": self.current_tid if tid is None else tid,
        }
        if args:
            ev["args"] = args
        self._emit(ev)

    @property
    def n_events(self) -> int:
        """Buffered event count (excluding metadata and dropped)."""
        return len(self.events)

    # -- export -------------------------------------------------------------------

    def _metadata_events(self) -> list[dict]:
        meta = []
        for pid, name in sorted(self._process_names.items()):
            meta.append({"name": "process_name", "ph": "M", "pid": pid,
                         "tid": 0, "ts": 0, "args": {"name": name}})
        for (pid, tid), name in sorted(self._thread_names.items()):
            meta.append({"name": "thread_name", "ph": "M", "pid": pid,
                         "tid": tid, "ts": 0, "args": {"name": name}})
        return meta

    def to_chrome(self) -> dict:
        """The Chrome Trace Event *JSON object format* document."""
        doc = {
            "traceEvents": self._metadata_events() + self.events,
            "displayTimeUnit": "ms",
        }
        other = dict(self.metadata)
        if self.dropped:
            other["dropped_events"] = self.dropped
        if other:
            doc["otherData"] = other
        return doc

    def write_chrome(self, path: str | Path) -> Path:
        """Write ``trace.json`` (open it at https://ui.perfetto.dev)."""
        path = Path(path)
        with open(path, "w") as f:
            json.dump(self.to_chrome(), f, indent=1)
            f.write("\n")
        return path

    def write_jsonl(self, path: str | Path) -> Path:
        """Write one event per line (metadata events first)."""
        path = Path(path)
        with open(path, "w") as f:
            for ev in self._metadata_events() + self.events:
                f.write(json.dumps(ev))
                f.write("\n")
        return path
