"""Autotuned engine selection: walking the Table II lattice online.

Table II's three usable design points form a promotion lattice:

====================  =====================  =======================
rank 0 (slowest)      rank 1 (~10x)          rank 2 (~80x)
``wc+ord+unexp``      ``nowc+ord+unexp``     ``nowc+noord+unexp``
matrix matcher        partitioned matcher    two-level hash table
====================  =====================  =======================

The autotuner maps a tenant's live :class:`~repro.serve.profiler.WorkloadProfile`
to the highest rank that is still *correct* for the observed stream:

* any wildcard in the window pins the tenant at the matrix point
  (partitioning and hashing both need concrete sources);
* a wildcard-free window earns the partitioned point;
* the hash point additionally requires the tenant to have *declared*
  ``ordering_required=False`` (ordering need is a semantic contract,
  not an observable) and a hash-friendly tuple distribution (Figure
  6(a): dominant duplicate tuples ruin probe chains).

**Hysteresis.**  Promotions need ``promote_after`` consecutive windows
agreeing on the same higher target before the engine is rebuilt --
otherwise a tenant oscillating around a watermark would thrash rebuilds.
Demotions apply immediately (correctness cannot wait), mirroring the
engine's own graceful-degradation path.

Every transition is recorded as a :class:`RetuneEvent` and charged one
dynamic-parallelism child-kernel relaunch
(:data:`~repro.core.adaptive.RELAUNCH_OVERHEAD_CYCLES`) against the
tenant's next outcome -- the same cost model the adaptive planner and
the engine's demotion path use.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.adaptive import RELAUNCH_OVERHEAD_CYCLES, relaunch_seconds
from ..core.relaxations import RelaxationSet
from ..simt.gpu import GPUSpec, PASCAL_GTX1080
from .messages import TenantSpec
from .profiler import WorkloadProfile

__all__ = ["LATTICE", "RetuneEvent", "Autotuner", "lattice_rank"]

#: The promotion lattice, slowest (safest) first.
LATTICE: tuple[RelaxationSet, ...] = (
    RelaxationSet(wildcards=True, ordering=True, unexpected=True),
    RelaxationSet(wildcards=False, ordering=True, unexpected=True),
    RelaxationSet(wildcards=False, ordering=False, unexpected=True),
)


def lattice_rank(rel: RelaxationSet) -> int:
    """Position of a relaxation set on the promotion lattice.

    Only the wildcard/ordering axes place a config on the serve lattice;
    the unexpected axis is orthogonal (the serve layer always admits
    unexpected messages, since batch boundaries make them unavoidable).
    """
    if rel.wildcards:
        return 0
    if rel.ordering:
        return 1
    return 2


@dataclass(frozen=True)
class RetuneEvent:
    """One autotuner-driven engine rebuild."""

    tenant: str
    vt: float
    from_label: str
    to_label: str
    direction: str          # "promote" | "demote"
    reason: str
    extra_cycles: float = RELAUNCH_OVERHEAD_CYCLES
    extra_seconds: float = 0.0


class Autotuner:
    """Per-tenant lattice walker with promotion hysteresis.

    Parameters
    ----------
    spec:
        The tenant's declared contract (ordering requirement, autotune
        enable).
    gpu:
        Device spec, for costing rebuilds in simulated seconds.
    promote_after:
        Consecutive agreeing windows required before a promotion.
    """

    def __init__(self, spec: TenantSpec, gpu: GPUSpec = PASCAL_GTX1080,
                 promote_after: int = 3) -> None:
        if promote_after < 1:
            raise ValueError("promote_after must be >= 1")
        self.spec = spec
        self.gpu = gpu
        self.promote_after = promote_after
        self._streak_target: int | None = None
        self._streak = 0
        self.events: list[RetuneEvent] = []

    # -- policy -------------------------------------------------------------------

    def target_rank(self, profile: WorkloadProfile) -> int:
        """Highest lattice rank the observed window permits."""
        if profile.uses_wildcards:
            return 0
        if self.spec.partitioned:
            # match-once/fire-many cost model: a channel binding is
            # matched once per epoch and amortized over many re-fires,
            # so the hash path's per-match speedup buys almost nothing
            # -- and the re-fire streams' tiny tuple cardinality sits
            # right on the dominance gate, which would oscillate the
            # walk.  Pin at the partitioned point.
            return 1
        if self.spec.ordering_required:
            return 1
        if not profile.hash_friendly:
            return 1
        return 2

    def _reason(self, rank: int, profile: WorkloadProfile) -> str:
        if rank == 0:
            return (f"wildcards in window "
                    f"({profile.wildcard_fraction:.0%} of requests)")
        if rank == 1:
            if self.spec.partitioned:
                return ("wildcard-free window; partitioned stream pinned "
                        "at the match-once point (matches amortized over "
                        "re-fires; tiny tuple cardinality would oscillate "
                        "the hash gate)")
            if self.spec.ordering_required:
                return "wildcard-free window; ordering required by contract"
            return (f"wildcard-free window; duplicate tuples "
                    f"({profile.duplicate_tuple_fraction:.0%}) unfriendly "
                    "to hashing")
        return "wildcard-free, unordered-tolerant, hash-friendly window"

    # -- decision -----------------------------------------------------------------

    def consider(self, current: RelaxationSet, profile: WorkloadProfile,
                 now_vt: float) -> RelaxationSet | None:
        """Decide whether to retune away from ``current`` after a flush.

        Returns the new relaxation set (recording the
        :class:`RetuneEvent`), or ``None`` to stay put.  Demotions are
        immediate; promotions wait out the hysteresis streak.
        """
        if not self.spec.autotune:
            return None
        cur_rank = lattice_rank(current)
        tgt_rank = self.target_rank(profile)
        if tgt_rank == cur_rank:
            self._streak_target = None
            self._streak = 0
            return None
        if tgt_rank < cur_rank:
            # correctness demotion: apply now, reset hysteresis
            self._streak_target = None
            self._streak = 0
            return self._move(current, tgt_rank, "demote", profile, now_vt)
        # promotion: require promote_after consecutive agreeing windows
        if self._streak_target == tgt_rank:
            self._streak += 1
        else:
            self._streak_target = tgt_rank
            self._streak = 1
        if self._streak < self.promote_after:
            return None
        self._streak_target = None
        self._streak = 0
        return self._move(current, tgt_rank, "promote", profile, now_vt)

    def _move(self, current: RelaxationSet, rank: int, direction: str,
              profile: WorkloadProfile, now_vt: float) -> RelaxationSet:
        new = LATTICE[rank]
        self.events.append(RetuneEvent(
            tenant=self.spec.name, vt=now_vt,
            from_label=current.label(), to_label=new.label(),
            direction=direction, reason=self._reason(rank, profile),
            extra_seconds=relaunch_seconds(self.gpu)))
        return new

    # -- snapshot format ----------------------------------------------------------

    def export_state(self) -> dict:
        """Hysteresis position + retune history for the snapshot format.

        The hysteresis streak is the part that *must* survive a restore:
        dropping it would make a recovered tenant re-earn its promotion
        streak, diverging from the uninterrupted run.
        """
        return {"streak_target": self._streak_target,
                "streak": self._streak,
                "promote_after": self.promote_after,
                "events": [(e.tenant, e.vt, e.from_label, e.to_label,
                            e.direction, e.reason, e.extra_cycles,
                            e.extra_seconds) for e in self.events]}

    def restore_state(self, state: dict) -> None:
        """Inverse of :meth:`export_state` (spec/gpu rebuilt separately)."""
        st = state["streak_target"]
        self._streak_target = None if st is None else int(st)
        self._streak = int(state["streak"])
        self.promote_after = int(state["promote_after"])
        self.events = [RetuneEvent(tenant=str(t), vt=float(vt),
                                   from_label=str(fl), to_label=str(tl),
                                   direction=str(d), reason=str(r),
                                   extra_cycles=float(xc),
                                   extra_seconds=float(xs))
                       for t, vt, fl, tl, d, r, xc, xs in state["events"]]

    def record_external_demotion(self, from_label: str, to_label: str,
                                 reason: str, now_vt: float) -> None:
        """Mirror a demotion the engine performed itself (mid-match
        graceful degradation) into the retune log, and reset hysteresis.

        The relaunch cost of an engine-side demotion is already charged
        by the engine, so the mirrored event carries zero extra cost.
        """
        self._streak_target = None
        self._streak = 0
        self.events.append(RetuneEvent(
            tenant=self.spec.name, vt=now_vt,
            from_label=from_label, to_label=to_label,
            direction="demote", reason=f"engine demotion: {reason}",
            extra_cycles=0.0, extra_seconds=0.0))
