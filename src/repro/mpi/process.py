"""Cluster of simulated GPU ranks.

:class:`Cluster` instantiates one :class:`~repro.mpi.progress.Endpoint`
per rank, wires them to a :class:`~repro.mpi.network.GASNetwork`, and
exposes rank-local :class:`RankView` handles with the familiar
send/recv/isend/irecv API.

Execution model: the simulation is cooperative and single-threaded.
Nonblocking operations enqueue work; blocking ``wait()``/``recv()`` calls
pump the *whole cluster's* progress (every endpoint's communication
kernel), which is how a real MPI implementation makes progress inside
blocking calls.  Rank programs are therefore written phase-structured
(post receives, send, wait), the natural style of the BSP applications
the paper targets.
"""

from __future__ import annotations

from typing import Any, Callable

from ..core.engine import MatchingEngine
from ..core.envelope import MAX_COMM
from ..core.relaxations import RelaxationSet
from ..simt.gpu import GPUSpec, PASCAL_GTX1080
from .datatypes import Protocol, clone_payload
from .faults import FaultPlan
from .network import GASNetwork, LinkModel, MessageDescriptor, NVLINK
from .progress import Endpoint
from .reliability import ReliabilityConfig, StallError, StallReport
from .request import Request

__all__ = ["Cluster", "RankView"]


class Cluster:
    """A set of simulated GPU ranks joined by a GAS network.

    Parameters
    ----------
    n_ranks:
        Number of ranks (simulated GPUs).
    gpu:
        Device spec for every endpoint's communication kernel.
    relaxations:
        Matching guarantee set enforced cluster-wide.
    link:
        Network link model.
    engine_factory:
        Optional override: ``(rank) -> MatchingEngine`` for heterogeneous
        configurations.
    ring_capacity:
        Optional per-peer ingress ring size at every endpoint (GPU
        queues are statically sized); full rings back-pressure senders.
        ``None`` (default) models unbounded queues.
    progress_mode:
        ``"incremental"`` (default) or ``"snapshot"`` -- see
        :class:`~repro.mpi.progress.Endpoint`.
    queue_capacity:
        Optional hard UMQ/PRQ bound per endpoint (statically sized GPU
        queues); overflowing raises OverflowError.
    fault_plan:
        Optional :class:`~repro.mpi.faults.FaultPlan` making the network
        lossy; installing one stacks the reliability protocol (seqnos,
        acks, retransmission) on the transport.  ``None`` (default)
        keeps the idealized reliable wire at zero cost.
    reliability:
        Optional :class:`~repro.mpi.reliability.ReliabilityConfig`
        tuning timeouts/backoff/retry budget of that protocol.
    ring_policy:
        ``"backpressure"`` (default) or ``"spill"`` -- see
        :class:`~repro.mpi.progress.Endpoint`.
    demote_on_violation:
        Graceful degradation: runtime relaxation violations demote the
        matcher (hash -> partitioned -> matrix) instead of raising --
        see :class:`~repro.core.engine.MatchingEngine`.
    obs:
        Optional :class:`~repro.obs.Observability` handle, distributed
        to the network, every endpoint (queues, rings), and every
        default-built engine/matcher.  ``None`` (default) leaves all
        layers on the zero-overhead fast path.
    """

    def __init__(self, n_ranks: int, gpu: GPUSpec = PASCAL_GTX1080,
                 relaxations: RelaxationSet | None = None,
                 link: LinkModel = NVLINK,
                 engine_factory: Callable[[int], MatchingEngine] | None = None,
                 ring_capacity: int | None = None,
                 progress_mode: str = "incremental",
                 queue_capacity: int | None = None,
                 fault_plan: FaultPlan | None = None,
                 reliability: ReliabilityConfig | None = None,
                 ring_policy: str = "backpressure",
                 demote_on_violation: bool = False,
                 obs=None,
                 **engine_kwargs) -> None:
        if n_ranks < 1:
            raise ValueError("n_ranks must be positive")
        self.n_ranks = n_ranks
        self.relaxations = (relaxations if relaxations is not None
                            else RelaxationSet())
        self._obs = obs
        self.network = GASNetwork(link=link, fault_plan=fault_plan,
                                  reliability=reliability, obs=obs)
        if engine_factory is None:
            engine_factory = lambda rank: MatchingEngine(  # noqa: E731
                gpu=gpu, relaxations=self.relaxations,
                demote_on_violation=demote_on_violation, obs=obs,
                **engine_kwargs)
        self.endpoints = [Endpoint(rank, engine_factory(rank), self.network,
                                   ring_capacity=ring_capacity,
                                   progress_mode=progress_mode,
                                   queue_capacity=queue_capacity,
                                   ring_policy=ring_policy,
                                   obs=obs)
                          for rank in range(n_ranks)]
        self.network.attach(self._deliver)
        self._views = [RankView(self, r) for r in range(n_ranks)]
        self._partitioned = None
        #: next communicator id the cluster will hand out; advanced by
        #: :meth:`note_comm_id` whenever a Communicator binds an explicit
        #: id, so allocated ids can never collide with declared ones.
        self._next_comm_id = 1

    # -- communicator id space ---------------------------------------------------

    def note_comm_id(self, comm_id: int) -> None:
        """Record an explicitly bound communicator id.

        The allocator continues past every id it has seen, so a later
        :meth:`alloc_comm_id` can never alias a communicator the program
        constructed by hand.
        """
        self._next_comm_id = max(self._next_comm_id, comm_id + 1)

    def alloc_comm_id(self) -> int:
        """Allocate a fresh communicator id from the cluster-owned
        monotonic counter.

        The comm value is part of the matching tuple, so two distinct
        communicators sharing an id would silently alias unrelated
        traffic -- the :meth:`Communicator.split` collision bug this
        counter exists to prevent.  Raises once the 16-bit comm space
        (:data:`~repro.core.envelope.MAX_COMM`) is exhausted.
        """
        cid = self._next_comm_id
        if cid > MAX_COMM:
            raise ValueError(f"communicator id space exhausted "
                             f"(comm_id {cid} > MAX_COMM {MAX_COMM})")
        self._next_comm_id = cid + 1
        return cid

    # -- plumbing ------------------------------------------------------------------

    def _deliver(self, desc: MessageDescriptor, retry: bool = False) -> bool:
        if not 0 <= desc.dst < self.n_ranks:
            raise ValueError(f"destination rank {desc.dst} out of range")
        if desc.part is not None:
            # partition frame of a matched channel: land it directly in
            # the pre-registered buffer, never in the UMQ (MPI-4
            # partitioned semantics -- the match happened at Start)
            return self.partitioned.deliver(desc)
        return self.endpoints[desc.dst].deliver(desc, retry=retry)

    @property
    def partitioned(self):
        """The cluster's :class:`~repro.mpi.partitioned.PartitionRouter`
        (created on first use; free when partitioned communication is
        never exercised)."""
        if self._partitioned is None:
            from .partitioned import PartitionRouter
            self._partitioned = PartitionRouter(self)
        return self._partitioned

    # -- user API ----------------------------------------------------------------------

    def rank(self, r: int) -> "RankView":
        """Rank-local API handle."""
        return self._views[r]

    def ranks(self) -> list["RankView"]:
        """All rank handles (convenient for phase-structured programs)."""
        return list(self._views)

    def progress(self) -> int:
        """One progress pass: advance the reliability clock, retry
        back-pressured channels, then run every endpoint's communication
        kernel; returns total matches."""
        self.network.tick()
        self.network.retry_held()
        return sum(ep.progress() for ep in self.endpoints)

    def drain(self, max_rounds: int = 10_000) -> None:
        """Pump progress until no endpoint can make further matches, no
        traffic is stuck behind flow control, and the reliability layer
        (if any) has nothing left to recover.

        Raises
        ------
        StallError
            The progress watchdog: carries a structured
            :class:`~repro.mpi.reliability.StallReport` (queue depths,
            outstanding sequence numbers, oldest unmatched envelopes)
            when the cluster fails to quiesce within ``max_rounds``.
        """
        for _ in range(max_rounds):
            if (self.progress() == 0 and self.network.held_messages == 0
                    and not self.network.reliability_busy):
                return
        if self._obs is not None:
            self._obs.count("cluster.stalls")
            self._obs.instant("cluster.stall", rounds=max_rounds)
        raise StallError(self.stall_report(max_rounds))

    def stall_report(self, rounds: int = 0) -> StallReport:
        """Structured snapshot of everything that is stuck (the progress
        watchdog's diagnosis; cheap enough to call ad hoc).  When an
        observability registry is attached its snapshot rides along in
        ``obs_metrics``."""
        rel = self.network.reliability
        return StallReport(
            rounds=rounds,
            ranks=[ep.stall_info() for ep in self.endpoints],
            held_messages=self.network.held_messages,
            outstanding=rel.outstanding() if rel is not None else {},
            reliability=rel.stats() if rel is not None else None,
            obs_metrics=(self._obs.snapshot()
                         if self._obs is not None else None),
        )

    # -- accounting --------------------------------------------------------------------

    @property
    def match_seconds(self) -> float:
        """Total simulated device time spent matching, across ranks."""
        return sum(ep.match_seconds for ep in self.endpoints)

    @property
    def transfer_seconds(self) -> float:
        """Total simulated wire time."""
        return self.network.transfer_seconds_total

    def stats(self) -> list[dict]:
        """Per-rank endpoint statistics."""
        return [ep.stats() for ep in self.endpoints]


class RankView:
    """The message-passing API of one rank."""

    def __init__(self, cluster: Cluster, rank: int) -> None:
        self.cluster = cluster
        self.rank = rank

    def __repr__(self) -> str:
        return f"RankView(rank={self.rank}/{self.cluster.n_ranks})"

    # -- sends -------------------------------------------------------------------------

    def isend(self, dst: int, payload: Any = None, tag: int = 0,
              comm: int = 0) -> Request:
        """Nonblocking send: writes the descriptor into the remote queue.

        GAS writes complete immediately from the sender's perspective, so
        the returned request is already complete (eager) or completes when
        the payload handle is fetched (rendezvous) -- either way the send
        buffer is reusable on return, because the payload is snapshotted.
        """
        proto = Protocol.for_payload(payload)
        snapshot = clone_payload(payload)
        req = Request("send", self.cluster.progress)
        desc = MessageDescriptor(
            src=self.rank, dst=dst, tag=tag, comm=comm,
            nbytes=proto.nbytes, eager=proto.eager,
            payload=snapshot if proto.eager else None,
            fetch=(None if proto.eager else (lambda: snapshot)))
        self.cluster.network.send(desc)
        from .request import Status
        req._complete(None, Status(source=self.rank, tag=tag, comm=comm,
                                   nbytes=proto.nbytes))
        return req

    def send(self, dst: int, payload: Any = None, tag: int = 0,
             comm: int = 0) -> None:
        """Blocking send (completes immediately under the GAS model)."""
        self.isend(dst, payload, tag, comm).wait()

    # -- receives -----------------------------------------------------------------------

    def irecv(self, src: int, tag: int, comm: int = 0) -> Request:
        """Nonblocking receive: posts a request into the local PRQ.

        ``src`` may be :data:`~repro.core.envelope.ANY_SOURCE` and ``tag``
        :data:`~repro.core.envelope.ANY_TAG` **iff** the cluster's
        relaxation set still permits wildcards.
        """
        req = Request("recv", self.cluster.progress)
        self.cluster.endpoints[self.rank].post_receive(src, tag, comm, req)
        return req

    def recv(self, src: int, tag: int, comm: int = 0) -> Any:
        """Blocking receive; returns the payload."""
        return self.irecv(src, tag, comm).wait()

    # -- probing and combined operations ------------------------------------------------

    def iprobe(self, src: int, tag: int, comm: int = 0):
        """Nonblocking probe: Status of the earliest matching unexpected
        message, or None.  Does not consume the message."""
        return self.cluster.endpoints[self.rank].probe(src, tag, comm)

    def probe(self, src: int, tag: int, comm: int = 0, max_rounds: int = 10_000):
        """Blocking probe: pump progress until a matching message is
        queued; returns its Status without consuming it.

        Returns ``None`` (a no-match result, like :meth:`iprobe`) when
        the cluster quiesces -- or ``max_rounds`` passes elapse --
        without a matching message appearing: an empty queue is a
        transient condition the caller can poll, not an error.
        """
        for _ in range(max_rounds):
            status = self.iprobe(src, tag, comm)
            if status is not None:
                return status
            quiesced = (self.cluster.progress() == 0
                        and self.cluster.network.held_messages == 0
                        and not self.cluster.network.reliability_busy)
            if quiesced:
                # nothing further can arrive without new sends; report
                # no-match now instead of burning the remaining rounds
                return self.iprobe(src, tag, comm)
        return None

    def isendrecv(self, dst: int, payload: Any, src: int,
                  send_tag: int = 0, recv_tag: int | None = None,
                  comm: int = 0) -> Request:
        """Nonblocking MPI_Sendrecv: posts the receive, issues the send,
        returns the receive request.  In the cooperative single-threaded
        driver, issue every rank's ``isendrecv`` first and then wait the
        requests -- the standard phase-structured shape."""
        recv_tag = send_tag if recv_tag is None else recv_tag
        req = self.irecv(src, recv_tag, comm)
        self.isend(dst, payload, send_tag, comm)
        return req

    def sendrecv(self, dst: int, payload: Any, src: int,
                 send_tag: int = 0, recv_tag: int | None = None,
                 comm: int = 0) -> Any:
        """Blocking MPI_Sendrecv (receive posted before the send).

        Note the driver is single-threaded: a blocking sendrecv completes
        only if the partner's send has already been issued; for symmetric
        exchanges use :meth:`isendrecv` on every rank first.
        """
        return self.isendrecv(dst, payload, src, send_tag, recv_tag,
                              comm).wait()

    # -- local introspection ---------------------------------------------------------------

    @property
    def endpoint(self) -> "Endpoint":
        """This rank's endpoint (queues, statistics)."""
        return self.cluster.endpoints[self.rank]
