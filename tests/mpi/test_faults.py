"""Fault injection, the reliability protocol, graceful degradation, the
spill ring policy, and the progress watchdog."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.envelope import ANY_SOURCE
from repro.core.relaxations import RelaxationSet, WorkloadViolation
from repro.mpi import (Cluster, DeliveryFailure, FaultPlan, FaultSpec,
                       ReliabilityConfig, StallError, chaos_plan)


def run_ring_traffic(cluster: Cluster, n_msgs: int = 40) -> list[tuple]:
    """Each rank sends ``n_msgs`` tagged messages to its left neighbour;
    returns (dst, payload) per completed receive, in post order."""
    n = cluster.n_ranks
    reqs = []
    for i in range(n_msgs):
        for dst in range(n):
            reqs.append((dst, cluster.rank(dst).irecv(src=(dst + 1) % n,
                                                      tag=i)))
    for i in range(n_msgs):
        for src in range(n):
            cluster.rank(src).isend((src - 1) % n, (src, i), tag=i)
    cluster.drain()
    return [(dst, r.wait()) for dst, r in reqs]


class TestFaultSpecAndPlan:
    def test_rates_validated(self):
        with pytest.raises(ValueError):
            FaultSpec(drop=1.5)
        with pytest.raises(ValueError):
            FaultSpec(delay_ticks=0)

    def test_any_faults(self):
        assert not FaultSpec().any_faults
        assert FaultSpec(corrupt=0.1).any_faults

    def test_per_link_overrides(self):
        plan = FaultPlan(seed=1)
        plan.set_link(0, 1, FaultSpec(drop=1.0))
        assert plan.spec_for(0, 1).drop == 1.0
        assert plan.spec_for(1, 0).drop == 0.0

    def test_same_seed_same_decisions(self):
        a = FaultPlan(seed=42, default=FaultSpec(drop=0.3, reorder=0.2))
        b = FaultPlan(seed=42, default=FaultSpec(drop=0.3, reorder=0.2))
        assert [a.decide(0, 1) for _ in range(50)] == \
               [b.decide(0, 1) for _ in range(50)]

    def test_reset_rewinds_stream(self):
        plan = FaultPlan(seed=7, default=FaultSpec(drop=0.5))
        first = [plan.decide(0, 1) for _ in range(20)]
        plan.reset()
        assert [plan.decide(0, 1) for _ in range(20)] == first
        assert len(plan.ledger) == 0


class TestReliabilityUnderFaults:
    """Exactly-once, pair-ordered delivery over each fault class."""

    @pytest.mark.parametrize("spec", [
        FaultSpec(drop=0.2),
        FaultSpec(duplicate=0.3),
        FaultSpec(delay=0.3),
        FaultSpec(reorder=0.3),
        FaultSpec(corrupt=0.2),
        FaultSpec(drop=0.1, duplicate=0.05, delay=0.05, reorder=0.05,
                  corrupt=0.03),
    ], ids=["drop", "duplicate", "delay", "reorder", "corrupt", "mixed"])
    def test_exactly_once_in_order(self, spec):
        plan = FaultPlan(seed=123, default=spec)
        got = run_ring_traffic(Cluster(3, fault_plan=plan), n_msgs=30)
        # every receive completed with the payload the matching send
        # carried => exactly-once (a duplicate completion would raise in
        # Request._complete, a loss would stall the drain)
        assert len(got) == 90
        assert all(payload[1] == i
                   for i, (dst, payload) in zip(
                       [k for k in range(30) for _ in range(3)], got))

    def test_matches_fault_free_run(self):
        faulty = run_ring_traffic(
            Cluster(4, fault_plan=chaos_plan(seed=5, drop=0.1)), n_msgs=25)
        clean = run_ring_traffic(Cluster(4), n_msgs=25)
        assert faulty == clean

    def test_pair_order_restored_same_tag(self):
        """All sends share one tag: MPI non-overtaking forces delivery
        in send order, observable through the matcher."""
        plan = FaultPlan(seed=9, default=FaultSpec(drop=0.15, reorder=0.2,
                                                   delay=0.1))
        c = Cluster(2, fault_plan=plan)
        reqs = [c.rank(1).irecv(src=0, tag=7) for _ in range(40)]
        for i in range(40):
            c.rank(0).isend(1, i, tag=7)
        c.drain()
        assert [r.wait() for r in reqs] == list(range(40))
        assert plan.ledger.count("reorder") > 0  # faults actually fired

    def test_rendezvous_payloads_survive(self):
        """Large (rendezvous) messages are matched then fetched, once."""
        plan = FaultPlan(seed=3, default=FaultSpec(drop=0.2, duplicate=0.2))
        c = Cluster(2, fault_plan=plan)
        big = [np.full(4096, i, dtype=np.int64) for i in range(6)]  # 32 KiB
        reqs = [c.rank(1).irecv(src=0, tag=i) for i in range(6)]
        for i, arr in enumerate(big):
            c.rank(0).isend(1, arr, tag=i)
        c.drain()
        for i, r in enumerate(reqs):
            np.testing.assert_array_equal(r.wait(), big[i])

    def test_retransmission_charged_in_sim_time(self):
        plan = FaultPlan(seed=11, default=FaultSpec(drop=0.3))
        c = Cluster(2, fault_plan=plan)
        run_ring_traffic(c, n_msgs=30)
        rel = c.network.reliability
        assert rel.retransmits > 0
        assert rel.recovery_seconds > 0
        # recovery wire time is included in the transfer total
        assert c.network.transfer_seconds_total > rel.recovery_seconds

    def test_null_plan_injects_nothing(self):
        """A zero-rate plan runs the protocol but injects no faults:
        the ledger stays clean of fault events and results match."""
        plan = FaultPlan(seed=1)  # all rates zero
        got = run_ring_traffic(Cluster(3, fault_plan=plan), n_msgs=10)
        assert got == run_ring_traffic(Cluster(3), n_msgs=10)
        for kind in ("drop", "duplicate", "delay", "reorder", "corrupt",
                     "retransmit", "give_up"):
            assert plan.ledger.count(kind) == 0

    def test_no_plan_means_no_reliability_layer(self):
        c = Cluster(2)
        assert c.network.reliability is None
        assert not c.network.reliability_busy


class TestDeterministicReplay:
    """Same FaultPlan seed => identical fault ledger and identical final
    match results across two runs (the chaos-replay contract)."""

    def _run(self, seed: int):
        plan = chaos_plan(seed=seed, drop=0.1, duplicate=0.05, delay=0.05,
                          reorder=0.05, corrupt=0.02)
        got = run_ring_traffic(Cluster(4, fault_plan=plan), n_msgs=25)
        return plan.ledger.signature(), got

    def test_identical_ledger_and_matches(self):
        sig_a, got_a = self._run(2024)
        sig_b, got_b = self._run(2024)
        assert sig_a == sig_b
        assert got_a == got_b
        assert len(sig_a) > 0  # the plan actually injected faults

    def test_different_seed_different_faults(self):
        sig_a, _ = self._run(1)
        sig_b, _ = self._run(2)
        assert sig_a != sig_b


class TestRetryBudget:
    def test_delivery_failure_on_dead_link(self):
        plan = FaultPlan(seed=4)
        plan.set_link(0, 1, FaultSpec(drop=1.0))
        cfg = ReliabilityConfig(timeout_seconds=3e-6, max_retries=2)
        c = Cluster(2, fault_plan=plan, reliability=cfg)
        c.rank(1).irecv(src=0, tag=0)
        c.rank(0).isend(1, b"void", tag=0)
        with pytest.raises(DeliveryFailure) as exc:
            c.drain()
        assert exc.value.src == 0 and exc.value.dst == 1
        assert plan.ledger.count("give_up") == 1

    def test_healthy_links_unaffected_by_dead_link(self):
        plan = FaultPlan(seed=4)
        plan.set_link(0, 1, FaultSpec(drop=1.0))
        cfg = ReliabilityConfig(timeout_seconds=3e-6, max_retries=1)
        c = Cluster(3, fault_plan=plan, reliability=cfg)
        req = c.rank(2).irecv(src=1, tag=0)
        c.rank(1).isend(2, b"fine", tag=0)
        assert req.wait() == b"fine"


class TestProgressWatchdog:
    def test_stall_error_carries_report(self):
        plan = FaultPlan(seed=8)
        plan.set_link(0, 1, FaultSpec(drop=1.0))
        # huge budget + long timeout: never delivers, never gives up
        cfg = ReliabilityConfig(timeout_seconds=1.0, max_retries=10_000)
        c = Cluster(2, fault_plan=plan, reliability=cfg)
        c.rank(1).irecv(src=0, tag=3)
        c.rank(0).isend(1, b"lost", tag=3)
        with pytest.raises(StallError) as exc:
            c.drain(max_rounds=50)
        report = exc.value.report
        assert report.rounds == 50
        assert (0, 1) in report.outstanding
        assert report.ranks[1]["prq_depth"] == 1
        assert report.ranks[1]["oldest_posted"]["tag"] == 3
        assert "outstanding seqs" in str(exc.value)

    def test_stall_report_oldest_unmatched(self):
        c = Cluster(2)
        c.rank(0).isend(1, b"nobody wants me", tag=9)
        c.progress()
        info = c.stall_report().ranks[1]
        assert info["umq_depth"] == 1
        assert info["oldest_unmatched"]["tag"] == 9

    def test_stall_error_is_runtime_error(self):
        # callers catching the old bare RuntimeError keep working
        assert issubclass(StallError, RuntimeError)

    def test_quiescent_drain_still_returns(self):
        c = Cluster(2, fault_plan=chaos_plan(seed=6, drop=0.1))
        c.rank(0).isend(1, b"x", tag=0)
        assert c.rank(1).recv(src=0, tag=0) == b"x"
        c.drain()  # no exception


class TestSpillRingPolicy:
    def test_spill_accepts_flood_in_order(self):
        c = Cluster(2, ring_capacity=2, ring_policy="spill")
        for i in range(30):
            c.rank(0).isend(1, i, tag=7)
        # nothing was back-pressured onto the network...
        assert c.network.held_messages == 0
        ep = c.endpoints[1]
        assert ep.spilled_total > 0
        # ...and per-pair order survives the spill/re-push cycle
        got = [c.rank(1).recv(src=0, tag=7) for _ in range(30)]
        assert got == list(range(30))
        assert ep.spill_pending == 0
        stats = ep.stats()
        assert stats["spilled"] == ep.spilled_total
        assert stats["rings"]["repush_attempts"] > 0

    def test_spill_interleaves_with_direct_pushes(self):
        c = Cluster(3, ring_capacity=1, ring_policy="spill")
        reqs = [c.rank(2).irecv(src=src, tag=i)
                for src in (0, 1) for i in range(10)]
        for i in range(10):
            c.rank(0).isend(2, (0, i), tag=i)
            c.rank(1).isend(2, (1, i), tag=i)
        c.drain()
        assert [r.wait() for r in reqs] == [(src, i)
                                            for src in (0, 1)
                                            for i in range(10)]

    def test_backpressure_remains_default(self):
        c = Cluster(2, ring_capacity=1)
        for i in range(5):
            c.rank(0).isend(1, i, tag=i)
        assert c.network.held_messages > 0
        assert c.endpoints[1].spilled_total == 0

    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError):
            Cluster(2, ring_capacity=2, ring_policy="drop-newest")

    def test_spill_works_under_faults(self):
        plan = chaos_plan(seed=13, drop=0.1, reorder=0.05)
        c = Cluster(2, fault_plan=plan, ring_capacity=2,
                    ring_policy="spill")
        reqs = [c.rank(1).irecv(src=0, tag=i) for i in range(20)]
        for i in range(20):
            c.rank(0).isend(1, i, tag=i)
        c.drain()
        assert [r.wait() for r in reqs] == list(range(20))


class TestClusterGracefulDegradation:
    def test_wildcard_demotes_instead_of_raising(self):
        c = Cluster(2, relaxations=RelaxationSet(wildcards=False),
                    demote_on_violation=True)
        req = c.rank(1).irecv(src=ANY_SOURCE, tag=5)
        c.rank(0).isend(1, b"wild", tag=5)
        assert req.wait() == b"wild"
        eng = c.endpoints[1].engine
        assert len(eng.demotions) == 1
        assert eng.demotions[0].to_label == "wc+ord+unexp"
        assert c.stats()[1]["demotions"] == 1

    def test_strict_mode_still_raises(self):
        c = Cluster(2, relaxations=RelaxationSet(wildcards=False))
        with pytest.raises(WorkloadViolation):
            c.rank(1).irecv(src=ANY_SOURCE, tag=5)

    def test_demotion_is_per_endpoint(self):
        c = Cluster(3, relaxations=RelaxationSet(wildcards=False),
                    demote_on_violation=True)
        c.rank(1).irecv(src=ANY_SOURCE, tag=0)
        c.rank(0).isend(1, b"x", tag=0)
        c.drain()
        assert len(c.endpoints[1].engine.demotions) == 1
        assert len(c.endpoints[2].engine.demotions) == 0
