"""Figure 6(b): two-level hash-table matching rate, 1 vs 32 CTAs, 3 GPUs.

Paper: 110 Mmatches/s on Kepler with one CTA and 1024 elements, 150M
with 32 CTAs; ~500M on the Pascal GTX 1080 (3.3x over Kepler).  CTAs
beyond the two the occupancy calculator allows are serialized, yet the
aggregate over co-resident engines still wins.
"""

from __future__ import annotations

import pytest

from repro.bench import Table, anchor, format_rate, matching_workload, \
    write_result
from repro.core.hash_matching import HashMatcher
from repro.simt.gpu import GPU

ELEMENT_COUNTS = (128, 256, 512, 1024, 2048)
CTA_COUNTS = (1, 32)


def figure6b_rates() -> dict[tuple[str, int], dict[int, float]]:
    """{(generation, n_ctas): {elements: rate}}."""
    out: dict[tuple[str, int], dict[int, float]] = {}
    for spec in GPU.all_generations():
        for ctas in CTA_COUNTS:
            rates = {}
            for n in ELEMENT_COUNTS:
                msgs, reqs = matching_workload(n, seed=1234)
                rates[n] = HashMatcher(spec=spec, n_ctas=ctas).match(
                    msgs, reqs).matches_per_second()
            out[(spec.generation, ctas)] = rates
    return out


def test_report_figure6b():
    rates = figure6b_rates()
    table = Table(
        title="Figure 6(b) -- hash-table matching rate (1 vs 32 CTAs)",
        columns=["elements"] + [f"{g}/{c}cta" for g in
                                ("kepler", "maxwell", "pascal")
                                for c in CTA_COUNTS])
    for n in ELEMENT_COUNTS:
        table.add(n, *(format_rate(rates[(g, c)][n])
                       for g in ("kepler", "maxwell", "pascal")
                       for c in CTA_COUNTS))
    table.note(f"paper @1024: kepler {format_rate(anchor('hash1/kepler'))} "
               f"(1 CTA) / {format_rate(anchor('hash32/kepler'))} (32 CTAs); "
               f"pascal ~{format_rate(anchor('hash32/pascal'))} "
               "(3.3x over Kepler)")
    table.note("maxwell and pascal 1-CTA anchors estimated from the figure")
    write_result("fig6b", table.show())

    # anchors at 1024 elements
    assert rates[("kepler", 1)][1024] == pytest.approx(110e6, rel=0.15)
    assert rates[("kepler", 32)][1024] == pytest.approx(150e6, rel=0.15)
    assert rates[("pascal", 32)][1024] == pytest.approx(500e6, rel=0.15)
    ratio = rates[("pascal", 32)][1024] / rates[("kepler", 32)][1024]
    assert ratio == pytest.approx(3.3, rel=0.15)
    # 32 CTAs beat 1 CTA on every generation
    for g in ("kepler", "maxwell", "pascal"):
        assert rates[(g, 32)][1024] > rates[(g, 1)][1024]


def test_report_hash_vs_matrix_speedup():
    """Abstract: 'matching rates of 60M and 500M matches/s' and the 80x
    unordered speedup on Pascal."""
    from repro.core.matrix_matching import MatrixMatcher
    msgs_s, reqs_s = matching_workload(512, seed=1234)
    msgs, reqs = matching_workload(1024, seed=1234)
    steady = MatrixMatcher().match(msgs_s, reqs_s).matches_per_second()
    hashed = HashMatcher(n_ctas=32).match(msgs, reqs).matches_per_second()
    table = Table(title="Abstract headline -- unordered speedup (Pascal)",
                  columns=["config", "rate", "speedup vs MPI matrix"])
    table.add("matrix (MPI semantics)", format_rate(steady), "1.0x")
    table.add("hash (no order/wildcards)", format_rate(hashed),
              f"{hashed / steady:.0f}x")
    table.note("paper: 80x (500M vs 6M)")
    write_result("fig6b_speedup", table.show())
    assert hashed / steady == pytest.approx(80.0, rel=0.25)


@pytest.mark.parametrize("ctas", CTA_COUNTS)
def test_perf_hash_match(benchmark, ctas):
    msgs, reqs = matching_workload(1024, seed=1234)
    matcher = HashMatcher(n_ctas=ctas)
    outcome = benchmark(matcher.match, msgs, reqs)
    assert outcome.matched_count == 1024


if __name__ == "__main__":
    test_report_figure6b()
    test_report_hash_vs_matrix_speedup()
