"""{src, tag} tuple uniqueness (the Figure 6(a) analysis).

"In Figure 6(a) we show the uniqueness of {src, tag} tuples among all
destinations within an application.  For example, a value of 50% means
that a single tuple appears in 50% of all messages to a given
destination.  This would be a bad case for hash tables ..."  Most
applications land in single-digit percentages, supporting the two-level
hash table of Section VI-C.
"""

from __future__ import annotations

from collections import Counter, defaultdict

import numpy as np

from .events import Trace

__all__ = ["tuple_uniqueness", "per_destination_shares"]


def per_destination_shares(trace: Trace) -> dict[int, float]:
    """Per destination: the share of its traffic owned by its most
    common {src, tag} tuple (1.0 = every message identical)."""
    per_dst: dict[int, Counter] = defaultdict(Counter)
    for s in trace.sends():
        per_dst[s.dst][(s.rank, s.tag)] += 1
    out = {}
    for dst, counts in per_dst.items():
        total = sum(counts.values())
        out[dst] = counts.most_common(1)[0][1] / total
    return out


def tuple_uniqueness(trace: Trace) -> dict:
    """Figure 6(a)'s statistic for one application.

    Returns the mean/median/max over destinations of the dominant-tuple
    share, plus the overall duplicate fraction (messages whose tuple has
    already been sent to the same destination).
    """
    shares = per_destination_shares(trace)
    if not shares:
        return {"app": trace.app, "dominant_share_mean": 0.0,
                "dominant_share_median": 0.0, "dominant_share_max": 0.0,
                "duplicate_fraction": 0.0}
    vals = np.array(list(shares.values()))
    seen: dict[int, set] = defaultdict(set)
    dups = 0
    total = 0
    for s in trace.sends():
        key = (s.rank, s.tag)
        total += 1
        if key in seen[s.dst]:
            dups += 1
        seen[s.dst].add(key)
    return {
        "app": trace.app,
        "dominant_share_mean": float(vals.mean()),
        "dominant_share_median": float(np.median(vals)),
        "dominant_share_max": float(vals.max()),
        "duplicate_fraction": dups / total if total else 0.0,
    }
