"""Named metrics: counters, gauges, histograms, and their registry.

The observability subsystem's quantitative half.  A
:class:`MetricsRegistry` owns named instruments that the instrumented
layers update during a run:

* :class:`Counter` -- monotonically accumulating totals (messages sent,
  retransmissions, matrix blocks scanned, backoff seconds);
* :class:`Gauge` -- last-written level plus its high-water mark (queue
  depth, ring occupancy);
* :class:`Histogram` -- value distributions over power-of-two buckets
  (probe-chain length, vote-matrix occupancy, queue depth per match
  attempt).

Instruments are created lazily on first use, so instrumentation sites
never need registration boilerplate.  ``snapshot()`` renders the whole
registry to a plain dict (JSON-friendly; embedded in stall reports) and
``render_table()`` to a human-readable table.

Everything here is host-side bookkeeping: metrics never touch the
simulated cost ledgers, so attaching a registry cannot perturb modeled
results (the zero-overhead-when-off contract is enforced by
``tests/core/test_fastpath_equivalence.py``).
"""

from __future__ import annotations

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]

#: Upper bucket bounds of every histogram: 1, 2, 4, ... 2**19, +inf.
HISTOGRAM_BUCKETS = tuple(2 ** i for i in range(20))


class Counter:
    """A float-valued accumulating total."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, n: float = 1.0) -> None:
        """Add ``n`` (may be fractional, e.g. seconds)."""
        self.value += n


class Gauge:
    """Last-written level plus high-water mark."""

    __slots__ = ("value", "max_value", "writes")

    def __init__(self) -> None:
        self.value = 0.0
        self.max_value = 0.0
        self.writes = 0

    def set(self, v: float) -> None:
        """Record the current level."""
        self.value = v
        self.max_value = max(self.max_value, v)
        self.writes += 1


class Histogram:
    """Distribution over power-of-two buckets.

    ``observe(v, count=k)`` records ``k`` identical observations of
    ``v`` in one call (the batched form the vectorized matchers use).
    """

    __slots__ = ("count", "total", "min", "max", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self.buckets = [0] * (len(HISTOGRAM_BUCKETS) + 1)

    def observe(self, value: float, count: int = 1) -> None:
        """Record ``count`` observations of ``value``."""
        if count <= 0:
            return
        self.count += count
        self.total += value * count
        self.min = min(self.min, value)
        self.max = max(self.max, value)
        for i, bound in enumerate(HISTOGRAM_BUCKETS):
            if value <= bound:
                self.buckets[i] += count
                return
        self.buckets[-1] += count

    @property
    def mean(self) -> float:
        """Mean of all observations (0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def summary(self) -> dict:
        """JSON-friendly summary of the distribution."""
        return {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
        }


class MetricsRegistry:
    """Lazily-created named instruments of one observed run."""

    def __init__(self) -> None:
        self.counters: dict[str, Counter] = {}
        self.gauges: dict[str, Gauge] = {}
        self.histograms: dict[str, Histogram] = {}

    # -- instrument access (create on first use) --------------------------------

    def counter(self, name: str) -> Counter:
        """The named counter, created on first use."""
        c = self.counters.get(name)
        if c is None:
            c = self.counters[name] = Counter()
        return c

    def gauge(self, name: str) -> Gauge:
        """The named gauge, created on first use."""
        g = self.gauges.get(name)
        if g is None:
            g = self.gauges[name] = Gauge()
        return g

    def histogram(self, name: str) -> Histogram:
        """The named histogram, created on first use."""
        h = self.histograms.get(name)
        if h is None:
            h = self.histograms[name] = Histogram()
        return h

    # -- write shorthands ---------------------------------------------------------

    def inc(self, name: str, n: float = 1.0) -> None:
        """Add ``n`` to the named counter."""
        self.counter(name).inc(n)

    def set(self, name: str, value: float) -> None:
        """Write the named gauge."""
        self.gauge(name).set(value)

    def observe(self, name: str, value: float, count: int = 1) -> None:
        """Record observations into the named histogram."""
        self.histogram(name).observe(value, count)

    # -- export -------------------------------------------------------------------

    def snapshot(self) -> dict:
        """Plain-dict view of every instrument (stable key order)."""
        return {
            "counters": {k: self.counters[k].value
                         for k in sorted(self.counters)},
            "gauges": {k: {"value": g.value, "max": g.max_value,
                           "writes": g.writes}
                       for k, g in sorted(self.gauges.items())},
            "histograms": {k: h.summary()
                           for k, h in sorted(self.histograms.items())},
        }

    def render_table(self) -> str:
        """Human-readable metrics table."""
        lines = ["metric                                    value"]
        lines.append("-" * 52)
        for k in sorted(self.counters):
            lines.append(f"{k:<40}  {self.counters[k].value:g}")
        for k, g in sorted(self.gauges.items()):
            lines.append(f"{k:<40}  {g.value:g} (max {g.max_value:g})")
        for k, h in sorted(self.histograms.items()):
            lines.append(f"{k:<40}  n={h.count} mean={h.mean:.3g} "
                         f"max={h.max if h.count else 0:g}")
        return "\n".join(lines)
