"""Kernel launch abstraction.

Ties the pieces of the simulator together: a :class:`KernelLaunch` carries
the grid shape and resource footprint, runs the kernel body once per CTA
(the functional part), and evaluates the accumulated
:class:`~repro.simt.timing.CostLedger` on the target device, applying the
occupancy-derived CTA serialization the paper observes when more than two
matrix-matcher CTAs are packed onto the single communication SM.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from .cta import CTA
from .gpu import GPUSpec
from .memory import SMEM_WORD_BYTES
from .occupancy import KernelResources, occupancy, serialization_factor
from .timing import CostLedger, TimingBreakdown, TimingModel

__all__ = ["KernelLaunch", "LaunchResult"]


@dataclass
class LaunchResult:
    """Functional outputs plus the timing estimate of one launch."""

    outputs: list
    timing: TimingBreakdown
    ledger: CostLedger
    resident_ctas: int
    waves: int

    @property
    def seconds(self) -> float:
        """Predicted wall time of the launch."""
        return self.timing.seconds


class KernelLaunch:
    """Configure and run a simulated kernel.

    Parameters
    ----------
    spec:
        Target device.
    grid_ctas:
        Number of CTAs to launch.
    warps_per_cta:
        Warps in each CTA.
    shared_words:
        Shared memory words per CTA.
    regs_per_thread:
        Register footprint used for the occupancy computation.
    sm_count:
        SMs devoted to the kernel.  The paper's methodology dedicates one
        SM to communication; that is the default.
    sanitize:
        Optional :class:`~repro.simt.sanitize.Sanitizer` threaded into
        every CTA; ``None`` (the default) falls back to ``spec.sanitize``.

    The kernel ``body`` receives ``(cta, *args)`` and returns an arbitrary
    per-CTA output.  CTAs sharing an SM wave run concurrently; the
    serialization of excess waves is applied to the timing, not to the
    functional result.
    """

    def __init__(self, spec: GPUSpec, grid_ctas: int = 1,
                 warps_per_cta: int = 32, shared_words: int = 0,
                 regs_per_thread: int = 32, sm_count: int = 1,
                 obs=None, sanitize=None) -> None:
        if grid_ctas < 1:
            raise ValueError("grid_ctas must be positive")
        if sm_count < 1 or sm_count > spec.sm_count:
            raise ValueError(f"sm_count must be in [1, {spec.sm_count}]")
        self.spec = spec
        self.grid_ctas = grid_ctas
        self.warps_per_cta = warps_per_cta
        self.shared_words = shared_words
        self.sm_count = sm_count
        self._obs = obs
        self._san = sanitize if sanitize is not None else spec.sanitize
        self.resources = KernelResources(
            threads_per_cta=warps_per_cta * 32,
            shared_mem_per_cta=shared_words * SMEM_WORD_BYTES,
            regs_per_thread=regs_per_thread,
        )

    def run(self, body: Callable, *args) -> LaunchResult:
        """Execute ``body`` for every CTA and price the launch.

        All CTAs share one ledger: within a wave their instruction streams
        interleave on the SM, which the timing model captures through the
        phase ``active_warps``; across waves the serialization factor
        multiplies the total.
        """
        ledger = CostLedger()
        occ = occupancy(self.spec, self.resources)
        waves = serialization_factor(self.spec, self.resources,
                                     self.grid_ctas, self.sm_count)
        outputs = []
        san = self._san
        if san is not None:
            prev_kernel = san.current_kernel
            san.current_kernel = getattr(body, "__name__", None) or "kernel"
        try:
            for cta_id in range(self.grid_ctas):
                cta = CTA(num_warps=self.warps_per_cta,
                          shared_words=self.shared_words,
                          ledger=ledger, cta_id=cta_id,
                          sanitize=san)
                outputs.append(body(cta, *args))
        finally:
            if san is not None:
                san.finalize()
                san.current_kernel = prev_kernel
        # The ledger holds the summed work of all grid_ctas CTAs, but CTAs
        # within one wave run concurrently: wall time = total / (CTAs per
        # wave).  For homogeneous CTAs this equals "max over waves".
        concurrency = self.grid_ctas / waves
        timing = TimingModel(self.spec).evaluate(ledger)
        scaled_cycles = timing.cycles / concurrency
        seconds = scaled_cycles / self.spec.clock_hz
        timing = TimingBreakdown(cycles=scaled_cycles, seconds=seconds,
                                 per_phase_cycles=timing.per_phase_cycles,
                                 spec_name=timing.spec_name)
        if self._obs is not None:
            self._obs.count("kernel.launches")
            self._obs.span("kernel.launch", seconds,
                           grid_ctas=self.grid_ctas,
                           warps_per_cta=self.warps_per_cta,
                           waves=waves, device=self.spec.name)
        return LaunchResult(outputs=outputs, timing=timing, ledger=ledger,
                            resident_ctas=occ.max_resident_ctas, waves=waves)
