"""Unit tests for the observability layer: tracer, metrics, exports.

Covers the Chrome/Perfetto trace-schema contract (the ``--trace-out``
acceptance criterion validates a real bench run against the same checks
in ``tests/bench/test_bench_smoke.py``), the metrics registry semantics,
and the bounded-buffer behaviour of the tracer.
"""

from __future__ import annotations

import json

import pytest

from repro.obs import Counter, Gauge, Histogram, MetricsRegistry, Observability, Tracer
from repro.obs.metrics import HISTOGRAM_BUCKETS
from repro.obs.report import render_tracer_summary, span_time_by_name, summary


def assert_perfetto_schema(doc: dict) -> None:
    """Structural checks of the Chrome Trace Event JSON object format."""
    assert isinstance(doc, dict)
    assert isinstance(doc["traceEvents"], list)
    for ev in doc["traceEvents"]:
        assert isinstance(ev["name"], str) and ev["name"]
        assert ev["ph"] in ("X", "i", "M")
        assert isinstance(ev["pid"], int)
        assert isinstance(ev["tid"], int)
        if ev["ph"] == "M":
            assert ev["name"] in ("process_name", "thread_name")
            assert isinstance(ev["args"]["name"], str)
            continue
        assert isinstance(ev["ts"], (int, float)) and ev["ts"] >= 0
        if ev["ph"] == "X":
            assert isinstance(ev["dur"], (int, float)) and ev["dur"] >= 0
        if ev["ph"] == "i":
            assert ev["s"] in ("t", "p", "g")
        if "args" in ev:
            json.dumps(ev["args"])  # args must be JSON-serializable


class TestMetrics:
    def test_counter_accumulates(self):
        c = Counter()
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_gauge_tracks_high_water_mark(self):
        g = Gauge()
        g.set(3)
        g.set(10)
        g.set(4)
        assert g.value == 4
        assert g.max_value == 10
        assert g.writes == 3

    def test_histogram_batched_observe(self):
        h = Histogram()
        h.observe(4.0, count=3)
        h.observe(100.0)
        assert h.count == 4
        assert h.mean == pytest.approx((4.0 * 3 + 100.0) / 4)
        assert h.min == 4.0 and h.max == 100.0
        s = h.summary()
        assert s["count"] == 4 and s["sum"] == pytest.approx(112.0)

    def test_histogram_bucket_placement(self):
        h = Histogram()
        h.observe(1.0)
        h.observe(float(HISTOGRAM_BUCKETS[-1]) * 4)  # beyond every bound
        assert h.buckets[0] == 1
        assert h.buckets[-1] == 1

    def test_histogram_ignores_nonpositive_count(self):
        h = Histogram()
        h.observe(5.0, count=0)
        assert h.count == 0
        assert h.summary()["min"] is None

    def test_registry_lazy_creation_and_snapshot(self):
        reg = MetricsRegistry()
        reg.inc("a.count", 2)
        reg.set("b.depth", 7)
        reg.observe("c.dist", 3, count=2)
        assert reg.counter("a.count") is reg.counters["a.count"]
        snap = reg.snapshot()
        assert snap["counters"] == {"a.count": 2}
        assert snap["gauges"]["b.depth"]["max"] == 7
        assert snap["histograms"]["c.dist"]["count"] == 2
        json.dumps(snap)  # must be JSON-friendly

    def test_render_table_lists_every_instrument(self):
        reg = MetricsRegistry()
        reg.inc("zeta", 1)
        reg.set("alpha", 2)
        reg.observe("mid", 3)
        table = reg.render_table()
        for name in ("zeta", "alpha", "mid"):
            assert name in table


class TestTracer:
    def test_complete_does_not_advance_clock(self):
        t = Tracer()
        t.complete("work", 0.0, 1e-6)
        assert t.now == 0.0
        assert t.events[0]["ph"] == "X"
        assert t.events[0]["dur"] == pytest.approx(1.0)  # us

    def test_span_helper_advances_clock(self):
        obs = Observability.enabled()
        obs.span("a", 2e-6)
        obs.span("b", 3e-6)
        assert obs.tracer.now == pytest.approx(5e-6)
        ts = [e["ts"] for e in obs.tracer.events]
        assert ts == [pytest.approx(0.0), pytest.approx(2.0)]

    def test_instant_scope_and_timestamp(self):
        t = Tracer()
        t.advance(1e-6)
        t.instant("evt", detail=42)
        ev = t.events[0]
        assert ev["ph"] == "i" and ev["s"] == "t"
        assert ev["ts"] == pytest.approx(1.0)
        assert ev["args"]["detail"] == 42

    def test_negative_duration_clamped(self):
        t = Tracer()
        t.complete("w", 1.0, -5.0)
        assert t.events[0]["dur"] == 0.0

    def test_max_events_cap_counts_drops(self):
        t = Tracer(max_events=3)
        for i in range(5):
            t.instant(f"e{i}")
        assert t.n_events == 3
        assert t.dropped == 2
        assert t.to_chrome()["otherData"]["dropped_events"] == 2

    def test_rejects_nonpositive_cap(self):
        with pytest.raises(ValueError):
            Tracer(max_events=0)

    def test_metadata_events_label_processes(self):
        obs = Observability.enabled()
        obs.set_rank(3)
        obs.instant("x")
        doc = obs.tracer.to_chrome()
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        names = {(e["name"], e["args"]["name"]) for e in meta}
        assert ("process_name", "rank 3") in names
        assert ("thread_name", "comm kernel") in names
        assert obs.tracer.events[0]["pid"] == 3

    def test_match_span_lays_phase_subspans(self):
        obs = Observability.enabled()
        obs.match_span("m.match", 4e-6, {"scan": 10.0, "reduce": 30.0},
                       clock_hz=10e6)
        names = [e["name"] for e in obs.tracer.events]
        assert names == ["m.match.scan", "m.match.reduce", "m.match"]
        top = obs.tracer.events[-1]
        assert top["args"]["phase_cycles"] == {"scan": 10.0, "reduce": 30.0}
        # phase lanes ride on tid 1, the top-level span on the current tid
        assert {e["tid"] for e in obs.tracer.events[:2]} == {1}
        assert obs.tracer.now == pytest.approx(4e-6)


class TestExports:
    def test_chrome_export_schema(self, tmp_path):
        obs = Observability.enabled()
        obs.set_rank(0)
        obs.span("alpha", 1e-6, n=1)
        obs.instant("beta")
        path = obs.tracer.write_chrome(tmp_path / "trace.json")
        with open(path) as f:
            doc = json.load(f)
        assert_perfetto_schema(doc)
        assert doc["displayTimeUnit"] == "ms"

    def test_jsonl_export_one_event_per_line(self, tmp_path):
        obs = Observability.enabled()
        obs.set_rank(1)
        obs.span("alpha", 1e-6)
        path = obs.tracer.write_jsonl(tmp_path / "trace.jsonl")
        lines = [json.loads(line) for line in open(path)]
        assert all("ph" in ev for ev in lines)
        # metadata first, then the span
        assert lines[0]["ph"] == "M"
        assert lines[-1]["name"] == "alpha"

    def test_run_metadata_lands_in_other_data(self, tmp_path):
        from repro.simt.gpu import PASCAL_GTX1080
        t = Tracer()
        t.metadata.update(PASCAL_GTX1080.trace_metadata())
        t.instant("x")
        doc = t.to_chrome()
        assert doc["otherData"]["device"] == "GeForce GTX 1080"
        assert doc["otherData"]["generation"] == "pascal"


class TestObservabilityFacade:
    def test_halves_are_optional(self):
        obs = Observability()  # both halves off: everything no-ops
        obs.count("x")
        obs.gauge("y", 1)
        obs.observe("z", 2)
        obs.span("s", 1e-6)
        obs.instant("i")
        obs.set_rank(2)
        assert obs.snapshot() is None

    def test_metrics_only(self):
        obs = Observability(metrics=MetricsRegistry())
        obs.count("hits", 3)
        obs.span("s", 1e-6)  # no tracer: silently dropped
        assert obs.snapshot()["counters"] == {"hits": 3}

    def test_report_summary(self):
        obs = Observability.enabled()
        obs.span("phase.a", 3e-6)
        obs.span("phase.a", 1e-6)
        obs.count("n", 2)
        by_name = span_time_by_name(obs.tracer)
        assert by_name["phase.a"][0] == 2
        assert by_name["phase.a"][1] == pytest.approx(4e-6)
        text = summary(obs)
        assert "phase.a" in text and "n" in text
        assert "2 events" in render_tracer_summary(obs.tracer)

    def test_disabled_summary_message(self):
        assert "disabled" in summary(Observability())
