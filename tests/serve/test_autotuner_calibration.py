"""Autotuner calibration over the Benchpark re-fire traces.

The three Benchpark app models (AMG2023, Kripke, Laghos) share the
signature that breaks naive lattice walking: enormous per-pair message
counts over a tiny tuple cardinality.  Without the ``partitioned``
declaration, that shape sits right on the hash gate's dominance
threshold and can oscillate between lattice points; with it, the
autotuner pins the match-once point and must stay there.  This suite is
the regression lock for those pinned engines.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.result import MatchOutcome
from repro.core.envelope import EnvelopeBatch
from repro.serve import (Autotuner, StreamProfiler, TenantSpec,
                         lattice_rank, run_workload, workload_from_app)
from repro.serve.loadgen import BENCHPARK_BENCH_APPS

BP_APPS = [app for app, _ in BENCHPARK_BENCH_APPS]


def run_app(app: str, *, partitioned: bool = True, seed: int = 3):
    # chunk_envelopes=16 gives even the sparsest model (Laghos: five
    # fixed neighbours, a handful of messages per step) enough flushes
    # to clear the promotion hysteresis window
    w = workload_from_app(app, n_ranks=16, steps=4, seed=seed,
                          chunk_envelopes=16, partitioned=partitioned)
    return run_workload(w, n_shards=2, seed=seed, promote_after=2)[0]


class TestPinnedEngines:
    @pytest.mark.parametrize("app", BP_APPS)
    def test_partitioned_declaration_pins_rank_one(self, app):
        svc = run_app(app)
        ts = svc.tenant(app)
        assert lattice_rank(ts.relaxations) == 1, \
            f"{app} ended on {ts.relaxations.label()}, not the pinned " \
            "partitioned point"

    @pytest.mark.parametrize("app", BP_APPS)
    def test_no_lattice_oscillation(self, app):
        """At most the single initial move onto the pinned point; a
        second event in either direction is the oscillation this suite
        exists to catch."""
        svc = run_app(app)
        events = [e for e in svc.retune_events if e.tenant == app]
        assert len(events) <= 1, \
            f"{app} retuned {len(events)} times: " \
            f"{[(e.direction, e.to_label) for e in events]}"
        for e in events:
            assert e.direction == "promote"
            assert "match-once" in e.reason

    @pytest.mark.parametrize("app", BP_APPS)
    def test_calibration_is_deterministic(self, app):
        reports = [run_app(app).report() for _ in range(2)]
        assert reports[0] == reports[1]
        assert reports[0]["matched"] > 0

    def test_pin_beats_wildcards_never(self):
        """The pin only applies below the wildcard check: a wildcard
        window still forces the matrix point even for a partitioned
        tenant."""
        from tests.serve.test_autotuner import profile
        tuner = Autotuner(TenantSpec(name="t", ordering_required=False,
                                     partitioned=True))
        assert tuner.target_rank(profile(wildcard_fraction=0.1)) == 0
        assert tuner.target_rank(profile()) == 1
        assert tuner.target_rank(profile(dominant_fraction=0.9)) == 1


class TestProfilerDegenerateStreams:
    """Satellite regression: tiny-cardinality / huge-count streams must
    never leak NaN or inf out of the profiler."""

    @staticmethod
    def _ingest_stream(profiler: StreamProfiler, *, n: int,
                       tuples: int) -> None:
        src = np.arange(n) % max(tuples, 1)
        msgs = EnvelopeBatch(src=src, tag=np.zeros(n, dtype=np.int64),
                             comm=np.zeros(n, dtype=np.int64))
        reqs = EnvelopeBatch(src=src, tag=np.zeros(n, dtype=np.int64),
                             comm=np.zeros(n, dtype=np.int64))
        outcome = MatchOutcome(
            request_to_message=np.arange(n), n_messages=n, n_requests=n)
        profiler.ingest(msgs, reqs, outcome)

    def _assert_finite(self, profiler: StreamProfiler) -> None:
        p = profiler.profile()
        for field in ("src_wildcard_fraction", "tag_wildcard_fraction",
                      "duplicate_tuple_fraction", "tag_entropy",
                      "umq_depth_mean", "prq_depth_mean",
                      "dominant_tuple_fraction"):
            value = getattr(p, field)
            assert np.isfinite(value), f"{field} = {value!r}"

    def test_single_tuple_huge_count(self):
        """One tuple repeated 4096 times per flush: single-category tag
        entropy (the 0/0 shape) and total dominance, all finite."""
        profiler = StreamProfiler(window_flushes=4)
        for _ in range(6):
            self._ingest_stream(profiler, n=4096, tuples=1)
        self._assert_finite(profiler)
        p = profiler.profile()
        assert p.dominant_tuple_fraction > 0.9
        assert not p.hash_friendly

    def test_kripke_shaped_stream(self):
        """A handful of tuples under a huge count (the sweep-chunk
        shape) stays finite and correctly flags dominance."""
        profiler = StreamProfiler(window_flushes=8)
        for _ in range(8):
            self._ingest_stream(profiler, n=2048, tuples=3)
        self._assert_finite(profiler)

    def test_empty_flushes_stay_finite(self):
        profiler = StreamProfiler(window_flushes=2)
        self._ingest_stream(profiler, n=0, tuples=0)
        self._assert_finite(profiler)

    def test_degenerate_profile_snapshot_roundtrip(self):
        a = StreamProfiler(window_flushes=3)
        for _ in range(3):
            self._ingest_stream(a, n=1024, tuples=1)
        b = StreamProfiler(window_flushes=3)
        b.restore_state(a.export_state())
        assert b.profile() == a.profile()
