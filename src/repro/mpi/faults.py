"""Seeded fault injection for the GAS transport.

The paper's system model (Section II-C) assumes a perfectly reliable
interconnect: every remote store arrives, arrives once, and arrives in
pair order.  Real links drop, duplicate, delay, reorder, and corrupt
packets; a production message-passing layer has to be exercised against
all five.  This module provides the *injection* side of that story:

* :class:`FaultSpec` -- per-link fault rates (one probability per fault
  class, plus the delay depth for delayed frames);
* :class:`FaultPlan` -- a seeded decision source the network consults on
  every transmission.  Draws are made in a fixed order from one
  ``numpy`` generator, so a plan seed fully determines the fault
  sequence: same seed, same traffic => same faults, which is what makes
  chaos runs replayable;
* :class:`FaultLedger` -- the append-only record of every injected fault
  *and* every recovery action the reliability protocol takes
  (retransmit, duplicate filtered, corruption detected, give-up).  The
  ledger's :meth:`~FaultLedger.signature` is the replay-identity used by
  the deterministic-seed tests.

The *recovery* side (sequence numbers, acks, retransmission) lives in
:mod:`repro.mpi.reliability`.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Iterable

import numpy as np

__all__ = ["FaultSpec", "FaultDecision", "FaultPlan", "FaultLedger",
           "FaultEvent", "NO_FAULTS"]


@dataclass(frozen=True)
class FaultSpec:
    """Per-link fault rates (independent probabilities per transmission).

    Attributes
    ----------
    drop:
        Frame vanishes on the wire.
    duplicate:
        Frame is delivered twice (an extra copy arrives immediately).
    delay:
        Frame is parked in flight and released ``delay_ticks`` network
        ticks later (it may be overtaken by younger frames meanwhile).
    reorder:
        Frame is held back until the *next* frame on the same link is
        transmitted, producing genuine overtaking on the wire.
    corrupt:
        Frame arrives with a damaged header; the receiver's checksum
        rejects it, so a corrupted frame behaves like a detected drop.
    delay_ticks:
        How many network ticks a delayed frame stays in flight.
    """

    drop: float = 0.0
    duplicate: float = 0.0
    delay: float = 0.0
    reorder: float = 0.0
    corrupt: float = 0.0
    delay_ticks: int = 2

    def __post_init__(self) -> None:
        for f in fields(self):
            if f.name == "delay_ticks":
                continue
            p = getattr(self, f.name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{f.name} rate must be in [0, 1], got {p}")
        if self.delay_ticks < 1:
            raise ValueError("delay_ticks must be positive")

    @property
    def any_faults(self) -> bool:
        """Does this spec ever inject anything?"""
        return any(getattr(self, f.name) > 0.0 for f in fields(self)
                   if f.name != "delay_ticks")


@dataclass(frozen=True)
class FaultDecision:
    """The fate of one transmitted frame (one row of rng draws)."""

    drop: bool = False
    duplicate: bool = False
    delay_ticks: int = 0
    reorder: bool = False
    corrupt: bool = False


#: The no-op decision (used for retransmissions on a fault-free link and
#: when no plan is installed).
NO_FAULTS = FaultDecision()


@dataclass(frozen=True)
class FaultEvent:
    """One ledger entry: an injected fault or a recovery action."""

    kind: str
    src: int
    dst: int
    seq: int
    tick: int


class FaultLedger:
    """Append-only record of faults injected and recoveries performed."""

    def __init__(self) -> None:
        self.events: list[FaultEvent] = []
        self.counts: dict[str, int] = {}

    def record(self, kind: str, src: int, dst: int, seq: int,
               tick: int) -> None:
        """Append one event and bump its kind counter."""
        self.events.append(FaultEvent(kind, src, dst, seq, tick))
        self.counts[kind] = self.counts.get(kind, 0) + 1

    def __len__(self) -> int:
        return len(self.events)

    def count(self, kind: str) -> int:
        """Events of one kind (0 when the kind never occurred)."""
        return self.counts.get(kind, 0)

    def signature(self) -> tuple:
        """Hashable replay identity: the full event sequence.

        Two runs with the same plan seed and the same traffic must
        produce equal signatures -- the deterministic-chaos contract.
        """
        return tuple((e.kind, e.src, e.dst, e.seq, e.tick)
                     for e in self.events)

    def summary(self) -> dict:
        """Counts per kind plus the total (for reports)."""
        return {"total": len(self.events), **dict(sorted(self.counts.items()))}


class FaultPlan:
    """Seeded per-link fault decisions consulted by the transport.

    Parameters
    ----------
    seed:
        Seed of the single ``numpy`` generator all draws come from.
    default:
        Fault rates for links without an override (default: no faults,
        which makes ``FaultPlan(seed)`` a *null plan* -- useful to run
        the reliability protocol with zero injected faults).
    links:
        Optional per-``(src, dst)`` overrides.

    Notes
    -----
    Every data-frame decision draws exactly five uniforms and every ack
    decision exactly one, regardless of which rates are zero, so the
    random stream (and hence the whole fault sequence) is a function of
    the seed and the *order* of transmissions only.
    """

    def __init__(self, seed: int, default: FaultSpec = FaultSpec(),
                 links: dict[tuple[int, int], FaultSpec] | None = None,
                 ) -> None:
        self.seed = seed
        self.default = default
        self._links: dict[tuple[int, int], FaultSpec] = dict(links or {})
        self._rng = np.random.default_rng(seed)
        self.ledger = FaultLedger()
        self.decisions = 0

    def set_link(self, src: int, dst: int, spec: FaultSpec) -> None:
        """Override the fault rates of one directed link."""
        self._links[(src, dst)] = spec

    def spec_for(self, src: int, dst: int) -> FaultSpec:
        """The spec governing one directed link."""
        return self._links.get((src, dst), self.default)

    # -- decision draws ---------------------------------------------------------

    def decide(self, src: int, dst: int) -> FaultDecision:
        """Fate of one data frame on ``src -> dst`` (five draws)."""
        spec = self.spec_for(src, dst)
        u = self._rng.random(5)
        self.decisions += 1
        delay = bool(u[2] < spec.delay)
        return FaultDecision(
            drop=bool(u[0] < spec.drop),
            duplicate=bool(u[1] < spec.duplicate),
            delay_ticks=spec.delay_ticks if delay else 0,
            # delay and reorder both displace the frame; delay wins
            reorder=bool(u[3] < spec.reorder) and not delay,
            corrupt=bool(u[4] < spec.corrupt),
        )

    def decide_ack_drop(self, src: int, dst: int) -> bool:
        """Is this ack (travelling ``src -> dst``) lost?  (One draw; acks
        share the link's drop rate.)"""
        spec = self.spec_for(src, dst)
        self.decisions += 1
        return bool(self._rng.random() < spec.drop)

    # -- replay -----------------------------------------------------------------

    def reset(self) -> None:
        """Rewind the generator and clear the ledger (fresh replay)."""
        self._rng = np.random.default_rng(self.seed)
        self.ledger = FaultLedger()
        self.decisions = 0


def chaos_plan(seed: int, drop: float = 0.05, duplicate: float = 0.02,
               delay: float = 0.03, reorder: float = 0.03,
               corrupt: float = 0.01, delay_ticks: int = 2,
               links: Iterable[tuple[int, int]] | None = None) -> FaultPlan:
    """Convenience constructor for the chaos suite's mixed-fault plan."""
    spec = FaultSpec(drop=drop, duplicate=duplicate, delay=delay,
                     reorder=reorder, corrupt=corrupt,
                     delay_ticks=delay_ticks)
    plan = FaultPlan(seed=seed, default=spec)
    if links is not None:
        for src, dst in links:
            plan.set_link(src, dst, spec)
    return plan
