"""Memory system model: global and shared memory with transaction analysis.

The matching queues live in GPU global memory ("Both queues reside in
global memory on the GPU", Section V) and the vote matrix in shared
memory.  This module provides

* :class:`GlobalMemory` / :class:`SharedMemory` -- addressable NumPy-backed
  simulated memories used by kernels that want explicit buffers, and
* :func:`coalesced_transactions` / :func:`bank_conflicts` -- the access
  pattern analyses the cost model uses to turn a warp's 32 lane addresses
  into a transaction count (global) or a conflict multiplier (shared).

Both memories are *word addressed*; the modeled byte size of a word is an
explicit ``word_bytes`` parameter used consistently by capacity
(``size_bytes``), coalescing, and bank-conflict accounting.  The defaults
match what the paper's kernels store: 8-byte packed {src, tag, comm}
envelope words in global memory (:data:`GMEM_WORD_BYTES`) and 4-byte
int32 vote rows in shared memory (:data:`SMEM_WORD_BYTES`).  Values are
held in an int64 backing array regardless of the modeled width -- the
width drives the *cost and capacity model*, not host storage.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "GlobalMemory",
    "SharedMemory",
    "coalesced_transactions",
    "bank_conflicts",
    "MemoryError_",
    "GMEM_WORD_BYTES",
    "SMEM_WORD_BYTES",
]

#: Global memory transaction granularity in bytes (L1 line / sector size).
TRANSACTION_BYTES = 128

#: Shared memory banks on all simulated generations.
SMEM_BANKS = 32

#: Modeled element size of a global-memory word: the 64-bit packed
#: envelope {comm:16 | src:32 | tag:16} the queues store.
GMEM_WORD_BYTES = 8

#: Modeled element size of a shared-memory word: the int32 vote rows of
#: the matrix matcher (Section V-A).
SMEM_WORD_BYTES = 4


class MemoryError_(RuntimeError):
    """Out-of-bounds or misuse of a simulated memory."""


def coalesced_transactions(addresses: np.ndarray,
                           access_bytes: int = 4,
                           transaction_bytes: int = TRANSACTION_BYTES) -> int:
    """Number of global-memory transactions for one warp access.

    A warp's 32 lane addresses are serviced by as many
    ``transaction_bytes``-sized aligned segments as they touch: a fully
    coalesced unit-stride 4-byte access costs 1 transaction, a random
    scatter costs up to 32.  An access wider than a transaction touches
    every segment it spans, not just its first and last.

    >>> import numpy as np
    >>> coalesced_transactions(np.arange(32) * 4)
    1
    >>> coalesced_transactions(np.arange(32) * 128)
    32
    >>> coalesced_transactions(np.array([0]), access_bytes=512)
    4
    """
    addrs = np.asarray(addresses, dtype=np.int64)
    if addrs.size == 0:
        return 0
    if (addrs < 0).any():
        raise MemoryError_("negative address in warp access")
    first = addrs // transaction_bytes
    last = (addrs + access_bytes - 1) // transaction_bytes
    span = int((last - first).max())
    if span <= 1:
        segments = np.union1d(np.unique(first), np.unique(last))
        return int(segments.size)
    # Wide accesses span interior segments too; enumerate every one.
    parts = [np.minimum(first + k, last) for k in range(span + 1)]
    return int(np.unique(np.concatenate(parts)).size)


def bank_conflicts(addresses: np.ndarray, word_bytes: int = 4,
                   banks: int = SMEM_BANKS) -> int:
    """Shared-memory conflict degree for one warp access.

    Returns the replay factor: 1 for conflict-free (or broadcast) access,
    N when some bank is hit by N lanes with *different* words.  Accesses by
    multiple lanes to the same word broadcast and do not conflict.
    """
    addrs = np.asarray(addresses, dtype=np.int64)
    if addrs.size == 0:
        return 1
    words = addrs // word_bytes
    bank = words % banks
    worst = 1
    for b in np.unique(bank):
        distinct_words = np.unique(words[bank == b]).size
        worst = max(worst, int(distinct_words))
    return worst


class GlobalMemory:
    """A flat, word-addressed simulated global memory.

    Kernels allocate named regions and read/write them with lane-address
    vectors; every access reports its transaction count to the ledger.

    Parameters
    ----------
    size_words:
        Capacity in words.
    ledger:
        Optional :class:`~repro.simt.timing.CostLedger`; when attached,
        every access charges its transaction count.
    word_bytes:
        Modeled element size; drives ``size_bytes`` and the coalescing
        analysis (default :data:`GMEM_WORD_BYTES`, the packed envelope).
    sanitize:
        Optional :class:`~repro.simt.sanitize.Sanitizer`; when attached,
        accesses update initcheck/ledger-audit shadow state.
    """

    def __init__(self, size_words: int, ledger: "object | None" = None,
                 word_bytes: int = GMEM_WORD_BYTES,
                 sanitize: "object | None" = None) -> None:
        if size_words < 1:
            raise ValueError("size_words must be positive")
        if word_bytes < 1:
            raise ValueError("word_bytes must be positive")
        self.data = np.zeros(size_words, dtype=np.int64)
        self.ledger = ledger
        self.word_bytes = word_bytes
        self._san = sanitize
        self._regions: dict[str, tuple[int, int]] = {}
        self._next_free = 0
        if sanitize is not None:
            sanitize.register_global(self)

    @property
    def size_bytes(self) -> int:
        """Modeled footprint in bytes (``size_words * word_bytes``)."""
        return self.data.size * self.word_bytes

    def alloc(self, name: str, words: int) -> int:
        """Reserve a region; returns its base word address.

        Zero-sized regions are rejected: their base would alias the next
        allocation's, making region-aware bounds checks ambiguous.
        """
        if words <= 0:
            raise ValueError(
                "allocation size must be positive (a zero-sized region "
                "would alias its successor's base address)")
        if name in self._regions:
            raise MemoryError_(f"region {name!r} already allocated")
        base = self._next_free
        if base + words > self.data.size:
            raise MemoryError_("simulated global memory exhausted")
        self._regions[name] = (base, words)
        self._next_free += words
        if self._san is not None:
            self._san.global_alloc(self, name, base, words)
        return base

    def region(self, name: str) -> tuple[int, int]:
        """(base, length) of a named region."""
        try:
            return self._regions[name]
        except KeyError:
            raise MemoryError_(f"unknown region {name!r}; allocated: "
                               f"{sorted(self._regions)}") from None

    def memset(self, name: str, value: int = 0) -> None:
        """Host-side ``cudaMemset`` of a named region.

        Defines the region's words for the sanitizer's initcheck; free of
        ledger charges (device-side kernels never issue it).
        """
        base, words = self.region(name)
        self.data[base:base + words] = value
        if self._san is not None:
            self._san.global_memset(self, base, words)

    def _charge(self, kind: str, addresses: np.ndarray) -> None:
        if self.ledger is not None:
            txns = coalesced_transactions(addresses * self.word_bytes,
                                          access_bytes=self.word_bytes)
            self.ledger.issue(kind, txns)
            if self._san is not None:
                self._san.note_charge(self, kind)

    def load(self, addresses: np.ndarray) -> np.ndarray:
        """Warp gather: one value per lane address."""
        addrs = np.asarray(addresses, dtype=np.int64)
        if (addrs < 0).any() or (addrs >= self.data.size).any():
            raise MemoryError_("global load out of bounds")
        self._charge("gmem_load", addrs)
        if self._san is not None:
            self._san.note_access(self, "gmem_load")
            self._san.global_access(self, "load", addrs)
        return self.data[addrs].copy()

    def store(self, addresses: np.ndarray, values: np.ndarray) -> None:
        """Warp scatter: one value per lane address."""
        addrs = np.asarray(addresses, dtype=np.int64)
        if (addrs < 0).any() or (addrs >= self.data.size).any():
            raise MemoryError_("global store out of bounds")
        self._charge("gmem_store", addrs)
        if self._san is not None:
            self._san.note_access(self, "gmem_store")
            self._san.global_access(self, "store", addrs)
        self.data[addrs] = np.asarray(values, dtype=np.int64)

    def atomic_cas(self, addresses: np.ndarray, expected: np.ndarray,
                   desired: np.ndarray,
                   active: np.ndarray | None = None) -> np.ndarray:
        """Warp-wide compare-and-swap; returns each lane's success flag.

        Hardware semantics: atomics from one warp to the same address
        serialize, and exactly one of several lanes CASing the same
        location from the same expected value wins.  Lanes are resolved
        lowest-first (the order the coalescer retires them).  Inactive
        lanes do not participate.
        """
        addrs = np.asarray(addresses, dtype=np.int64)
        if (addrs < 0).any() or (addrs >= self.data.size).any():
            raise MemoryError_("atomic out of bounds")
        expected = np.asarray(expected, dtype=np.int64)
        desired = np.asarray(desired, dtype=np.int64)
        n = addrs.size
        mask = (np.ones(n, dtype=bool) if active is None
                else np.asarray(active, dtype=bool))
        if self.ledger is not None:
            # each distinct address is one atomic transaction; same-address
            # lanes replay
            self.ledger.issue("atomic", float(np.unique(addrs[mask]).size
                                              if mask.any() else 0))
            if self._san is not None:
                self._san.note_charge(self, "atomic")
        success = np.zeros(n, dtype=bool)
        # Vectorized replay rounds with scalar-loop semantics: lanes retire
        # lowest-first, so per replay round the first still-pending lane of
        # each distinct address attempts its CAS (``np.unique`` returns
        # first-occurrence indices, and ``remaining`` is in lane order);
        # later same-address lanes replay against the updated value, so a
        # lane whose ``expected`` equals an earlier lane's ``desired``
        # still chains exactly as in hardware.
        remaining = np.nonzero(mask)[0]
        while remaining.size:
            _, first = np.unique(addrs[remaining], return_index=True)
            winners = remaining[first]
            ok = self.data[addrs[winners]] == expected[winners]
            hit = winners[ok]
            self.data[addrs[hit]] = desired[hit]
            success[hit] = True
            if winners.size == remaining.size:
                break
            keep = np.ones(remaining.size, dtype=bool)
            keep[first] = False
            remaining = remaining[keep]
        if self._san is not None:
            self._san.note_access(self, "atomic")
            self._san.global_access(self, "atomic", addrs[mask],
                                    written=addrs[success])
        return success


class SharedMemory:
    """Per-CTA scratchpad with bank-conflict accounting.

    The vote matrix of the matrix matcher lives here: 32 warps x window
    words.  Capacity is enforced against the CTA limit of the device the
    kernel was launched on.

    Parameters
    ----------
    size_words:
        Capacity in words.
    ledger:
        Optional cost ledger; accesses charge their replay factor.
    word_bytes:
        Modeled element size used by ``size_bytes`` and the bank-conflict
        mapping (default :data:`SMEM_WORD_BYTES`, the int32 vote rows).
    sanitize:
        Optional :class:`~repro.simt.sanitize.Sanitizer`; accesses then
        update racecheck/initcheck shadow state (pass ``warp_id`` on
        loads and stores so races can be attributed).
    """

    def __init__(self, size_words: int, ledger: "object | None" = None,
                 word_bytes: int = SMEM_WORD_BYTES,
                 sanitize: "object | None" = None) -> None:
        if size_words < 1:
            raise ValueError("size_words must be positive")
        if word_bytes < 1:
            raise ValueError("word_bytes must be positive")
        self.data = np.zeros(size_words, dtype=np.int64)
        self.ledger = ledger
        self.word_bytes = word_bytes
        self._san = sanitize
        if sanitize is not None:
            sanitize.register_shared(self)

    @property
    def size_bytes(self) -> int:
        """Modeled footprint in bytes (``size_words * word_bytes``)."""
        return self.data.size * self.word_bytes

    def _charge(self, kind: str, addresses: np.ndarray) -> None:
        if self.ledger is not None:
            replay = bank_conflicts(
                np.asarray(addresses) * self.word_bytes,
                word_bytes=self.word_bytes)
            self.ledger.issue(kind, float(replay))
            if self._san is not None:
                self._san.note_charge(self, kind)

    def load(self, addresses: np.ndarray,
             warp_id: int | None = None) -> np.ndarray:
        """Warp gather from shared memory."""
        addrs = np.asarray(addresses, dtype=np.int64)
        if (addrs < 0).any() or (addrs >= self.data.size).any():
            raise MemoryError_("shared load out of bounds")
        self._charge("smem_load", addrs)
        if self._san is not None:
            self._san.note_access(self, "smem_load")
            self._san.shared_access(self, "load", addrs, warp_id)
        return self.data[addrs].copy()

    def store(self, addresses: np.ndarray, values: np.ndarray,
              warp_id: int | None = None) -> None:
        """Warp scatter to shared memory."""
        addrs = np.asarray(addresses, dtype=np.int64)
        if (addrs < 0).any() or (addrs >= self.data.size).any():
            raise MemoryError_("shared store out of bounds")
        self._charge("smem_store", addrs)
        if self._san is not None:
            self._san.note_access(self, "smem_store")
            self._san.shared_access(self, "store", addrs, warp_id)
        self.data[addrs] = np.asarray(values, dtype=np.int64)
