"""Request aggregation and persistent operations (MPI_Wait*/MPI_*_init).

``waitall`` / ``waitany`` / ``testall`` complete sets of nonblocking
requests, pumping cluster progress the way the MPI equivalents do.

:class:`PersistentRecv` / :class:`PersistentSend` model MPI persistent
requests: the (rank, peer, tag) binding is fixed once and each
``start()`` re-activates it.  Persistent receives are how well-tuned BSP
codes pre-post their halo receives every iteration -- the pattern that
makes the paper's *no unexpected messages* relaxation cheap (LULESH
"already posts the vast majority of receive requests in advance").
"""

from __future__ import annotations

from typing import Any, Sequence

from .process import RankView
from .request import Request, RequestState

__all__ = ["waitall", "waitany", "testall",
           "PersistentRecv", "PersistentSend"]


def waitall(requests: Sequence[Request], max_rounds: int = 10_000,
            ) -> list[Any]:
    """Complete every request; returns their payloads in order."""
    return [req.wait(max_rounds=max_rounds) for req in requests]


def waitany(requests: Sequence[Request], max_rounds: int = 10_000,
            ) -> tuple[int, Any]:
    """Block until any one request completes; returns (index, payload).

    Already-completed requests win immediately (lowest index first).
    """
    if not requests:
        raise ValueError("waitany on an empty request list")
    for _ in range(max_rounds):
        for i, req in enumerate(requests):
            if req.state is RequestState.COMPLETE:
                return i, req.wait()
        # one progress pass, driven through any request's progress hook
        requests[0].test()
    raise RuntimeError(f"waitany made no progress in {max_rounds} rounds: "
                       "likely deadlock")


def testall(requests: Sequence[Request]) -> bool:
    """Nonblocking: true iff every request has completed."""
    return all(req.test() for req in requests)


class PersistentRecv:
    """A reusable receive binding (MPI_Recv_init / MPI_Start)."""

    def __init__(self, view: RankView, src: int, tag: int,
                 comm: int = 0) -> None:
        self.view = view
        self.src = src
        self.tag = tag
        self.comm = comm
        self._active: Request | None = None

    def start(self) -> Request:
        """Activate the binding: posts a fresh receive request."""
        if self._active is not None and \
                self._active.state is RequestState.PENDING:
            raise RuntimeError("persistent receive already active; wait on "
                               "it before restarting")
        self._active = self.view.irecv(self.src, self.tag, self.comm)
        return self._active

    def wait(self) -> Any:
        """Complete the active incarnation; returns the payload."""
        if self._active is None:
            raise RuntimeError("persistent receive never started")
        payload = self._active.wait()
        return payload


class PersistentSend:
    """A reusable send binding (MPI_Send_init / MPI_Start).

    The payload may change between starts; the envelope may not.
    """

    def __init__(self, view: RankView, dst: int, tag: int,
                 comm: int = 0) -> None:
        self.view = view
        self.dst = dst
        self.tag = tag
        self.comm = comm
        self.starts = 0

    def start(self, payload: Any = None) -> Request:
        """Send ``payload`` on the fixed envelope."""
        self.starts += 1
        return self.view.isend(self.dst, payload, self.tag, self.comm)
