#!/usr/bin/env python
"""Restoring order at user level under the unordered (hash) relaxation.

The paper's strongest relaxation drops MPI's non-overtaking guarantee:
"the user has to take care to identify the right messages, for example,
using tags to uniquely identify the right message ... in a strict BSP
model, tags can be reused after synchronization" (Section VI).

This example is that programming pattern, executable:

* a four-stage software pipeline where each stage forwards a stream of
  work items to the next rank;
* under the unordered relaxation, items may match out of order, so each
  item's **sequence number is encoded in its tag** and receivers post one
  tagged receive per expected item -- order is re-established by naming;
* after every batch the ranks synchronize (BSP superstep) and the tag
  space is reused, keeping tags within 16 bits forever.

The result is verified against a sequential execution of the same
pipeline, demonstrating that the 80x-faster matching configuration costs
bookkeeping, not correctness -- exactly the trade Table II's "User
implication: high" row describes.

Run:  python examples/bsp_pipeline.py
"""

from __future__ import annotations

import numpy as np

from repro import GPU, RelaxationSet
from repro.mpi import Cluster, Communicator, barrier

STAGES = 4
BATCHES = 3
ITEMS_PER_BATCH = 40


def stage_transform(stage: int, item: float) -> float:
    """Deterministic per-stage work, so results are checkable."""
    return item * (stage + 2) + stage


def run_pipeline() -> list[float]:
    """Push all batches through the pipeline on a relaxed cluster."""
    relaxations = RelaxationSet(wildcards=False, ordering=False,
                                unexpected=False)
    cluster = Cluster(STAGES, gpu=GPU.pascal_gtx1080(),
                      relaxations=relaxations)
    comm = Communicator(cluster)
    rng = np.random.default_rng(99)
    inputs = rng.random(BATCHES * ITEMS_PER_BATCH)
    outputs: list[float] = []

    for batch in range(BATCHES):
        items = inputs[batch * ITEMS_PER_BATCH:(batch + 1) * ITEMS_PER_BATCH]
        # Tags encode the item's sequence number *within the batch*; they
        # are reused every superstep after the barrier.
        for stage in range(STAGES):
            # every stage pre-posts receives for the whole batch
            # (no-unexpected relaxation), then the previous stage sends.
            if stage == 0:
                current = {seq: stage_transform(0, x)
                           for seq, x in enumerate(items)}
                continue
            reqs = {seq: comm.irecv(stage, stage - 1, tag=seq)
                    for seq in range(ITEMS_PER_BATCH)}
            # the sender pushes items in a scrambled order: under
            # unordered matching this is free, the tags sort it out
            for seq in rng.permutation(ITEMS_PER_BATCH):
                comm.isend(stage - 1, stage, current[int(seq)],
                           tag=int(seq))
            current = {seq: stage_transform(stage, reqs[seq].wait())
                       for seq in range(ITEMS_PER_BATCH)}
        outputs.extend(current[seq] for seq in range(ITEMS_PER_BATCH))
        barrier(comm)  # superstep boundary: tag space reusable

    stats = cluster.stats()
    print(f"pipeline moved {sum(s['matches'] for s in stats)} messages, "
          f"simulated matching time {cluster.match_seconds * 1e6:.1f} us "
          f"(hash engine, {STAGES} stages x {BATCHES} batches)")
    return outputs


def run_sequential() -> list[float]:
    """Reference: the same pipeline with no communication at all."""
    rng = np.random.default_rng(99)
    inputs = rng.random(BATCHES * ITEMS_PER_BATCH)
    out = []
    for batch in range(BATCHES):
        items = inputs[batch * ITEMS_PER_BATCH:(batch + 1) * ITEMS_PER_BATCH]
        for x in items:
            v = x
            for stage in range(STAGES):
                v = stage_transform(stage, v)
            out.append(v)
    return out


def main() -> None:
    got = run_pipeline()
    want = run_sequential()
    assert np.allclose(got, want), "pipeline produced wrong results"
    print(f"all {len(got)} pipeline outputs match the sequential "
          "reference -- ordering was fully restored by tags")
    print("(this is Table II's bottom row: 'User implication: high' -- "
          "the application carries the ordering bookkeeping, the matcher "
          "runs at ~500M matches/s)")


if __name__ == "__main__":
    main()
