"""Cycle-level scheduler semantics + analytic-model cross-validation."""

from __future__ import annotations

import pytest

from repro.simt.gpu import KEPLER_K80, PASCAL_GTX1080
from repro.simt.sm import (BARRIER, ScheduleResult, SMScheduler, WarpStream,
                           streams_from_mix)
from repro.simt.timing import CostLedger, SYNC_OVERHEAD_CYCLES, TimingModel


def analytic_cycles(spec, active_warps: int, mix) -> float:
    led = CostLedger()
    phase = led.phase("p", active_warps=active_warps)
    for kind, count in mix:
        phase.add(kind, count * active_warps)
    return TimingModel(spec).phase_cycles(phase)


class TestSchedulerSemantics:
    def test_empty(self):
        r = SMScheduler().run([])
        assert r.cycles == 0 and r.issued == 0

    def test_alu_issue_bound(self):
        """Pure ALU streams run at the scheduler issue width."""
        r = SMScheduler().run(streams_from_mix(8, [("alu", 1000)]))
        assert r.cycles == pytest.approx(8 * 1000 / 4, rel=0.02)
        assert r.ipc == pytest.approx(4.0, rel=0.02)

    def test_single_warp_cannot_exceed_one_ipc(self):
        r = SMScheduler().run(streams_from_mix(1, [("alu", 500)]))
        assert r.ipc <= 1.0
        assert r.cycles >= 500

    def test_dependent_loads_serialize_per_warp(self):
        spec = PASCAL_GTX1080
        r = SMScheduler(spec).run(streams_from_mix(1, [("gmem_load", 50)]))
        assert r.cycles == pytest.approx(50 * (spec.gmem_latency + 1),
                                         rel=0.05)

    def test_parallel_warps_overlap_their_chains(self):
        """N warps of equal chains finish in ~one chain's time, not N."""
        spec = PASCAL_GTX1080
        one = SMScheduler(spec).run(streams_from_mix(1, [("gmem_load", 50)]))
        many = SMScheduler(spec).run(streams_from_mix(16,
                                                      [("gmem_load", 50)]))
        assert many.cycles < 1.3 * one.cycles

    def test_barrier_blocks_until_all_arrive(self):
        # warp 0: long work then barrier; warp 1: barrier immediately
        s0 = WarpStream(0, ["alu"] * 100 + [BARRIER, "alu"])
        s1 = WarpStream(1, [BARRIER, "alu"])
        r = SMScheduler().run([s0, s1])
        # warp 1's final alu cannot issue before warp 0 reaches the
        # barrier (~100 cycles, 1 IPC for the greedy warp) + release
        assert r.cycles > 100 + SYNC_OVERHEAD_CYCLES

    def test_policies_both_complete(self):
        mix = [("alu", 50), ("gmem_load", 10)]
        for policy in ("rr", "gto"):
            r = SMScheduler(policy=policy).run(streams_from_mix(4, mix))
            assert r.issued == 4 * 60

    def test_invalid_policy(self):
        with pytest.raises(ValueError):
            SMScheduler(policy="fifo")

    def test_runaway_guard(self):
        with pytest.raises(RuntimeError):
            SMScheduler().run(streams_from_mix(1, [("alu", 100)]),
                              max_cycles=10)

    def test_streams_from_mix_interleaves(self):
        streams = streams_from_mix(2, [("alu", 2), ("gmem_load", 2)])
        assert streams[0].instructions == ["alu", "gmem_load", "alu",
                                           "gmem_load"]


class TestAnalyticValidation:
    """The closed-form TimingModel must track the scheduled cycles."""

    REGIMES = [
        # (label, warps, mix) spanning issue-bound to latency-bound
        ("issue-bound alu", 32, [("alu", 400)]),
        ("latency chain 1w", 1, [("gmem_load", 60)]),
        ("latency chain 32w", 32, [("gmem_load", 60)]),
        ("mixed 4w", 4, [("alu", 200), ("smem_load", 50),
                         ("gmem_load", 10)]),
        ("smem-heavy 8w", 8, [("smem_load", 300), ("alu", 100)]),
        ("ballot reduce-like 1w", 1, [("smem_load", 100), ("ballot", 100),
                                      ("alu", 400)]),
    ]

    @pytest.mark.parametrize("label,warps,mix",
                             REGIMES, ids=[r[0] for r in REGIMES])
    @pytest.mark.parametrize("spec", [PASCAL_GTX1080, KEPLER_K80],
                             ids=["pascal", "kepler"])
    def test_within_factor_two(self, label, warps, mix, spec):
        scheduled = SMScheduler(spec).run(streams_from_mix(warps, mix))
        analytic = analytic_cycles(spec, warps, mix)
        ratio = analytic / scheduled.cycles
        assert 0.5 < ratio < 2.0, (label, analytic, scheduled.cycles)

    def test_agreement_tight_in_pure_regimes(self):
        """In the two pure regimes the models agree within 15%."""
        spec = PASCAL_GTX1080
        for warps, mix in ((32, [("alu", 400)]),
                           (1, [("gmem_load", 60)]),
                           (32, [("gmem_load", 60)])):
            scheduled = SMScheduler(spec).run(streams_from_mix(warps, mix))
            analytic = analytic_cycles(spec, warps, mix)
            assert analytic == pytest.approx(scheduled.cycles, rel=0.15), (
                warps, mix)
