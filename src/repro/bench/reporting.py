"""Plain-text table/series rendering for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures as a
fixed-width text table with a *paper* column next to the *measured*
column, so the reproduction quality is visible in the bench output
itself (and in ``benchmarks/results/*.txt``, which EXPERIMENTS.md
collates).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Sequence

__all__ = ["Table", "ascii_histogram", "format_rate", "results_dir",
           "write_result"]


def format_rate(matches_per_second: float) -> str:
    """Human form of a matching rate, e.g. ``61.3M/s``."""
    r = matches_per_second
    if r >= 1e9:
        return f"{r / 1e9:.2f}G/s"
    if r >= 1e6:
        return f"{r / 1e6:.1f}M/s"
    if r >= 1e3:
        return f"{r / 1e3:.1f}K/s"
    return f"{r:.1f}/s"


@dataclass
class Table:
    """A fixed-width text table with a title block."""

    title: str
    columns: Sequence[str]
    rows: list = field(default_factory=list)
    notes: list = field(default_factory=list)

    def add(self, *cells: Any) -> None:
        """Append one row (cells are stringified on render)."""
        if len(cells) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} cells, got {len(cells)}")
        self.rows.append([str(c) for c in cells])

    def note(self, text: str) -> None:
        """Append a footnote line."""
        self.notes.append(text)

    def render(self) -> str:
        """Render to a string."""
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        sep = "-+-".join("-" * w for w in widths)
        lines = [self.title, "=" * len(self.title)]
        lines.append(" | ".join(c.ljust(w)
                                for c, w in zip(self.columns, widths)))
        lines.append(sep)
        for row in self.rows:
            lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
        for n in self.notes:
            lines.append(f"  * {n}")
        return "\n".join(lines) + "\n"

    def show(self) -> str:
        """Print and return the rendering."""
        text = self.render()
        print("\n" + text)
        return text


def ascii_histogram(values, bins: Sequence[float], title: str = "",
                    width: int = 40) -> str:
    """Render a distribution as a fixed-width ASCII bar chart.

    ``bins`` are ascending edges; values at or above the last edge land
    in a final overflow bin.  Used to render the paper's distribution
    figures (e.g. Figure 2's queue-depth distribution) in plain text.
    """
    import numpy as np
    vals = np.asarray(list(values), dtype=float)
    edges = list(bins)
    if len(edges) < 2:
        raise ValueError("need at least two bin edges")
    counts = []
    labels = []
    for lo, hi in zip(edges, edges[1:]):
        counts.append(int(((vals >= lo) & (vals < hi)).sum()))
        labels.append(f"[{lo:g}, {hi:g})")
    counts.append(int((vals >= edges[-1]).sum()))
    labels.append(f">= {edges[-1]:g}")
    top = max(max(counts), 1)
    label_w = max(len(l) for l in labels)
    lines = [title] if title else []
    for label, count in zip(labels, counts):
        bar = "#" * round(width * count / top)
        lines.append(f"  {label.ljust(label_w)} |{bar.ljust(width)}| "
                     f"{count}")
    return "\n".join(lines) + "\n"


def results_dir() -> str:
    """``benchmarks/results`` next to the benchmark suite (created)."""
    here = os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))))
    path = os.path.join(here, "benchmarks", "results")
    os.makedirs(path, exist_ok=True)
    return path


def write_result(name: str, text: str) -> str:
    """Persist a rendered table under ``benchmarks/results/<name>.txt``."""
    path = os.path.join(results_dir(), f"{name}.txt")
    with open(path, "w") as fh:
        fh.write(text)
    return path
