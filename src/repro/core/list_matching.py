"""CPU-style list-based matching baseline.

Common MPI implementations keep the UMQ and PRQ as linked lists and
traverse them linearly on every match attempt (Section II-B).  The paper's
CPU reference measurement (Section II-C): *"30M matches/s can be achieved
with short queues.  However, this rate drops to below 5M matches/s for
queues longer than 512 entries."*

:class:`ListMatcher` reproduces both the algorithm (giving the same
assignment as the reference oracle, since linear traversal in queue order
*is* MPI's semantics) and a simple latency cost model for a
latency-optimized CPU core calibrated to those two anchor points.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .envelope import ANY_SOURCE, ANY_TAG, EnvelopeBatch
from .result import NO_MATCH, MatchOutcome

__all__ = ["CPUSpec", "ListMatcher", "XEON_E5"]


@dataclass(frozen=True)
class CPUSpec:
    """Cost parameters of the CPU running the list matcher.

    ``base_ns`` is the fixed per-match-attempt overhead (queue locking,
    envelope load, function call); ``per_entry_ns`` the cost of visiting
    one list entry (pointer chase + compare, cache-resident).
    """

    name: str
    base_ns: float
    per_entry_ns: float

    def attempt_seconds(self, entries_visited: int) -> float:
        """Cost of one match attempt that visited ``entries_visited`` entries."""
        return (self.base_ns + self.per_entry_ns * entries_visited) * 1e-9


#: Calibrated to the paper's reference: ~30 M matches/s at search length ~1
#: and <5 M matches/s once queues exceed 512 entries (mean search ~256).
XEON_E5 = CPUSpec(name="Xeon E5 (list baseline)", base_ns=31.0,
                  per_entry_ns=0.68)


class ListMatcher:
    """Sequential list-based UMQ/PRQ matcher with CPU cost model.

    The matcher walks receive requests in posted order; each request scans
    the message list from its head and removes the first match -- the
    classic MPI implementation strategy and therefore also a second,
    independently-coded oracle for the test suite.
    """

    name = "list"

    def __init__(self, cpu: CPUSpec = XEON_E5, sanitize=None) -> None:
        # sanitize is accepted for knob parity with the GPU matchers; the
        # CPU baseline touches no simulated memories (trivially clean).
        self.cpu = cpu
        self._san = sanitize

    def match(self, messages: EnvelopeBatch,
              requests: EnvelopeBatch) -> MatchOutcome:
        """Match and price the traversal on the CPU model."""
        messages.assert_concrete("message queue")
        n_msg, n_req = len(messages), len(requests)
        # Simulate a linked list as an explicit next-pointer chain so that
        # removal cost and search length mirror a real list implementation.
        nxt = np.arange(1, n_msg + 1, dtype=np.int64)
        head = 0 if n_msg else -1
        out = np.full(n_req, NO_MATCH, dtype=np.int64)
        total_visited = 0
        seconds = 0.0
        m_src, m_tag, m_comm = messages.src, messages.tag, messages.comm
        for j in range(n_req):
            r_src = int(requests.src[j])
            r_tag = int(requests.tag[j])
            r_comm = int(requests.comm[j])
            visited = 0
            prev = -1
            node = head
            while node != -1 and node < n_msg:
                visited += 1
                if (m_comm[node] == r_comm
                        and (r_src == ANY_SOURCE or m_src[node] == r_src)
                        and (r_tag == ANY_TAG or m_tag[node] == r_tag)):
                    out[j] = node
                    # unlink
                    if prev == -1:
                        head = int(nxt[node]) if nxt[node] < n_msg else -1
                    else:
                        nxt[prev] = nxt[node]
                    break
                prev = node
                node = int(nxt[node]) if nxt[node] < n_msg else -1
            total_visited += visited
            seconds += self.cpu.attempt_seconds(visited)
        return MatchOutcome(
            request_to_message=out, n_messages=n_msg, n_requests=n_req,
            seconds=seconds, cycles=0.0,
            meta={"entries_visited": total_visited,
                  "mean_search_length": total_visited / n_req if n_req else 0.0,
                  "cpu": self.cpu.name})
