"""Cross-shard tenants and the combining collective fabric.

Differential contract: every collective in :mod:`repro.mpi.collectives`
run over a spanning tenant's :class:`~repro.serve.fabric.CollectiveBridge`
is result-identical to (a) the same collective on a direct
:class:`~repro.mpi.process.Cluster` and (b) the single-shard serve path;
and a same-seed fabric run is bit-identical between the in-process
:class:`~repro.serve.service.MatchingService` and the multi-process
:class:`~repro.serve.cluster.ClusterService` (fork and spawn).
"""

from __future__ import annotations

import pytest

from repro.core.envelope import MAX_TAG
from repro.mpi import Cluster, Communicator
from repro.mpi import collectives as C
from repro.serve import (ClusterService, CollectiveBridge, FabricError,
                         FabricLink, MatchingService, TenantSpec)

SPAN = 4


def make_service(n_shards: int, seed: int = 7) -> MatchingService:
    svc = MatchingService(n_shards=n_shards, seed=seed)
    svc.register(TenantSpec(name="mpi", span=SPAN, autotune=False))
    return svc


def add(a, b):
    return a + b


# name -> callable(comm_like) -> comparable result
COLLECTIVES = {
    "barrier": lambda comm: C.barrier(comm),
    "bcast": lambda comm: C.bcast(comm, 1, ("payload", 1)),
    "gather": lambda comm: C.gather(comm, 0, [("c", r) for r in range(SPAN)]),
    "scatter": lambda comm: C.scatter(comm, 2, [("p", r) for r in range(SPAN)]),
    "alltoall": lambda comm: C.alltoall(
        comm, [[(i, j) for j in range(SPAN)] for i in range(SPAN)]),
    "reduce": lambda comm: C.reduce(comm, 2, [1, 2, 3, 4], add),
    "allreduce": lambda comm: C.allreduce(comm, [1, 2, 3, 4], add),
    "allgather": lambda comm: C.allgather(comm, list("abcd")),
    "scan": lambda comm: C.scan(comm, [1, 2, 3, 4], add),
}


def keyed_flushes(plane) -> dict:
    return {(r.tenant, r.flush_seq):
            (r.flush_vt, tuple(r.covered_seqs), tuple(r.latencies_vt),
             r.engine_label, tuple(r.outcome.request_to_message.tolist()))
            for r in plane.results}


class TestSpanSpec:
    def test_sub_specs_names_and_span(self):
        spec = TenantSpec(name="t", span=3, autotune=False)
        subs = spec.sub_specs()
        assert [s.name for s in subs] == ["t#0", "t#1", "t#2"]
        assert all(s.span == 1 for s in subs)

    def test_span_one_expands_to_itself(self):
        spec = TenantSpec(name="t")
        assert spec.sub_specs() == [spec]

    def test_validation(self):
        with pytest.raises(ValueError):
            TenantSpec(name="t", span=0)
        with pytest.raises(ValueError, match="'#'"):
            TenantSpec(name="a#b", span=2)
        with pytest.raises(ValueError, match="session"):
            TenantSpec(name="t", span=2, session=True)

    def test_register_expands_and_routes(self):
        svc = make_service(n_shards=3)
        assert svc.sub_tenants("mpi") == [f"mpi#{i}" for i in range(SPAN)]
        assert svc.sub_tenants("mpi#0") == ["mpi#0"]
        with pytest.raises(KeyError):
            svc.sub_tenants("nope")
        with pytest.raises(ValueError, match="already registered"):
            svc.register(TenantSpec(name="mpi"))

    def test_spec_state_roundtrip_carries_span(self):
        from repro.serve.state import _spec_from, _spec_state
        spec = TenantSpec(name="t", span=3, autotune=False)
        assert _spec_from(_spec_state(spec)) == spec
        # pre-span snapshots (no "span" key) default to 1
        state = _spec_state(TenantSpec(name="u"))
        del state["span"]
        assert _spec_from(state).span == 1


class TestDifferential:
    @pytest.mark.parametrize("name", sorted(COLLECTIVES))
    def test_bridge_matches_direct_cluster_and_single_shard(self, name):
        run = COLLECTIVES[name]
        direct = run(Communicator(Cluster(SPAN)))
        multi = run(CollectiveBridge(make_service(n_shards=3), "mpi"))
        single = run(CollectiveBridge(make_service(n_shards=1), "mpi"))
        assert multi == direct
        assert single == direct

    def test_point_to_point_over_fabric(self):
        bridge = CollectiveBridge(make_service(n_shards=3), "mpi")
        req = bridge.irecv(1, 0, tag=5)
        bridge.isend(0, 1, b"hello", tag=5)
        assert req.wait() == b"hello"

    def test_reserved_tags_rejected_on_bridge_api(self):
        bridge = CollectiveBridge(make_service(n_shards=3), "mpi")
        with pytest.raises(ValueError, match="reserved collective"):
            bridge.isend(0, 1, b"x", tag=MAX_TAG)
        with pytest.raises(ValueError, match="reserved collective"):
            bridge.irecv(1, 0, tag=MAX_TAG)

    def test_send_buffer_snapshotted_at_isend(self):
        bridge = CollectiveBridge(make_service(n_shards=3), "mpi")
        buf = [1, 2, 3]
        req = bridge.irecv(1, 0, tag=1)
        bridge.isend(0, 1, buf, tag=1)
        buf.append(99)   # mutation after isend must not be visible
        assert req.wait() == [1, 2, 3]

    def test_unmatched_recv_fails_fast(self):
        """Stateless superstep: an unsatisfiable receive raises instead
        of pinning state into the next superstep."""
        bridge = CollectiveBridge(make_service(n_shards=3), "mpi")
        req = bridge.irecv(1, 0, tag=7)   # nobody sends
        with pytest.raises(FabricError, match="not matched"):
            req.wait()

    def test_fabric_traffic_bypasses_admission(self):
        svc = make_service(n_shards=3)
        C.alltoall(CollectiveBridge(svc, "mpi"),
                   [[(i, j) for j in range(SPAN)] for i in range(SPAN)])
        rep = svc.report()
        assert rep["accepted"] == 0          # no client submissions
        assert rep["shed_overloaded"] == 0
        assert rep["submitted"] > 0          # fabric seqs are accounted


class TestCombining:
    def occupied_shards(self, svc):
        return sorted({svc.fabric_shard(t) for t in svc.sub_tenants("mpi")})

    def test_alltoall_one_batch_per_ordered_pair(self):
        """The acceptance criterion: one combined fabric batch per
        ordered (src shard, dst shard) pair per superstep, regardless of
        how many rank pairs communicate."""
        svc = make_service(n_shards=3)
        bridge = CollectiveBridge(svc, "mpi")
        occ = self.occupied_shards(svc)
        assert len(occ) > 1   # the span must actually cross shards
        C.alltoall(bridge, [[(i, j) for j in range(SPAN)]
                            for i in range(SPAN)])
        fabric = bridge.fabric
        assert fabric.supersteps == 1
        n_pairs = len(occ) * (len(occ) - 1)
        assert fabric.pair_batches_total == n_pairs
        assert all(count == 1
                   for count in fabric.per_pair_batches.values())
        assert set(fabric.per_pair_batches) == {
            (s, d) for s in occ for d in occ if s != d}

    def test_combine_ratio_counts_messages_per_pair_batch(self):
        svc = make_service(n_shards=3)
        bridge = CollectiveBridge(svc, "mpi")
        C.alltoall(bridge, [[(i, j) for j in range(SPAN)]
                            for i in range(SPAN)])
        fabric = bridge.fabric
        # every cross-shard rank pair's message rode a combined batch
        per_shard = {}
        for t in svc.sub_tenants("mpi"):
            per_shard.setdefault(svc.fabric_shard(t), []).append(t)
        crossing = sum(len(a) * len(b)
                       for sa, a in per_shard.items()
                       for sb, b in per_shard.items() if sa != sb)
        assert fabric.fabric_messages_total == crossing
        assert fabric.combine_ratio == crossing / fabric.pair_batches_total
        assert fabric.combine_ratio > 1.0

    def test_wire_time_charged_once_per_pair_batch(self):
        link = FabricLink(bytes_per_envelope=100,
                          bandwidth_bytes_per_vs=1e6, latency_vs=1e-3)
        svc = make_service(n_shards=3)
        bridge = CollectiveBridge(svc, "mpi", link=link)
        reqs = []
        for j in range(SPAN):
            for i in range(SPAN):
                if i != j:
                    reqs.append(bridge.coll_irecv(j, i, 1))
        for i in range(SPAN):
            for j in range(SPAN):
                if i != j:
                    bridge.coll_isend(i, j, (i, j), 1)
        fl = bridge.step()
        # the superstep advances by the *largest* pair batch's wire time
        # -- batches travel concurrently, each charged once
        per_pair = {}
        for t in svc.sub_tenants("mpi"):
            per_pair.setdefault(svc.fabric_shard(t), []).append(t)
        counts = [len(a) * len(b) for sa, a in per_pair.items()
                  for sb, b in per_pair.items() if sa != sb]
        expected = max(link.wire_seconds(n) for n in counts)
        assert fl.end_vt - fl.start_vt == pytest.approx(expected)
        for r in reqs:
            r.wait()

    def test_single_shard_span_is_all_local(self):
        svc = make_service(n_shards=1)
        bridge = CollectiveBridge(svc, "mpi")
        C.alltoall(bridge, [[(i, j) for j in range(SPAN)]
                            for i in range(SPAN)])
        fabric = bridge.fabric
        assert fabric.pair_batches_total == 0
        assert fabric.local_messages_total == SPAN * (SPAN - 1)
        assert fabric.wire_seconds_total == 0.0

    def test_pair_block_shares_one_packed_cache(self):
        """The combined block is packed once; delivered segment slices
        reuse the cache (zero re-marshalling)."""
        captured = []
        svc = make_service(n_shards=3)
        orig = svc.fabric_deliver

        def spy(dst_shard, xfer):
            captured.append(xfer)
            orig(dst_shard, xfer)

        svc.fabric_deliver = spy
        C.alltoall(CollectiveBridge(svc, "mpi"),
                   [[(i, j) for j in range(SPAN)] for i in range(SPAN)])
        blocks = [x["block"] for x in captured if x["block"] is not None]
        assert blocks
        for block in blocks:
            assert block._packed is not None
            for x in captured:
                if x["block"] is block:
                    for seg in x["segments"]:
                        sl = block[seg["start"]:seg["stop"]]
                        assert sl._packed is not None


def run_collectives_over(plane):
    bridge = CollectiveBridge(plane, "mpi")
    out = {name: run(bridge) for name, run in sorted(COLLECTIVES.items())}
    return out, bridge.fabric


class TestClusterIdentity:
    def test_fork_identity_full_suite(self):
        svc = make_service(n_shards=3)
        out_s, fab_s = run_collectives_over(svc)
        rep_s = svc.report()
        cl = ClusterService(n_workers=3, seed=7, start_method="fork")
        cl.register(TenantSpec(name="mpi", span=SPAN, autotune=False))
        with cl:
            out_c, fab_c = run_collectives_over(cl)
            rep_c = cl.report()
        assert out_c == out_s
        assert keyed_flushes(cl) == keyed_flushes(svc)
        assert rep_c == rep_s
        assert (fab_c.pair_batches_total, fab_c.fabric_messages_total,
                fab_c.per_pair_batches, fab_c.wire_seconds_total) == \
               (fab_s.pair_batches_total, fab_s.fabric_messages_total,
                fab_s.per_pair_batches, fab_s.wire_seconds_total)

    def test_spawn_smoke(self):
        svc = make_service(n_shards=2)
        bridge_s = CollectiveBridge(svc, "mpi")
        out_s = C.alltoall(bridge_s, [[(i, j) for j in range(SPAN)]
                                      for i in range(SPAN)])
        cl = ClusterService(n_workers=2, seed=7, start_method="spawn")
        cl.register(TenantSpec(name="mpi", span=SPAN, autotune=False))
        with cl:
            bridge_c = CollectiveBridge(cl, "mpi")
            out_c = C.alltoall(bridge_c, [[(i, j) for j in range(SPAN)]
                                          for i in range(SPAN)])
            assert keyed_flushes(cl) == keyed_flushes(svc)
        assert out_c == out_s
