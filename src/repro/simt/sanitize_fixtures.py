"""Deliberately-buggy kernels proving each sanitizer checker fires.

Every fixture below plants exactly one class of SIMT defect -- the kind
the paper's matching kernels must avoid -- runs it under a fresh
:class:`~repro.simt.sanitize.Sanitizer`, and returns the finalized
:class:`~repro.simt.sanitize_report.SanitizerReport`.  The unit tests
assert each report contains the planted defect's finding code (and the
differential suite asserts the *shipped* kernels never produce any of
them).

The catalogue (finding codes in parentheses):

=========================  =============================================
fixture                    planted defect
=========================  =============================================
``shared_write_write``     two warps store the same vote word in one
                           barrier epoch (``racecheck/write-write``)
``shared_missing_barrier`` consumer warp reads the producer's word with
                           no ``syncthreads`` between
                           (``racecheck/write-read``)
``divergent_barrier``      ``syncthreads()`` inside an unreconverged
                           ``push_mask`` branch (``synccheck/
                           divergent-barrier`` + ``unpopped-mask``)
``barrier_count_mismatch`` one warp's stream retires without arriving at
                           its siblings' barrier (``synccheck/
                           barrier-count-mismatch``)
``uninit_shared_read``     load of a never-stored shared word
                           (``initcheck/uninit-smem-load``)
``uninit_global_read``     load of a never-stored global word
                           (``initcheck/uninit-gmem-load``)
``region_straddle``        one warp access spanning two allocations
                           (``initcheck/region-straddle``)
``unallocated_access``     in-bounds access outside every named region
                           (``initcheck/unallocated``)
``uncharged_access``       traffic on a memory with a detached ledger
                           (``ledger/uncharged-access``)
``double_charge``          a kernel charging an access kind by hand on
                           top of the memory's own charge
                           (``ledger/double-charge``)
=========================  =============================================
"""

from __future__ import annotations

import numpy as np

from .cta import CTA
from .gpu import PASCAL_GTX1080
from .memory import GlobalMemory
from .sanitize import Sanitizer
from .sanitize_report import SanitizerReport
from .sm import SMScheduler, WarpStream
from .timing import CostLedger

__all__ = ["FIXTURES", "EXPECTED_CODES", "run_fixture"]


def shared_write_write() -> SanitizerReport:
    """Two warps store the same shared word without a barrier between."""
    san = Sanitizer()
    cta = CTA(num_warps=2, shared_words=32, sanitize=san)
    word = np.array([5])
    cta.shared.store(word, np.array([1]), warp_id=0)
    cta.shared.store(word, np.array([2]), warp_id=1)   # planted race
    return san.finalize()


def shared_missing_barrier() -> SanitizerReport:
    """Producer stores, consumer loads, and the ``syncthreads`` that
    should separate them is missing."""
    san = Sanitizer()
    cta = CTA(num_warps=2, shared_words=32, sanitize=san)
    word = np.array([7])
    cta.shared.store(word, np.array([42]), warp_id=0)
    # BUG: no cta.syncthreads() here
    cta.shared.load(word, warp_id=1)
    return san.finalize()


def divergent_barrier() -> SanitizerReport:
    """``syncthreads()`` reached inside a divergent branch -- the classic
    CUDA deadlock (only some lanes arrive)."""
    san = Sanitizer()
    cta = CTA(num_warps=1, shared_words=32, sanitize=san)
    warp = cta.warps[0]
    warp.push_mask(warp.lanes < 16)   # half the warp enters the branch
    cta.syncthreads()                 # planted: barrier inside the branch
    return san.finalize()


def barrier_count_mismatch() -> SanitizerReport:
    """One warp executes fewer barriers than its siblings; the scheduler
    releases the barrier anyway (a relaxation) and reports it."""
    san = Sanitizer()
    sched = SMScheduler(PASCAL_GTX1080, sanitize=san)
    streams = [
        WarpStream(warp_id=0, instructions=["alu", "sync", "alu"]),
        WarpStream(warp_id=1, instructions=["alu"]),   # never arrives
    ]
    sched.run(streams)
    return san.finalize()


def uninit_shared_read() -> SanitizerReport:
    """Load of a shared word no warp ever stored."""
    san = Sanitizer()
    cta = CTA(num_warps=1, shared_words=32, sanitize=san)
    cta.shared.load(np.array([9]), warp_id=0)   # planted uninit read
    return san.finalize()


def uninit_global_read() -> SanitizerReport:
    """Load of a global word that was allocated but never stored or
    memset."""
    san = Sanitizer()
    ledger = CostLedger()
    mem = GlobalMemory(64, ledger=ledger, sanitize=san)
    mem.alloc("queue", 32)
    mem.store(np.array([0]), np.array([1]))
    mem.load(np.array([1]))    # planted: word 1 was never written
    return san.finalize()


def region_straddle() -> SanitizerReport:
    """One warp access that spans two named allocations -- in bounds
    globally, but no correct kernel addresses across region edges."""
    san = Sanitizer()
    ledger = CostLedger()
    mem = GlobalMemory(64, ledger=ledger, sanitize=san)
    mem.alloc("keys", 16)
    mem.alloc("vals", 16)
    mem.memset("keys")
    mem.memset("vals")
    mem.load(np.array([14, 15, 16, 17]))   # planted: keys into vals
    return san.finalize()


def unallocated_access() -> SanitizerReport:
    """Access inside the backing array but outside every allocation."""
    san = Sanitizer()
    ledger = CostLedger()
    mem = GlobalMemory(64, ledger=ledger, sanitize=san)
    mem.alloc("keys", 16)
    mem.memset("keys")
    mem.store(np.array([40]), np.array([1]))   # planted: past the region
    return san.finalize()


def uncharged_access() -> SanitizerReport:
    """A kernel running its memory without a cost ledger: every access
    is modeled but never priced."""
    san = Sanitizer()
    mem = GlobalMemory(16, sanitize=san)        # BUG: ledger=None
    mem.alloc("buf", 16)
    mem.memset("buf")
    mem.load(np.arange(4))
    return san.finalize()


def double_charge() -> SanitizerReport:
    """A kernel charging a load by hand on top of the memory's own
    automatic charge."""
    san = Sanitizer()
    ledger = CostLedger()
    mem = GlobalMemory(16, ledger=ledger, sanitize=san)
    mem.alloc("buf", 16)
    mem.memset("buf")
    mem.load(np.arange(4))
    ledger.issue("gmem_load", 1)       # planted: manual double charge
    san.note_charge(mem, "gmem_load")
    return san.finalize()


#: Fixture registry: name -> zero-argument callable returning the report.
FIXTURES = {
    "shared_write_write": shared_write_write,
    "shared_missing_barrier": shared_missing_barrier,
    "divergent_barrier": divergent_barrier,
    "barrier_count_mismatch": barrier_count_mismatch,
    "uninit_shared_read": uninit_shared_read,
    "uninit_global_read": uninit_global_read,
    "region_straddle": region_straddle,
    "unallocated_access": unallocated_access,
    "uncharged_access": uncharged_access,
    "double_charge": double_charge,
}

#: The finding code each fixture is expected to produce.
EXPECTED_CODES = {
    "shared_write_write": ("racecheck", "write-write"),
    "shared_missing_barrier": ("racecheck", "write-read"),
    "divergent_barrier": ("synccheck", "divergent-barrier"),
    "barrier_count_mismatch": ("synccheck", "barrier-count-mismatch"),
    "uninit_shared_read": ("initcheck", "uninit-smem-load"),
    "uninit_global_read": ("initcheck", "uninit-gmem-load"),
    "region_straddle": ("initcheck", "region-straddle"),
    "unallocated_access": ("initcheck", "unallocated"),
    "uncharged_access": ("ledger", "uncharged-access"),
    "double_charge": ("ledger", "double-charge"),
}


def run_fixture(name: str) -> SanitizerReport:
    """Run one fixture by name and return its report."""
    try:
        fixture = FIXTURES[name]
    except KeyError:
        raise KeyError(f"unknown fixture {name!r}; have "
                       f"{sorted(FIXTURES)}") from None
    return fixture()
