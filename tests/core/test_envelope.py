"""Envelope and batch tests, including the 64-bit packing property."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.envelope import (ANY_SOURCE, ANY_TAG, MAX_COMM, MAX_SRC,
                                 MAX_TAG, Envelope, EnvelopeBatch, pack64,
                                 unpack64)

src_s = st.integers(min_value=0, max_value=MAX_SRC)
tag_s = st.integers(min_value=0, max_value=MAX_TAG)
comm_s = st.integers(min_value=0, max_value=MAX_COMM)


class TestPacking:
    @given(src_s, tag_s, comm_s)
    def test_roundtrip(self, src, tag, comm):
        assert unpack64(pack64(src, tag, comm)) == (src, tag, comm)

    @given(src_s, tag_s, comm_s, src_s, tag_s, comm_s)
    @settings(max_examples=50)
    def test_injective(self, s1, t1, c1, s2, t2, c2):
        if (s1, t1, c1) != (s2, t2, c2):
            assert pack64(s1, t1, c1) != pack64(s2, t2, c2)

    def test_range_validation(self):
        with pytest.raises(ValueError):
            pack64(-1, 0)
        with pytest.raises(ValueError):
            pack64(0, MAX_TAG + 1)
        with pytest.raises(ValueError):
            pack64(0, 0, MAX_COMM + 1)

    def test_envelope_packed_roundtrip(self):
        e = Envelope(src=12345, tag=77, comm=3)
        assert Envelope.from_packed(e.packed()) == e

    def test_wildcard_cannot_pack(self):
        with pytest.raises(ValueError):
            Envelope(src=ANY_SOURCE, tag=0).packed()


class TestEnvelope:
    def test_accepts_exact(self):
        req = Envelope(src=3, tag=7)
        assert req.accepts(Envelope(src=3, tag=7))
        assert not req.accepts(Envelope(src=4, tag=7))
        assert not req.accepts(Envelope(src=3, tag=8))

    def test_accepts_wildcards(self):
        assert Envelope(src=ANY_SOURCE, tag=7).accepts(Envelope(src=99, tag=7))
        assert Envelope(src=3, tag=ANY_TAG).accepts(Envelope(src=3, tag=99))
        assert Envelope(src=ANY_SOURCE, tag=ANY_TAG).accepts(
            Envelope(src=1, tag=2))

    def test_communicator_never_wildcards(self):
        req = Envelope(src=ANY_SOURCE, tag=ANY_TAG, comm=1)
        assert not req.accepts(Envelope(src=0, tag=0, comm=0))

    def test_message_side_wildcard_rejected(self):
        with pytest.raises(ValueError):
            Envelope(src=0, tag=0).accepts(Envelope(src=ANY_SOURCE, tag=0))

    def test_validation(self):
        with pytest.raises(ValueError):
            Envelope(src=-2, tag=0)
        with pytest.raises(ValueError):
            Envelope(src=0, tag=MAX_TAG + 1)
        with pytest.raises(ValueError):
            Envelope(src=0, tag=0, comm=-1)


class TestEnvelopeBatch:
    def test_len_getitem_iter(self):
        b = EnvelopeBatch(src=[1, 2], tag=[3, 4], comm=[0, 1])
        assert len(b) == 2
        assert b[1] == Envelope(src=2, tag=4, comm=1)
        assert list(b) == [Envelope(1, 3, 0), Envelope(2, 4, 1)]

    def test_slice_returns_batch(self):
        b = EnvelopeBatch(src=[1, 2, 3], tag=[0, 0, 0])
        sub = b[1:]
        assert isinstance(sub, EnvelopeBatch)
        assert len(sub) == 2

    def test_from_envelopes_roundtrip(self):
        envs = [Envelope(1, 2), Envelope(3, 4, comm=1)]
        assert list(EnvelopeBatch.from_envelopes(envs)) == envs

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            EnvelopeBatch(src=[1, 2], tag=[3])
        with pytest.raises(ValueError):
            EnvelopeBatch(src=[[1]], tag=[[1]])
        with pytest.raises(ValueError):
            EnvelopeBatch(src=[-5], tag=[0])
        with pytest.raises(ValueError):
            EnvelopeBatch(src=[0], tag=[0], comm=[-1])

    def test_wildcard_mask(self):
        b = EnvelopeBatch(src=[1, ANY_SOURCE, 2], tag=[ANY_TAG, 0, 0])
        assert b.has_wildcards
        assert np.array_equal(b.wildcard_mask(), [True, True, False])
        with pytest.raises(ValueError):
            b.assert_concrete()

    def test_packed_matches_scalar(self):
        b = EnvelopeBatch(src=[5, 6], tag=[1, 2], comm=[0, 3])
        packed = b.packed()
        assert packed[0] == b[0].packed()
        assert packed[1] == b[1].packed()

    def test_match_matrix_agrees_with_accepts(self, rng):
        msgs = EnvelopeBatch.random(20, n_ranks=4, n_tags=3, rng=rng)
        reqs = EnvelopeBatch(
            src=np.where(rng.random(15) < 0.3, ANY_SOURCE,
                         rng.integers(0, 4, 15)),
            tag=np.where(rng.random(15) < 0.3, ANY_TAG,
                         rng.integers(0, 3, 15)))
        mtx = msgs.match_matrix(reqs)
        for i, msg in enumerate(msgs):
            for j, req in enumerate(reqs):
                assert mtx[i, j] == req.accepts(msg)

    def test_match_matrix_respects_comm(self):
        msgs = EnvelopeBatch(src=[0], tag=[0], comm=[1])
        reqs = EnvelopeBatch(src=[0], tag=[0], comm=[0])
        assert not msgs.match_matrix(reqs).any()

    def test_concatenate_take(self):
        a = EnvelopeBatch(src=[1], tag=[2])
        b = EnvelopeBatch(src=[3], tag=[4])
        c = a.concatenate(b)
        assert len(c) == 2 and c[1] == Envelope(3, 4)
        assert c.take(np.array([1]))[0] == Envelope(3, 4)

    def test_equality(self):
        a = EnvelopeBatch(src=[1], tag=[2])
        assert a == EnvelopeBatch(src=[1], tag=[2])
        assert a != EnvelopeBatch(src=[1], tag=[3])

    def test_random_reproducible(self):
        b1 = EnvelopeBatch.random(50, rng=np.random.default_rng(5))
        b2 = EnvelopeBatch.random(50, rng=np.random.default_rng(5))
        assert b1 == b2
        assert not b1.has_wildcards
