"""Match outcome types shared by all matchers."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["NO_MATCH", "MatchOutcome"]

#: Sentinel in the request->message vector for "no match found".
NO_MATCH = -1


@dataclass
class MatchOutcome:
    """Result of running a matcher over a message queue and a request queue.

    Attributes
    ----------
    request_to_message:
        Array of length ``n_requests``; entry *j* is the message index
        matched to request *j*, or :data:`NO_MATCH`.  This is the paper's
        "vector that indicates the position of the matched message for
        every receive request".
    n_messages, n_requests:
        Queue sizes the matcher saw.
    seconds:
        Predicted wall time on the simulated device (0 for the pure
        reference oracle).
    cycles:
        Predicted device cycles.
    iterations:
        Algorithm iterations (multi-block matrix passes, hash retry
        rounds, ...).
    replicas:
        Number of identical concurrent instances of this workload the
        timing covers (Figure 6(b)'s 32-CTA launches run 32 independent
        matching engines; ``seconds`` is then the makespan of all of
        them and rates aggregate accordingly).
    meta:
        Free-form per-matcher diagnostics (phase timings, collision
        counts, queue fan-out, ...).
    """

    request_to_message: np.ndarray
    n_messages: int
    n_requests: int
    seconds: float = 0.0
    cycles: float = 0.0
    iterations: int = 1
    replicas: int = 1
    meta: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.request_to_message = np.asarray(self.request_to_message,
                                             dtype=np.int64)
        if self.request_to_message.shape != (self.n_requests,):
            raise ValueError("request_to_message must have one entry per request")
        matched = self.request_to_message[self.request_to_message != NO_MATCH]
        if matched.size and (np.unique(matched).size != matched.size):
            raise ValueError("a message was matched to multiple requests")
        if matched.size and ((matched < 0).any()
                             or (matched >= self.n_messages).any()):
            raise ValueError("matched message index out of range")

    @property
    def matched_count(self) -> int:
        """Number of requests that found a message."""
        return int(np.count_nonzero(self.request_to_message != NO_MATCH))

    @property
    def match_fraction(self) -> float:
        """Matched requests / total requests (1.0 when everything matched)."""
        return self.matched_count / self.n_requests if self.n_requests else 1.0

    def matches_per_second(self) -> float:
        """Predicted matching rate (the paper's matches/s metric).

        Aggregates across replicated concurrent engines.
        """
        if self.seconds <= 0:
            raise ValueError("no timing attached to this outcome")
        return self.matched_count * self.replicas / self.seconds

    def matched_message_indices(self) -> np.ndarray:
        """Sorted indices of messages that were consumed."""
        m = self.request_to_message[self.request_to_message != NO_MATCH]
        return np.sort(m)

    def unmatched_message_indices(self) -> np.ndarray:
        """Indices of messages left in the queue (for compaction)."""
        consumed = np.zeros(self.n_messages, dtype=bool)
        consumed[self.matched_message_indices()] = True
        return np.nonzero(~consumed)[0]

    def unmatched_request_indices(self) -> np.ndarray:
        """Indices of requests left posted (go to the PRQ)."""
        return np.nonzero(self.request_to_message == NO_MATCH)[0]

    def pairs(self) -> list[tuple[int, int]]:
        """(request, message) pairs, request-ordered."""
        return [(j, int(m)) for j, m in enumerate(self.request_to_message)
                if m != NO_MATCH]
