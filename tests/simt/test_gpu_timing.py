"""Device descriptor and timing model tests."""

from __future__ import annotations

import pytest

from repro.simt.gpu import (GPU, KEPLER_K80, MAXWELL_M40, PASCAL_GTX1080,
                            GPUSpec)
from repro.simt.timing import (CostLedger, PhaseCost, SYNC_OVERHEAD_CYCLES,
                               TimingModel)


class TestGPUSpecs:
    def test_three_generations(self):
        gens = GPU.all_generations()
        assert [g.generation for g in gens] == ["kepler", "maxwell", "pascal"]

    def test_clock_ordering_matches_paper(self):
        # "the higher clock rate of the M40 and GTX1080 yields superior
        # performance" -- clocks must be strictly increasing.
        k, m, p = GPU.all_generations()
        assert k.clock_mhz < m.clock_mhz < p.clock_mhz

    def test_lookup_by_name(self):
        assert GPU.by_name("pascal") is PASCAL_GTX1080
        assert GPU.by_name("Tesla K80") is KEPLER_K80
        assert GPU.by_name("m40") is MAXWELL_M40
        with pytest.raises(KeyError):
            GPU.by_name("volta")

    def test_warp_size_is_32(self):
        for g in GPU.all_generations():
            assert g.warp_size == 32
            assert g.max_threads_per_cta == 1024

    def test_with_override(self):
        fast = PASCAL_GTX1080.with_(clock_mhz=2000.0)
        assert fast.clock_mhz == 2000.0
        assert fast.sm_count == PASCAL_GTX1080.sm_count
        assert PASCAL_GTX1080.clock_mhz == 1733.0  # original untouched

    def test_calibration_families(self):
        for g in GPU.all_generations():
            assert g.calibration_for("default") > 0
            assert g.calibration_for("hash") > 0
            assert g.calibration_for("compaction") == 1.0
            # unknown family falls back to default
            assert g.calibration_for("nonesuch") == g.calibration_for("default")


class TestPhaseCost:
    def test_add_and_total(self):
        p = PhaseCost(name="x")
        p.add("alu", 3)
        p.add("alu", 2)
        assert p.total("alu") == 5
        assert p.total("ballot") == 0

    def test_merge(self):
        a = PhaseCost(name="x")
        b = PhaseCost(name="x")
        a.add("alu", 1)
        b.add("alu", 2)
        b.add("sync", 1)
        a.merge(b)
        assert a.total("alu") == 3
        assert a.total("sync") == 1


class TestCostLedger:
    def test_phase_reopen_merges(self):
        led = CostLedger()
        led.phase("scan", active_warps=4)
        led.issue("alu", 10)
        led.phase("reduce", active_warps=1)
        led.issue("alu", 5)
        led.phase("scan", active_warps=4)
        led.issue("alu", 1)
        scans = [p for p in led.phases if p.name == "scan"]
        assert len(scans) == 1
        assert scans[0].total("alu") == 11
        assert led.total("alu") == 16

    def test_distinct_warp_counts_are_distinct_phases(self):
        led = CostLedger()
        led.phase("scan", active_warps=4)
        led.issue("alu")
        led.phase("scan", active_warps=8)
        led.issue("alu")
        assert len([p for p in led.phases if p.name == "scan"]) == 2

    def test_rejects_zero_warps(self):
        with pytest.raises(ValueError):
            CostLedger().phase("x", active_warps=0)

    def test_grand_total(self):
        led = CostLedger()
        led.issue("alu", 2)
        led.issue("gmem_load", 3)
        assert led.grand_total() == 5


class TestTimingModel:
    def _ledger(self, kind: str, count: float, warps: int) -> CostLedger:
        led = CostLedger()
        led.phase("p", active_warps=warps)
        led.issue(kind, count)
        return led

    def test_latency_hiding_with_more_warps(self):
        """The model's core claim: 32 warps hide memory latency a single
        warp fully exposes (this is why the reduce phase is slow)."""
        model = TimingModel(PASCAL_GTX1080)
        one = model.evaluate(self._ledger("gmem_load", 320, warps=1))
        many = model.evaluate(self._ledger("gmem_load", 320, warps=32))
        assert one.cycles > 10 * many.cycles

    def test_issue_bound_floor(self):
        """With plenty of warps, time is bounded by issue throughput, not
        zero -- adding warps beyond the scheduler count stops helping."""
        model = TimingModel(PASCAL_GTX1080)
        c8 = model.evaluate(self._ledger("alu", 10000, warps=8)).cycles
        c32 = model.evaluate(self._ledger("alu", 10000, warps=32)).cycles
        assert c8 == pytest.approx(c32)

    def test_sync_overhead(self):
        model = TimingModel(PASCAL_GTX1080)
        led = self._ledger("sync", 4, warps=2)
        breakdown = model.evaluate(led)
        assert breakdown.cycles >= 4 * SYNC_OVERHEAD_CYCLES

    def test_overlap_group_charges_max(self):
        led = CostLedger()
        led.phase("a", active_warps=4, overlap_group="pipe")
        led.issue("alu", 1000)
        led.phase("b", active_warps=4, overlap_group="pipe")
        led.issue("alu", 500)
        grouped = TimingModel(PASCAL_GTX1080).evaluate(led).cycles

        led2 = CostLedger()
        led2.phase("a", active_warps=4)
        led2.issue("alu", 1000)
        led2.phase("b", active_warps=4)
        led2.issue("alu", 500)
        summed = TimingModel(PASCAL_GTX1080).evaluate(led2).cycles
        assert grouped < summed
        # grouped equals the larger member alone
        led3 = CostLedger()
        led3.phase("a", active_warps=4)
        led3.issue("alu", 1000)
        assert grouped == pytest.approx(
            TimingModel(PASCAL_GTX1080).evaluate(led3).cycles)

    def test_serialization_multiplies(self):
        led = self._ledger("alu", 100, warps=4)
        base = TimingModel(PASCAL_GTX1080).evaluate(led).cycles
        tripled = TimingModel(PASCAL_GTX1080, serialization=3.0).evaluate(
            led).cycles
        assert tripled == pytest.approx(3 * base)

    def test_serialization_below_one_rejected(self):
        with pytest.raises(ValueError):
            TimingModel(PASCAL_GTX1080, serialization=0.5)

    def test_family_selects_calibration(self):
        led = self._ledger("alu", 100, warps=4)
        d = TimingModel(PASCAL_GTX1080, family="default").evaluate(led).cycles
        h = TimingModel(PASCAL_GTX1080, family="hash").evaluate(led).cycles
        ratio = PASCAL_GTX1080.calibration_for("hash") \
            / PASCAL_GTX1080.calibration_for("default")
        assert h / d == pytest.approx(ratio)

    def test_seconds_uses_clock(self):
        led = self._ledger("alu", 100, warps=1)
        bd = TimingModel(PASCAL_GTX1080).evaluate(led)
        assert bd.seconds == pytest.approx(bd.cycles / PASCAL_GTX1080.clock_hz)

    def test_rate_helper(self):
        led = self._ledger("alu", 100, warps=1)
        bd = TimingModel(PASCAL_GTX1080).evaluate(led)
        assert bd.rate(10) == pytest.approx(10 / bd.seconds)
