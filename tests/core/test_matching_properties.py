"""Metamorphic properties of the matchers and queue compaction.

Differential testing (``test_differential_oracle.py``) pins each matcher
to the reference oracle; this suite checks *invariances* -- follow-up
inputs whose outputs are predictable from the original run without
consulting any oracle:

* **Rank relabeling**: matching depends only on src *equality*, so a
  bijection over the rank space must leave the partitioned matcher's
  assignment bit-identical, even though it reshuffles which of the Q
  queues every envelope lands in.
* **Tag relabeling**: the hash matcher keys on {src, tag, comm} but
  only equality matters; a tag bijection must preserve the matched
  count (the assignment may legally change -- slots move).
* **Compaction idempotence**: a keep-all compaction is the identity,
  and compacting a compacted queue with an all-true mask changes
  nothing; dropped positions map to -1 and survivors stay in order.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.harness import matching_workload, partial_workload
from repro.core.compaction import compact_batch, compaction_map
from repro.core.envelope import ANY_TAG, EnvelopeBatch
from repro.core.hash_matching import HashMatcher
from repro.core.partitioned import PartitionedMatcher
from repro.core.verify import check_relaxed, reference_match

SEEDS = (0, 1, 2)


def _relabel(values: np.ndarray, domain: int, seed: int) -> np.ndarray:
    """Apply a random bijection over ``range(domain)`` to in-domain
    values, leaving wildcard sentinels (< 0) and out-of-domain markers
    (e.g. the unreachable rank of ``partial_workload``) untouched."""
    perm = np.random.default_rng(seed + 12345).permutation(domain)
    out = values.copy()
    concrete = (values >= 0) & (values < domain)
    out[concrete] = perm[values[concrete]]
    return out


# -- rank-permutation invariance (partitioned) --------------------------------


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("n,n_queues", [(64, 4), (200, 8)])
def test_partitioned_invariant_under_rank_bijection(seed, n, n_queues):
    msgs, reqs = matching_workload(n, n_ranks=16, seed=seed)
    base = PartitionedMatcher(n_queues=n_queues).match(msgs, reqs)

    msgs2 = EnvelopeBatch(_relabel(msgs.src, 16, seed), msgs.tag, msgs.comm)
    reqs2 = EnvelopeBatch(_relabel(reqs.src, 16, seed), reqs.tag, reqs.comm)
    permuted = PartitionedMatcher(n_queues=n_queues).match(msgs2, reqs2)

    assert np.array_equal(permuted.request_to_message,
                          base.request_to_message)
    assert permuted.matched_count == base.matched_count


@pytest.mark.parametrize("seed", SEEDS)
def test_partitioned_rank_bijection_with_partial_matches(seed):
    """Unmatched requests and unexpected messages must stay unmatched
    under relabeling -- not just the happy fully-matchable path."""
    msgs, reqs = partial_workload(120, 0.4, seed=seed)
    base = PartitionedMatcher(n_queues=4).match(msgs, reqs)
    msgs2 = EnvelopeBatch(_relabel(msgs.src, 64, seed), msgs.tag, msgs.comm)
    reqs2 = EnvelopeBatch(_relabel(reqs.src, 64, seed), reqs.tag, reqs.comm)
    permuted = PartitionedMatcher(n_queues=4).match(msgs2, reqs2)
    assert np.array_equal(permuted.request_to_message,
                          base.request_to_message)


@pytest.mark.parametrize("seed", SEEDS)
def test_partitioned_rank_bijection_with_tag_wildcards(seed):
    """Tag wildcards are legal under the no-ANY_SOURCE relaxation and
    must survive rank relabeling too."""
    msgs, reqs = matching_workload(80, n_ranks=8, seed=seed)
    tag = reqs.tag.copy()
    tag[::3] = ANY_TAG
    reqs = EnvelopeBatch(reqs.src, tag, reqs.comm)
    base = PartitionedMatcher(n_queues=4).match(msgs, reqs)
    assert np.array_equal(base.request_to_message,
                          reference_match(msgs, reqs).request_to_message)
    msgs2 = EnvelopeBatch(_relabel(msgs.src, 8, seed), msgs.tag, msgs.comm)
    reqs2 = EnvelopeBatch(_relabel(reqs.src, 8, seed), reqs.tag, reqs.comm)
    permuted = PartitionedMatcher(n_queues=4).match(msgs2, reqs2)
    assert np.array_equal(permuted.request_to_message,
                          base.request_to_message)


# -- tag-relabeling invariance (hash) -----------------------------------------


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("n", [64, 300])
def test_hash_matched_count_invariant_under_tag_bijection(seed, n):
    msgs, reqs = matching_workload(n, n_tags=32, seed=seed)
    base = HashMatcher().match(msgs, reqs)
    assert base.matched_count == n  # fully matchable

    msgs2 = EnvelopeBatch(msgs.src, _relabel(msgs.tag, 32, seed), msgs.comm)
    reqs2 = EnvelopeBatch(reqs.src, _relabel(reqs.tag, 32, seed), reqs.comm)
    relabeled = HashMatcher().match(msgs2, reqs2)
    check_relaxed(msgs2, reqs2, relabeled, require_complete=True)
    assert relabeled.matched_count == base.matched_count


@pytest.mark.parametrize("seed", SEEDS)
def test_hash_tag_bijection_stays_valid_on_partial_workload(seed):
    """On partial workloads the exact count is NOT invariant -- requests
    naming an unreachable rank occupy table slots forever and can starve
    live ones (the completeness caveat in the hash module docstring), and
    *which* requests starve depends on slot placement.  What must hold
    under relabeling: relaxed validity and the oracle upper bound."""
    msgs, reqs = partial_workload(150, 0.5, seed=seed)
    bound = reference_match(msgs, reqs).matched_count
    msgs2 = EnvelopeBatch(msgs.src, _relabel(msgs.tag, 64, seed), msgs.comm)
    reqs2 = EnvelopeBatch(reqs.src, _relabel(reqs.tag, 64, seed), reqs.comm)
    relabeled = HashMatcher().match(msgs2, reqs2)
    check_relaxed(msgs2, reqs2, relabeled)
    assert 0 < relabeled.matched_count <= bound


@pytest.mark.parametrize("seed", SEEDS)
def test_hash_relabelings_compose(seed):
    """Exact metamorphic identity: relabeling by sigma then tau is the
    same input as relabeling by their composition, so the (deterministic)
    matcher must produce a bit-identical assignment -- starvation and
    all."""
    msgs, reqs = partial_workload(150, 0.5, seed=seed)
    step_m = EnvelopeBatch(msgs.src, _relabel(msgs.tag, 64, seed), msgs.comm)
    step_m = EnvelopeBatch(step_m.src, _relabel(step_m.tag, 64, seed + 1),
                           step_m.comm)
    step_r = EnvelopeBatch(reqs.src, _relabel(reqs.tag, 64, seed), reqs.comm)
    step_r = EnvelopeBatch(step_r.src, _relabel(step_r.tag, 64, seed + 1),
                           step_r.comm)
    composed = _relabel(_relabel(np.arange(64), 64, seed), 64, seed + 1)
    comp_m = EnvelopeBatch(msgs.src, composed[msgs.tag], msgs.comm)
    comp_r = EnvelopeBatch(reqs.src, composed[reqs.tag], reqs.comm)
    a = HashMatcher().match(step_m, step_r)
    b = HashMatcher().match(comp_m, comp_r)
    assert np.array_equal(a.request_to_message, b.request_to_message)
    assert a.cycles == b.cycles


# -- compaction idempotence ---------------------------------------------------


def test_keep_all_compaction_is_identity():
    batch = EnvelopeBatch.random(50, rng=np.random.default_rng(0))
    keep = np.ones(50, dtype=bool)
    compacted, mapping = compact_batch(batch, keep)
    assert np.array_equal(compacted.src, batch.src)
    assert np.array_equal(compacted.tag, batch.tag)
    assert np.array_equal(compacted.comm, batch.comm)
    assert np.array_equal(mapping, np.arange(50))


@pytest.mark.parametrize("seed", SEEDS)
def test_compaction_is_idempotent(seed):
    """Compacting an already-compacted queue (all survivors) is a no-op,
    and the survivors of the first pass appear in their original order."""
    rng = np.random.default_rng(seed)
    batch = EnvelopeBatch.random(80, rng=rng)
    keep = rng.random(80) < 0.6
    once, mapping = compact_batch(batch, keep)
    assert len(once) == int(keep.sum())
    # survivors keep their relative order
    survivors = np.nonzero(keep)[0]
    assert np.array_equal(once.src, batch.src[survivors])
    assert np.array_equal(mapping[survivors], np.arange(survivors.size))
    assert np.all(mapping[~keep] == -1)
    # second pass with everything kept is exactly the first pass's output
    twice, mapping2 = compact_batch(once, np.ones(len(once), dtype=bool))
    assert np.array_equal(twice.src, once.src)
    assert np.array_equal(twice.tag, once.tag)
    assert np.array_equal(mapping2, np.arange(len(once)))


@pytest.mark.parametrize("seed", SEEDS)
def test_two_step_compaction_composes(seed):
    """Dropping in two steps lands every survivor where a single combined
    drop would have put it (prefix sums compose)."""
    rng = np.random.default_rng(seed + 7)
    batch = EnvelopeBatch.random(60, rng=rng)
    keep1 = rng.random(60) < 0.7
    step1, _ = compact_batch(batch, keep1)
    keep2 = rng.random(len(step1)) < 0.7
    step2, _ = compact_batch(step1, keep2)
    combined = keep1.copy()
    combined[np.nonzero(keep1)[0]] = keep2
    direct, _ = compact_batch(batch, combined)
    assert np.array_equal(step2.src, direct.src)
    assert np.array_equal(step2.tag, direct.tag)
    assert np.array_equal(step2.comm, direct.comm)


def test_compaction_map_matches_docstring_contract():
    keep = np.array([True, False, True, True, False])
    assert np.array_equal(compaction_map(keep), [0, -1, 1, 2, -1])
    rejected = compaction_map(np.zeros(4, dtype=bool))
    assert np.all(rejected == -1)
