"""The paper's quantitative anchors, in one place.

Every number the benchmarks print a *paper* column for lives here, with
the section it comes from.  Values marked ``estimated`` are not stated
numerically in the paper text and were read off / interpolated from its
figures; DESIGN.md and EXPERIMENTS.md discuss each.

The device calibration multipliers derived from these anchors live on
the :class:`~repro.simt.gpu.GPUSpec` instances; re-deriving them after a
cost-model change is a matter of running
``python -m repro.bench.calibration`` and copying the printed scales.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Anchor", "ANCHORS", "anchor", "recalibrate"]


@dataclass(frozen=True)
class Anchor:
    """One paper-reported number."""

    key: str
    value: float
    unit: str
    source: str
    estimated: bool = False


ANCHORS: dict[str, Anchor] = {a.key: a for a in [
    # Figure 4 -- single-CTA matrix matching, steady region
    Anchor("matrix/kepler", 3.0e6, "matches/s", "Fig. 4 / Sec. V-B"),
    Anchor("matrix/maxwell", 3.5e6, "matches/s", "Fig. 4 / Sec. V-B"),
    Anchor("matrix/pascal", 6.0e6, "matches/s", "Fig. 4 / Sec. V-B"),
    # Figure 6(b) -- two-level hash table
    Anchor("hash1/kepler", 110.0e6, "matches/s", "Sec. VI-C"),
    Anchor("hash32/kepler", 150.0e6, "matches/s", "Sec. VI-C"),
    Anchor("hash1/maxwell", 190.0e6, "matches/s", "Fig. 6(b)",
           estimated=True),
    Anchor("hash32/maxwell", 260.0e6, "matches/s", "Fig. 6(b)",
           estimated=True),
    Anchor("hash1/pascal", 368.0e6, "matches/s", "Fig. 6(b)",
           estimated=True),
    Anchor("hash32/pascal", 500.0e6, "matches/s", "Sec. VI-C"),
    # Partitioned matching
    Anchor("partitioned/pascal_peak", 60.0e6, "matches/s",
           "Abstract / Table II"),
    Anchor("partitioned/speedup_vs_kepler", 2.12, "x", "Sec. VI-A"),
    Anchor("partitioned/speedup_vs_maxwell", 1.56, "x", "Sec. VI-A"),
    # Relaxation effects
    Anchor("compaction_penalty", 0.10, "fraction", "Sec. VI-B"),
    Anchor("hash_speedup_over_matrix", 80.0, "x", "Abstract"),
    Anchor("partition_speedup_over_matrix", 10.0, "x", "Abstract"),
    # CPU baseline
    Anchor("cpu/short_queue", 30.0e6, "matches/s", "Sec. II-C"),
    Anchor("cpu/long_queue_below", 5.0e6, "matches/s", "Sec. II-C"),
    # Trace statistics
    Anchor("trace/nekbone_umq_mean", 4000, "entries", "Fig. 2 / Sec. IV-A"),
    Anchor("trace/nekbone_umq_median", 1800, "entries", "Fig. 2"),
    Anchor("trace/multigrid_umq_mean", 2000, "entries", "Fig. 2"),
    Anchor("trace/multigrid_umq_median", 1500, "entries", "Fig. 2"),
    Anchor("trace/amg_peers", 79, "ranks", "Sec. IV-A"),
    Anchor("trace/cns_peers", 72, "ranks", "Sec. IV-A"),
]}


def anchor(key: str) -> float:
    """Paper value for an anchor key."""
    return ANCHORS[key].value


def recalibrate(verbose: bool = True) -> dict[str, dict[str, float]]:
    """Recompute the per-device calibration multipliers from scratch.

    Runs the matrix matcher (512-entry steady region) and the 1-CTA hash
    matcher (1024 entries) on every generation with the *current* scales,
    then reports what the scales should be to land the anchors.  Apply by
    editing ``repro/simt/gpu.py``.
    """
    from ..core.hash_matching import HashMatcher
    from ..core.matrix_matching import MatrixMatcher
    from ..simt.gpu import GPU
    from .harness import matching_workload

    wl512 = matching_workload(512, seed=1234)
    wl1024 = matching_workload(1024, seed=1234)
    out: dict[str, dict[str, float]] = {}
    for spec in GPU.all_generations():
        gen = spec.generation
        m_rate = MatrixMatcher(spec=spec).match(*wl512).matches_per_second()
        h_rate = HashMatcher(spec=spec, n_ctas=1).match(
            *wl1024).matches_per_second()
        scales = {
            "default": spec.calibration_for("default")
            * m_rate / anchor(f"matrix/{gen}"),
            "hash": spec.calibration_for("hash")
            * h_rate / anchor(f"hash1/{gen}"),
            "compaction": 1.0,
        }
        out[gen] = scales
        if verbose:
            print(f"{gen:8s} calibration = "
                  + "{"
                  + ", ".join(f'"{k}": {v:.4f}' for k, v in scales.items())
                  + "}")
    return out


if __name__ == "__main__":
    recalibrate()
