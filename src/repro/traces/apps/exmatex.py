"""EXMATEX suite models: LULESH and CMC.

LULESH is the paper's example of an application that already fits the
"no unexpected messages" relaxation: it "already posts the vast majority
of receive requests in advance" (Section VII-B).
"""

from __future__ import annotations

import numpy as np

from .base import AppModel, TraceBuilder, grid_neighbors, random_neighbors

__all__ = ["LULESH", "CMC"]


class LULESH(AppModel):
    """Shock hydrodynamics on a 3-D unstructured hex mesh.

    Full 26-neighbor Moore halo, three tag values (one per exchanged
    field group), and a high pre-posting fraction.
    """

    name = "exmatex_lulesh"
    full_name = "EXMATEX LULESH"
    suite = "exmatex"
    description = "26-neighbor halo, 3 tags, receives pre-posted"
    default_ranks = 64
    default_steps = 12

    PREPOST = 0.92

    def build(self, b: TraceBuilder, n_ranks: int, steps: int,
              rng: np.random.Generator) -> None:
        nbrs = grid_neighbors(n_ranks, ndim=3, corners=True)
        for _step in range(steps):
            pairs = [(s, d) for s in range(n_ranks) for d in nbrs[s]]
            for field_tag in range(3):
                b.exchange(pairs, tag_of=lambda s, d, k, t=field_tag: t,
                           prepost_fraction=self.PREPOST, rng=rng)
            b.barrier(n_ranks)


class CMC(AppModel):
    """Coarse-grained Monte Carlo: particles hop to random neighbor
    domains; a small random peer set per step, few tags."""

    name = "exmatex_cmc"
    full_name = "EXMATEX CMC"
    suite = "exmatex"
    description = "Monte Carlo particle migration to random peers"
    default_ranks = 32
    default_steps = 10

    def build(self, b: TraceBuilder, n_ranks: int, steps: int,
              rng: np.random.Generator) -> None:
        nbrs = random_neighbors(n_ranks, 8, rng)
        for _step in range(steps):
            pairs = []
            for s in range(n_ranks):
                chosen = rng.choice(nbrs[s],
                                    size=min(4, len(nbrs[s])), replace=False)
                pairs.extend((s, int(d)) for d in chosen)
            b.exchange(pairs, tag_of=lambda s, d, k: k % 2,
                       msgs_per_pair=2, prepost_fraction=0.55, rng=rng)
            b.barrier(n_ranks)
