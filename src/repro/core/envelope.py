"""Message envelopes: the {src, tag, comm} matching tuple.

MPI matches messages to receive requests on the triple *(source rank, tag,
communicator)*; receives may wildcard the source (``MPI_ANY_SOURCE``) and
the tag (``MPI_ANY_TAG``).  The trace analysis (Section IV) observes that
no proxy application needs tags wider than 16 bits, so *"together with the
32-bit value for the source and some bits for the communicator, the entire
header could fit into a single 64-bit word"* -- :func:`pack64` implements
exactly that layout, and the SIMT kernels compare packed words with a
single 64-bit ALU instruction.

Two representations are provided:

* :class:`Envelope` -- a frozen scalar tuple for the scalar/MPI layers.
* :class:`EnvelopeBatch` -- a struct-of-arrays batch for the vectorized
  SIMT kernels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import numpy as np

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "MAX_SRC",
    "MAX_TAG",
    "MAX_COMM",
    "Envelope",
    "EnvelopeBatch",
    "pack64",
    "unpack64",
]

#: Wildcard source rank (``MPI_ANY_SOURCE``).
ANY_SOURCE = -1

#: Wildcard tag (``MPI_ANY_TAG``).
ANY_TAG = -1

#: Largest representable source rank (32 bits, per the paper's header layout).
MAX_SRC = 2**32 - 1

#: Largest representable tag (16 bits; no analyzed app exceeds this).
MAX_TAG = 2**16 - 1

#: Largest representable communicator id (remaining 16 bits of the word).
MAX_COMM = 2**16 - 1


def pack64(src: int, tag: int, comm: int = 0) -> int:
    """Pack a concrete (non-wildcard) matching tuple into one 64-bit word.

    Layout (most- to least-significant): ``comm:16 | src:32 | tag:16``.

    >>> hex(pack64(src=2, tag=3, comm=1))
    '0x1000000020003'
    """
    if not 0 <= src <= MAX_SRC:
        raise ValueError(f"src out of range: {src}")
    if not 0 <= tag <= MAX_TAG:
        raise ValueError(f"tag out of range: {tag}")
    if not 0 <= comm <= MAX_COMM:
        raise ValueError(f"comm out of range: {comm}")
    return (comm << 48) | (src << 16) | tag


def unpack64(word: int) -> tuple[int, int, int]:
    """Inverse of :func:`pack64`; returns ``(src, tag, comm)``."""
    if not 0 <= word < 2**64:
        raise ValueError("word must be an unsigned 64-bit value")
    return ((word >> 16) & MAX_SRC, word & MAX_TAG, (word >> 48) & MAX_COMM)


@dataclass(frozen=True, order=True)
class Envelope:
    """A scalar matching tuple.

    On the *message* side all fields are concrete.  On the *receive
    request* side ``src`` may be :data:`ANY_SOURCE` and ``tag`` may be
    :data:`ANY_TAG`; the communicator can never be wildcarded (MPI has no
    ``MPI_ANY_COMM``).
    """

    src: int
    tag: int
    comm: int = 0

    def __post_init__(self) -> None:
        if self.src < ANY_SOURCE or self.src > MAX_SRC:
            raise ValueError(f"invalid src {self.src}")
        if self.tag < ANY_TAG or self.tag > MAX_TAG:
            raise ValueError(f"invalid tag {self.tag}")
        if not 0 <= self.comm <= MAX_COMM:
            raise ValueError(f"invalid comm {self.comm}")

    @property
    def has_wildcard(self) -> bool:
        """True if either src or tag is wildcarded."""
        return self.src == ANY_SOURCE or self.tag == ANY_TAG

    def accepts(self, message: "Envelope") -> bool:
        """Does this *request* envelope match the given *message* envelope?

        The message side must be concrete; wildcards only have meaning on
        the request side.
        """
        if message.has_wildcard:
            raise ValueError("message envelopes cannot carry wildcards")
        if self.comm != message.comm:
            return False
        if self.src != ANY_SOURCE and self.src != message.src:
            return False
        if self.tag != ANY_TAG and self.tag != message.tag:
            return False
        return True

    def packed(self) -> int:
        """64-bit packed form; only valid for concrete envelopes."""
        if self.has_wildcard:
            raise ValueError("cannot pack a wildcarded envelope")
        return pack64(self.src, self.tag, self.comm)

    @classmethod
    def from_packed(cls, word: int) -> "Envelope":
        """Rebuild an envelope from its 64-bit packed form."""
        src, tag, comm = unpack64(word)
        return cls(src=src, tag=tag, comm=comm)


class EnvelopeBatch:
    """A struct-of-arrays batch of envelopes for vectorized kernels.

    Fields are int64 arrays; wildcards are the value ``-1``.  Batches are
    immutable-by-convention: kernels index them but never write.

    A batch may carry its **packed64 key column** (``_packed``): computed
    lazily by :meth:`packed` and propagated through :meth:`view`,
    :meth:`take`, slicing, and :meth:`concatenate`, so a column that was
    packed once at the loadgen boundary is never re-packed anywhere
    downstream -- the serve layer's zero-re-marshalling contract.

    Parameters
    ----------
    src, tag, comm:
        Integer sequences of equal length.
    """

    __slots__ = ("src", "tag", "comm", "_packed")

    def __init__(self, src: Sequence[int] | np.ndarray,
                 tag: Sequence[int] | np.ndarray,
                 comm: Sequence[int] | np.ndarray | None = None) -> None:
        self.src = np.asarray(src, dtype=np.int64)
        self.tag = np.asarray(tag, dtype=np.int64)
        if comm is None:
            self.comm = np.zeros_like(self.src)
        else:
            self.comm = np.asarray(comm, dtype=np.int64)
        self._packed: np.ndarray | None = None
        if not (self.src.shape == self.tag.shape == self.comm.shape):
            raise ValueError("src/tag/comm must have identical shapes")
        if self.src.ndim != 1:
            raise ValueError("EnvelopeBatch fields must be 1-D")
        if (self.src < ANY_SOURCE).any() or (self.tag < ANY_TAG).any():
            raise ValueError("fields below the wildcard value are invalid")
        if (self.comm < 0).any():
            raise ValueError("communicators cannot be negative or wildcarded")

    # -- construction ---------------------------------------------------------

    @classmethod
    def view(cls, src: np.ndarray, tag: np.ndarray, comm: np.ndarray,
             packed: np.ndarray | None = None) -> "EnvelopeBatch":
        """Trusted zero-copy constructor: adopt columns without validation.

        The caller guarantees the columns are 1-D int64 arrays of equal
        length that would pass ``__init__`` validation (slices of an
        already-validated batch, columns built by the trace loadgen).
        ``packed`` optionally carries the matching packed64 key column.
        This is the hot-path constructor: per-item and per-slice
        validation scans are exactly the re-marshalling cost the
        columnar data plane removes.
        """
        batch = cls.__new__(cls)
        batch.src = src
        batch.tag = tag
        batch.comm = comm
        batch._packed = packed
        return batch

    @classmethod
    def from_envelopes(cls, envelopes: Iterable[Envelope]) -> "EnvelopeBatch":
        """Build a batch from scalar envelopes (order preserved)."""
        envs = list(envelopes)
        return cls(src=[e.src for e in envs], tag=[e.tag for e in envs],
                   comm=[e.comm for e in envs])

    @classmethod
    def empty(cls) -> "EnvelopeBatch":
        """A zero-length batch."""
        return cls(src=[], tag=[], comm=[])

    # -- snapshot format -------------------------------------------------------

    def state_dict(self) -> dict:
        """Columns for the serve snapshot codec, **including** the lazily
        cached packed64 key column when present.

        Carrying the cache through a snapshot is part of the columnar
        data plane's zero-re-marshalling contract: a restored batch must
        never silently re-pack what the loadgen packed before the
        checkpoint (pinned by ``tests/serve/test_state.py``).
        """
        return {"src": self.src, "tag": self.tag, "comm": self.comm,
                "packed": self._packed}

    @classmethod
    def from_state_dict(cls, state: dict) -> "EnvelopeBatch":
        """Rebuild a batch (and its packed-key cache) from
        :meth:`state_dict` columns."""
        return cls.view(np.asarray(state["src"], dtype=np.int64),
                        np.asarray(state["tag"], dtype=np.int64),
                        np.asarray(state["comm"], dtype=np.int64),
                        packed=(None if state.get("packed") is None
                                else np.asarray(state["packed"],
                                                dtype=np.int64)))

    # -- container protocol ----------------------------------------------------

    def __len__(self) -> int:
        return int(self.src.size)

    def __getitem__(self, index) -> "Envelope | EnvelopeBatch":
        if isinstance(index, (int, np.integer)):
            return Envelope(src=int(self.src[index]), tag=int(self.tag[index]),
                            comm=int(self.comm[index]))
        return EnvelopeBatch.view(
            self.src[index], self.tag[index], self.comm[index],
            packed=None if self._packed is None else self._packed[index])

    def __iter__(self) -> Iterator[Envelope]:
        for i in range(len(self)):
            yield self[i]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, EnvelopeBatch):
            return NotImplemented
        return (np.array_equal(self.src, other.src)
                and np.array_equal(self.tag, other.tag)
                and np.array_equal(self.comm, other.comm))

    def __repr__(self) -> str:
        return f"EnvelopeBatch(n={len(self)})"

    # -- queries ---------------------------------------------------------------

    @property
    def has_wildcards(self) -> bool:
        """True if any entry wildcards src or tag."""
        return bool((self.src == ANY_SOURCE).any() or (self.tag == ANY_TAG).any())

    def wildcard_mask(self) -> np.ndarray:
        """Boolean mask of entries carrying any wildcard."""
        return (self.src == ANY_SOURCE) | (self.tag == ANY_TAG)

    def assert_concrete(self, what: str = "batch") -> None:
        """Raise if the batch contains wildcards (message-side validation)."""
        if self.has_wildcards:
            raise ValueError(f"{what} must not contain wildcards")

    def packed(self) -> np.ndarray:
        """Vectorized :func:`pack64`; requires a concrete batch.

        Packs into int64; values with the comm high bit set would not fit,
        but communicator ids are validated to 16 bits so the result always
        fits in the signed range for comm < 2**15.  We keep comm values
        small in practice; overflow is checked.

        The result is cached on the batch and propagated through views
        (:meth:`view`, :meth:`take`, slicing, :meth:`concatenate`), so a
        column is packed at most once however many layers slice it.
        """
        if self._packed is None:
            self.assert_concrete("packed() input")
            if (self.comm >= 2**15).any():
                raise ValueError("comm too large for signed 64-bit packing")
            self._packed = (self.comm << 48) | (self.src << 16) | self.tag
        return self._packed

    def match_matrix(self, requests: "EnvelopeBatch") -> np.ndarray:
        """Boolean matrix ``M[i, j]`` = message *i* matches request *j*.

        ``self`` is the message side (concrete); ``requests`` may carry
        wildcards.  This is the functional content of the scan phase.
        """
        return self.match_block(requests, 0, len(self))

    def match_block(self, requests: "EnvelopeBatch", lo: int,
                    hi: int) -> np.ndarray:
        """Boolean matrix for the message slice ``[lo, hi)`` only.

        ``M[i, j]`` = message ``lo + i`` matches request ``j``.  Kernels
        that walk the message queue in fixed-size blocks use this instead
        of :meth:`match_matrix` so their peak footprint is
        O(block x n_req) rather than O(n_msg x n_req).
        """
        self.assert_concrete("message batch")
        if not 0 <= lo <= hi <= len(self):
            raise ValueError(f"invalid block [{lo}, {hi}) for a batch "
                             f"of {len(self)} messages")
        src = self.src[lo:hi]
        tag = self.tag[lo:hi]
        comm = self.comm[lo:hi]
        src_ok = ((requests.src[None, :] == ANY_SOURCE)
                  | (src[:, None] == requests.src[None, :]))
        tag_ok = ((requests.tag[None, :] == ANY_TAG)
                  | (tag[:, None] == requests.tag[None, :]))
        comm_ok = comm[:, None] == requests.comm[None, :]
        return src_ok & tag_ok & comm_ok

    def concatenate(self, other: "EnvelopeBatch") -> "EnvelopeBatch":
        """New batch with ``other`` appended (packed cache propagates
        when both sides carry one)."""
        packed = (np.concatenate([self._packed, other._packed])
                  if self._packed is not None and other._packed is not None
                  else None)
        return EnvelopeBatch.view(np.concatenate([self.src, other.src]),
                                  np.concatenate([self.tag, other.tag]),
                                  np.concatenate([self.comm, other.comm]),
                                  packed=packed)

    def take(self, indices: np.ndarray) -> "EnvelopeBatch":
        """New batch with the selected rows."""
        idx = np.asarray(indices, dtype=np.int64)
        return EnvelopeBatch.view(
            self.src[idx], self.tag[idx], self.comm[idx],
            packed=None if self._packed is None else self._packed[idx])

    @classmethod
    def random(cls, n: int, n_ranks: int = 64, n_tags: int = 16,
               comm: int = 0, rng: np.random.Generator | None = None,
               ) -> "EnvelopeBatch":
        """Random concrete batch (the paper's synthetic workloads use
        random tuples in random order)."""
        rng = rng if rng is not None else np.random.default_rng()
        return cls(src=rng.integers(0, n_ranks, size=n),
                   tag=rng.integers(0, n_tags, size=n),
                   comm=np.full(n, comm, dtype=np.int64))
