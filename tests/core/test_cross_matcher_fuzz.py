"""Cross-matcher differential fuzzing.

One hypothesis-driven workload stream, every matcher:

* all *ordered* matchers (matrix fast + pedantic, list, bucket,
  src-partitioned, tag-partitioned, adaptive) must produce the identical
  assignment -- the MPI reference oracle's;
* all *relaxed* matchers (hash fast + pedantic, across configs) must
  produce valid assignments, complete whenever a perfect matching
  exists.

This is the strongest single invariant in the repository: seven
independently-written matching implementations agreeing bit for bit.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.adaptive import AdaptiveMatcher
from repro.core.bucket_matching import BucketMatcher
from repro.core.envelope import ANY_SOURCE, ANY_TAG, EnvelopeBatch
from repro.core.hash_matching import HashMatcher, HashTableConfig
from repro.core.list_matching import ListMatcher
from repro.core.matrix_matching import MatrixMatcher
from repro.core.partitioned import PartitionedMatcher
from repro.core.verify import check_relaxed, reference_match
from tests.core.test_matchers import workloads

ORDERED_FULL = {
    "matrix": lambda: MatrixMatcher(),
    "matrix-small-warps": lambda: MatrixMatcher(warps_per_cta=2, window=8,
                                                warp_size=8),
    "list": lambda: ListMatcher(),
    "bucket": lambda: BucketMatcher(n_buckets=7),
    "adaptive": lambda: AdaptiveMatcher(),
}

ORDERED_NO_SRC_WC = {
    "partitioned-src": lambda: PartitionedMatcher(n_queues=5),
}

ORDERED_NO_TAG_WC = {
    "partitioned-tag": lambda: PartitionedMatcher(n_queues=3,
                                                  partition_key="tag"),
}

RELAXED = {
    "hash": lambda: HashMatcher(),
    "hash-tight": lambda: HashMatcher(config=HashTableConfig(scale=1.1)),
    "hash-probing": lambda: HashMatcher(config=HashTableConfig(
        probe_depth=4)),
    "hash-fnv": lambda: HashMatcher(config=HashTableConfig(
        hash_name="fnv1a")),
}


class TestOrderedAgreement:
    @given(workloads(max_n=80))
    @settings(max_examples=40, deadline=None)
    def test_all_full_semantics_matchers_agree(self, wl):
        msgs, reqs = wl
        ref = reference_match(msgs, reqs).request_to_message
        for name, factory in ORDERED_FULL.items():
            got = factory().match(msgs, reqs).request_to_message
            assert np.array_equal(got, ref), name

    @given(workloads(max_n=80, allow_wildcards=False))
    @settings(max_examples=30, deadline=None)
    def test_partitioned_matchers_agree(self, wl):
        msgs, reqs = wl
        ref = reference_match(msgs, reqs).request_to_message
        for name, factory in {**ORDERED_NO_SRC_WC,
                              **ORDERED_NO_TAG_WC}.items():
            got = factory().match(msgs, reqs).request_to_message
            assert np.array_equal(got, ref), name

    @given(workloads(max_n=64))
    @settings(max_examples=20, deadline=None)
    def test_pedantic_matrix_agrees(self, wl):
        msgs, reqs = wl
        ref = reference_match(msgs, reqs).request_to_message
        got = MatrixMatcher(warps_per_cta=2, window=8).match_pedantic(
            msgs, reqs).request_to_message
        assert np.array_equal(got, ref)


class TestRelaxedValidity:
    @given(workloads(max_n=80, allow_wildcards=False))
    @settings(max_examples=30, deadline=None)
    def test_all_hash_configs_valid(self, wl):
        msgs, reqs = wl
        for name, factory in RELAXED.items():
            out = factory().match(msgs, reqs)
            check_relaxed(msgs, reqs, out)

    @given(st.integers(min_value=0, max_value=96),
           st.integers(min_value=0, max_value=500))
    @settings(max_examples=30, deadline=None)
    def test_all_hash_configs_complete_on_permutations(self, n, seed):
        rng = np.random.default_rng(seed)
        msgs = EnvelopeBatch.random(n, n_ranks=6, n_tags=3, rng=rng)
        reqs = msgs.take(rng.permutation(n))
        for name, factory in RELAXED.items():
            out = factory().match(msgs, reqs)
            assert out.matched_count == n, name

    @given(st.integers(min_value=1, max_value=96),
           st.integers(min_value=0, max_value=500))
    @settings(max_examples=25, deadline=None)
    def test_ordered_and_relaxed_same_match_count(self, n, seed):
        """On wildcard-free workloads the *count* of matches is an
        invariant across semantics (per-tuple min of multiset counts),
        even though the pairings differ."""
        rng = np.random.default_rng(seed)
        msgs = EnvelopeBatch.random(n, n_ranks=5, n_tags=3, rng=rng)
        reqs = EnvelopeBatch.random(n, n_ranks=5, n_tags=3,
                                    rng=np.random.default_rng(seed + 1))
        ordered = MatrixMatcher().match(msgs, reqs).matched_count
        # hash matchers may under-match on non-permutation workloads
        # (documented starvation cutoff) but never over-match
        for name, factory in RELAXED.items():
            relaxed = factory().match(msgs, reqs).matched_count
            assert relaxed <= ordered, name
