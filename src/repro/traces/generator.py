"""Application model registry and trace generation driver."""

from __future__ import annotations

from .apps.amr import Boxlib
from .apps.base import AppModel
from .apps.benchpark import AMG2023, Kripke, Laghos
from .apps.cesar import MOCFE, NEKBONE, CrystalRouter
from .apps.designforward import AMG, MiniDFT, MiniFE, PARTISN, SNAP
from .apps.exact import CNS, MultiGrid
from .apps.exmatex import CMC, LULESH
from .events import Trace

__all__ = ["APP_MODELS", "app_names", "get_model", "generate_trace"]

#: All modelled proxy applications, keyed by short name (the rows of our
#: Table I reconstruction).
APP_MODELS: dict[str, AppModel] = {
    model.name: model for model in (
        AMG(), MiniDFT(), MiniFE(), PARTISN(), SNAP(),
        NEKBONE(), MOCFE(), CrystalRouter(),
        CNS(), MultiGrid(),
        LULESH(), CMC(),
        Boxlib(),
        AMG2023(), Kripke(), Laghos(),
    )
}


def app_names() -> list[str]:
    """All registered application names, registry order."""
    return list(APP_MODELS)


def get_model(name: str) -> AppModel:
    """Look up a model by short or full name (case-insensitive)."""
    needle = name.strip().lower()
    if needle in APP_MODELS:
        return APP_MODELS[needle]
    for model in APP_MODELS.values():
        if needle == model.full_name.lower():
            return model
    raise KeyError(f"unknown application {name!r}; "
                   f"choices: {app_names()}")


def generate_trace(app: str, n_ranks: int | None = None,
                   steps: int | None = None, seed: int = 0) -> Trace:
    """Generate a synthetic trace for the named application.

    >>> t = generate_trace("exmatex_lulesh", n_ranks=8, steps=2)
    >>> t.n_ranks
    8
    """
    return get_model(app).generate(n_ranks=n_ranks, steps=steps, seed=seed)
