"""The matching service: many tenants, sharded, replayable.

:class:`MatchingService` is the serve layer's front door.  It owns a set
of :class:`~repro.serve.shard.Shard`\\ s, maps tenants onto them with a
stable CRC32 hash (independent of Python's randomized ``hash()``, so the
placement is identical across processes and runs), and drives everything
from one deterministic virtual-time event loop:

* ``submit()`` stamps the request with the current virtual time, runs
  admission, and may trigger a size-watermark flush synchronously;
* ``advance_to(vt)`` fires due batch-deadline timers in ``(vt, seq)``
  order;
* ``drain()`` flushes every remaining accumulator.

Because every decision reads only the virtual clock, the seeded RNG, and
the submitted stream, two runs of the same workload with the same seed
produce **identical** match outcomes, shed counts, and retune events --
pinned by the replay test in ``tests/serve/test_service.py``.

A single-tenant, no-shedding configuration is a *pass-through*: each
flush calls the tenant's engine on exactly the envelopes a direct
library user would have passed, so outcomes are bit-identical to direct
:class:`~repro.core.engine.MatchingEngine` calls (the serve-layer
analogue of the fast-path equivalence contract).
"""

from __future__ import annotations

import zlib

import numpy as np

from ..core.envelope import EnvelopeBatch
from ..obs.metrics import percentile
from ..simt.gpu import GPUSpec, PASCAL_GTX1080
from .admission import AdmissionPolicy
from .autotuner import RetuneEvent
from .batching import BatchPolicy
from .messages import FlushResult, ServeRequest, TenantSpec, Ticket
from .scheduler import EventLoop
from .shard import Shard, TenantState
from .stages import StageClock

__all__ = ["MatchingService", "stable_shard"]


def stable_shard(name: str, n_shards: int) -> int:
    """Deterministic tenant -> shard placement (CRC32, not ``hash()``).

    Process-independent by construction, which is what lets the cluster
    router (:mod:`repro.serve.cluster`) partition tenants across worker
    processes with exactly the placement the in-process service would
    have used -- the first ingredient of cross-process bit-identity.
    """
    return zlib.crc32(name.encode("utf-8")) % n_shards


#: Backwards-compatible alias (pre-cluster name).
_stable_shard = stable_shard


class MatchingService:
    """A sharded, workload-aware matching service.

    Parameters
    ----------
    n_shards:
        Shard count; tenants are placed by stable hash of their name.
    gpu:
        Simulated device each tenant engine runs on.
    admission:
        Bounded-inbox policy applied to every shard.
    batching:
        Flush watermark policy applied to every tenant.
    seed:
        Seeds the event loop's RNG (policy randomness only; ordering is
        never random).
    promote_after:
        Autotuner promotion hysteresis, in agreeing windows.
    profile_window:
        Profiler sliding window, in flushes.
    verify:
        Forwarded to every engine (reference cross-checking; slow).
    obs:
        Optional :class:`~repro.obs.Observability` handle threaded to
        every shard and engine.
    stages:
        Optional :class:`~repro.serve.stages.StageClock` threaded to
        every shard: per-stage wall-time breakdown, measurement-only.

    Examples
    --------
    >>> from repro.core.envelope import EnvelopeBatch
    >>> from repro.serve import MatchingService, TenantSpec
    >>> svc = MatchingService(n_shards=1, seed=7)
    >>> svc.register(TenantSpec(name="t0", autotune=False))
    >>> msgs = EnvelopeBatch(src=[0, 1], tag=[5, 5])
    >>> ticket = svc.submit("t0", msgs, msgs.take([1, 0]))
    >>> ticket.accepted
    True
    >>> svc.drain()
    >>> svc.results[0].outcome.matched_count
    2
    """

    def __init__(self, n_shards: int = 1, gpu: GPUSpec = PASCAL_GTX1080,
                 admission: AdmissionPolicy | None = None,
                 batching: BatchPolicy | None = None,
                 seed: int = 0, promote_after: int = 3,
                 profile_window: int = 8, verify: bool = False,
                 obs=None, stages: StageClock | None = None) -> None:
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        self._obs = obs
        self.stages = stages
        self.loop = EventLoop(seed=seed)
        self.shards = [Shard(shard_id=i, gpu=gpu, admission=admission,
                             batching=batching, promote_after=promote_after,
                             profile_window=profile_window, verify=verify,
                             obs=obs, stages=stages)
                       for i in range(n_shards)]
        self._placement: dict[str, int] = {}
        self._spans: dict[str, list[str]] = {}
        self._next_seq = 0
        self.results: list[FlushResult] = []
        self.tickets: list[Ticket] = []

    # -- tenant lifecycle ---------------------------------------------------------

    def register(self, spec: TenantSpec) -> None:
        """Register a tenant; placement is a stable hash of its name.

        A spanning tenant (``spec.span > 1``) expands into ``span``
        ordinary sub-tenants named ``name#0 .. name#span-1``, each placed
        independently; the base name routes through
        :meth:`sub_tenants` and never appears in the placement map.
        """
        if spec.name in self._placement or spec.name in self._spans:
            raise ValueError(f"tenant {spec.name!r} already registered")
        if spec.span > 1:
            subs = spec.sub_specs()
            for sub in subs:
                self.register(sub)
            self._spans[spec.name] = [s.name for s in subs]
            return
        shard_id = stable_shard(spec.name, len(self.shards))
        self.shards[shard_id].add_tenant(spec)
        self._placement[spec.name] = shard_id
        if self._obs is not None:
            self._obs.instant("serve.register", tenant=spec.name,
                              shard=shard_id)

    def sub_tenants(self, name: str) -> list[str]:
        """The sub-tenant names a registered tenant expands to.

        A spanning tenant returns its ``name#i`` list in sub-shard
        order; a plain tenant returns ``[name]``.
        """
        if name in self._spans:
            return list(self._spans[name])
        if name in self._placement:
            return [name]
        raise KeyError(f"tenant {name!r} not registered")

    def tenant(self, name: str) -> TenantState:
        """The tenant's live state (engine, profiler, retune log)."""
        return self.shards[self._placement[name]].tenants[name]

    @property
    def tenant_names(self) -> list[str]:
        """Registered tenants, registration order."""
        return list(self._placement)

    # -- virtual time -------------------------------------------------------------

    @property
    def now(self) -> float:
        return self.loop.now

    def advance_to(self, vt: float) -> list[FlushResult]:
        """Fire due deadline timers up to ``vt``; returns their flushes."""
        fired = []
        for ev in self.loop.due(vt):
            if ev.kind != "flush":
                continue
            tenant, epoch = ev.payload
            shard = self.shards[self._placement[tenant]]
            acc = shard.tenants[tenant].accumulator
            if acc.epoch != epoch or len(acc) == 0:
                continue   # already flushed by a size watermark
            result = shard.flush_tenant(tenant, self.loop.now)
            if result is not None:
                fired.append(result)
                self.results.append(result)
        return fired

    # -- submission ---------------------------------------------------------------

    def submit(self, tenant: str, messages: EnvelopeBatch,
               requests: EnvelopeBatch,
               at_vt: float | None = None,
               seq: int | None = None) -> Ticket:
        """Submit one request at the current (or given) virtual time.

        ``seq`` overrides the service's own sequence counter for this
        submission (the counter continues from it).  The cluster plane
        uses this: the router owns the global sequence space, and each
        worker's single-shard service stamps the router-assigned seq so
        tickets and covered-seq ledgers line up bit-identically with an
        in-process run of the same stream.
        """
        if at_vt is not None:
            self.advance_to(at_vt)
        if seq is not None:
            self._next_seq = seq
        shard = self.shards[self._placement[tenant]]
        request = ServeRequest(tenant=tenant, seq=self._next_seq,
                               arrival_vt=self.loop.now,
                               messages=messages, requests=requests)
        self._next_seq += 1
        if self._obs is not None:
            self._obs.count("serve.submitted")
        acc = shard.tenants[tenant].accumulator
        was_empty = len(acc) == 0
        ticket, flushed = shard.submit(request, self.loop.now)
        self.tickets.append(ticket)
        if flushed is not None:
            self.results.append(flushed)
        elif ticket.accepted and was_empty and len(acc) > 0:
            # first envelope of a fresh batch: arm its deadline timer
            self.loop.schedule(acc.deadline_vt, "flush",
                               (tenant, acc.epoch))
        return ticket

    # -- fabric plane -------------------------------------------------------------
    #
    # The duck-typed surface :class:`repro.serve.fabric.Fabric` drives.
    # :class:`~repro.serve.cluster.ClusterService` exposes the same four
    # methods, which is what keeps fabric runs bit-identical between the
    # in-process and multi-process planes.

    def fabric_shard(self, tenant: str) -> int:
        """Placement of one (sub-)tenant -- the fabric's routing key."""
        return self._placement[tenant]

    def fabric_alloc_seq(self) -> int:
        """Allocate one sequence number from the global submission space.

        Fabric deliveries share the sequence space with client
        submissions so ``report()['submitted']`` counts every request
        either plane saw, in the same order.
        """
        seq = self._next_seq
        self._next_seq += 1
        return seq

    def deliver(self, tenant: str, messages: EnvelopeBatch,
                requests: EnvelopeBatch, at_vt: float, seq: int) -> None:
        """Admit one fabric delivery into a tenant's accumulator.

        Bypasses admission control (the envelopes were already charged at
        their source shard) but still arms the batch-deadline timer, so a
        delivery that is never explicitly flushed still drains at the
        accumulator's deadline.
        """
        self._next_seq = max(self._next_seq, seq + 1)
        shard = self.shards[self._placement[tenant]]
        request = ServeRequest(tenant=tenant, seq=seq, arrival_vt=at_vt,
                               messages=messages, requests=requests)
        acc = shard.tenants[tenant].accumulator
        was_empty = len(acc) == 0
        shard.deliver(request)
        if was_empty and len(acc) > 0:
            self.loop.schedule(acc.deadline_vt, "flush", (tenant, acc.epoch))

    def fabric_deliver(self, dst_shard: int, xfer: dict) -> None:
        """Deliver one fabric transfer (see :mod:`repro.serve.fabric`).

        ``xfer['block']`` is the combined per-pair column block; each
        segment slices its tenant's rows out of it (slices reuse the
        cached packed64 column -- zero re-marshalling).
        """
        block = xfer["block"]
        for seg in xfer["segments"]:
            msgs = (block[seg["start"]:seg["stop"]] if block is not None
                    else EnvelopeBatch.empty())
            reqs = seg["requests"]
            if reqs is None:
                reqs = EnvelopeBatch.empty()
            self.deliver(seg["tenant"], msgs, reqs,
                         at_vt=xfer["at_vt"], seq=seg["seq"])

    def drain(self) -> list[FlushResult]:
        """Flush every pending accumulator at the current virtual time."""
        # run out any timers scheduled at or before now, then force-flush
        results = []
        for shard in self.shards:
            for result in shard.flush_all(self.loop.now):
                results.append(result)
                self.results.append(result)
        return results

    # -- accounting ---------------------------------------------------------------

    @property
    def retune_events(self) -> list[RetuneEvent]:
        """Every tenant's retune log, registration order."""
        events: list[RetuneEvent] = []
        for name in self._placement:
            events.extend(self.tenant(name).autotuner.events)
        return events

    @property
    def shed_counts(self) -> dict[str, int]:
        """Aggregate shed accounting across shards."""
        totals = {"retryable": 0, "overloaded": 0, "migrating": 0}
        for shard in self.shards:
            counts = shard.admission.counts()
            for key in totals:
                totals[key] += counts[key]
        return totals

    @property
    def latencies_vt(self) -> np.ndarray:
        """Per-request virtual latencies across every flush, flush order."""
        lats: list[float] = []
        for r in self.results:
            lats.extend(r.latencies_vt)
        return np.asarray(lats, dtype=float)

    def report(self) -> dict:
        """Deterministic JSON-friendly run summary.

        Latency quantiles go through the observability layer's bucketed
        :func:`~repro.obs.metrics.percentile` estimator -- over the same
        microsecond series the ``serve.latency_us`` histogram observes --
        so a report and a live metrics snapshot of the same run quote
        identical p50/p99 values.
        """
        lat = self.latencies_vt
        p50_us = percentile(lat * 1e6, 50)
        p99_us = percentile(lat * 1e6, 99)
        shed = self.shed_counts
        return {
            "virtual_seconds": self.loop.now,
            "submitted": self._next_seq,
            "accepted": sum(s.admission.admitted for s in self.shards),
            "shed_retryable": shed["retryable"],
            "shed_overloaded": shed["overloaded"],
            "shed_migrating": shed["migrating"],
            "flushes": len(self.results),
            "matched": int(sum(r.outcome.matched_count
                               for r in self.results)),
            "retunes": len(self.retune_events),
            "latency_p50_vt": p50_us / 1e6 if p50_us is not None else None,
            "latency_p99_vt": p99_us / 1e6 if p99_us is not None else None,
            "tenants": {
                name: {
                    "shard": self._placement[name],
                    "engine": self.tenant(name).relaxations.label(),
                    "flushes": self.tenant(name).flush_seq,
                    "matched": self.tenant(name).matched_total,
                    "carryover_depth": (
                        self.tenant(name).session.depth
                        if self.tenant(name).session is not None else 0),
                    "retunes": [
                        (e.from_label, e.to_label, e.direction)
                        for e in self.tenant(name).autotuner.events],
                }
                for name in self._placement
            },
        }
