"""Shards: the unit of isolation, batching, and engine ownership.

A :class:`Shard` hosts a disjoint subset of the service's tenants.  Each
tenant gets fully isolated state -- its own
:class:`~repro.core.engine.MatchingEngine` (relaxation point and matcher
included), batch accumulator, stream profiler, and autotuner -- while the
shard contributes the *shared* resources: the bounded inbox the admission
controller guards and the flush machinery.

The flush path is where every prior subsystem composes:

1. the accumulator drains into one concatenated batch pair (PR 1's
   vectorized fast paths want exactly this shape);
2. the tenant's engine matches it, demoting gracefully mid-pass if the
   batch violates the current relaxations (PR 2's degradation pattern);
3. any pending retune cost is charged onto the outcome (the adaptive
   relaunch model);
4. the profiler ingests the flushed stream and the autotuner decides
   whether the *next* flush runs on a different Table II point;
5. the observability handle (PR 3) gets per-tenant spans, queue-depth
   gauges, and batch/shed/retune counters -- all behind one
   ``is None`` branch.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.engine import MatchingEngine
from ..core.relaxations import RelaxationSet
from ..simt.gpu import GPUSpec, PASCAL_GTX1080
from .admission import AdmissionController, AdmissionPolicy
from .autotuner import Autotuner
from .batching import BatchAccumulator, BatchPolicy
from .messages import (ACCEPTED, MIGRATING, FlushResult, ServeRequest,
                       ShardCrash, TenantSpec, Ticket)
from .profiler import StreamProfiler
from .stages import StageClock
from .state import SessionState

__all__ = ["TenantState", "Shard"]


@dataclass
class TenantState:
    """Everything one tenant owns inside its shard."""

    spec: TenantSpec
    engine: MatchingEngine
    accumulator: BatchAccumulator
    profiler: StreamProfiler
    autotuner: Autotuner
    flush_seq: int = 0
    matched_total: int = 0
    requests_total: int = 0
    #: relaunch cost booked by the last retune, charged to the next outcome
    pending_retune_seconds: float = 0.0
    pending_retune_cycles: float = 0.0
    #: engine demotions already mirrored into the retune log
    demotions_seen: int = 0
    results: list[FlushResult] = field(default_factory=list)
    #: persistent-UMQ carry-over (``None`` for stateless tenants)
    session: SessionState | None = None

    @property
    def relaxations(self) -> RelaxationSet:
        """The tenant's current point on the lattice."""
        return self.engine.relaxations


class Shard:
    """One shard: bounded inbox, per-tenant engines, flush machinery.

    Parameters
    ----------
    shard_id:
        Index within the service (obs label).
    gpu:
        Simulated device every tenant engine runs on.
    admission:
        Bounded-inbox policy (shared across the shard's tenants).
    batching:
        Flush watermark policy (per-tenant accumulators, same policy).
    promote_after:
        Autotuner hysteresis, in agreeing windows.
    profile_window:
        Profiler sliding window, in flushes.
    verify:
        Cross-check every outcome against the reference semantics
        (slow; for tests).
    obs:
        Optional observability handle.
    stages:
        Optional :class:`~repro.serve.stages.StageClock`
        (measurement-only wall-time breakdown; never read by decisions).
    """

    def __init__(self, shard_id: int, gpu: GPUSpec = PASCAL_GTX1080,
                 admission: AdmissionPolicy | None = None,
                 batching: BatchPolicy | None = None,
                 promote_after: int = 3, profile_window: int = 8,
                 verify: bool = False, obs=None,
                 stages: StageClock | None = None) -> None:
        self.shard_id = shard_id
        self.gpu = gpu
        self.batching = batching if batching is not None else BatchPolicy()
        self.admission = AdmissionController(
            admission, default_retry_after_vt=self.batching.max_delay_vt)
        self.promote_after = promote_after
        self.profile_window = profile_window
        self.verify = verify
        self._obs = obs
        self._stages = stages
        self.tenants: dict[str, TenantState] = {}
        #: tenants mid-migration off this shard, mapped to their
        #: deterministic cutover virtual time; submissions for them are
        #: answered ``migrating`` with the cutover as the retry hint.
        self.migrating: dict[str, float] = {}
        #: chaos hook: raise :class:`ShardCrash` when ``flushes_done``
        #: reaches this count (armed by the supervisor's kill plan).
        self.fail_at_flush: int | None = None
        #: non-empty flushes this shard has started (crash-hook clock).
        self.flushes_done = 0

    # -- tenant lifecycle ---------------------------------------------------------

    def add_tenant(self, spec: TenantSpec) -> TenantState:
        """Register a tenant and build its initial engine."""
        if spec.name in self.tenants:
            raise ValueError(f"tenant {spec.name!r} already registered")
        rel = spec.initial_relaxations()
        ts = TenantState(
            spec=spec,
            engine=self._build_engine(spec, rel),
            accumulator=BatchAccumulator(self.batching),
            profiler=StreamProfiler(self.profile_window),
            autotuner=Autotuner(spec, gpu=self.gpu,
                                promote_after=self.promote_after),
            session=SessionState.for_spec(spec) if spec.session else None,
        )
        self.tenants[spec.name] = ts
        return ts

    def _build_engine(self, spec: TenantSpec,
                      rel: RelaxationSet) -> MatchingEngine:
        return MatchingEngine(gpu=self.gpu, relaxations=rel,
                              n_queues=spec.n_queues, n_ctas=spec.n_ctas,
                              verify=self.verify, demote_on_violation=True,
                              obs=self._obs)

    # -- state --------------------------------------------------------------------

    @property
    def inbox_depth(self) -> int:
        """Pending envelopes across every tenant accumulator."""
        return sum(len(ts.accumulator) for ts in self.tenants.values())

    def windowed_volume(self) -> int:
        """Windowed message volume across the shard's tenants.

        Summed per-tenant profiler windows -- the load signal behind both
        the supervisor's hot-spot rebalancer and the cluster bench's
        per-shard imbalance statistic (max/mean of this value across
        workers), so "hot" means the same thing in every plane.
        """
        return sum(ts.profiler.profile().n_messages
                   for ts in self.tenants.values())

    def next_deadline_vt(self) -> float | None:
        """Earliest pending batch deadline across the shard's tenants.

        This is the soonest moment the inbox can drain, which is exactly
        the vt-derived retry hint admission attaches to ``retryable``
        sheds.
        """
        deadlines = [ts.accumulator.deadline_vt
                     for ts in self.tenants.values()
                     if ts.accumulator.deadline_vt is not None]
        return min(deadlines) if deadlines else None

    # -- submission ---------------------------------------------------------------

    def submit(self, request: ServeRequest,
               now_vt: float) -> tuple[Ticket, FlushResult | None]:
        """Admit (or shed) one request; may trigger a size-watermark flush.

        Returns the ticket plus the flush result if the admission pushed
        the tenant's accumulator over its size watermark.
        """
        ts = self.tenants[request.tenant]
        obs = self._obs
        cutover = self.migrating.get(request.tenant)
        if cutover is not None:
            # mid-migration: refuse with the deterministic cutover time
            # as the retry hint -- nothing is dropped for capacity.
            self.admission.shed_migrating += 1
            if obs is not None:
                obs.count(f"serve.shed.{MIGRATING}")
                obs.instant("serve.shed", tenant=request.tenant,
                            status=MIGRATING, reason="tenant migrating")
            return (Ticket(status=MIGRATING, tenant=request.tenant,
                           seq=request.seq, retry_after_vt=cutover,
                           reason="tenant migrating; retry at cutover"),
                    None)
        stages = self._stages
        t0 = StageClock.start() if stages is not None else 0.0
        status, retry_after, reason = self.admission.decide(
            request.n_envelopes, self.inbox_depth,
            now_vt=now_vt, next_flush_vt=self.next_deadline_vt())
        if status != ACCEPTED:
            if stages is not None:
                stages.stop("admission", t0)
            if obs is not None:
                obs.count(f"serve.shed.{status}")
                obs.instant("serve.shed", tenant=request.tenant,
                            status=status, reason=reason)
            return (Ticket(status=status, tenant=request.tenant,
                           seq=request.seq,
                           retry_after_vt=(now_vt + retry_after
                                           if retry_after is not None
                                           else None),
                           reason=reason), None)
        if stages is not None:
            stages.stop("admission", t0)
            t0 = StageClock.start()
        ts.accumulator.admit(request)
        if stages is not None:
            stages.stop("batching", t0)
        ts.requests_total += 1
        if obs is not None:
            obs.count("serve.accepted")
            obs.gauge(f"serve.shard{self.shard_id}.inbox", self.inbox_depth)
        result = None
        if ts.accumulator.size_ready():
            result = self.flush_tenant(request.tenant, now_vt)
        return (Ticket(status=ACCEPTED, tenant=request.tenant,
                       seq=request.seq), result)

    def deliver(self, request: ServeRequest) -> None:
        """Admit a fabric delivery, bypassing admission control.

        Fabric traffic is already inside the system -- it was charged at
        its source shard -- so shedding it here would lose envelopes the
        sender believes are in flight.  Deliveries never trigger the
        size-watermark flush either: the fabric flushes tenants at
        superstep boundaries, and an early partial flush would split a
        superstep's rows across two results.
        """
        ts = self.tenants[request.tenant]
        stages = self._stages
        t0 = StageClock.start() if stages is not None else 0.0
        ts.accumulator.admit(request)
        if stages is not None:
            stages.stop("fabric", t0)
        ts.requests_total += 1
        if self._obs is not None:
            self._obs.count("serve.fabric.delivered")

    # -- flushing -----------------------------------------------------------------

    def flush_tenant(self, tenant: str, now_vt: float) -> FlushResult | None:
        """Drain one tenant's accumulator through its engine."""
        ts = self.tenants[tenant]
        stages = self._stages
        t0 = StageClock.start() if stages is not None else 0.0
        messages, requests, covered = ts.accumulator.flush()
        if stages is not None:
            stages.stop("batching", t0)
        if not covered:
            return None
        self.flushes_done += 1
        if (self.fail_at_flush is not None
                and self.flushes_done >= self.fail_at_flush):
            # chaos kill at the worst moment: the accumulator has
            # drained, so the in-flight batch exists only on this stack
            # frame -- recovery must come from checkpoint + journal.
            self.fail_at_flush = None
            raise ShardCrash(self.shard_id, tenant, now_vt)
        born_msgs = born_reqs = None
        carried_m = carried_r = 0
        if ts.session is not None and ts.session.depth:
            (messages, requests, born_msgs, born_reqs,
             carried_m, carried_r) = ts.session.merge(
                 messages, requests, ts.flush_seq)
        obs = self._obs
        trace_start = (obs.tracer.now
                       if obs is not None and obs.tracer is not None else 0.0)
        t0 = StageClock.start() if stages is not None else 0.0
        outcome = ts.engine.submit_batch(messages, requests)
        if stages is not None:
            stages.stop("match", t0)
            t0 = StageClock.start()
        # mirror engine-side graceful demotions into the retune log
        for ev in ts.engine.demotions[ts.demotions_seen:]:
            ts.autotuner.record_external_demotion(ev.from_label, ev.to_label,
                                                  ev.reason, now_vt)
        ts.demotions_seen = len(ts.engine.demotions)
        # charge any pending retune cost onto this outcome
        if ts.pending_retune_seconds or ts.pending_retune_cycles:
            outcome.seconds += ts.pending_retune_seconds
            outcome.cycles += ts.pending_retune_cycles
            outcome.meta.setdefault("retune_charged", 0.0)
            outcome.meta["retune_charged"] += ts.pending_retune_cycles
            ts.pending_retune_seconds = 0.0
            ts.pending_retune_cycles = 0.0
        completion_vt = now_vt + outcome.seconds
        latencies = tuple(completion_vt - r.arrival_vt for r in covered)
        meta = {"n_messages": len(messages), "n_requests": len(requests)}
        if ts.session is not None:
            # persistent-UMQ: the pass's unmatched columns carry over
            # into the next flush as packed ``take`` views -- no
            # re-marshalling -- subject to the age and cap sheds.
            msg_idx = outcome.unmatched_message_indices()
            req_idx = outcome.unmatched_request_indices()
            umq, prq = ts.engine.export_unmatched(
                messages, requests, outcome, msg_idx, req_idx)
            bm = (born_msgs[msg_idx] if born_msgs is not None
                  else np.full(msg_idx.size, ts.flush_seq, dtype=np.int64))
            br = (born_reqs[req_idx] if born_reqs is not None
                  else np.full(req_idx.size, ts.flush_seq, dtype=np.int64))
            shed_age, shed_cap = ts.session.retain(umq, prq, bm, br,
                                                   ts.flush_seq)
            meta.update(carried_messages=carried_m,
                        carried_requests=carried_r,
                        carryover_umq=len(ts.session.umq),
                        carryover_prq=len(ts.session.prq),
                        carryover_shed_age=shed_age,
                        carryover_shed_cap=shed_cap)
            if obs is not None:
                obs.gauge(f"serve.{tenant}.carryover", ts.session.depth)
                if shed_age or shed_cap:
                    obs.count("serve.carryover_shed",
                              float(shed_age + shed_cap))
        result = FlushResult(
            tenant=tenant, shard_id=self.shard_id, flush_seq=ts.flush_seq,
            flush_vt=now_vt, outcome=outcome,
            covered_seqs=tuple(r.seq for r in covered),
            latencies_vt=latencies,
            engine_label=ts.relaxations.label(),
            meta=meta)
        ts.flush_seq += 1
        ts.matched_total += outcome.matched_count
        ts.results.append(result)
        # profile the flushed stream and maybe retune for the next flush
        ts.profiler.ingest(messages, requests, outcome)
        new_rel = ts.autotuner.consider(ts.relaxations,
                                        ts.profiler.profile(), now_vt)
        if new_rel is not None:
            event = ts.autotuner.events[-1]
            ts.engine = self._build_engine(ts.spec, new_rel)
            ts.demotions_seen = 0
            ts.pending_retune_seconds += event.extra_seconds
            ts.pending_retune_cycles += event.extra_cycles
            if obs is not None:
                obs.count("serve.retunes")
                obs.instant("serve.retune", tenant=tenant,
                            from_label=event.from_label,
                            to_label=event.to_label,
                            direction=event.direction)
        if stages is not None:
            stages.stop("result", t0)
        if obs is not None:
            obs.count("serve.flushes")
            obs.count("serve.matched", float(outcome.matched_count))
            obs.observe("serve.batch_envelopes",
                        float(len(messages) + len(requests)))
            for lat in latencies:
                obs.observe("serve.latency_us", lat * 1e6)
            obs.gauge(f"serve.shard{self.shard_id}.inbox", self.inbox_depth)
            if obs.tracer is not None:
                obs.tracer.complete("serve.flush", trace_start,
                                    obs.tracer.now - trace_start,
                                    tenant=tenant,
                                    engine=result.engine_label,
                                    matched=outcome.matched_count)
        return result

    def flush_all(self, now_vt: float) -> list[FlushResult]:
        """Drain every tenant (registration order -- deterministic)."""
        results = []
        for name in self.tenants:
            result = self.flush_tenant(name, now_vt)
            if result is not None:
                results.append(result)
        return results
