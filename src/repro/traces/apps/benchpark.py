"""Benchpark suite models: AMG2023, Kripke, Laghos.

Modern LLNL proxy/benchmark apps whose communication patterns Nansamba
et al. (PAPERS.md) characterize with Caliper/Benchpark pattern analysis.
They are qualitatively different from the paper's 2017-era Table I
traces: *huge per-pair message counts over a tiny tuple cardinality* --
a handful of ``(src, tag, comm)`` shapes repeated thousands of times.
That is precisely the regime MPI-4 partitioned communication targets
(match once, re-fire many) and the regime that should pin, not
oscillate, the autotuner's Table II lattice walk.

Each model also carries a *phase structure* in ``trace.meta["phases"]``
(event-index ranges), and :func:`pattern_summary` renders the
Caliper-style per-phase pattern report the Benchpark thicket analyses
produce.
"""

from __future__ import annotations

import numpy as np

from ..events import SendEvent, RecvPostEvent, Trace
from .base import (AppModel, TraceBuilder, grid_dims, grid_neighbors,
                   random_neighbors)

__all__ = ["AMG2023", "Kripke", "Laghos", "pattern_summary"]


class _PhasedModel(AppModel):
    """AppModel that records named phases as event-index ranges."""

    suite = "benchpark"

    def generate(self, n_ranks: int | None = None,
                 steps: int | None = None, seed: int = 0) -> Trace:
        self._phases: dict[str, tuple[int, int]] = {}
        trace = super().generate(n_ranks, steps, seed)
        trace.meta["phases"] = dict(self._phases)
        return trace

    def _phase(self, b: TraceBuilder, name: str) -> None:
        """Close the open phase (if any) and open ``name``."""
        mark = len(b._events)
        if self._phases:
            last = next(reversed(self._phases))
            lo, _ = self._phases[last]
            self._phases[last] = (lo, mark)
        self._phases[name] = (mark, mark)

    def _close(self, b: TraceBuilder) -> None:
        if self._phases:
            last = next(reversed(self._phases))
            lo, _ = self._phases[last]
            self._phases[last] = (lo, len(b._events))


class AMG2023(_PhasedModel):
    """Algebraic multigrid (hypre BoomerAMG): setup vs solve phases.

    Setup coarsens the operator level by level -- each coarser level has
    fewer active ranks talking to *more* peers (coarse-grid stencils
    densify), an irregular one-shot pattern.  Solve then runs many
    V-cycles over the fixed hierarchy: the same tiny set of per-level
    halo shapes (tag = level) re-fired every cycle, down-and-up.  The
    solve phase dominates message count by an order of magnitude while
    adding **zero** new tuple shapes -- the match-once/fire-many
    signature.
    """

    name = "bp_amg2023"
    full_name = "AMG2023 (hypre)"
    suite = "benchpark"
    description = ("multigrid hierarchy: irregular setup coarsening, then "
                   "V-cycle halo re-fires per level (tag = level)")
    default_ranks = 32
    default_steps = 10

    N_LEVELS = 4

    def _level_pairs(self, n_ranks: int,
                     rng: np.random.Generator) -> list[list[tuple[int, int]]]:
        """Per-level directed halo pairs: each coarser level keeps every
        4th rank of the finer one and densifies its stencil."""
        levels = []
        active = list(range(n_ranks))
        k = 3
        for _ in range(self.N_LEVELS):
            if len(active) < 2:
                break
            nbrs = random_neighbors(len(active), k=min(k, len(active) - 1),
                                    rng=rng)
            levels.append([(active[i], active[j])
                           for i in range(len(active)) for j in nbrs[i]])
            active = active[::4]
            k *= 2
        return levels

    def build(self, b: TraceBuilder, n_ranks: int, steps: int,
              rng: np.random.Generator) -> None:
        levels = self._level_pairs(n_ranks, rng)
        # -- setup: one coarsening pass, a couple of exchanges per level
        # (strength-of-connection + interpolation), modest counts
        self._phase(b, "setup")
        for lvl, pairs in enumerate(levels):
            b.exchange(pairs, tag_of=lambda s, d, k, L=lvl: L,
                       msgs_per_pair=2, prepost_fraction=0.7, rng=rng)
            b.barrier(n_ranks)
        # -- solve: `steps` V-cycles over the fixed hierarchy; each
        # cycle visits every level twice (down + up) with many small
        # halo messages per visit -- the re-fire phase
        self._phase(b, "solve")
        for _cycle in range(steps):
            walk = list(range(len(levels))) + \
                list(range(len(levels) - 1, -1, -1))
            for lvl in walk:
                b.exchange(levels[lvl], tag_of=lambda s, d, k, L=lvl: L,
                           msgs_per_pair=4, prepost_fraction=1.0, rng=rng)
            b.barrier(n_ranks)
        self._close(b)


class Kripke(_PhasedModel):
    """Deterministic Sn transport: KBA sweep pipelining.

    Eight octant sweeps over a 2-D process decomposition: each octant is
    a wavefront from one grid corner, every rank forwarding to at most
    two downstream neighbors.  With many group/zone-set chunks pipelined
    per sweep, the per-pair message count is enormous while the tuple
    cardinality is tiny -- one tag per octant, at most 4 distinct
    neighbors per rank.  The stress case for per-message match cost.
    """

    name = "bp_kripke"
    full_name = "Kripke (Sn transport)"
    suite = "benchpark"
    description = ("8-octant KBA sweep wavefronts, pipelined chunks: "
                   "huge per-pair counts, one tag per octant")
    default_ranks = 32
    default_steps = 4

    #: pipelined group x zone-set chunks per octant sweep
    CHUNKS = 12

    def build(self, b: TraceBuilder, n_ranks: int, steps: int,
              rng: np.random.Generator) -> None:
        px, py = grid_dims(n_ranks, 2)
        coord = [(r // py, r % py) for r in range(n_ranks)]
        index = {c: r for r, c in enumerate(coord)}
        self._phase(b, "sweep")
        for _it in range(steps):
            for octant, (dx, dy) in enumerate(
                    [(sx, sy) for sx in (1, -1) for sy in (1, -1)] * 2):
                # downstream edges of this octant's wavefront
                pairs = []
                for (x, y), r in index.items():
                    for nx, ny in ((x + dx, y), (x, y + dy)):
                        if (nx, ny) in index:
                            pairs.append((r, index[(nx, ny)]))
                b.exchange(pairs, tag_of=lambda s, d, k, o=octant: o,
                           msgs_per_pair=self.CHUNKS,
                           prepost_fraction=1.0, rng=rng)
            b.barrier(n_ranks)
        self._close(b)


class Laghos(_PhasedModel):
    """High-order Lagrangian hydrodynamics: unstructured halo exchange.

    The mesh decomposition is irregular but *fixed* for the whole run
    (no regridding, unlike Boxlib): every step exchanges force then
    velocity data over the same neighbor sets, one tag per kind.  Two
    tags total, stable peers, counts growing linearly with steps -- a
    re-fire workload over an unstructured topology
    (:class:`~repro.mpi.topology.DistGraph` shaped).
    """

    name = "bp_laghos"
    full_name = "Laghos (Lagrangian hydro)"
    suite = "benchpark"
    description = ("fixed irregular halo, force+velocity exchange per "
                   "step, one tag per kind")
    default_ranks = 32
    default_steps = 10

    TAG_FORCE = 0
    TAG_VELOCITY = 1

    def build(self, b: TraceBuilder, n_ranks: int, steps: int,
              rng: np.random.Generator) -> None:
        nbrs = random_neighbors(n_ranks, k=5, rng=rng)
        pairs = [(s, d) for s in range(n_ranks) for d in nbrs[s]]
        self._phase(b, "timestep")
        for _step in range(steps):
            b.exchange(pairs,
                       tag_of=lambda s, d, k: self.TAG_FORCE,
                       msgs_per_pair=2, prepost_fraction=1.0, rng=rng,
                       nbytes=64)
            b.exchange(pairs,
                       tag_of=lambda s, d, k: self.TAG_VELOCITY,
                       msgs_per_pair=1, prepost_fraction=1.0, rng=rng,
                       nbytes=64)
            b.barrier(n_ranks)
        self._close(b)


def pattern_summary(trace: Trace) -> dict:
    """Caliper/Benchpark-style communication-pattern report.

    Per phase (falling back to one ``all`` phase when the trace carries
    no phase marks): message and post counts, distinct ``(src, tag,
    comm)`` tuple cardinality, messages per tuple, per-pair statistics,
    and peer degrees -- the quantities Nansamba et al. tabulate from
    Caliper traces to classify proxy-app patterns.
    """
    phases = (trace.meta or {}).get("phases") or \
        {"all": (0, len(trace.events))}
    out: dict = {"app": trace.app, "n_ranks": trace.n_ranks, "phases": {}}
    for name, (lo, hi) in phases.items():
        events = trace.events[lo:hi]
        sends = [e for e in events if isinstance(e, SendEvent)]
        posts = [e for e in events if isinstance(e, RecvPostEvent)]
        tuples: dict[tuple[int, int, int], int] = {}
        pair_counts: dict[tuple[int, int], int] = {}
        peers: dict[int, set] = {}
        for e in sends:
            key = (e.rank, e.tag, e.comm)
            tuples[key] = tuples.get(key, 0) + 1
            pair_counts[(e.rank, e.dst)] = \
                pair_counts.get((e.rank, e.dst), 0) + 1
            peers.setdefault(e.rank, set()).add(e.dst)
        n_sends = len(sends)
        counts = np.array(sorted(tuples.values()), dtype=float)
        pair_arr = np.array(sorted(pair_counts.values()), dtype=float)
        degree = np.array([len(v) for v in peers.values()], dtype=float)
        out["phases"][name] = {
            "sends": n_sends,
            "posts": len(posts),
            "tuple_cardinality": len(tuples),
            "msgs_per_tuple_mean": (n_sends / len(tuples)
                                    if tuples else 0.0),
            "dominant_tuple_fraction": (float(counts[-1]) / n_sends
                                        if n_sends else 0.0),
            "pairs": len(pair_counts),
            "msgs_per_pair_mean": (float(pair_arr.mean())
                                   if pair_arr.size else 0.0),
            "msgs_per_pair_max": (int(pair_arr[-1])
                                  if pair_arr.size else 0),
            "peers_mean": float(degree.mean()) if degree.size else 0.0,
            "peers_max": int(degree.max()) if degree.size else 0,
        }
    return out
