"""Communicators: isolated matching contexts over a cluster.

A communicator is part of the matching tuple and can never be wildcarded,
so distinct communicators partition traffic with no cross-dependencies --
"the communicator ... would inherently offer parallelism", as the paper
notes (Section IV-A), even though most proxy applications use only one.

:class:`Communicator` binds a cluster to a ``comm`` id and an ordered
subset of its ranks, translating between *communicator-local* ranks (what
send/recv take) and *cluster* ranks (what the network routes on) -- the
same world/sub-communicator split MPI programs use.
"""

from __future__ import annotations

from typing import Any, Sequence

from ..core.envelope import ANY_SOURCE, ANY_TAG, MAX_COMM, MAX_TAG
from .process import Cluster, RankView
from .request import Request

__all__ = ["Communicator", "COLLECTIVE_TAG_BASE", "check_app_tag"]

#: Tags at and above this value are reserved for collectives
#: (:mod:`repro.mpi.collectives` re-exports this).  Application
#: point-to-point traffic must stay below it: a user send on a reserved
#: tag would alias into collective matching on the same communicator.
COLLECTIVE_TAG_BASE = MAX_TAG - 15


def check_app_tag(tag: int, *, wildcard_ok: bool = False) -> None:
    """Reject tags outside the application range.

    ``wildcard_ok`` permits :data:`~repro.core.envelope.ANY_TAG` (receive
    side only).  Reserved tags (>= :data:`COLLECTIVE_TAG_BASE`) are always
    rejected here -- collectives use the unchecked ``coll_*`` entry points.
    """
    if wildcard_ok and tag == ANY_TAG:
        return
    if tag >= COLLECTIVE_TAG_BASE:
        raise ValueError(
            f"tag {tag} is in the reserved collective range "
            f"[{COLLECTIVE_TAG_BASE}, {MAX_TAG}]; application "
            f"point-to-point traffic must use tags below "
            f"{COLLECTIVE_TAG_BASE}")


class Communicator:
    """An MPI-style communicator over a simulated cluster.

    Parameters
    ----------
    cluster:
        The underlying rank set.
    comm_id:
        Matching-tuple communicator value (0 = world default).
    members:
        Cluster ranks belonging to this communicator, in local-rank
        order.  Defaults to all ranks.
    """

    def __init__(self, cluster: Cluster, comm_id: int = 0,
                 members: Sequence[int] | None = None) -> None:
        if not 0 <= comm_id <= MAX_COMM:
            raise ValueError(f"comm_id out of range: {comm_id}")
        self.cluster = cluster
        self.comm_id = comm_id
        self.members = (list(range(cluster.n_ranks)) if members is None
                        else list(members))
        if len(set(self.members)) != len(self.members):
            raise ValueError("duplicate ranks in communicator")
        for m in self.members:
            if not 0 <= m < cluster.n_ranks:
                raise ValueError(f"rank {m} outside the cluster")
        self._local_of = {g: l for l, g in enumerate(self.members)}
        # advance the cluster's allocator past this id so later split()
        # allocations can never collide with hand-constructed ids
        cluster.note_comm_id(comm_id)

    # -- topology ---------------------------------------------------------------

    @property
    def size(self) -> int:
        """Number of member ranks."""
        return len(self.members)

    def global_rank(self, local: int) -> int:
        """Communicator-local rank -> cluster rank."""
        return self.members[local]

    def local_rank(self, global_rank: int) -> int:
        """Cluster rank -> communicator-local rank."""
        return self._local_of[global_rank]

    def split(self, color_of: dict[int, int]) -> dict[int, "Communicator"]:
        """MPI_Comm_split analogue: one sub-communicator per color.

        ``color_of`` maps local ranks to colors; every sub-communicator
        gets a fresh id from the cluster-owned monotonic allocator
        (:meth:`~repro.mpi.process.Cluster.alloc_comm_id`), so two
        sibling splits -- or nested splits -- can never hand out
        colliding comm values.  (The old ``comm_id + 1 + i`` scheme let
        distinct sub-communicators share a matching-tuple comm value and
        silently alias unrelated traffic.)
        """
        colors = sorted(set(color_of.values()))
        out = {}
        for color in colors:
            members = [self.members[l] for l in sorted(color_of)
                       if color_of[l] == color]
            out[color] = Communicator(self.cluster,
                                      comm_id=self.cluster.alloc_comm_id(),
                                      members=members)
        return out

    # -- point-to-point (local ranks) -----------------------------------------------

    def isend(self, src: int, dst: int, payload: Any = None,
              tag: int = 0) -> Request:
        """Nonblocking send from local rank ``src`` to local rank ``dst``.

        Application API: tags in the reserved collective range
        (>= :data:`COLLECTIVE_TAG_BASE`) are rejected -- they would alias
        into collective matching on this communicator.
        """
        check_app_tag(tag)
        return self.coll_isend(src, dst, payload, tag)

    def send(self, src: int, dst: int, payload: Any = None,
             tag: int = 0) -> None:
        """Blocking send between local ranks."""
        self.isend(src, dst, payload, tag).wait()

    def irecv(self, dst: int, src: int, tag: int) -> Request:
        """Nonblocking receive at local rank ``dst`` from local ``src``.

        ``src`` may be ANY_SOURCE (subject to the cluster's relaxations);
        a concrete source is translated to its cluster rank.  Like
        :meth:`isend`, reserved collective tags are rejected
        (:data:`~repro.core.envelope.ANY_TAG` stays legal -- a wildcard
        is not a reserved tag).
        """
        check_app_tag(tag, wildcard_ok=True)
        return self.coll_irecv(dst, src, tag)

    # -- collective entry points (reserved tags allowed) --------------------------

    def coll_isend(self, src: int, dst: int, payload: Any = None,
                   tag: int = 0) -> Request:
        """:meth:`isend` without the application tag-range check; the
        entry point :mod:`repro.mpi.collectives` uses for reserved tags."""
        return self._view(src).isend(self.global_rank(dst), payload, tag,
                                     comm=self.comm_id)

    def coll_irecv(self, dst: int, src: int, tag: int) -> Request:
        """:meth:`irecv` without the application tag-range check."""
        global_src = src if src == ANY_SOURCE else self.global_rank(src)
        return self._view(dst).irecv(global_src, tag, comm=self.comm_id)

    def recv(self, dst: int, src: int, tag: int) -> Any:
        """Blocking receive at a local rank; returns the payload."""
        return self.irecv(dst, src, tag).wait()

    def _view(self, local: int) -> RankView:
        return self.cluster.rank(self.global_rank(local))
