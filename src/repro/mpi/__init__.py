"""Message-passing substrate over the matching core.

A cooperative, single-process simulation of the paper's system model:
GPUs as autonomous ranks (:mod:`.process`), joined by a global-address-
space network (:mod:`.network`), each running a communication kernel that
matches messages with the configured engine (:mod:`.progress`).
Communicators (:mod:`.communicator`) and BSP collectives
(:mod:`.collectives`) complete the familiar MPI surface.
"""

from .faults import (FaultLedger, FaultPlan, FaultSpec, FaultEvent,
                     chaos_plan)
from .reliability import (DeliveryFailure, ReliabilityConfig,
                          ReliabilityLayer, StallError, StallReport)
from .collectives import (allgather, allreduce, alltoall, barrier, bcast,
                          gather, neighbor_allgather, neighbor_alltoall,
                          neighbor_alltoallv, reduce, scan, scatter)
from .communicator import Communicator
from .partitioned import (PartitionRouter, PrecvRequest, PsendRequest,
                          precv_init, psend_init)
from .topology import CartGraph, DistGraph
from .datatypes import EAGER_LIMIT_BYTES, Protocol, payload_nbytes
from .network import GASNetwork, LinkModel, MessageDescriptor, NVLINK, PCIE3
from .process import Cluster, RankView
from .progress import Endpoint
from .ops import (PersistentRecv, PersistentSend, testall, waitall,
                  waitany)
from .request import Request, RequestState, Status
from .ringbuffer import IngressRings, RingBuffer

__all__ = [
    "Cluster", "RankView", "Communicator", "Endpoint",
    "Request", "RequestState", "Status",
    "GASNetwork", "LinkModel", "MessageDescriptor", "NVLINK", "PCIE3",
    "EAGER_LIMIT_BYTES", "Protocol", "payload_nbytes",
    "barrier", "bcast", "gather", "scatter", "allgather", "alltoall",
    "reduce", "allreduce", "scan",
    "neighbor_allgather", "neighbor_alltoall", "neighbor_alltoallv",
    "CartGraph", "DistGraph",
    "PartitionRouter", "PsendRequest", "PrecvRequest",
    "psend_init", "precv_init",
    "waitall", "waitany", "testall", "PersistentRecv", "PersistentSend",
    "RingBuffer", "IngressRings",
    "FaultPlan", "FaultSpec", "FaultLedger", "FaultEvent", "chaos_plan",
    "ReliabilityConfig", "ReliabilityLayer", "DeliveryFailure",
    "StallError", "StallReport",
]
